/**
 * @file
 * Shared scaffolding for the figure/table harnesses: the paper's
 * (workload, input) combinations, graph caching, and result helpers.
 *
 * Every harness prints a stable text table with the same rows/series
 * the paper reports. Environment knobs:
 *   HDCPS_BENCH_SCALE       input scale factor (default 1)
 *   HDCPS_BENCH_CORES       simulated core count (default 64, Table I)
 *   HDCPS_BENCH_SEED        generator/scheduler seed (default 1)
 *   HDCPS_BENCH_FAULT_SPEC  fault-injection spec (site:mode[:arg],...
 *                           see support/fault.h) armed for every run
 */

#ifndef HDCPS_BENCH_BENCH_COMMON_H_
#define HDCPS_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/workload.h"
#include "graph/generators.h"
#include "sim/machine.h"
#include "simsched/runner.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/fault.h"

namespace hdcps::bench {

/** One (kernel, input) point of the paper's evaluation. */
struct Combo
{
    const char *kernel;
    const char *input;

    std::string
    label() const
    {
        return std::string(kernel) + "-" + input;
    }
};

/** The paper's full evaluation set (Figure 3/8 style). */
inline std::vector<Combo>
fullCombos()
{
    return {
        {"sssp", "cage"},  {"sssp", "usa"},  {"astar", "cage"},
        {"astar", "usa"},  {"bfs", "cage"},  {"bfs", "usa"},
        {"mst", "cage"},   {"mst", "usa"},   {"color", "cage"},
        {"color", "usa"},  {"pagerank", "wg"}, {"pagerank", "lj"},
    };
}

/** Reduced set for parameter sweeps (Figures 7, 13-15 style). */
inline std::vector<Combo>
sweepCombos()
{
    return {
        {"sssp", "cage"},
        {"sssp", "usa"},
        {"bfs", "usa"},
        {"pagerank", "wg"},
    };
}

inline unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

inline unsigned
benchScale()
{
    return envUnsigned("HDCPS_BENCH_SCALE", 1);
}

inline uint64_t
benchSeed()
{
    return envUnsigned("HDCPS_BENCH_SEED", 1);
}

/**
 * Arm fault injection from HDCPS_BENCH_FAULT_SPEC, once per process.
 * Lets any figure harness measure degraded-mode behavior (forced sRQ
 * overflow, hRQ/hPQ spills, NoC delay) without recompiling; every run
 * still goes through requireVerified(), so a spec that breaks
 * exactly-once processing fails the harness loudly.
 */
inline void
armBenchFaults()
{
    static bool once = [] {
        const char *spec = std::getenv("HDCPS_BENCH_FAULT_SPEC");
        if (!spec || !*spec)
            return false;
        static FaultRegistry faults(benchSeed());
        std::string error;
        if (!faults.parseSpec(spec, &error)) {
            std::cerr << "FATAL: HDCPS_BENCH_FAULT_SPEC: " << error
                      << "\n";
            std::exit(1);
        }
        FaultRegistry::install(&faults);
        return true;
    }();
    (void)once;
}

/** Table I machine, with an optional core-count override. */
inline SimConfig
benchConfig()
{
    armBenchFaults();
    SimConfig config;
    unsigned cores = envUnsigned("HDCPS_BENCH_CORES", 64);
    config.numCores = cores;
    // Pick the widest mesh that tiles the core count.
    unsigned width = 1;
    for (unsigned w = 1; w * w <= cores; ++w) {
        if (cores % w == 0)
            width = w;
    }
    config.meshWidth = cores / width >= width ? cores / width : width;
    while (cores % config.meshWidth != 0)
        --config.meshWidth;
    return config;
}

/** Cache of generated inputs, keyed by name (shared across combos). */
class InputCache
{
  public:
    const Graph &
    get(const std::string &name)
    {
        auto it = graphs_.find(name);
        if (it == graphs_.end()) {
            it = graphs_
                     .emplace(name, makePaperInput(name, benchScale(),
                                                   benchSeed()))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, Graph> graphs_;
};

/** Cache of workloads bound to cached inputs (reset() before reuse). */
class WorkloadCache
{
  public:
    Workload &
    get(const Combo &combo)
    {
        std::string key = combo.label();
        auto it = workloads_.find(key);
        if (it == workloads_.end()) {
            it = workloads_
                     .emplace(key, makeWorkload(combo.kernel,
                                                inputs_.get(combo.input),
                                                0))
                     .first;
        }
        return *it->second;
    }

  private:
    InputCache inputs_;
    std::map<std::string, std::unique_ptr<Workload>> workloads_;
};

/** Abort the harness if a run failed verification. */
inline void
requireVerified(const SimResult &result, const std::string &what)
{
    if (!result.verified) {
        std::cerr << "FATAL: " << what
                  << " failed verification: " << result.verifyError
                  << "\n";
        std::exit(1);
    }
}

/** Repetitions per measurement (adaptive schedulers are seed-
 *  sensitive on small instances; the figures report geomeans over
 *  seeds). Override with HDCPS_BENCH_REPS. */
inline unsigned
benchReps()
{
    return envUnsigned("HDCPS_BENCH_REPS", 3);
}

/**
 * Optional per-rep series dump: when HDCPS_BENCH_METRICS_DIR is set,
 * every simulateMean() measurement appends its per-seed rows
 * (completion cycles, drift, breakdown components, task counts) to
 * `<dir>/<design>.csv` next to the printed table, so harness output
 * can be analyzed as a series over seeds instead of one geomean.
 */
class SeriesDump
{
  public:
    static void
    record(const std::string &design, unsigned rep, uint64_t seed,
           const SimResult &result)
    {
        const char *dir = std::getenv("HDCPS_BENCH_METRICS_DIR");
        if (!dir)
            return;
        std::string path = std::string(dir) + "/" + design + ".csv";
        bool fresh = !std::ifstream(path).good();
        std::ofstream out(path, std::ios::app);
        if (!out) {
            std::cerr << "warning: cannot append bench series to "
                      << path << "\n";
            return;
        }
        if (fresh) {
            out << "rep,seed,completion_cycles,avg_drift,max_drift,"
                   "tasks_processed,enqueue,dequeue,compute,comm\n";
        }
        out << rep << "," << seed << "," << result.completionCycles
            << "," << result.avgDrift << "," << result.maxDrift << ","
            << result.total.tasksProcessed << ","
            << result.total[Component::Enqueue] << ","
            << result.total[Component::Dequeue] << ","
            << result.total[Component::Compute] << ","
            << result.total[Component::Comm] << "\n";
    }
};

/**
 * Run a named design benchReps() times with consecutive seeds and
 * return the last run's statistics with completionCycles replaced by
 * the geometric mean across seeds. Every run is verified.
 */
inline SimResult
simulateMean(const std::string &design, Workload &workload,
             const SimConfig &config)
{
    double logSum = 0.0;
    SimResult last;
    unsigned reps = benchReps();
    for (unsigned rep = 0; rep < reps; ++rep) {
        last = simulate(design, workload, config, benchSeed() + rep);
        requireVerified(last, design);
        SeriesDump::record(design, rep, benchSeed() + rep, last);
        logSum += std::log(double(last.completionCycles));
    }
    last.completionCycles =
        Cycle(std::exp(logSum / double(reps)));
    return last;
}

/** As simulateMean, for a pre-built design object (boot() resets all
 *  design state, so one object serves every rep). */
inline SimResult
simulateMean(SimDesign &design, Workload &workload,
             const SimConfig &config)
{
    double logSum = 0.0;
    SimResult last;
    unsigned reps = benchReps();
    for (unsigned rep = 0; rep < reps; ++rep) {
        last = simulate(design, workload, config, benchSeed() + rep);
        requireVerified(last, design.name());
        SeriesDump::record(design.name(), rep, benchSeed() + rep, last);
        logSum += std::log(double(last.completionCycles));
    }
    last.completionCycles =
        Cycle(std::exp(logSum / double(reps)));
    return last;
}

/** Percentage string for breakdown components. */
inline std::string
percent(double fraction)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
    return buf;
}

// ---------------------------------------------------------------------
// Perf gate: machine-readable microbenchmark results (BENCH_micro.json)
// consumed by tools/bench_compare. Schema "hdcps-bench-micro-v1":
//   { "schema": ..., "git_rev": ..., "host_cores": N,
//     "benchmarks": [ { "name", "scenario", "items_per_second",
//                       "real_time_ns", "iterations",
//                       "counters": {...}? }, ... ] }
// "counters" is optional and carries benchmark-specific quality
// metrics (e.g. quiescent rank-error bounds for relaxed queues);
// bench_compare validates only the required keys and tolerates it.
// ---------------------------------------------------------------------

/** One benchmark measurement destined for the perf-gate JSON. */
struct PerfGateResult
{
    std::string name;
    std::string scenario; ///< coarse grouping, e.g. "remote_heavy"
    double itemsPerSecond = 0.0;
    double realTimeNs = 0.0; ///< per iteration
    int64_t iterations = 0;
    /** Extra named metrics (rank errors, occupancy, ...), optional. */
    std::map<std::string, double> counters;
};

/** Git revision baked in at configure time (see bench/CMakeLists.txt). */
inline const char *
gitRev()
{
#ifdef HDCPS_GIT_REV
    return HDCPS_GIT_REV;
#else
    return "unknown";
#endif
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Write the perf-gate JSON; false (with a stderr note) on I/O error. */
inline bool
writePerfGateJson(const std::string &path,
                  const std::vector<PerfGateResult> &results)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write perf gate JSON to " << path
                  << "\n";
        return false;
    }
    out << "{\n";
    out << "  \"schema\": \"hdcps-bench-micro-v1\",\n";
    out << "  \"git_rev\": \"" << jsonEscape(gitRev()) << "\",\n";
    out << "  \"host_cores\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"benchmarks\": [";
    for (size_t i = 0; i < results.size(); ++i) {
        const PerfGateResult &r = results[i];
        out << (i ? "," : "") << "\n    {\"name\": \""
            << jsonEscape(r.name) << "\", \"scenario\": \""
            << jsonEscape(r.scenario) << "\", \"items_per_second\": "
            << r.itemsPerSecond << ", \"real_time_ns\": " << r.realTimeNs
            << ", \"iterations\": " << r.iterations;
        if (!r.counters.empty()) {
            out << ", \"counters\": {";
            bool first = true;
            for (const auto &[key, value] : r.counters) {
                out << (first ? "" : ", ") << "\"" << jsonEscape(key)
                    << "\": " << value;
                first = false;
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out) {
        std::cerr << "error: short write of perf gate JSON to " << path
                  << "\n";
        return false;
    }
    return true;
}

} // namespace hdcps::bench

#endif // HDCPS_BENCH_BENCH_COMMON_H_
