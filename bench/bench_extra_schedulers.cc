/**
 * @file
 * Beyond-the-paper ablation: HD-CPS against the relaxed-scheduler
 * literature the paper cites but does not measure — MultiQueue (Rihani
 * et al., SPAA'15) — plus the drift/work-efficiency columns that
 * explain *why* the rankings come out as they do. MultiQueue relaxes
 * order with cheap randomized pops but is blind to drift; HD-CPS
 * spends a little communication budget to keep drift in check.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<std::string> designs = {"reld", "multiqueue",
                                              "pmod", "hdcps-sw",
                                              "hdcps-hw"};
    std::vector<std::string> header = {"workload"};
    for (const auto &d : designs) {
        header.push_back(d);
        header.push_back("we:" + d); // work efficiency
    }
    Table table(header);

    std::map<std::string, std::vector<double>> speedups;
    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        Cycle seq = simulateSequentialCycles(workload, config, seed);
        uint64_t seqTasks = workload.sequentialTasks();
        table.row().cell(combo.label());
        for (const std::string &design : designs) {
            SimResult r = simulateMean(design, workload, config);
            requireVerified(r, combo.label() + "/" + design);
            double speedup = double(seq) / double(r.completionCycles);
            speedups[design].push_back(speedup);
            table.cell(speedup, 1);
            table.cell(double(r.total.tasksProcessed) /
                           double(seqTasks),
                       2);
        }
    }
    table.row().cell("geomean");
    for (const std::string &design : designs) {
        table.cell(geomean(speedups[design]), 1);
        table.cell("-");
    }
    table.printText(std::cout,
                    "Extra ablation: speedup over sequential and work "
                    "efficiency (tasks / sequential tasks; 1.0 is "
                    "ideal) for the relaxed-scheduler field");
    std::cout << "\nMultiQueue's randomized pops are cheap but "
                 "drift-blind; HD-CPS converts a little communication "
                 "into lower drift and better work efficiency.\n";
    return 0;
}
