/**
 * @file
 * Figure 10: simulator-vs-real-machine correlation.
 *
 * The paper correlates its RISC-V simulator against a Tilera
 * TILE-Gx72 running HD-CPS:SW and the hRQ configuration, reporting
 * ~5% average variation. Without Tilera hardware, this harness
 * correlates what *is* observable in both worlds: the relative
 * HD-CPS:SW / PMOD completion ratio per workload, measured (a) on the
 * simulated 64-core machine and (b) with the real threaded runtime on
 * this host. Absolute host wall-clock depends on the host's core
 * count, so the comparison is on normalized ratios (the same metric
 * the paper's figure communicates: does the simulator rank and scale
 * designs the way a real machine does?). See DESIGN.md for the
 * substitution note.
 */

#include <iostream>

#include "bench_common.h"
#include "core/hdcps.h"
#include "cps/pmod.h"
#include "runtime/executor.h"

namespace {

using namespace hdcps;

/** Median-of-3 host wall time for one threaded run. */
uint64_t
hostWallNs(Workload &workload, Scheduler &sched, unsigned threads)
{
    std::vector<uint64_t> times;
    for (int rep = 0; rep < 3; ++rep) {
        workload.reset();
        RunOptions options;
        options.numThreads = threads;
        options.recordBreakdown = false;
        RunResult r = run(sched, workload.initialTasks(),
                          workloadProcessFn(workload), options);
        times.push_back(r.wallNs);
    }
    std::sort(times.begin(), times.end());
    return times[1];
}

} // namespace

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    const unsigned threads = 4;
    WorkloadCache workloads;

    const std::vector<Combo> combos = {
        {"sssp", "usa"}, {"bfs", "usa"}, {"sssp", "cage"},
        {"pagerank", "wg"}};

    Table table({"workload", "sim hdcps/pmod", "host hdcps/pmod",
                 "variation"});
    std::vector<double> variations;
    for (const Combo &combo : combos) {
        Workload &workload = workloads.get(combo);
        SimResult simPmod = simulateMean("pmod", workload, config);
        SimResult simHdcps =
            simulateMean("hdcps-sw", workload, config);
        requireVerified(simPmod, combo.label() + "/pmod");
        requireVerified(simHdcps, combo.label() + "/hdcps-sw");
        double simRatio = double(simHdcps.completionCycles) /
                          double(simPmod.completionCycles);

        PmodScheduler pmod(threads);
        uint64_t hostPmod = hostWallNs(workload, pmod, threads);
        HdCpsScheduler hdcps(threads, HdCpsScheduler::configSw());
        uint64_t hostHdcps = hostWallNs(workload, hdcps, threads);
        std::string why;
        if (!workload.verify(&why)) {
            std::cerr << "FATAL: host run failed verification: " << why
                      << "\n";
            return 1;
        }
        double hostRatio = double(hostHdcps) / double(hostPmod);

        double variation = simRatio > hostRatio
                               ? simRatio / hostRatio - 1.0
                               : hostRatio / simRatio - 1.0;
        variations.push_back(variation);
        table.row()
            .cell(combo.label())
            .cell(simRatio, 2)
            .cell(hostRatio, 2)
            .cell(percent(variation));
    }
    table.row().cell("average").cell("-").cell("-").cell(
        percent(mean(variations)));
    table.printText(std::cout,
                    "Figure 10: simulator vs host-machine correlation "
                    "(HD-CPS:SW / PMOD completion ratio)");
    std::cout << "\nPaper: ~5% average variation against a Tilera "
                 "TILE-Gx72. Host here is a stand-in (see DESIGN.md); "
                 "variation is expectedly larger on small hosts.\n";
    return 0;
}
