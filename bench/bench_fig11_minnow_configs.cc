/**
 * @file
 * Figure 11: Software Minnow worker/minnow core splits. The paper
 * sweeps 38-2 .. 32-8 on the 40-core Xeon and picks 36-4 (one minnow
 * per nine workers). On the simulated 64-core machine the equivalent
 * splits keep the same ratios. Paper shape: sparse USA likes more
 * minnows (underutilized bags => many prefetches); dense inputs prefer
 * more workers; the geomean optimum sits near the 9:1 ratio.
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_obim.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<unsigned> minnowCounts = {2, 4, 6, 8, 12, 16};
    const std::vector<Combo> combos = {
        {"sssp", "usa"}, {"bfs", "usa"}, {"sssp", "cage"},
        {"pagerank", "wg"}};

    // Baseline for normalization: plain PMOD (no minnows).
    std::map<std::string, Cycle> pmodCycles;
    for (const Combo &combo : combos) {
        SimResult r =
            simulateMean("pmod", workloads.get(combo), config);
        requireVerified(r, combo.label() + "/pmod");
        pmodCycles[combo.label()] = r.completionCycles;
    }

    std::vector<std::string> header = {"config"};
    for (const Combo &combo : combos)
        header.push_back(combo.label());
    header.push_back("geomean");
    Table table(header);

    for (unsigned minnows : minnowCounts) {
        table.row().cell(
            std::to_string(config.numCores - minnows) + "-" +
            std::to_string(minnows));
        std::vector<double> perfs;
        for (const Combo &combo : combos) {
            SimObim design(SimObim::swMinnowConfig(minnows),
                           "swminnow-sweep");
            SimResult r =
                simulateMean(design, workloads.get(combo), config);
            requireVerified(r, combo.label() + "/swminnow");
            double perf = double(pmodCycles[combo.label()]) /
                          double(r.completionCycles);
            perfs.push_back(perf);
            table.cell(perf, 2);
        }
        table.cell(geomean(perfs), 2);
    }
    table.printText(std::cout,
                    "Figure 11: Software-Minnow worker-minnow splits "
                    "(performance vs PMOD, higher is better)");
    std::cout << "\nPaper shape: sparse USA gains with more minnows up "
                 "to a point; dense inputs prefer workers; ~9:1 split "
                 "wins the geomean (36-4 on 40 cores).\n";
    return 0;
}
