/**
 * @file
 * Figure 12: the adaptive TDF heuristic vs the Dynamic Oracle,
 * normalized to PMOD.
 *
 * The paper's oracle iteratively finds the best TDF per sampling
 * interval; here the oracle sweeps fixed TDF values (10..100, the
 * heuristic's reachable set) and takes the best completion per
 * workload — an upper bound of the same flavour (see DESIGN.md).
 * Paper shape: the heuristic matches the oracle where priorities are
 * compact (CAGE inputs) and trails slightly where they diverge
 * (SSSP-USA, PageRank) because it only moves one step per interval.
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_hdcps.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    Table table({"workload", "hdcps-hw (adaptive)", "oracle",
                 "oracle-tdf"});
    std::vector<double> adaptivePerf;
    std::vector<double> oraclePerf;

    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult pmod = simulateMean("pmod", workload, config);
        requireVerified(pmod, combo.label() + "/pmod");

        SimResult adaptive =
            simulateMean("hdcps-hw", workload, config);
        requireVerified(adaptive, combo.label() + "/hdcps-hw");

        Cycle best = ~Cycle(0);
        unsigned bestTdf = 0;
        for (unsigned tdf = 10; tdf <= 100; tdf += 10) {
            SimHdCpsConfig oracleConfig = SimHdCps::configHw();
            oracleConfig.tdfMode = SimHdCpsConfig::TdfMode::Fixed;
            oracleConfig.fixedTdf = tdf;
            SimHdCps design(oracleConfig, "oracle");
            SimResult r = simulateMean(design, workload, config);
            requireVerified(r, combo.label() + "/oracle");
            if (r.completionCycles < best) {
                best = r.completionCycles;
                bestTdf = tdf;
            }
        }

        double adaptiveNorm = double(pmod.completionCycles) /
                              double(adaptive.completionCycles);
        double oracleNorm =
            double(pmod.completionCycles) / double(best);
        adaptivePerf.push_back(adaptiveNorm);
        oraclePerf.push_back(oracleNorm);
        table.row()
            .cell(combo.label())
            .cell(adaptiveNorm, 2)
            .cell(oracleNorm, 2)
            .cell(uint64_t(bestTdf));
    }
    table.row()
        .cell("geomean")
        .cell(geomean(adaptivePerf), 2)
        .cell(geomean(oraclePerf), 2)
        .cell("-");
    table.printText(std::cout,
                    "Figure 12: HD-CPS:HW vs TDF oracle, performance "
                    "normalized to PMOD (higher is better)");
    std::cout << "\nPaper shape: heuristic ~= oracle on CAGE; slight "
                 "oracle edge on divergent inputs.\n";
    return 0;
}
