/**
 * @file
 * Figure 13: sensitivity of the adaptive TDF heuristic to its three
 * tunables, normalized to PMOD: (A) drift sampling interval — the
 * paper picks 2000 tasks (too large reacts late, too small burns
 * master-core compute); (B) step size — 10% (5% oscillates, 30%
 * overshoots); (C) initial TDF — 50% (barely matters, the heuristic
 * corrects it quickly).
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_hdcps.h"

namespace {

using namespace hdcps;
using namespace hdcps::bench;

void
sweep(const std::string &title, const std::vector<unsigned> &values,
      const std::function<void(SimHdCpsConfig &, unsigned)> &apply,
      WorkloadCache &workloads, const SimConfig &config, uint64_t seed)
{
    std::vector<std::string> header = {"value"};
    for (const Combo &combo : sweepCombos())
        header.push_back(combo.label());
    header.push_back("geomean");
    Table table(header);

    std::map<std::string, Cycle> pmodCycles;
    for (const Combo &combo : sweepCombos()) {
        SimResult r =
            simulateMean("pmod", workloads.get(combo), config);
        requireVerified(r, combo.label() + "/pmod");
        pmodCycles[combo.label()] = r.completionCycles;
    }

    for (unsigned value : values) {
        table.row().cell(uint64_t(value));
        std::vector<double> perfs;
        for (const Combo &combo : sweepCombos()) {
            SimHdCpsConfig hdcps = SimHdCps::configHw();
            apply(hdcps, value);
            SimHdCps design(hdcps, "tdf-sweep");
            SimResult r =
                simulateMean(design, workloads.get(combo), config);
            requireVerified(r, combo.label() + "/" + title);
            double perf = double(pmodCycles[combo.label()]) /
                          double(r.completionCycles);
            perfs.push_back(perf);
            table.cell(perf, 2);
        }
        table.cell(geomean(perfs), 2);
    }
    table.printText(std::cout, title);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    sweep("Figure 13:A — drift sampling interval (tasks), vs PMOD",
          {100, 500, 1000, 2000, 2500, 5000},
          [](SimHdCpsConfig &c, unsigned v) { c.sampleInterval = v; },
          workloads, config, seed);

    sweep("Figure 13:B — TDF step size (%), vs PMOD", {5, 10, 20, 30},
          [](SimHdCpsConfig &c, unsigned v) { c.tdf.step = v; },
          workloads, config, seed);

    sweep("Figure 13:C — initial TDF (%), vs PMOD", {10, 30, 50, 70, 90},
          [](SimHdCpsConfig &c, unsigned v) { c.tdf.initial = v; },
          workloads, config, seed);

    std::cout << "Paper picks: interval 2000, step 10%, initial 50% "
                 "(initial value barely matters).\n";
    return 0;
}
