/**
 * @file
 * Figure 14: bag payload transport — push (payload travels over the
 * network with the metadata) vs pull (payload stays with the creator
 * and is fetched with coherent loads on dequeue) — normalized to PMOD.
 * Paper shape: pull wins by ~1.5x because it moves bytes only on
 * demand and exploits payload locality; push merely matches PMOD.
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_hdcps.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    Table table({"workload", "push", "pull"});
    std::map<std::string, std::vector<double>> perfs;
    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult pmod = simulateMean("pmod", workload, config);
        requireVerified(pmod, combo.label() + "/pmod");

        table.row().cell(combo.label());
        for (BagTransport transport :
             {BagTransport::Push, BagTransport::Pull}) {
            SimHdCpsConfig hdcps = SimHdCps::configHw();
            hdcps.bags.transport = transport;
            SimHdCps design(hdcps, "transport");
            SimResult r = simulateMean(design, workload, config);
            requireVerified(r, combo.label() + "/transport");
            double perf = double(pmod.completionCycles) /
                          double(r.completionCycles);
            const char *name =
                transport == BagTransport::Push ? "push" : "pull";
            perfs[name].push_back(perf);
            table.cell(perf, 2);
        }
    }
    table.row()
        .cell("geomean")
        .cell(geomean(perfs["push"]), 2)
        .cell(geomean(perfs["pull"]), 2);
    table.printText(std::cout,
                    "Figure 14: bag transport methods, performance "
                    "normalized to PMOD (higher is better)");
    std::cout << "\nPaper shape: pull ~1.5x better than push; push "
                 "roughly at par with PMOD.\n";
    return 0;
}
