/**
 * @file
 * Figure 15: the minimum same-priority task count required to create a
 * bag (Algorithm 1 line 6), swept 1..5 and normalized to PMOD. A
 * threshold of 1 means "always bag". Paper shape: workload-dependent,
 * with 3 the best overall — below it, tiny bags waste the metadata
 * machinery; above it, dense inputs lose bagging opportunities.
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_hdcps.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    std::vector<std::string> header = {"min-bag-size"};
    for (const Combo &combo : sweepCombos())
        header.push_back(combo.label());
    header.push_back("geomean");
    Table table(header);

    std::map<std::string, Cycle> pmodCycles;
    for (const Combo &combo : sweepCombos()) {
        SimResult r =
            simulateMean("pmod", workloads.get(combo), config);
        requireVerified(r, combo.label() + "/pmod");
        pmodCycles[combo.label()] = r.completionCycles;
    }

    for (size_t threshold : {1u, 2u, 3u, 4u, 5u}) {
        table.row().cell(uint64_t(threshold));
        std::vector<double> perfs;
        for (const Combo &combo : sweepCombos()) {
            SimHdCpsConfig hdcps = SimHdCps::configHw();
            if (threshold == 1) {
                hdcps.bags.mode = BagMode::Always;
            } else {
                hdcps.bags.minBagSize = threshold;
            }
            SimHdCps design(hdcps, "bag-threshold");
            SimResult r =
                simulateMean(design, workloads.get(combo), config);
            requireVerified(r, combo.label() + "/threshold");
            double perf = double(pmodCycles[combo.label()]) /
                          double(r.completionCycles);
            perfs.push_back(perf);
            table.cell(perf, 2);
        }
        table.cell(geomean(perfs), 2);
    }
    table.printText(std::cout,
                    "Figure 15: bag-creation threshold sweep, "
                    "performance normalized to PMOD");
    std::cout << "\nPaper picks a threshold of 3 (best overall).\n";
    return 0;
}
