/**
 * @file
 * Figure 3: completion time and priority drift of the software CPS
 * designs — RELD, OBIM, Software Minnow, HD-CPS:SW — normalized to
 * PMOD, per (workload, input) combination, plus geomeans.
 *
 * Paper shapes this harness reproduces: RELD worst (aggressive blind
 * distribution), OBIM hurt where bags under-utilize (sparse USA),
 * PMOD/SW-Minnow in between, HD-CPS:SW best (~1.25x over PMOD and
 * ~1.12x over SW-Minnow in the paper).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<std::string> designs = {"reld", "obim", "swminnow",
                                              "hdcps-sw"};
    Table table({"workload", "reld", "obim", "swminnow", "hdcps-sw",
                 "drift:reld", "drift:obim", "drift:swminnow",
                 "drift:hdcps-sw", "drift:pmod"});

    std::map<std::string, std::vector<double>> speedups;
    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult pmod = simulateMean("pmod", workload, config);
        requireVerified(pmod, combo.label() + "/pmod");

        table.row().cell(combo.label());
        std::vector<double> drifts;
        for (const std::string &design : designs) {
            SimResult r = simulateMean(design, workload, config);
            requireVerified(r, combo.label() + "/" + design);
            // Normalized completion time (>1 = slower than PMOD).
            double normalized = double(r.completionCycles) /
                                double(pmod.completionCycles);
            table.cell(normalized, 2);
            speedups[design].push_back(1.0 / normalized);
            drifts.push_back(r.avgDrift);
        }
        double pmodDrift = pmod.avgDrift > 0 ? pmod.avgDrift : 1.0;
        for (double d : drifts)
            table.cell(d / pmodDrift, 2);
        table.cell(1.0, 2);
    }
    table.row().cell("geomean");
    for (const std::string &design : designs)
        table.cell(1.0 / geomean(speedups[design]), 2);
    for (int i = 0; i < 5; ++i)
        table.cell("-");

    table.printText(std::cout,
                    "Figure 3: completion time (and avg priority "
                    "drift) normalized to PMOD");
    std::cout << "\nPaper shape: RELD > 2x slower; OBIM loses on "
                 "sparse USA; HD-CPS:SW ~0.8 (1.25x faster than "
                 "PMOD).\n";
    return 0;
}
