/**
 * @file
 * Figure 4: performance scaling with core count — PMOD vs HD-CPS:SW
 * normalized to the optimized sequential implementation. The paper's
 * shape: HD-CPS:SW at or above PMOD everywhere, with the gap widening
 * at higher core counts where communication costs dominate.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const uint64_t seed = benchSeed();
    WorkloadCache workloads;
    const std::vector<unsigned> coreCounts = {1, 2, 4, 8, 16, 32, 64};
    const std::vector<Combo> combos = {
        {"sssp", "cage"}, {"sssp", "usa"}, {"bfs", "usa"},
        {"pagerank", "wg"}};

    for (const Combo &combo : combos) {
        Workload &workload = workloads.get(combo);
        SimConfig oneCore = benchConfig();
        oneCore.numCores = 1;
        oneCore.meshWidth = 1;
        Cycle seq = simulateSequentialCycles(workload, oneCore, seed);

        Table table({"cores", "pmod", "hdcps-sw"});
        for (unsigned cores : coreCounts) {
            SimConfig config = benchConfig();
            config.numCores = cores;
            unsigned width = 1;
            while (width * 2 <= cores / width && cores % (width * 2) == 0)
                width *= 2;
            config.meshWidth = cores / width;

            table.row().cell(uint64_t(cores));
            for (const char *design : {"pmod", "hdcps-sw"}) {
                SimResult r = simulateMean(design, workload, config);
                requireVerified(r, combo.label() + "/" + design);
                table.cell(double(seq) / double(r.completionCycles), 2);
            }
        }
        table.printText(std::cout,
                        "Figure 4 (" + combo.label() +
                            "): speedup over sequential vs cores");
        std::cout << "\n";
    }
    std::cout << "Paper shape: HD-CPS:SW >= PMOD, gap grows with "
                 "core count.\n";
    return 0;
}
