/**
 * @file
 * Figure 5: completion-time breakdowns and priority drift of the
 * HD-CPS:SW ablation stack — sRQ, sRQ+TDF, sRQ+TDF+AC, sRQ+TDF+SC —
 * normalized to RELD.
 *
 * Paper shapes: sRQ ~1.3x over RELD; +TDF ~2x; +AC helps only where
 * parents create many children (dense inputs) and *hurts* elsewhere
 * (extra bag creation in enqueue/dequeue); +SC (selective) recovers
 * that, reaching ~2.4x.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<std::string> variants = {
        "hdcps-srq", "hdcps-srq-tdf", "hdcps-srq-tdf-ac", "hdcps-sw"};

    Table table({"workload", "variant", "norm-time", "enq", "deq", "cmp",
                 "comm", "drift", "tasks"});
    std::map<std::string, std::vector<double>> speedups;

    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult reld = simulateMean("reld", workload, config);
        requireVerified(reld, combo.label() + "/reld");
        double reldDrift = reld.avgDrift > 0 ? reld.avgDrift : 1.0;

        for (const std::string &variant : variants) {
            SimResult r = simulateMean(variant, workload, config);
            requireVerified(r, combo.label() + "/" + variant);
            double normalized = double(r.completionCycles) /
                                double(reld.completionCycles);
            speedups[variant].push_back(1.0 / normalized);
            table.row()
                .cell(combo.label())
                .cell(variant)
                .cell(normalized, 2)
                .cell(percent(r.total.fraction(Component::Enqueue)))
                .cell(percent(r.total.fraction(Component::Dequeue)))
                .cell(percent(r.total.fraction(Component::Compute)))
                .cell(percent(r.total.fraction(Component::Comm)))
                .cell(r.avgDrift / reldDrift, 2)
                .cell(r.total.tasksProcessed);
        }
    }
    for (const std::string &variant : variants) {
        table.row().cell("geomean").cell(variant).cell(
            1.0 / geomean(speedups[variant]), 2);
        for (int i = 0; i < 6; ++i)
            table.cell("-");
    }
    table.printText(std::cout,
                    "Figure 5: HD-CPS:SW variants normalized to RELD "
                    "(completion, breakdown fractions, drift)");
    std::cout << "\nPaper shape: sRQ ~1.3x, +TDF ~2x, +AC ~1.9x "
                 "(worse than +TDF), +SC ~2.4x over RELD.\n";
    return 0;
}
