/**
 * @file
 * Figure 6: completion-time breakdowns of the hardware variants — hRQ
 * alone, then hRQ+hPQ (= HD-CPS:HW) — normalized to HD-CPS:SW.
 * Paper shape: hRQ ~10% improvement from faster task propagation;
 * hRQ+hPQ ~20% total, with the hPQ benefit largest where PQ occupancy
 * is small (sparse inputs fit entirely in the 48 entries).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    Table table({"workload", "variant", "norm-time", "enq", "deq", "cmp",
                 "comm"});
    std::map<std::string, std::vector<double>> speedups;

    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult sw = simulateMean("hdcps-sw", workload, config);
        requireVerified(sw, combo.label() + "/hdcps-sw");

        for (const char *variant : {"hdcps-hrq", "hdcps-hw"}) {
            SimResult r = simulateMean(variant, workload, config);
            requireVerified(r, combo.label() + "/" + variant);
            double normalized = double(r.completionCycles) /
                                double(sw.completionCycles);
            speedups[variant].push_back(1.0 / normalized);
            table.row()
                .cell(combo.label())
                .cell(variant)
                .cell(normalized, 2)
                .cell(percent(r.total.fraction(Component::Enqueue)))
                .cell(percent(r.total.fraction(Component::Dequeue)))
                .cell(percent(r.total.fraction(Component::Compute)))
                .cell(percent(r.total.fraction(Component::Comm)));
        }
    }
    for (const char *variant : {"hdcps-hrq", "hdcps-hw"}) {
        table.row().cell("geomean").cell(variant).cell(
            1.0 / geomean(speedups[variant]), 2);
        for (int i = 0; i < 4; ++i)
            table.cell("-");
    }
    table.printText(std::cout,
                    "Figure 6: HD-CPS:HW variants normalized to "
                    "HD-CPS:SW");
    std::cout << "\nPaper shape: hRQ ~0.9, hRQ+hPQ ~0.8 of "
                 "HD-CPS:SW's completion time.\n";
    return 0;
}
