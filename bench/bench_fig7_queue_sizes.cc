/**
 * @file
 * Figure 7: HD-CPS:HW with different hardware queue sizes. The x-axis
 * tuples are (hRQ size, hPQ size); the paper sweeps hRQ from 1024 down
 * to 24 at hPQ=32, then grows hPQ to 64 at hRQ=32, and picks (32, 48).
 * We report geomean performance normalized to the default (32, 48)
 * plus the occupancy ablation (high-water marks and hRQ spills) that
 * motivates the choice.
 */

#include <iostream>

#include "bench_common.h"
#include "simsched/sim_hdcps.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<std::pair<uint32_t, uint32_t>> sizes = {
        {1024, 32}, {256, 32}, {128, 32}, {64, 32}, {32, 32},
        {24, 32},   {32, 40},  {32, 48},  {32, 64},
    };

    // Baseline: the paper's chosen (32, 48).
    std::map<std::string, Cycle> baseline;
    for (const Combo &combo : sweepCombos()) {
        SimHdCpsConfig hdcps = SimHdCps::configHw();
        SimHdCps design(hdcps, "hw-32-48");
        SimResult r =
            simulateMean(design, workloads.get(combo), config);
        requireVerified(r, combo.label() + "/baseline");
        baseline[combo.label()] = r.completionCycles;
    }

    Table table({"hRQ", "hPQ", "geomean-norm", "max-hRQ-occ",
                 "max-hPQ-occ", "hRQ-spills"});
    for (auto [hrq, hpq] : sizes) {
        std::vector<double> normalized;
        size_t hrqHigh = 0;
        size_t hpqHigh = 0;
        uint64_t spills = 0;
        for (const Combo &combo : sweepCombos()) {
            SimHdCpsConfig hdcps = SimHdCps::configHw();
            hdcps.hrqEntries = hrq;
            hdcps.hpqEntries = hpq;
            SimHdCps design(hdcps, "hw-sweep");
            SimResult r =
                simulateMean(design, workloads.get(combo), config);
            requireVerified(r, combo.label() + "/sweep");
            normalized.push_back(double(r.completionCycles) /
                                 double(baseline[combo.label()]));
            hrqHigh = std::max(hrqHigh, design.hrqHighWater());
            hpqHigh = std::max(hpqHigh, design.hpqHighWater());
            spills += design.hrqSpills();
        }
        table.row()
            .cell(uint64_t(hrq))
            .cell(uint64_t(hpq))
            .cell(geomean(normalized), 3)
            .cell(uint64_t(hrqHigh))
            .cell(uint64_t(hpqHigh))
            .cell(spills);
    }
    table.printText(std::cout,
                    "Figure 7: HD-CPS:HW queue-size sweep (normalized "
                    "to hRQ=32, hPQ=48)");
    std::cout << "\nPaper shape: flat above 32-entry hRQ (utilization "
                 "~30), drop below 32; hPQ gains up to 48 then "
                 "saturates => (32, 48) chosen, 1.25KB/core.\n";
    return 0;
}
