/**
 * @file
 * Figure 8: speedup over the optimized sequential baseline for Swarm,
 * Minnow (hardware helpers), and HD-CPS:HW, per workload and geomean.
 * Paper shape: Swarm best overall (66x on 64 cores), HD-CPS:HW close
 * behind (61x, ~7% gap), Minnow trailing (48x) because divergent
 * priorities hurt its work efficiency on sparse inputs.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    const std::vector<std::string> designs = {"minnow-hw", "hdcps-hw",
                                              "swarm"};
    Table table(
        {"workload", "minnow-hw", "hdcps-hw", "swarm", "seq-cycles"});
    std::map<std::string, std::vector<double>> speedups;

    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        Cycle seq = simulateSequentialCycles(workload, config, seed);
        table.row().cell(combo.label());
        for (const std::string &design : designs) {
            SimResult r = simulateMean(design, workload, config);
            requireVerified(r, combo.label() + "/" + design);
            double speedup = double(seq) / double(r.completionCycles);
            speedups[design].push_back(speedup);
            table.cell(speedup, 1);
        }
        table.cell(uint64_t(seq));
    }
    table.row().cell("geomean");
    for (const std::string &design : designs)
        table.cell(geomean(speedups[design]), 1);
    table.cell("-");

    table.printText(std::cout,
                    "Figure 8: speedup over sequential baseline");
    std::cout << "\nPaper shape (64 cores): Minnow 48x < HD-CPS:HW 61x "
                 "< Swarm 66x (Swarm ~7% ahead of HD-CPS:HW; Minnow "
                 "~8% behind).\n";
    return 0;
}
