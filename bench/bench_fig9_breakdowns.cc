/**
 * @file
 * Figure 9: completion-time breakdowns of Minnow and HD-CPS:HW
 * normalized to Swarm. Paper shape: Swarm's compute component is the
 * smallest (best work efficiency, rollback included); Minnow shows
 * inflated compute+comm from degraded work efficiency on divergent
 * inputs; HD-CPS:HW sits close to Swarm.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    const SimConfig config = benchConfig();
    const uint64_t seed = benchSeed();
    WorkloadCache workloads;

    Table table({"workload", "design", "norm-time", "enq", "deq", "cmp",
                 "comm", "tasks", "aborts"});

    for (const Combo &combo : fullCombos()) {
        Workload &workload = workloads.get(combo);
        SimResult swarm = simulateMean("swarm", workload, config);
        requireVerified(swarm, combo.label() + "/swarm");

        auto emit = [&](const char *design, const SimResult &r) {
            table.row()
                .cell(combo.label())
                .cell(design)
                .cell(double(r.completionCycles) /
                          double(swarm.completionCycles),
                      2)
                .cell(percent(r.total.fraction(Component::Enqueue)))
                .cell(percent(r.total.fraction(Component::Dequeue)))
                .cell(percent(r.total.fraction(Component::Compute)))
                .cell(percent(r.total.fraction(Component::Comm)))
                .cell(r.total.tasksProcessed)
                .cell(r.total.aborts);
        };
        emit("swarm", swarm);
        SimResult minnow = simulateMean("minnow-hw", workload, config);
        requireVerified(minnow, combo.label() + "/minnow-hw");
        emit("minnow-hw", minnow);
        SimResult hdcps = simulateMean("hdcps-hw", workload, config);
        requireVerified(hdcps, combo.label() + "/hdcps-hw");
        emit("hdcps-hw", hdcps);
    }
    table.printText(std::cout,
                    "Figure 9: breakdowns normalized to Swarm");
    std::cout << "\nPaper shape: Swarm lowest compute (rollback "
                 "included); HD-CPS:HW within ~7%; Minnow ~8% behind "
                 "HD-CPS:HW with inflated compute/comm.\n";
    return 0;
}
