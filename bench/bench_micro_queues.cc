/**
 * @file
 * Google-benchmark microbenchmarks for the queue substrate: the
 * operations whose latency the paper's hardware queues exist to hide.
 * These quantify, on the host, the software PQ rebalance cost growth
 * with occupancy and the cost gap between the locked PQ (RELD's
 * enqueue path) and the receive queue (HD-CPS's enqueue path) — the
 * software-side motivation for Figure 5's sRQ gains.
 */

#include <benchmark/benchmark.h>

#include "core/bag_policy.h"
#include "core/recv_queue.h"
#include "cps/task.h"
#include "pq/dary_heap.h"
#include "pq/locked_pq.h"
#include "sim/hwqueue.h"
#include "support/rng.h"

namespace {

using namespace hdcps;

void
BM_DAryHeapPushPop(benchmark::State &state)
{
    const size_t occupancy = static_cast<size_t>(state.range(0));
    DAryHeap<Task, TaskOrder> heap;
    Rng rng(1);
    for (size_t i = 0; i < occupancy; ++i)
        heap.push(Task{rng.below(1 << 20), uint32_t(i), 0});
    for (auto _ : state) {
        heap.push(Task{rng.below(1 << 20), 0, 0});
        benchmark::DoNotOptimize(heap.pop());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_DAryHeapPushPop)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_LockedPqRemoteEnqueue(benchmark::State &state)
{
    // RELD's push path: lock + rebalance at the destination.
    LockedTaskPq pq;
    Rng rng(2);
    for (int i = 0; i < 1024; ++i)
        pq.push(Task{rng.below(1 << 20), uint32_t(i), 0});
    for (auto _ : state) {
        pq.push(Task{rng.below(1 << 20), 0, 0});
        Task t;
        pq.tryPop(t);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_LockedPqRemoteEnqueue);

void
BM_ReceiveQueueTransfer(benchmark::State &state)
{
    // HD-CPS's push path: one slot claim + one flag store.
    ReceiveQueue<Task> rq(1024);
    Rng rng(3);
    for (auto _ : state) {
        rq.tryPush(Task{rng.below(1 << 20), 0, 0});
        Task t;
        rq.tryPop(t);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_ReceiveQueueTransfer);

void
BM_HwPqModelPushEvict(benchmark::State &state)
{
    HwPriorityQueue hpq(48);
    Rng rng(4);
    for (auto _ : state) {
        auto evicted = hpq.pushEvict(Task{rng.below(1 << 20), 0, 0});
        benchmark::DoNotOptimize(evicted);
        if (!hpq.empty() && rng.chance(0.5))
            benchmark::DoNotOptimize(hpq.popMin());
    }
}
BENCHMARK(BM_HwPqModelPushEvict);

void
BM_BagPolicyPlan(benchmark::State &state)
{
    // Algorithm 1 on a typical child batch.
    Rng rng(5);
    std::vector<Task> batch;
    for (int i = 0; i < 24; ++i)
        batch.push_back(Task{rng.below(4), uint32_t(i), 0});
    BagPolicy policy;
    for (auto _ : state) {
        auto copy = batch;
        benchmark::DoNotOptimize(policy.plan(std::move(copy)));
    }
}
BENCHMARK(BM_BagPolicyPlan);

} // namespace

BENCHMARK_MAIN();
