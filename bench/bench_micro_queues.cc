/**
 * @file
 * Google-benchmark microbenchmarks for the queue substrate plus the
 * scheduler-level throughput scenarios the perf gate tracks.
 *
 * The micro section quantifies, on the host, the software PQ rebalance
 * cost growth with occupancy and the cost gap between the locked PQ
 * (RELD's enqueue path) and the receive queue (HD-CPS's enqueue path)
 * — the software-side motivation for Figure 5's sRQ gains. The
 * scenario section drives a whole HdCpsScheduler (and the threaded
 * runtime) through remote-heavy traffic so batched sRQ transfer,
 * pooled bags, and distributed termination show up as one number.
 *
 * The local_backend scenario quantifies the relaxed-vs-exact queue
 * tradeoff from the MultiQueue modernization: MultiQueue churn at
 * stickiness 1 and 8, and HD-CPS's private-PQ seam driven over both
 * backends (DAryHeap vs relaxed MQ), each row carrying quiescent
 * rank-error counters next to its throughput.
 *
 * Results are mirrored into a machine-readable JSON file (default
 * BENCH_micro.json, override with HDCPS_BENCH_JSON_OUT) that
 * tools/bench_compare validates and diffs across revisions.
 *
 * HDCPS_BENCH_HAVE_BATCH_API gates benchmarks of APIs added with the
 * batching overhaul, so this same file also compiles against the
 * pre-overhaul tree to produce baseline numbers.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/bag_policy.h"
#include "core/hdcps.h"
#include "core/recv_queue.h"
#include "cps/multiqueue.h"
#include "cps/task.h"
#include "pq/dary_heap.h"
#include "pq/locked_pq.h"
#include "runtime/executor.h"
#include "sim/hwqueue.h"
#include "support/rng.h"

#include "bench_common.h"

#ifdef HDCPS_BENCH_HAVE_BATCH_API
#include "core/bag_pool.h"
#endif

namespace {

using namespace hdcps;

void
BM_DAryHeapPushPop(benchmark::State &state)
{
    const size_t occupancy = static_cast<size_t>(state.range(0));
    DAryHeap<Task, TaskOrder> heap;
    Rng rng(1);
    for (size_t i = 0; i < occupancy; ++i)
        heap.push(Task{rng.below(1 << 20), uint32_t(i), 0});
    for (auto _ : state) {
        heap.push(Task{rng.below(1 << 20), 0, 0});
        benchmark::DoNotOptimize(heap.pop());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_DAryHeapPushPop)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_LockedPqRemoteEnqueue(benchmark::State &state)
{
    // RELD's push path: lock + rebalance at the destination.
    LockedTaskPq pq;
    Rng rng(2);
    for (int i = 0; i < 1024; ++i)
        pq.push(Task{rng.below(1 << 20), uint32_t(i), 0});
    for (auto _ : state) {
        pq.push(Task{rng.below(1 << 20), 0, 0});
        Task t;
        pq.tryPop(t);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_LockedPqRemoteEnqueue);

void
BM_ReceiveQueueTransfer(benchmark::State &state)
{
    // HD-CPS's push path: one slot claim + one flag store.
    ReceiveQueue<Task> rq(1024);
    Rng rng(3);
    for (auto _ : state) {
        rq.tryPush(Task{rng.below(1 << 20), 0, 0});
        Task t;
        rq.tryPop(t);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_ReceiveQueueTransfer);

void
BM_HwPqModelPushEvict(benchmark::State &state)
{
    HwPriorityQueue hpq(48);
    Rng rng(4);
    for (auto _ : state) {
        auto evicted = hpq.pushEvict(Task{rng.below(1 << 20), 0, 0});
        benchmark::DoNotOptimize(evicted);
        if (!hpq.empty() && rng.chance(0.5))
            benchmark::DoNotOptimize(hpq.popMin());
    }
}
BENCHMARK(BM_HwPqModelPushEvict);

void
BM_BagPolicyPlan(benchmark::State &state)
{
    // Algorithm 1 on a typical child batch.
    Rng rng(5);
    std::vector<Task> batch;
    for (int i = 0; i < 24; ++i)
        batch.push_back(Task{rng.below(4), uint32_t(i), 0});
    BagPolicy policy;
    for (auto _ : state) {
        auto copy = batch;
        benchmark::DoNotOptimize(policy.plan(std::move(copy)));
    }
}
BENCHMARK(BM_BagPolicyPlan);

#ifdef HDCPS_BENCH_HAVE_BATCH_API

void
BM_ReceiveQueueBatchTransfer(benchmark::State &state)
{
    // Batched sRQ transfer: one multi-slot claim moves the whole run,
    // versus one CAS per task in BM_ReceiveQueueTransfer.
    const size_t batchSize = static_cast<size_t>(state.range(0));
    ReceiveQueue<Task> rq(1024);
    Rng rng(6);
    std::vector<Task> batch(batchSize);
    for (auto _ : state) {
        for (size_t i = 0; i < batchSize; ++i)
            batch[i] = Task{rng.below(1 << 20), uint32_t(i), 0};
        size_t pushed = 0;
        while (pushed < batchSize)
            pushed += rq.tryPushN(batch.data() + pushed,
                                  batchSize - pushed);
        Task t;
        for (size_t i = 0; i < batchSize; ++i) {
            rq.tryPop(t);
            benchmark::DoNotOptimize(t);
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batchSize) * 2);
}
BENCHMARK(BM_ReceiveQueueBatchTransfer)->Arg(8)->Arg(32)->Arg(128);

void
BM_BagPoolAcquireRelease(benchmark::State &state)
{
    // The pooled-envelope cycle that replaces new/delete per bag.
    BagPool pool(2);
    Rng rng(7);
    std::vector<Task> payload;
    for (int i = 0; i < 8; ++i)
        payload.push_back(Task{rng.below(16), uint32_t(i), 0});
    for (auto _ : state) {
        Bag *bag = pool.acquire(0);
        bag->priority = payload[0].priority;
        bag->tasks.assign(payload.begin(), payload.end());
        benchmark::DoNotOptimize(bag);
        pool.release(0, bag);
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BagPoolAcquireRelease);

#endif // HDCPS_BENCH_HAVE_BATCH_API

/**
 * The perf gate's headline scenario: remote-heavy traffic (95% TDF, 8
 * workers, per-task envelopes) through a full HdCpsScheduler, driven
 * round-robin by one thread so the number is deterministic and
 * host-core-count independent. Every iteration pushes one 256-task
 * batch as worker k — ~34 tasks per remote destination, enough that
 * send combining engages — and pops all 256 back out (rotating over
 * workers until found), so throughput prices the whole transfer
 * pipeline: envelope routing, sRQ claims, drain, bulk heap build.
 * Bagged transfer has its own end-to-end scenario (pipeline_spawn);
 * this one keeps BagMode::None so the number isolates the per-task
 * path that batching overhauled.
 */
void
BM_HdCpsRemoteHeavy(benchmark::State &state)
{
    constexpr unsigned kWorkers = 8;
    constexpr size_t kBatch = 256;
    HdCpsConfig config;
    config.useTdf = false;
    config.fixedTdf = 95;
    config.bags.mode = BagMode::None;
    HdCpsScheduler sched(kWorkers, config);
    Rng rng(8);
    std::vector<Task> batch(kBatch);
    uint32_t node = 0;
    unsigned tid = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < kBatch; ++i)
            batch[i] = Task{rng.below(64), node++, 0};
        sched.pushBatch(tid, batch.data(), kBatch);
        size_t popped = 0;
        unsigned p = tid;
        while (popped < kBatch) {
            Task t;
            if (sched.tryPop(p, t)) {
                ++popped;
                benchmark::DoNotOptimize(t);
            } else {
                p = (p + 1) % kWorkers;
            }
        }
        tid = (tid + 1) % kWorkers;
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kBatch));
}
BENCHMARK(BM_HdCpsRemoteHeavy);

/**
 * Shared driver for the scenario matrix (local_heavy / bursty /
 * skewed_destination): the same deterministic single-thread rotation
 * harness as BM_HdCpsRemoteHeavy, parameterized by traffic shape and
 * topology. Each scenario runs twice — flat, and under a synthetic 2x4
 * topology with hierarchical routing — so the JSON carries both sides
 * of the locality tradeoff and bench_compare can gate each scenario
 * independently. A metrics registry in sampled always-on mode
 * (sampleShift) stays attached for the whole measurement: the gate
 * numbers price the scheduler *as observed in production*, and the
 * sampling mode is what makes that affordable.
 */
struct ScenarioShape
{
    unsigned fixedTdf;   ///< distribution %, steady phases
    size_t batch;        ///< tasks per pushBatch
    bool rotateProducer; ///< false = worker 0 produces everything
    unsigned burstEvery; ///< 0 = steady; else every k-th batch is 4x
    /** Numa variants only: crossNodePct policy (kCrossNodeFollowTdf =
     *  track the drift signal, the production default). */
    unsigned crossNodePct = kCrossNodeFollowTdf;
};

void
runHdCpsScenario(benchmark::State &state, const ScenarioShape &shape,
                 bool numa)
{
    constexpr unsigned kWorkers = 8;
    HdCpsConfig config;
    config.useTdf = false;
    config.fixedTdf = shape.fixedTdf;
    config.bags.mode = BagMode::None;
    if (numa) {
        config.topology = Topology::synthetic(2, 4);
        config.crossNodePct = shape.crossNodePct;
    }
    HdCpsScheduler sched(kWorkers, config);
    MetricsRegistry::Config metricsConfig;
    metricsConfig.sampleShift = 6; // keep 1 in 64 series samples
    MetricsRegistry metrics(kWorkers, metricsConfig);
    sched.attachMetrics(&metrics);
    Rng rng(8);
    const size_t maxBatch = shape.batch * 4;
    std::vector<Task> batch(maxBatch);
    uint32_t node = 0;
    unsigned tid = 0;
    uint64_t round = 0;
    uint64_t tasks = 0;
    // Drain scan order: the flat system consumes by plain rotation
    // from the producer; the topology-aware system consumes its own
    // node's queues before crossing the boundary (the executor's
    // per-worker pop pattern under topology-aware placement — remote
    // tasks land on same-node peers and are drained there). Each
    // variant is priced with the consumption policy its routing
    // policy implies.
    std::array<unsigned, 8> scan;
    for (auto _ : state) {
        const size_t count =
            (shape.burstEvery != 0 && ++round % shape.burstEvery == 0)
                ? maxBatch
                : shape.batch;
        for (size_t i = 0; i < count; ++i)
            batch[i] = Task{rng.below(64), node++, 0};
        sched.pushBatch(tid, batch.data(), count);
        if (numa) {
            const unsigned perNode = kWorkers / 2;
            const unsigned base = (tid / perNode) * perNode;
            for (unsigned k = 0; k < perNode; ++k)
                scan[k] = base + (tid - base + k) % perNode;
            const unsigned far = (base + perNode) % kWorkers;
            for (unsigned k = 0; k < perNode; ++k)
                scan[perNode + k] = far + k;
        } else {
            for (unsigned k = 0; k < kWorkers; ++k)
                scan[k] = (tid + k) % kWorkers;
        }
        size_t popped = 0;
        unsigned si = 0;
        while (popped < count) {
            Task t;
            if (sched.tryPop(scan[si], t)) {
                ++popped;
                benchmark::DoNotOptimize(t);
            } else {
                si = (si + 1) % kWorkers;
            }
        }
        if (shape.rotateProducer)
            tid = (tid + 1) % kWorkers;
        tasks += count;
    }
    state.SetItemsProcessed(int64_t(tasks));
    if (numa) {
        const double cross = double(sched.crossNodeEnqueues());
        const double same = double(sched.sameNodeEnqueues());
        state.counters["cross_node_enqueues"] = cross;
        state.counters["same_node_enqueues"] = same;
        if (cross + same > 0)
            state.counters["cross_node_pct"] =
                100.0 * cross / (cross + same);
    }
}

/** local_heavy: 80% of children stay on the producing worker and
 *  batches are small, so the number prices the private-PQ path with a
 *  trickle of remote traffic — the regime where hierarchical routing
 *  concentrates that trickle on same-node peers: fewer dirty combining
 *  buffers per flush and a drain that never leaves the node. The
 *  per-batch costs those savings amortize are a fixed overhead, so the
 *  small batch is what makes the locality signal visible at all. */
void
BM_HdCpsLocalHeavyFlat(benchmark::State &state)
{
    runHdCpsScenario(state, {20, 32, true, 0}, false);
}
BENCHMARK(BM_HdCpsLocalHeavyFlat);

void
BM_HdCpsLocalHeavyNuma(benchmark::State &state)
{
    // crossNodePct 0: at low drift the hierarchy keeps every remote
    // push on-node, concentrating the trickle on 3 same-node peers
    // instead of 7 — fewer dirty combining buffers per batch, and
    // each flush moves more tasks per tryPushN claim.
    runHdCpsScenario(state, {20, 32, true, 0, 0}, true);
}
BENCHMARK(BM_HdCpsLocalHeavyNuma);

/** bursty: every 4th batch is 4x the steady size at 50% distribution,
 *  alternating drain pressure between the combining buffers and the
 *  private PQs. */
void
BM_HdCpsBurstyFlat(benchmark::State &state)
{
    runHdCpsScenario(state, {50, 64, true, 4}, false);
}
BENCHMARK(BM_HdCpsBurstyFlat);

void
BM_HdCpsBurstyNuma(benchmark::State &state)
{
    runHdCpsScenario(state, {50, 64, true, 4}, true);
}
BENCHMARK(BM_HdCpsBurstyNuma);

/** skewed_destination: one hot producer (worker 0) fans out at 95%
 *  distribution while pops rotate — the all-roads-lead-away-from-one-
 *  core shape that stresses per-destination staging. */
void
BM_HdCpsSkewedDestinationFlat(benchmark::State &state)
{
    runHdCpsScenario(state, {95, 256, false, 0}, false);
}
BENCHMARK(BM_HdCpsSkewedDestinationFlat);

void
BM_HdCpsSkewedDestinationNuma(benchmark::State &state)
{
    runHdCpsScenario(state, {95, 256, false, 0}, true);
}
BENCHMARK(BM_HdCpsSkewedDestinationNuma);

/**
 * End-to-end runtime scenario: run() executes a deterministic spawn
 * tree (4 same-priority children per task, depth 4) over 8 threads, so
 * the measurement includes the termination-detection cost the
 * distributed counters removed from the per-task path.
 */
void
BM_HdCpsPipelineSpawn(benchmark::State &state)
{
    constexpr unsigned kThreads = 8;
    uint64_t tasks = 0;
    for (auto _ : state) {
        HdCpsConfig config;
        config.useTdf = false;
        config.fixedTdf = 95;
        config.bags.mode = BagMode::Selective;
        config.seed = 9;
        HdCpsScheduler sched(kThreads, config);
        std::vector<Task> initial;
        for (uint32_t i = 0; i < 32; ++i)
            initial.push_back(Task{i % 4, i, 4});
        RunOptions options;
        options.numThreads = kThreads;
        options.recordBreakdown = false;
        RunResult result = hdcps::run(
            sched, initial,
            [](unsigned, const Task &task, std::vector<Task> &children) {
                if (task.data == 0)
                    return;
                // Same priority for all four siblings: bag-sized group.
                for (uint32_t i = 0; i < 4; ++i) {
                    children.push_back(Task{task.priority + 1,
                                            task.node * 4 + i,
                                            task.data - 1});
                }
            },
            options);
        if (result.failed)
            state.SkipWithError(result.error.c_str());
        tasks += result.total.tasksProcessed;
        benchmark::DoNotOptimize(result.wallNs);
    }
    state.SetItemsProcessed(int64_t(tasks));
}
BENCHMARK(BM_HdCpsPipelineSpawn);

/** Quiescent rank-error bounds of a (possibly relaxed) scheduler. */
struct RankErrorStats
{
    double max = 0.0;
    double mean = 0.0;
};

/**
 * Push a random permutation of `n` distinct 64-bit priorities (spaced
 * by 2^33 so truncation bugs would show as ~2^33-rank errors, the
 * conformance suite's methodology) through one driver thread, then
 * drain to empty rotating over workers. The rank error of a pop is
 * the number of still-outstanding tasks with strictly smaller
 * priority — 0 everywhere for an exact queue, O(workers x queues) in
 * expectation for a MultiQueue. Runs outside the timed region.
 */
RankErrorStats
quiescentRankError(Scheduler &sched, unsigned numWorkers, size_t n,
                   uint64_t seed)
{
    Rng rng(seed);
    std::vector<Priority> prios(n);
    for (size_t i = 0; i < n; ++i)
        prios[i] = Priority(i) << 33;
    for (size_t i = n; i > 1; --i)
        std::swap(prios[i - 1], prios[rng.below(i)]);
    std::multiset<Priority> outstanding;
    for (size_t i = 0; i < n; ++i) {
        sched.push(unsigned(i) % numWorkers,
                   Task{prios[i], uint32_t(i), 0});
        outstanding.insert(prios[i]);
    }
    RankErrorStats stats;
    size_t pops = 0;
    double sum = 0.0;
    unsigned tid = 0;
    while (!outstanding.empty()) {
        Task t;
        if (!sched.tryPop(tid, t)) {
            tid = (tid + 1) % numWorkers;
            continue;
        }
        double rank = double(std::distance(
            outstanding.begin(), outstanding.lower_bound(t.priority)));
        stats.max = std::max(stats.max, rank);
        sum += rank;
        ++pops;
        outstanding.erase(outstanding.find(t.priority));
    }
    stats.mean = pops ? sum / double(pops) : 0.0;
    return stats;
}

/**
 * MultiQueue churn at a fixed stickiness (the benchmark argument):
 * steady-state occupancy ~1k, one driver thread rotating over 4
 * workers, 64 pushes + 64 pops per iteration. Stickiness 1 redraws
 * the sticky queues every operation (SPAA'15 behavior); stickiness 8
 * amortizes the redraw and the lock traffic over 8 operations
 * (Engineering-MultiQueues behavior). The quiescent rank-error bounds
 * for the same configuration are reported as counters so the JSON
 * carries the quality side of the throughput/rank-error tradeoff.
 */
void
BM_MultiQueueChurn(benchmark::State &state)
{
    const unsigned stickiness = unsigned(state.range(0));
    constexpr unsigned kWorkers = 4;
    constexpr size_t kBatch = 64;
    MultiQueueConfig config;
    config.stickiness = stickiness;
    config.seed = 10;
    MultiQueueScheduler sched(kWorkers, config);
    Rng rng(10);
    for (uint32_t i = 0; i < 1024; ++i)
        sched.push(i % kWorkers, Task{rng.below(1 << 20), i, 0});
    unsigned tid = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < kBatch; ++i)
            sched.push(tid, Task{rng.below(1 << 20), uint32_t(i), 0});
        size_t popped = 0;
        unsigned p = tid;
        while (popped < kBatch) {
            Task t;
            if (sched.tryPop(p, t)) {
                ++popped;
                benchmark::DoNotOptimize(t);
            } else {
                p = (p + 1) % kWorkers;
            }
        }
        tid = (tid + 1) % kWorkers;
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kBatch) * 2);
    MultiQueueScheduler probe(kWorkers, config);
    RankErrorStats stats = quiescentRankError(probe, kWorkers, 512, 11);
    state.counters["rank_error_max"] = stats.max;
    state.counters["rank_error_mean"] = stats.mean;
}
BENCHMARK(BM_MultiQueueChurn)->Arg(1)->Arg(8);

/**
 * Local-backend A/B: the same single-worker HD-CPS scheduler over its
 * two private-PQ backends — the exact DAryHeap (HdCpsScheduler) and
 * the relaxed owner-private MultiQueue (HdCpsMqScheduler). One worker
 * keeps every task on the local path, so the throughput difference is
 * purely the backend's push/pop cost, and the rank-error counters
 * (measured in an untimed quiescent drain) are purely the backend's
 * ordering relaxation: 0 for DAry, bounded by the conformance suite's
 * hdcps-mq row for the MQ.
 */
template <typename SchedT>
void
BM_LocalBackendPushPop(benchmark::State &state)
{
    constexpr size_t kBatch = 256;
    HdCpsConfig config = SchedT::configSw();
    config.useTdf = false;
    config.fixedTdf = 0;
    config.bags.mode = BagMode::None;
    config.seed = 12;
    SchedT sched(1, config);
    Rng rng(12);
    std::vector<Task> batch(kBatch);
    uint32_t node = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < kBatch; ++i)
            batch[i] = Task{rng.below(1 << 20), node++, 0};
        sched.pushBatch(0, batch.data(), kBatch);
        for (size_t i = 0; i < kBatch; ++i) {
            Task t;
            if (!sched.tryPop(0, t)) {
                state.SkipWithError("local backend lost a task");
                return;
            }
            benchmark::DoNotOptimize(t);
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kBatch) * 2);
    SchedT probe(1, config);
    RankErrorStats stats = quiescentRankError(probe, 1, 512, 13);
    state.counters["rank_error_max"] = stats.max;
    state.counters["rank_error_mean"] = stats.mean;
}
BENCHMARK_TEMPLATE(BM_LocalBackendPushPop, HdCpsScheduler);
BENCHMARK_TEMPLATE(BM_LocalBackendPushPop, HdCpsMqScheduler);

/** Coarse scenario tag for the perf-gate JSON. */
std::string
scenarioOf(const std::string &name)
{
    if (name.find("BM_HdCpsRemoteHeavy") == 0)
        return "remote_heavy";
    if (name.find("BM_HdCpsLocalHeavy") == 0)
        return "local_heavy";
    if (name.find("BM_HdCpsBursty") == 0)
        return "bursty";
    if (name.find("BM_HdCpsSkewedDestination") == 0)
        return "skewed_destination";
    if (name.find("BM_HdCpsPipelineSpawn") == 0)
        return "pipeline_spawn";
    if (name.find("BM_MultiQueueChurn") == 0 ||
        name.find("BM_LocalBackendPushPop") == 0)
        return "local_backend";
    return "micro";
}

/** Console reporter that also captures rows for the perf-gate JSON. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &run : report) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            hdcps::bench::PerfGateResult r;
            r.name = run.benchmark_name();
            r.scenario = scenarioOf(r.name);
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                r.itemsPerSecond = double(it->second);
            for (const auto &[key, value] : run.counters) {
                if (key == "items_per_second" ||
                    key == "bytes_per_second")
                    continue;
                r.counters[key] = double(value);
            }
            r.iterations = int64_t(run.iterations);
            r.realTimeNs =
                run.iterations
                    ? run.real_accumulated_time * 1e9 /
                          double(run.iterations)
                    : run.real_accumulated_time * 1e9;
            results.push_back(std::move(r));
        }
        ConsoleReporter::ReportRuns(report);
    }

    std::vector<hdcps::bench::PerfGateResult> results;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const char *out = std::getenv("HDCPS_BENCH_JSON_OUT");
    std::string path = out && *out ? out : "BENCH_micro.json";
    if (!hdcps::bench::writePerfGateJson(path, reporter.results))
        return 1;
    std::cout << "perf gate JSON: " << path << " ("
              << reporter.results.size() << " benchmarks, rev "
              << hdcps::bench::gitRev() << ")\n";
    return 0;
}
