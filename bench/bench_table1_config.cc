/**
 * @file
 * Table I: the simulated multicore's parameters, printed from the live
 * SimConfig so the table can never drift from the implementation.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    SimConfig config; // defaults == Table I
    config.check();
    std::cout << "== Table I: Multicore simulator parameters ==\n";
    config.printTable(std::cout);
    std::cout << "\nPer-core hardware queue overhead: "
              << (config.hrqEntries + config.hpqEntries) *
                     (config.taskBits / 8)
              << " bytes ("
              << double((config.hrqEntries + config.hpqEntries) *
                        (config.taskBits / 8)) /
                     1024.0
              << " KB, paper: 1.25KB)\n";
    return 0;
}
