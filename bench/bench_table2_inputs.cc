/**
 * @file
 * Table II: statistics of the evaluated inputs. The paper lists
 * CAGE14, rUSA, Web-Google and LiveJournal; this repo generates
 * synthetic stand-ins with matched degree shape (see DESIGN.md), so
 * the table reports the generated graphs' numbers next to the paper's.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace hdcps;
    using namespace hdcps::bench;

    struct PaperRow
    {
        const char *name;
        const char *standsFor;
        const char *paperStats;
    };
    const PaperRow paperRows[] = {
        {"cage", "CAGE14", "1.505M nodes, 234M edges, avg 34, max 80"},
        {"usa", "rUSA", "24M nodes, 58M edges, avg 1.2, max 9"},
        {"wg", "Web-Google", "875k nodes, 5M edges, avg 11, max 6.4k"},
        {"lj", "LiveJournal", "4.8M nodes, 69M edges, avg 28, max 20k"},
    };

    InputCache inputs;
    Table table({"input", "stands-for", "nodes", "edges", "avg-deg",
                 "max-deg", "paper (full-size original)"});
    for (const PaperRow &row : paperRows) {
        GraphStats stats = computeStats(inputs.get(row.name));
        table.row()
            .cell(row.name)
            .cell(row.standsFor)
            .cell(uint64_t(stats.nodes))
            .cell(stats.edges)
            .cell(stats.avgDegree, 1)
            .cell(uint64_t(stats.maxDegree))
            .cell(row.paperStats);
    }
    table.printText(std::cout,
                    "Table II: input graphs (scale " +
                        std::to_string(benchScale()) + ")");
    return 0;
}
