/**
 * @file
 * Hardware-assist tour: run one workload on the simulated 64-core
 * Table-I machine under HD-CPS:SW, HD-CPS:HW, and Swarm, and print the
 * completion-time breakdowns the paper's evaluation is built on.
 *
 * This is the entry point for anyone extending the hardware side:
 * SimConfig is Table I, makeDesign() names every scheduler, and
 * SimResult carries the breakdown/drift/NoC/cache statistics.
 */

#include <iostream>

#include "algos/workload.h"
#include "graph/generators.h"
#include "simsched/runner.h"
#include "stats/table.h"

int
main()
{
    using namespace hdcps;

    SimConfig config; // Table I defaults: 64 cores, 8x8 mesh
    std::cout << "simulated machine:\n";
    config.printTable(std::cout);
    std::cout << "\n";

    Graph graph = makePaperInput("usa", /*scale=*/1, /*seed=*/1);
    auto workload = makeWorkload("sssp", graph, 0);
    Cycle sequential = simulateSequentialCycles(*workload, config, 1);
    std::cout << "workload: sssp on the road input ("
              << graph.numNodes() << " nodes); sequential baseline "
              << sequential << " cycles\n\n";

    Table table({"design", "cycles", "speedup", "enq", "deq", "cmp",
                 "comm", "tasks", "drift", "noc-msgs"});
    for (const char *design : {"hdcps-sw", "hdcps-hrq", "hdcps-hw",
                               "minnow-hw", "swarm"}) {
        SimResult r = simulate(design, *workload, config, 1);
        if (!r.verified) {
            std::cerr << design << " FAILED: " << r.verifyError << "\n";
            return 1;
        }
        auto pct = [&](Component c) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.0f%%",
                          r.total.fraction(c) * 100.0);
            return std::string(buf);
        };
        table.row()
            .cell(design)
            .cell(r.completionCycles)
            .cell(double(sequential) / double(r.completionCycles), 1)
            .cell(pct(Component::Enqueue))
            .cell(pct(Component::Dequeue))
            .cell(pct(Component::Compute))
            .cell(pct(Component::Comm))
            .cell(r.total.tasksProcessed)
            .cell(r.avgDrift, 1)
            .cell(r.noc.messages);
    }
    table.printText(std::cout, "64-core simulation, all verified");
    std::cout << "\nhdcps-hw adds the 32-entry hRQ and 48-entry hPQ "
                 "(1.25KB/core); swarm needs tens of KB per core for "
                 "its speculation state.\n";
    return 0;
}
