/**
 * @file
 * Quickstart: the smallest useful HD-CPS program.
 *
 * Builds a weighted graph, runs single-source shortest paths through
 * the HD-CPS:SW scheduler on real threads, verifies the result against
 * Dijkstra, and prints the run statistics. This is the
 * ten-lines-to-first-result tour of the public API:
 *
 *   Graph         -> graph/ (builders, generators, loaders)
 *   Workload      -> algos/ (sssp, bfs, astar, mst, color, pagerank)
 *   HdCpsScheduler-> core/  (the paper's scheduler)
 *   run()         -> runtime/ (threaded executor)
 */

#include <algorithm>
#include <iostream>
#include <thread>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "graph/generators.h"
#include "runtime/executor.h"

int
main()
{
    using namespace hdcps;

    // 1. An input graph: a 64x64 road-network-like grid (deterministic
    //    for the seed; swap in loadDimacsFile("USA-road-d.USA.gr") for
    //    the real thing).
    Graph graph = makeRoadGrid(64, 64, {.seed = 42});
    std::cout << "graph: " << graph.numNodes() << " nodes, "
              << graph.numEdges() << " edges\n";

    // 2. A workload: SSSP from node 0. Tasks carry (distance, node);
    //    lower distance = higher priority, as in the paper.
    auto workload = makeWorkload("sssp", graph, /*source=*/0);

    // 3. The HD-CPS:SW scheduler: receive queues + adaptive TDF +
    //    selective bags (the paper's shipping configuration). Use the
    //    host's parallelism, capped for the demo.
    const unsigned threads =
        std::clamp(std::thread::hardware_concurrency(), 2u, 4u);
    HdCpsScheduler scheduler(threads, HdCpsScheduler::configSw());

    // 4. Run to completion on real threads.
    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(scheduler, workload->initialTasks(),
                           workloadProcessFn(*workload), options);

    // 5. Verify against the sequential reference and report.
    std::string why;
    if (!workload->verify(&why)) {
        std::cerr << "verification FAILED: " << why << "\n";
        return 1;
    }
    std::cout << "verified OK against Dijkstra\n"
              << "tasks processed: " << result.total.tasksProcessed
              << " (sequential needs " << workload->sequentialTasks()
              << ")\n"
              << "wall time: " << result.wallNs / 1e6 << " ms on "
              << threads << " threads\n"
              << "avg priority drift (Eq. 1): " << result.avgDrift
              << "\n"
              << "final TDF chosen by the heuristic: "
              << scheduler.currentTdf() << "%\n"
              << "bags created: " << scheduler.bagsCreated() << " ("
              << scheduler.tasksInBags() << " tasks inside)\n";
    return 0;
}
