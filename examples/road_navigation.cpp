/**
 * @file
 * Road-network navigation: point-to-point A* over a large sparse road
 * grid, comparing every threaded CPS design on the same query.
 *
 * This is the workload class the paper's USA-road experiments target:
 * huge diameter, tiny degree, priorities (f = g + h) that drift apart
 * quickly when the scheduler gets sloppy. The example prints, per
 * design, the wall time, the number of tasks executed (work
 * efficiency: less is better — A* expands few nodes when the best
 * frontier is honored) and the measured priority drift.
 */

#include <iostream>
#include <memory>

#include "algos/relaxation.h"
#include "core/hdcps.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "graph/generators.h"
#include "runtime/executor.h"
#include "stats/table.h"

int
main()
{
    using namespace hdcps;

    Graph graph = makeRoadGrid(96, 96, {.seed = 7});
    const unsigned threads = 4;

    struct DesignRow
    {
        const char *label;
        std::unique_ptr<Scheduler> scheduler;
    };
    std::vector<DesignRow> designs;
    designs.push_back({"reld", std::make_unique<ReldScheduler>(threads)});
    designs.push_back({"obim", std::make_unique<ObimScheduler>(threads)});
    designs.push_back({"pmod", std::make_unique<PmodScheduler>(threads)});
    {
        SwMinnowScheduler::MinnowConfig config;
        config.numMinnows = 1;
        designs.push_back(
            {"swminnow",
             std::make_unique<SwMinnowScheduler>(threads, config)});
    }
    designs.push_back(
        {"hdcps-sw", std::make_unique<HdCpsScheduler>(
                         threads, HdCpsScheduler::configSw())});

    Table table({"design", "wall-ms", "tasks", "drift", "goal-cost"});
    for (DesignRow &row : designs) {
        AstarWorkload workload(graph, /*source=*/0);
        RunOptions options;
        options.numThreads = threads;
        options.driftSampleInterval = 500;
        RunResult result =
            run(*row.scheduler, workload.initialTasks(),
                workloadProcessFn(workload), options);
        std::string why;
        if (!workload.verify(&why)) {
            std::cerr << row.label << " FAILED: " << why << "\n";
            return 1;
        }
        table.row()
            .cell(row.label)
            .cell(double(result.wallNs) / 1e6, 1)
            .cell(result.total.tasksProcessed)
            .cell(result.avgDrift, 1)
            .cell(workload.goalCost());
    }
    table.printText(std::cout,
                    "A* on a 96x96 road grid, 4 threads (all designs "
                    "verified against sequential A*)");
    std::cout
        << "\nFewer tasks = better work efficiency. Note: push-style "
           "designs (reld, hdcps-sw) rely on destination cores "
           "consuming tasks concurrently, so on hosts with fewer "
           "physical cores than threads they show inflated task "
           "counts; pull-style designs (obim/pmod) are insensitive to "
           "oversubscription. The paper-scale comparison runs on the "
           "simulated 64-core machine (see bench/).\n";
    return 0;
}
