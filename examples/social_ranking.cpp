/**
 * @file
 * Social-graph analytics: PageRank and graph coloring on a power-law
 * (LiveJournal-shaped) graph with the HD-CPS:SW scheduler.
 *
 * Demonstrates two things the quickstart does not: (a) workloads whose
 * priorities are not distances (residual magnitude for PageRank,
 * degree for coloring — both negated into the lower-is-sooner
 * convention), and (b) reusing one scheduler type across workloads
 * while reading its adaptive state (TDF, bag counters) between runs.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "algos/color.h"
#include "algos/pagerank.h"
#include "core/hdcps.h"
#include "graph/generators.h"
#include "runtime/executor.h"

int
main()
{
    using namespace hdcps;

    Graph graph = makePaperInput("lj", /*scale=*/1, /*seed=*/3);
    std::cout << "social graph: " << graph.numNodes() << " nodes, "
              << graph.numEdges() << " edges\n\n";
    const unsigned threads = 4;

    // --- PageRank -----------------------------------------------------
    {
        PagerankWorkload pagerank(graph);
        HdCpsScheduler scheduler(threads, HdCpsScheduler::configSw());
        RunOptions options;
        options.numThreads = threads;
        RunResult result = run(scheduler, pagerank.initialTasks(),
                               workloadProcessFn(pagerank), options);
        std::string why;
        if (!pagerank.verify(&why)) {
            std::cerr << "pagerank FAILED: " << why << "\n";
            return 1;
        }
        // Top-5 ranked nodes — the actual analytics output.
        std::vector<NodeId> order(graph.numNodes());
        for (NodeId n = 0; n < graph.numNodes(); ++n)
            order[n] = n;
        std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                          [&](NodeId a, NodeId b) {
                              return pagerank.rank(a) > pagerank.rank(b);
                          });
        std::cout << "pagerank: " << result.total.tasksProcessed
                  << " tasks, " << result.wallNs / 1e6 << " ms, final "
                  << "TDF " << scheduler.currentTdf() << "%\n";
        std::cout << "top-5 nodes by rank:";
        for (int i = 0; i < 5; ++i) {
            std::cout << "  " << order[i] << " ("
                      << pagerank.rank(order[i]) << ")";
        }
        std::cout << "\n\n";
    }

    // --- Graph coloring ------------------------------------------------
    {
        ColorWorkload color(graph);
        HdCpsScheduler scheduler(threads, HdCpsScheduler::configSw());
        RunOptions options;
        options.numThreads = threads;
        RunResult result = run(scheduler, color.initialTasks(),
                               workloadProcessFn(color), options);
        std::string why;
        if (!color.verify(&why)) {
            std::cerr << "coloring FAILED: " << why << "\n";
            return 1;
        }
        std::cout << "coloring: proper coloring with "
                  << color.numColorsUsed() << " colors, "
                  << result.total.tasksProcessed << " tasks ("
                  << graph.numNodes() << " nodes; extra tasks are "
                  << "speculation retries), " << result.wallNs / 1e6
                  << " ms, " << scheduler.bagsCreated()
                  << " bags created\n";
    }
    return 0;
}
