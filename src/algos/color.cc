#include "algos/color.h"

#include <algorithm>

#include "algos/sequential.h"
#include "support/logging.h"

namespace hdcps {

ColorWorkload::ColorWorkload(const Graph &g)
    : Workload(g), transpose_(g.transpose()), colors_(g.numNodes())
{
    for (NodeId n = 0; n < g.numNodes(); ++n)
        maxDegree_ = std::max(maxDegree_, totalDegree(n));
    reset();
}

void
ColorWorkload::reset()
{
    for (auto &c : colors_)
        c.store(-1, std::memory_order_relaxed);
}

Priority
ColorWorkload::taskPriority(NodeId n) const
{
    // Higher degree => higher scheduling priority => lower value.
    return Priority(maxDegree_ - totalDegree(n));
}

void
ColorWorkload::forEachNeighbor(NodeId n,
                               const std::function<void(NodeId)> &f) const
{
    for (EdgeId e = graph_->edgeBegin(n); e < graph_->edgeEnd(n); ++e)
        f(graph_->edgeDest(e));
    for (EdgeId e = transpose_.edgeBegin(n); e < transpose_.edgeEnd(n);
         ++e) {
        f(transpose_.edgeDest(e));
    }
}

int32_t
ColorWorkload::smallestFreeColor(NodeId n) const
{
    // Degree+1 colors always suffice; collect used ones in a bitmap.
    std::vector<bool> used(totalDegree(n) + 2, false);
    forEachNeighbor(n, [&](NodeId u) {
        int32_t c = colors_[u].load(std::memory_order_seq_cst);
        if (c >= 0 && static_cast<size_t>(c) < used.size())
            used[c] = true;
    });
    int32_t color = 0;
    while (used[color])
        ++color;
    return color;
}

std::vector<Task>
ColorWorkload::initialTasks()
{
    std::vector<Task> tasks;
    tasks.reserve(graph_->numNodes());
    for (NodeId n = 0; n < graph_->numNodes(); ++n)
        tasks.push_back(Task{taskPriority(n), n, 0});
    return tasks;
}

uint32_t
ColorWorkload::process(const Task &task, std::vector<Task> &children)
{
    const NodeId v = task.node;
    const uint32_t retries = task.data;

    std::unique_lock<std::mutex> serial(globalMutex_, std::defer_lock);
    if (retries >= maxRetries)
        serial.lock();

    colors_[v].store(smallestFreeColor(v), std::memory_order_seq_cst);

    // Conflict sweep: a racing neighbour may hold the same color. The
    // higher node id loses and recolors.
    int32_t mine = colors_[v].load(std::memory_order_seq_cst);
    bool reenqueueSelf = false;
    forEachNeighbor(v, [&](NodeId u) {
        if (u == v)
            return;
        if (colors_[u].load(std::memory_order_seq_cst) != mine)
            return;
        if (u < v) {
            reenqueueSelf = true;
        } else {
            children.push_back(Task{taskPriority(u), u, 0});
        }
    });
    if (reenqueueSelf)
        children.push_back(Task{taskPriority(v), v, retries + 1});

    return totalDegree(v) * 2; // one scan to color, one to check
}

int32_t
ColorWorkload::numColorsUsed() const
{
    int32_t best = 0;
    for (NodeId n = 0; n < graph_->numNodes(); ++n)
        best = std::max(best, color(n) + 1);
    return best;
}

bool
ColorWorkload::verify(std::string *whyNot)
{
    std::vector<int32_t> snapshot(graph_->numNodes());
    for (NodeId n = 0; n < graph_->numNodes(); ++n)
        snapshot[n] = color(n);
    if (!isProperColoring(*graph_, snapshot)) {
        if (whyNot)
            *whyNot = "color: result is not a proper coloring";
        return false;
    }
    return true;
}

uint64_t
ColorWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ = greedyColor(*graph_).tasksProcessed;
    return seqTasks_;
}

} // namespace hdcps
