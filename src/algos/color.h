/**
 * @file
 * Speculative greedy graph coloring prioritized by degree.
 *
 * The paper's Color workload assigns vertex colors by saturation
 * degree; tasks are prioritized by degree (denser vertices first,
 * Welsh-Powell style, which empirically minimizes colors). Coloring is
 * speculative: a task colors its node with the smallest color unused by
 * neighbours, then re-checks; if a concurrent neighbour grabbed the
 * same color, the conflict loser (the higher node id) re-enqueues
 * itself. Sequentially-consistent color stores guarantee that at least
 * one of two racing neighbours observes the other, so no conflict
 * survives the run. A retry bound escalates pathological nodes to a
 * global mutex so termination never depends on luck.
 */

#ifndef HDCPS_ALGOS_COLOR_H_
#define HDCPS_ALGOS_COLOR_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "algos/workload.h"

namespace hdcps {

/** Speculative degree-prioritized coloring. */
class ColorWorkload : public Workload
{
  public:
    explicit ColorWorkload(const Graph &g);

    const char *name() const override { return "color"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;
    void reset() override;

    int32_t
    color(NodeId n) const
    {
        return colors_[n].load(std::memory_order_seq_cst);
    }

    /** Number of distinct colors used (valid after a run). */
    int32_t numColorsUsed() const;

  private:
    static constexpr uint32_t maxRetries = 50;

    uint32_t totalDegree(NodeId n) const
    {
        return graph_->degree(n) + transpose_.degree(n);
    }

    Priority taskPriority(NodeId n) const;
    int32_t smallestFreeColor(NodeId n) const;
    void forEachNeighbor(NodeId n, const std::function<void(NodeId)> &f)
        const;

    Graph transpose_; ///< for undirected neighbour iteration
    std::vector<std::atomic<int32_t>> colors_;
    uint32_t maxDegree_ = 0;
    std::mutex globalMutex_; ///< escalation path for repeated conflicts
    uint64_t seqTasks_ = 0;
};

} // namespace hdcps

#endif // HDCPS_ALGOS_COLOR_H_
