#include "algos/mst.h"

#include <algorithm>

#include "algos/sequential.h"
#include "graph/builder.h"
#include "support/logging.h"

namespace hdcps {

Graph
symmetrize(const Graph &g)
{
    GraphBuilder builder(g.numNodes(), true);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            builder.addEdge(n, g.edgeDest(e), g.edgeWeight(e));
            builder.addEdge(g.edgeDest(e), n, g.edgeWeight(e));
        }
    }
    return builder.build(true);
}

MstWorkload::MstWorkload(const Graph &g)
    : Workload(g), sym_(symmetrize(g)), parent_(g.numNodes())
{
    comps_.reserve(g.numNodes());
    for (NodeId n = 0; n < g.numNodes(); ++n)
        comps_.push_back(std::make_unique<Component>());

    // Weight-sort each node's adjacency once so the scan cursor can
    // walk it cheapest-first.
    sortedDests_.resize(sym_.numEdges());
    sortedWeights_.resize(sym_.numEdges());
    std::vector<std::pair<Weight, NodeId>> scratch;
    for (NodeId n = 0; n < sym_.numNodes(); ++n) {
        scratch.clear();
        for (EdgeId e = sym_.edgeBegin(n); e < sym_.edgeEnd(n); ++e)
            scratch.push_back({sym_.edgeWeight(e), sym_.edgeDest(e)});
        std::sort(scratch.begin(), scratch.end());
        EdgeId base = sym_.edgeBegin(n);
        for (size_t i = 0; i < scratch.size(); ++i) {
            sortedWeights_[base + i] = scratch[i].first;
            sortedDests_[base + i] = scratch[i].second;
        }
    }
    cursor_.resize(sym_.numNodes());
    reset();
}

void
MstWorkload::reset()
{
    for (NodeId n = 0; n < sym_.numNodes(); ++n) {
        parent_[n].store(n, std::memory_order_relaxed);
        comps_[n]->nodes.assign(1, n);
        cursor_[n] = 0;
    }
    weight_.store(0, std::memory_order_relaxed);
    edges_.store(0, std::memory_order_relaxed);
}

NodeId
MstWorkload::find(NodeId x) const
{
    // Lock-free find with path halving; parents only ever move toward
    // the root, so stale reads are benign (callers re-verify under
    // component locks before acting).
    NodeId p = parent_[x].load(std::memory_order_acquire);
    while (p != x) {
        NodeId gp = parent_[p].load(std::memory_order_acquire);
        parent_[x].compare_exchange_weak(p, gp,
                                         std::memory_order_release,
                                         std::memory_order_acquire);
        x = p;
        p = parent_[x].load(std::memory_order_acquire);
    }
    return x;
}

MstWorkload::BestEdge
MstWorkload::minOutgoingEdge(NodeId rep, uint32_t &edgesScanned) const
{
    // Caller holds comps_[rep]->mutex, so the node list and the
    // cursors of its member nodes are stable. Each node's adjacency is
    // weight-sorted; the cursor permanently skips edges whose other
    // endpoint joined this component (components never split, so an
    // internal edge stays internal). The candidate at the cursor is
    // therefore the node's cheapest outgoing edge.
    BestEdge best;
    auto *self = const_cast<MstWorkload *>(this);
    for (NodeId v : comps_[rep]->nodes) {
        EdgeId base = sym_.edgeBegin(v);
        uint32_t degree =
            static_cast<uint32_t>(sym_.edgeEnd(v) - base);
        uint32_t &cur = self->cursor_[v];
        while (cur < degree) {
            ++edgesScanned;
            NodeId dst = sortedDests_[base + cur];
            if (find(dst) != rep)
                break;
            ++cur; // internal forever: never look at it again
        }
        if (cur >= degree)
            continue; // node fully internal
        NodeId dst = sortedDests_[base + cur];
        Weight w = sortedWeights_[base + cur];
        if (!best.found || w < best.weight ||
            (w == best.weight &&
             std::min(v, dst) < std::min(best.from, best.to))) {
            best = {w, v, dst, true};
        }
    }
    return best;
}

void
MstWorkload::requeue(NodeId rep, uint32_t retries,
                     std::vector<Task> &children)
{
    // Nudge the priority so retried merges do not hog the queue head.
    children.push_back(
        Task{static_cast<Priority>(retries) + 1, rep, retries});
}

bool
MstWorkload::tryMerge(NodeId rep, const BestEdge &best, size_t sizeAtScan,
                      std::vector<Task> &children)
{
    NodeId other = find(best.to);
    if (other == rep)
        return false; // target merged into us since the scan

    NodeId lo = std::min(rep, other);
    NodeId hi = std::max(rep, other);
    std::scoped_lock locks(comps_[lo]->mutex, comps_[hi]->mutex);

    // Re-validate the whole premise under the locks: both reps current,
    // the chosen edge still crossing, and our component unchanged since
    // the scan (growth could invalidate the minimality of `best`).
    if (find(rep) != rep || find(other) != other ||
        find(best.to) != other) {
        return false;
    }
    if (comps_[rep]->nodes.size() != sizeAtScan)
        return false;

    // Survivor is `lo` so representative ids only decrease; splice the
    // other component's node list and point its root at the survivor.
    NodeId gone = (lo == rep) ? other : rep;
    auto &dst = comps_[lo]->nodes;
    auto &src = comps_[gone]->nodes;
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
    parent_[gone].store(lo, std::memory_order_release);

    weight_.fetch_add(best.weight, std::memory_order_relaxed);
    edges_.fetch_add(1, std::memory_order_relaxed);

    // Continue merging the survivor; priority = component size, so
    // small components merge first (Boruvka order).
    children.push_back(
        Task{static_cast<Priority>(dst.size()), lo, 0});
    return true;
}

std::vector<Task>
MstWorkload::initialTasks()
{
    std::vector<Task> tasks;
    tasks.reserve(sym_.numNodes());
    for (NodeId n = 0; n < sym_.numNodes(); ++n) {
        if (sym_.degree(n) == 0)
            continue; // isolated node: nothing to merge
        tasks.push_back(Task{Priority(sym_.degree(n)), n, 0});
    }
    return tasks;
}

uint32_t
MstWorkload::process(const Task &task, std::vector<Task> &children)
{
    NodeId rep = task.node;
    uint32_t retries = task.data;
    if (find(rep) != rep)
        return 0; // our component was absorbed; the survivor's task runs

    const bool fallback = retries >= maxRetries;
    std::unique_lock<std::mutex> serial(globalMutex_, std::defer_lock);
    if (fallback)
        serial.lock(); // progress guarantee under heavy contention

    uint32_t edgesScanned = 0;
    BestEdge best;
    size_t sizeAtScan = 0;
    {
        std::lock_guard<std::mutex> lock(comps_[rep]->mutex);
        if (find(rep) != rep)
            return edgesScanned;
        best = minOutgoingEdge(rep, edgesScanned);
        sizeAtScan = comps_[rep]->nodes.size();
    }
    if (!best.found)
        return edgesScanned; // spanning tree of this component complete

    if (!tryMerge(rep, best, sizeAtScan, children))
        requeue(rep, retries + 1, children);
    return edgesScanned;
}

bool
MstWorkload::verify(std::string *whyNot)
{
    SeqMstResult ref = kruskal(*graph_);
    seqTasks_ = ref.tasksProcessed;
    if (forestWeight() != ref.totalWeight ||
        forestEdges() != ref.edgesInForest) {
        if (whyNot) {
            *whyNot = "mst: weight/edges " +
                      std::to_string(forestWeight()) + "/" +
                      std::to_string(forestEdges()) + " expected " +
                      std::to_string(ref.totalWeight) + "/" +
                      std::to_string(ref.edgesInForest);
        }
        return false;
    }
    return true;
}

uint64_t
MstWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ = kruskal(*graph_).tasksProcessed;
    return seqTasks_;
}

} // namespace hdcps
