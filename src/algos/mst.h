/**
 * @file
 * Minimum spanning forest via asynchronous Boruvka merges.
 *
 * Each task owns one component (identified by its representative node)
 * and tries to merge it with its nearest neighbour: scan every node in
 * the component for the minimum-weight edge leaving it, then union the
 * two components and add that edge to the forest. By the cut property,
 * adding the minimum edge leaving *any* component is always safe, so
 * the forest's total weight equals Kruskal's regardless of the task
 * order — only the amount of retried/stale work varies, which is what
 * the schedulers compete on. Tasks are prioritized by component size
 * (the paper: "each merge ... is prioritized by its degree"), so small
 * components merge first, Boruvka style.
 *
 * Concurrency: a lock-free union-find answers stale checks; per-
 * component locks (always acquired in ascending representative order)
 * protect node-list splices. A task that cannot take locks in order
 * re-enqueues itself; after `maxRetries` it serializes on a global
 * mutex, guaranteeing progress.
 */

#ifndef HDCPS_ALGOS_MST_H_
#define HDCPS_ALGOS_MST_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "algos/workload.h"

namespace hdcps {

/** Concurrent Boruvka minimum spanning forest. */
class MstWorkload : public Workload
{
  public:
    explicit MstWorkload(const Graph &g);

    const char *name() const override { return "mst"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;
    void reset() override;

    uint64_t
    forestWeight() const
    {
        return weight_.load(std::memory_order_relaxed);
    }

    uint64_t
    forestEdges() const
    {
        return edges_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr uint32_t maxRetries = 64;

    struct Component
    {
        std::mutex mutex;
        std::vector<NodeId> nodes;
    };

    struct BestEdge
    {
        Weight weight = ~Weight(0);
        NodeId from = invalidNode;
        NodeId to = invalidNode;
        bool found = false;
    };

    NodeId find(NodeId x) const;
    BestEdge minOutgoingEdge(NodeId rep, uint32_t &edgesScanned) const;
    bool tryMerge(NodeId rep, const BestEdge &best, size_t sizeAtScan,
                  std::vector<Task> &children);
    void requeue(NodeId rep, uint32_t retries,
                 std::vector<Task> &children);

    Graph sym_; ///< symmetrized copy (MST is an undirected problem)
    /** Per-node adjacency re-sorted by weight, with a monotone cursor
     *  skipping edges that became internal (they stay internal
     *  forever), so repeated component scans cost amortized O(E). */
    std::vector<NodeId> sortedDests_;
    std::vector<Weight> sortedWeights_;
    std::vector<uint32_t> cursor_; ///< guarded by the owning comp lock
    mutable std::vector<std::atomic<NodeId>> parent_;
    std::vector<std::unique_ptr<Component>> comps_;
    std::atomic<uint64_t> weight_{0};
    std::atomic<uint64_t> edges_{0};
    std::mutex globalMutex_; ///< progress fallback after maxRetries
    uint64_t seqTasks_ = 0;
};

/** Build the symmetrized (undirected) version of g, min-weight merged. */
Graph symmetrize(const Graph &g);

} // namespace hdcps

#endif // HDCPS_ALGOS_MST_H_
