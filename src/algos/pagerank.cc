#include "algos/pagerank.h"

#include <cmath>

#include "algos/sequential.h"
#include "support/logging.h"

namespace hdcps {

PagerankWorkload::PagerankWorkload(const Graph &g, double damping,
                                   double epsilon)
    : Workload(g), damping_(damping), epsilon_(epsilon),
      rank_(g.numNodes()), residual_(g.numNodes())
{
    hdcps_check(damping > 0.0 && damping < 1.0, "damping must be in (0,1)");
    hdcps_check(epsilon > 0.0, "epsilon must be positive");
    reset();
}

void
PagerankWorkload::reset()
{
    for (NodeId n = 0; n < graph_->numNodes(); ++n) {
        rank_[n].store(0.0, std::memory_order_relaxed);
        residual_[n].store(1.0 - damping_, std::memory_order_relaxed);
    }
}

Priority
PagerankWorkload::priorityFor(double residual)
{
    // Map residual in (0, ~1] onto integers so that a larger residual
    // yields a smaller (sooner) priority. Logarithmic quantization
    // keeps nearby residuals in the same OBIM bucket.
    if (residual <= 0.0)
        return 1u << 20;
    double magnitude = -std::log2(residual); // 0 for residual 1.0
    if (magnitude < 0.0)
        magnitude = 0.0;
    return static_cast<Priority>(magnitude * 16.0);
}

std::vector<Task>
PagerankWorkload::initialTasks()
{
    std::vector<Task> tasks;
    tasks.reserve(graph_->numNodes());
    Priority p = priorityFor(1.0 - damping_);
    for (NodeId n = 0; n < graph_->numNodes(); ++n)
        tasks.push_back(Task{p, n, 0});
    return tasks;
}

uint32_t
PagerankWorkload::process(const Task &task, std::vector<Task> &children)
{
    const NodeId v = task.node;
    double r = residual_[v].exchange(0.0, std::memory_order_acq_rel);
    if (r < epsilon_) {
        // Either already harvested by another task or genuinely small;
        // return the crumb so mass is conserved. The crumb itself can
        // push the residual back over the threshold (a concurrent push
        // landed between our exchange and this add), so the crossing
        // check applies here too.
        if (r > 0.0) {
            double old =
                residual_[v].fetch_add(r, std::memory_order_acq_rel);
            if (old < epsilon_ && old + r >= epsilon_)
                children.push_back(Task{priorityFor(old + r), v, 0});
        }
        return 0;
    }
    rank_[v].fetch_add(r, std::memory_order_relaxed);
    uint32_t outDeg = graph_->degree(v);
    if (outDeg == 0)
        return 0;
    double share = damping_ * r / double(outDeg);
    for (EdgeId e = graph_->edgeBegin(v); e < graph_->edgeEnd(v); ++e) {
        NodeId dst = graph_->edgeDest(e);
        double old =
            residual_[dst].fetch_add(share, std::memory_order_acq_rel);
        // Schedule dst exactly on the upward epsilon crossing.
        if (old < epsilon_ && old + share >= epsilon_)
            children.push_back(Task{priorityFor(old + share), dst, 0});
    }
    return outDeg;
}

bool
PagerankWorkload::verify(std::string *whyNot)
{
    SeqPagerankResult ref = pagerankSeq(*graph_, damping_, epsilon_);
    seqTasks_ = ref.tasksProcessed;
    // Both runs stop when every residual is below epsilon; the two
    // fixed points differ by at most the residual mass still in flight,
    // amplified by 1/(1-damping). Allow that analytic slack.
    double tolerance = epsilon_ / (1.0 - damping_) * 4.0 + 1e-9;
    for (NodeId n = 0; n < graph_->numNodes(); ++n) {
        double got = rank(n);
        double expected = ref.rank[n];
        if (std::fabs(got - expected) > tolerance) {
            if (whyNot) {
                *whyNot = "pagerank: node " + std::to_string(n) +
                          " rank " + std::to_string(got) + " expected " +
                          std::to_string(expected) + " (tol " +
                          std::to_string(tolerance) + ")";
            }
            return false;
        }
    }
    return true;
}

uint64_t
PagerankWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ = pagerankSeq(*graph_, damping_, epsilon_)
                        .tasksProcessed;
    return seqTasks_;
}

} // namespace hdcps
