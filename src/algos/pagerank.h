/**
 * @file
 * Residual ("push-pull") PageRank prioritized by residual magnitude.
 *
 * The paper uses the push-style data-driven PageRank of Whang et al.:
 * each node accumulates a residual; processing a node folds its
 * residual into its rank and pushes damping * residual / outdeg to its
 * out-neighbours. A node is (re-)scheduled exactly when its residual
 * crosses the epsilon threshold from below, so the task count is finite
 * and the fixed point is schedule-independent up to epsilon. Priorities
 * quantize the residual ("integer numbers to make them compatible with
 * OBIM"): larger residual -> numerically smaller priority -> sooner.
 */

#ifndef HDCPS_ALGOS_PAGERANK_H_
#define HDCPS_ALGOS_PAGERANK_H_

#include <atomic>
#include <vector>

#include "algos/workload.h"

namespace hdcps {

/** Asynchronous residual PageRank. */
class PagerankWorkload : public Workload
{
  public:
    /**
     * Default epsilon of 1e-3 keeps the benchmark-harness task counts
     * tractable on the simulated machine (the fixed point is the same
     * up to epsilon; pass 1e-4 or tighter to match the classic residual
     * PageRank setting).
     */
    explicit PagerankWorkload(const Graph &g, double damping = 0.85,
                              double epsilon = 1e-3);

    const char *name() const override { return "pagerank"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;
    void reset() override;

    /** Converged rank (rank + any sub-threshold residual). */
    double
    rank(NodeId n) const
    {
        return rank_[n].load(std::memory_order_relaxed) +
               residual_[n].load(std::memory_order_relaxed);
    }

    double damping() const { return damping_; }
    double epsilon() const { return epsilon_; }

    /** Integer priority for a residual value (exposed for tests). */
    static Priority priorityFor(double residual);

  private:
    double damping_;
    double epsilon_;
    std::vector<std::atomic<double>> rank_;
    std::vector<std::atomic<double>> residual_;
    uint64_t seqTasks_ = 0;
};

} // namespace hdcps

#endif // HDCPS_ALGOS_PAGERANK_H_
