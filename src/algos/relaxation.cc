#include "algos/relaxation.h"

#include <algorithm>

#include "support/logging.h"

namespace hdcps {

RelaxationBase::RelaxationBase(const Graph &g, NodeId source)
    : Workload(g), source_(source), dist_(g.numNodes())
{
    hdcps_check(source < g.numNodes(), "source out of range");
    reset();
}

void
RelaxationBase::reset()
{
    for (auto &d : dist_)
        d.store(unreachableDist, std::memory_order_relaxed);
    dist_[source_].store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- SSSP

std::vector<Task>
SsspWorkload::initialTasks()
{
    return {Task{0, source_, 0}};
}

uint32_t
SsspWorkload::process(const Task &task, std::vector<Task> &children)
{
    const uint64_t d = task.priority;
    if (d > dist_[task.node].load(std::memory_order_relaxed))
        return 0; // stale: a better label already propagated
    uint32_t edges = 0;
    for (EdgeId e = graph_->edgeBegin(task.node);
         e < graph_->edgeEnd(task.node); ++e) {
        ++edges;
        NodeId dst = graph_->edgeDest(e);
        uint64_t nd = d + graph_->edgeWeight(e);
        if (relaxTo(dst, nd))
            children.push_back(Task{nd, dst, 0});
    }
    return edges;
}

bool
SsspWorkload::verify(std::string *whyNot)
{
    SeqPathResult ref = dijkstra(*graph_, source_);
    seqTasks_ = ref.tasksProcessed;
    for (NodeId n = 0; n < graph_->numNodes(); ++n) {
        if (distance(n) != ref.dist[n]) {
            if (whyNot) {
                *whyNot = "sssp: node " + std::to_string(n) + " got " +
                          std::to_string(distance(n)) + " expected " +
                          std::to_string(ref.dist[n]);
            }
            return false;
        }
    }
    return true;
}

uint64_t
SsspWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ = dijkstra(*graph_, source_).tasksProcessed;
    return seqTasks_;
}

// ----------------------------------------------------------------- BFS

std::vector<Task>
BfsWorkload::initialTasks()
{
    return {Task{0, source_, 0}};
}

uint32_t
BfsWorkload::process(const Task &task, std::vector<Task> &children)
{
    const uint64_t d = task.priority;
    if (d > dist_[task.node].load(std::memory_order_relaxed))
        return 0;
    uint32_t edges = 0;
    const uint64_t nd = d + 1;
    for (EdgeId e = graph_->edgeBegin(task.node);
         e < graph_->edgeEnd(task.node); ++e) {
        ++edges;
        NodeId dst = graph_->edgeDest(e);
        if (relaxTo(dst, nd))
            children.push_back(Task{nd, dst, 0});
    }
    return edges;
}

bool
BfsWorkload::verify(std::string *whyNot)
{
    SeqPathResult ref = bfsLevels(*graph_, source_);
    seqTasks_ = ref.tasksProcessed;
    for (NodeId n = 0; n < graph_->numNodes(); ++n) {
        if (distance(n) != ref.dist[n]) {
            if (whyNot) {
                *whyNot = "bfs: node " + std::to_string(n) + " got " +
                          std::to_string(distance(n)) + " expected " +
                          std::to_string(ref.dist[n]);
            }
            return false;
        }
    }
    return true;
}

uint64_t
BfsWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ = bfsLevels(*graph_, source_).tasksProcessed;
    return seqTasks_;
}

// ------------------------------------------------------------------ A*

AstarWorkload::AstarWorkload(const Graph &g, NodeId source)
    : RelaxationBase(g, source)
{
    // Deterministic far target: the reachable node with the largest BFS
    // depth (ties to the largest id). This matches the paper's use of
    // A* for long point-to-point road queries.
    SeqPathResult levels = bfsLevels(g, source);
    target_ = source;
    uint64_t bestDepth = 0;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (levels.dist[n] != unreachableDist &&
            levels.dist[n] >= bestDepth) {
            bestDepth = levels.dist[n];
            target_ = n;
        }
    }
    if (!g.hasCoordinates())
        hScale_ = 0.0; // no heuristic available: degenerates to Dijkstra
}

void
AstarWorkload::reset()
{
    RelaxationBase::reset();
    bestGoal_.store(unreachableDist, std::memory_order_relaxed);
}

std::vector<Task>
AstarWorkload::initialTasks()
{
    return {Task{heuristic(source_), source_, 0}};
}

uint32_t
AstarWorkload::process(const Task &task, std::vector<Task> &children)
{
    const uint64_t g = task.data;
    if (g > dist_[task.node].load(std::memory_order_relaxed))
        return 0; // stale
    const uint64_t bound = bestGoal_.load(std::memory_order_relaxed);
    if (task.priority >= bound)
        return 0; // cannot improve the goal: prune
    uint32_t edges = 0;
    for (EdgeId e = graph_->edgeBegin(task.node);
         e < graph_->edgeEnd(task.node); ++e) {
        ++edges;
        NodeId dst = graph_->edgeDest(e);
        uint64_t nd = g + graph_->edgeWeight(e);
        if (!relaxTo(dst, nd))
            continue;
        if (dst == target_) {
            uint64_t old = bestGoal_.load(std::memory_order_relaxed);
            while (nd < old &&
                   !bestGoal_.compare_exchange_weak(
                       old, nd, std::memory_order_relaxed)) {
            }
            continue; // no need to expand beyond the target
        }
        uint64_t f = nd + heuristic(dst);
        if (f < bestGoal_.load(std::memory_order_relaxed)) {
            hdcps_check(nd <= ~uint32_t(0), "g-cost overflows task data");
            children.push_back(
                Task{f, dst, static_cast<uint32_t>(nd)});
        }
    }
    return edges;
}

bool
AstarWorkload::verify(std::string *whyNot)
{
    SeqPathResult ref = astar(*graph_, source_, target_, hScale_);
    seqTasks_ = ref.tasksProcessed;
    uint64_t expected = ref.dist[target_];
    uint64_t got = goalCost();
    if (target_ == source_)
        got = 0; // degenerate graph: source is its own target
    if (got != expected) {
        if (whyNot) {
            *whyNot = "astar: goal cost " + std::to_string(got) +
                      " expected " + std::to_string(expected);
        }
        return false;
    }
    return true;
}

uint64_t
AstarWorkload::sequentialTasks()
{
    if (seqTasks_ == 0)
        seqTasks_ =
            astar(*graph_, source_, target_, hScale_).tasksProcessed;
    return seqTasks_;
}

} // namespace hdcps
