/**
 * @file
 * Label-correcting relaxation kernels: SSSP (delta-stepping flavour),
 * BFS, and A*.
 *
 * All three share one structure: a per-node atomic distance label,
 * tasks carrying (node, tentative distance), and a process() that skips
 * stale tasks and relaxes out-edges with a CAS-min. Under *any* task
 * order the final labels equal the sequential shortest paths; the task
 * order only controls how much redundant work (re-relaxations) happens,
 * which is exactly the work-efficiency signal the paper's schedulers
 * compete on.
 *
 * Priorities follow the paper: the tentative distance (lower = higher
 * priority) for SSSP/BFS, distance + admissible Euclidean heuristic for
 * A*.
 */

#ifndef HDCPS_ALGOS_RELAXATION_H_
#define HDCPS_ALGOS_RELAXATION_H_

#include <atomic>
#include <memory>
#include <vector>

#include "algos/sequential.h"
#include "algos/workload.h"

namespace hdcps {

/** Common atomic-distance machinery for SSSP/BFS/A*. */
class RelaxationBase : public Workload
{
  public:
    /** Final distance labels (valid after a run). */
    uint64_t
    distance(NodeId n) const
    {
        return dist_[n].load(std::memory_order_relaxed);
    }

    NodeId source() const { return source_; }

    void reset() override;

  protected:
    RelaxationBase(const Graph &g, NodeId source);

    /** CAS-min on dist_[node]; true if `candidate` improved it. */
    bool
    relaxTo(NodeId node, uint64_t candidate)
    {
        uint64_t old = dist_[node].load(std::memory_order_relaxed);
        while (candidate < old) {
            if (dist_[node].compare_exchange_weak(
                    old, candidate, std::memory_order_relaxed)) {
                return true;
            }
        }
        return false;
    }

    NodeId source_;
    std::vector<std::atomic<uint64_t>> dist_;
};

/** Single-source shortest paths; task priority = tentative distance. */
class SsspWorkload : public RelaxationBase
{
  public:
    SsspWorkload(const Graph &g, NodeId source)
        : RelaxationBase(g, source)
    {}

    const char *name() const override { return "sssp"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;

  private:
    uint64_t seqTasks_ = 0;
};

/** Breadth-first search; identical to SSSP with unit weights. */
class BfsWorkload : public RelaxationBase
{
  public:
    BfsWorkload(const Graph &g, NodeId source)
        : RelaxationBase(g, source)
    {}

    const char *name() const override { return "bfs"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;

  private:
    uint64_t seqTasks_ = 0;
};

/**
 * A* search toward a deterministic far-away target. Tasks carry the
 * g-cost in `data` and f = g + h as the priority; children whose f
 * cannot beat the best goal cost found so far are pruned.
 */
class AstarWorkload : public RelaxationBase
{
  public:
    AstarWorkload(const Graph &g, NodeId source);

    const char *name() const override { return "astar"; }
    std::vector<Task> initialTasks() override;
    uint32_t process(const Task &task,
                     std::vector<Task> &children) override;
    bool verify(std::string *whyNot) override;
    uint64_t sequentialTasks() override;
    void reset() override;

    NodeId target() const { return target_; }

    /** Shortest source->target cost after a run. */
    uint64_t goalCost() const
    {
        return bestGoal_.load(std::memory_order_relaxed);
    }

  private:
    uint64_t heuristic(NodeId n) const
    {
        return astarHeuristic(*graph_, n, target_, hScale_);
    }

    NodeId target_;
    double hScale_ = 2.0;
    std::atomic<uint64_t> bestGoal_{unreachableDist};
    uint64_t seqTasks_ = 0;
};

} // namespace hdcps

#endif // HDCPS_ALGOS_RELAXATION_H_
