#include "algos/sequential.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "pq/bucket_queue.h"
#include "pq/dary_heap.h"
#include "support/logging.h"

namespace hdcps {

namespace {

struct HeapItem
{
    uint64_t key;
    NodeId node;
};

struct HeapItemLess
{
    bool
    operator()(const HeapItem &a, const HeapItem &b) const
    {
        if (a.key != b.key)
            return a.key < b.key;
        return a.node < b.node;
    }
};

using MinHeap = DAryHeap<HeapItem, HeapItemLess>;

/** Disjoint-set forest with path halving and union by size. */
class Dsu
{
  public:
    explicit Dsu(NodeId n) : parent_(n), size_(n, 1)
    {
        std::iota(parent_.begin(), parent_.end(), NodeId(0));
    }

    NodeId
    find(NodeId x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    bool
    unite(NodeId a, NodeId b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        if (size_[a] < size_[b])
            std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
        return true;
    }

  private:
    std::vector<NodeId> parent_;
    std::vector<NodeId> size_;
};

} // namespace

SeqPathResult
dijkstra(const Graph &g, NodeId src)
{
    hdcps_check(src < g.numNodes(), "source out of range");
    SeqPathResult result;
    result.dist.assign(g.numNodes(), unreachableDist);
    result.dist[src] = 0;

    MinHeap heap;
    heap.push({0, src});
    while (!heap.empty()) {
        auto [d, node] = heap.pop();
        ++result.tasksProcessed;
        if (d > result.dist[node])
            continue; // stale entry
        for (EdgeId e = g.edgeBegin(node); e < g.edgeEnd(node); ++e) {
            ++result.edgesScanned;
            uint64_t nd = d + g.edgeWeight(e);
            NodeId dst = g.edgeDest(e);
            if (nd < result.dist[dst]) {
                result.dist[dst] = nd;
                heap.push({nd, dst});
            }
        }
    }
    return result;
}

SeqPathResult
dijkstraDial(const Graph &g, NodeId src)
{
    hdcps_check(src < g.numNodes(), "source out of range");
    SeqPathResult result;
    result.dist.assign(g.numNodes(), unreachableDist);
    result.dist[src] = 0;

    BucketQueue<NodeId> queue;
    queue.push(0, src);
    while (!queue.empty()) {
        uint64_t d = queue.topPriority();
        NodeId node = queue.pop();
        ++result.tasksProcessed;
        if (d > result.dist[node])
            continue; // stale entry
        for (EdgeId e = g.edgeBegin(node); e < g.edgeEnd(node); ++e) {
            ++result.edgesScanned;
            uint64_t nd = d + g.edgeWeight(e);
            NodeId dst = g.edgeDest(e);
            if (nd < result.dist[dst]) {
                result.dist[dst] = nd;
                queue.push(nd, dst);
            }
        }
    }
    return result;
}

SeqPathResult
bfsLevels(const Graph &g, NodeId src)
{
    hdcps_check(src < g.numNodes(), "source out of range");
    SeqPathResult result;
    result.dist.assign(g.numNodes(), unreachableDist);
    result.dist[src] = 0;

    std::queue<NodeId> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
        NodeId node = frontier.front();
        frontier.pop();
        ++result.tasksProcessed;
        uint64_t nd = result.dist[node] + 1;
        for (EdgeId e = g.edgeBegin(node); e < g.edgeEnd(node); ++e) {
            ++result.edgesScanned;
            NodeId dst = g.edgeDest(e);
            if (result.dist[dst] == unreachableDist) {
                result.dist[dst] = nd;
                frontier.push(dst);
            }
        }
    }
    return result;
}

uint64_t
astarHeuristic(const Graph &g, NodeId n, NodeId target, double hScale)
{
    if (!g.hasCoordinates() || hScale <= 0.0)
        return 0;
    double dx = double(g.coordX(n)) - double(g.coordX(target));
    double dy = double(g.coordY(n)) - double(g.coordY(target));
    return static_cast<uint64_t>(std::floor(hScale * std::hypot(dx, dy)));
}

SeqPathResult
astar(const Graph &g, NodeId src, NodeId target, double hScale)
{
    hdcps_check(src < g.numNodes() && target < g.numNodes(),
                "endpoint out of range");
    SeqPathResult result;
    result.dist.assign(g.numNodes(), unreachableDist);
    result.dist[src] = 0;

    MinHeap heap;
    heap.push({astarHeuristic(g, src, target, hScale), src});
    while (!heap.empty()) {
        auto [f, node] = heap.pop();
        ++result.tasksProcessed;
        uint64_t gCost = result.dist[node];
        if (f > gCost + astarHeuristic(g, node, target, hScale))
            continue; // stale
        if (node == target)
            break; // admissible heuristic: target is settled
        for (EdgeId e = g.edgeBegin(node); e < g.edgeEnd(node); ++e) {
            ++result.edgesScanned;
            uint64_t nd = gCost + g.edgeWeight(e);
            NodeId dst = g.edgeDest(e);
            if (nd < result.dist[dst]) {
                result.dist[dst] = nd;
                heap.push({nd + astarHeuristic(g, dst, target, hScale),
                           dst});
            }
        }
    }
    return result;
}

SeqMstResult
kruskal(const Graph &g)
{
    struct KEdge
    {
        Weight weight;
        NodeId a;
        NodeId b;
    };
    std::vector<KEdge> edges;
    edges.reserve(g.numEdges());
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            NodeId d = g.edgeDest(e);
            // Symmetrize: each undirected pair contributes its minimum
            // directed weight; keep one canonical orientation.
            NodeId a = std::min(n, d);
            NodeId b = std::max(n, d);
            edges.push_back({g.edgeWeight(e), a, b});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const KEdge &x, const KEdge &y) {
                  if (x.weight != y.weight)
                      return x.weight < y.weight;
                  if (x.a != y.a)
                      return x.a < y.a;
                  return x.b < y.b;
              });

    SeqMstResult result;
    Dsu dsu(g.numNodes());
    for (const KEdge &e : edges) {
        if (dsu.unite(e.a, e.b)) {
            result.totalWeight += e.weight;
            ++result.edgesInForest;
            ++result.tasksProcessed;
        }
    }
    return result;
}

SeqColorResult
greedyColor(const Graph &g)
{
    // Work on the symmetrized adjacency (coloring is an undirected
    // problem); order nodes by descending degree (Welsh-Powell).
    Graph t = g.transpose();
    std::vector<NodeId> order(g.numNodes());
    std::iota(order.begin(), order.end(), NodeId(0));
    auto totalDeg = [&](NodeId n) { return g.degree(n) + t.degree(n); };
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        uint32_t da = totalDeg(a);
        uint32_t db = totalDeg(b);
        if (da != db)
            return da > db;
        return a < b;
    });

    SeqColorResult result;
    result.colors.assign(g.numNodes(), -1);
    std::vector<int32_t> mark(g.numNodes() + 1, -1);
    for (NodeId n : order) {
        ++result.tasksProcessed;
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            int32_t c = result.colors[g.edgeDest(e)];
            if (c >= 0)
                mark[c] = static_cast<int32_t>(n);
        }
        for (EdgeId e = t.edgeBegin(n); e < t.edgeEnd(n); ++e) {
            int32_t c = result.colors[t.edgeDest(e)];
            if (c >= 0)
                mark[c] = static_cast<int32_t>(n);
        }
        int32_t color = 0;
        while (mark[color] == static_cast<int32_t>(n))
            ++color;
        result.colors[n] = color;
        result.numColors = std::max(result.numColors, color + 1);
    }
    return result;
}

bool
isProperColoring(const Graph &g, const std::vector<int32_t> &colors)
{
    if (colors.size() != g.numNodes())
        return false;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (colors[n] < 0)
            return false;
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            if (colors[g.edgeDest(e)] == colors[n])
                return false;
        }
    }
    return true;
}

SeqPagerankResult
pagerankSeq(const Graph &g, double damping, double epsilon)
{
    const NodeId n = g.numNodes();
    SeqPagerankResult result;
    result.rank.assign(n, 0.0);
    std::vector<double> residual(n, 1.0 - damping);
    std::vector<bool> queued(n, true);
    std::queue<NodeId> work;
    for (NodeId i = 0; i < n; ++i)
        work.push(i);

    while (!work.empty()) {
        NodeId node = work.front();
        work.pop();
        queued[node] = false;
        ++result.tasksProcessed;
        double r = residual[node];
        residual[node] = 0.0;
        if (r < epsilon)
            continue;
        result.rank[node] += r;
        uint32_t outDeg = g.degree(node);
        if (outDeg == 0)
            continue;
        double share = damping * r / double(outDeg);
        for (EdgeId e = g.edgeBegin(node); e < g.edgeEnd(node); ++e) {
            NodeId dst = g.edgeDest(e);
            residual[dst] += share;
            if (residual[dst] >= epsilon && !queued[dst]) {
                queued[dst] = true;
                work.push(dst);
            }
        }
    }
    // Fold sub-threshold residual in so totals are comparable.
    for (NodeId i = 0; i < n; ++i)
        result.rank[i] += residual[i];
    return result;
}

} // namespace hdcps
