/**
 * @file
 * Sequential reference implementations.
 *
 * These are the "best performing sequential baseline" of the paper's
 * methodology: used (a) to verify every parallel kernel's result and
 * (b) as the denominator of the speedup figures (Fig. 4, Fig. 8).
 * Each returns its result plus the number of tasks a priority-ordered
 * execution processed, which anchors work-efficiency comparisons.
 */

#ifndef HDCPS_ALGOS_SEQUENTIAL_H_
#define HDCPS_ALGOS_SEQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hdcps {

/** Distance value for unreachable nodes. */
constexpr uint64_t unreachableDist = ~uint64_t(0);

/** Result of a sequential shortest-path style run. */
struct SeqPathResult
{
    std::vector<uint64_t> dist;
    uint64_t tasksProcessed = 0; ///< heap pops (settled + stale)
    uint64_t edgesScanned = 0;
};

/** Dijkstra from src (weights as-is). */
SeqPathResult dijkstra(const Graph &g, NodeId src);

/**
 * Dijkstra from src over the bucketed integer PQ (Dial's algorithm) —
 * the cross-check oracle for BucketQueue: identical distances to
 * dijkstra() on any input, including large-weight graphs whose
 * distances exceed 2^32 (served by the queue's bounded-span heap
 * fallback instead of an unbounded bucket directory).
 */
SeqPathResult dijkstraDial(const Graph &g, NodeId src);

/** BFS from src (all weights treated as 1). */
SeqPathResult bfsLevels(const Graph &g, NodeId src);

/**
 * A* from src toward target using the Euclidean-coordinate heuristic
 * scaled by `hScale` (0 disables the heuristic). Returns full dist
 * array for nodes expanded before the target settled; dist[target] is
 * exact.
 */
SeqPathResult astar(const Graph &g, NodeId src, NodeId target,
                    double hScale = 2.0);

/** Admissible A* heuristic value for node n toward target. */
uint64_t astarHeuristic(const Graph &g, NodeId n, NodeId target,
                        double hScale = 2.0);

/** Kruskal MST/forest result. */
struct SeqMstResult
{
    uint64_t totalWeight = 0;
    uint64_t edgesInForest = 0;
    uint64_t tasksProcessed = 0; ///< union operations performed
};

/** Kruskal over the symmetrized edge set. */
SeqMstResult kruskal(const Graph &g);

/** Greedy sequential coloring result. */
struct SeqColorResult
{
    std::vector<int32_t> colors;
    int32_t numColors = 0;
    uint64_t tasksProcessed = 0;
};

/** Greedy coloring in descending-degree order (symmetrized adjacency). */
SeqColorResult greedyColor(const Graph &g);

/**
 * True iff `colors` is a proper coloring of the symmetrized graph
 * (no edge joins two equal non-negative colors, none uncolored).
 */
bool isProperColoring(const Graph &g, const std::vector<int32_t> &colors);

/** Residual-push PageRank result. */
struct SeqPagerankResult
{
    std::vector<double> rank;
    uint64_t tasksProcessed = 0;
};

/**
 * Sequential residual PageRank with damping d and threshold epsilon;
 * identical update rule to the parallel kernel so fixed points agree.
 */
SeqPagerankResult pagerankSeq(const Graph &g, double damping = 0.85,
                              double epsilon = 1e-4);

} // namespace hdcps

#endif // HDCPS_ALGOS_SEQUENTIAL_H_
