#include "algos/workload.h"

#include "algos/color.h"
#include "algos/mst.h"
#include "algos/pagerank.h"
#include "algos/relaxation.h"
#include "support/logging.h"

namespace hdcps {

std::unique_ptr<Workload>
makeWorkload(const std::string &kernel, const Graph &g, NodeId source)
{
    hdcps_check(g.numNodes() > 0, "workload needs a non-empty graph");
    hdcps_check(source < g.numNodes(), "source out of range");
    if (kernel == "sssp")
        return std::make_unique<SsspWorkload>(g, source);
    if (kernel == "bfs")
        return std::make_unique<BfsWorkload>(g, source);
    if (kernel == "astar")
        return std::make_unique<AstarWorkload>(g, source);
    if (kernel == "mst")
        return std::make_unique<MstWorkload>(g);
    if (kernel == "color")
        return std::make_unique<ColorWorkload>(g);
    if (kernel == "pagerank")
        return std::make_unique<PagerankWorkload>(g);
    hdcps_fatal("unknown kernel '%s' "
                "(want sssp|bfs|astar|mst|color|pagerank)",
                kernel.c_str());
}

const char *const *
workloadNames(size_t &count)
{
    static const char *const names[] = {"sssp", "astar", "bfs",
                                        "mst",  "color", "pagerank"};
    count = 6;
    return names;
}

} // namespace hdcps
