/**
 * @file
 * The workload abstraction shared by the threaded runtime and the
 * multicore simulator.
 *
 * A workload is a task-parallel graph kernel in the paper's model: an
 * initial task set, a process() function that consumes one task and
 * produces children, and a verifier against a sequential reference.
 * process() must be safe for concurrent invocations on distinct tasks
 * (all shared state behind atomics or fine-grained locks) because the
 * threaded runtime calls it from many workers; the simulator calls it
 * single-threaded but interleaved, so the same code serves both.
 *
 * process() returns the number of edges it scanned: the simulator's
 * cost model charges per-edge memory and ALU cycles from it.
 */

#ifndef HDCPS_ALGOS_WORKLOAD_H_
#define HDCPS_ALGOS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "cps/task.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace hdcps {

/** One task-parallel graph kernel instance bound to a graph. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Kernel name: "sssp", "bfs", "astar", "mst", "color", "pagerank". */
    virtual const char *name() const = 0;

    /** Seed tasks that start the computation. */
    virtual std::vector<Task> initialTasks() = 0;

    /**
     * Process one task; append children to `children` (not cleared
     * here). Returns the number of edges scanned.
     */
    virtual uint32_t process(const Task &task,
                             std::vector<Task> &children) = 0;

    /**
     * Check the computed result against a sequential reference.
     * On failure, *whyNot (if given) receives a diagnostic.
     */
    virtual bool verify(std::string *whyNot = nullptr) = 0;

    /**
     * Number of tasks a priority-ordered sequential execution
     * processes; the denominator of work efficiency.
     */
    virtual uint64_t sequentialTasks() = 0;

    /** Restore all mutable state so the workload can run again. */
    virtual void reset() = 0;

    const Graph &graph() const { return *graph_; }

  protected:
    explicit Workload(const Graph &g) : graph_(&g) {}

    const Graph *graph_;
};

/** Wrap a workload's process() as the runtime's ProcessFn. */
inline ProcessFn
workloadProcessFn(Workload &w)
{
    return [&w](unsigned, const Task &task, std::vector<Task> &children) {
        w.process(task, children);
    };
}

/**
 * Factory over all kernels. `source` seeds the traversal kernels
 * (ignored by color/pagerank/mst).
 */
std::unique_ptr<Workload> makeWorkload(const std::string &kernel,
                                       const Graph &g, NodeId source = 0);

/** All kernel names in the paper's evaluation order. */
const char *const *workloadNames(size_t &count);

} // namespace hdcps

#endif // HDCPS_ALGOS_WORKLOAD_H_
