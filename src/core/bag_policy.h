/**
 * @file
 * Bags of tasks and the selective bagging heuristic — Algorithm 1.
 *
 * HD-CPS bundles same-priority children of one parent task into a bag
 * when doing so is profitable: the bag's metadata is a single PQ entry
 * at the destination, so one enqueue/dequeue covers many tasks. The
 * heuristic (Algorithm 1 line 6) creates a bag only when the number of
 * equal-priority children lies in [minBagSize, maxBagSize): below the
 * window individual sends are cheaper; above it, an upper bound stops a
 * core from binding itself to a huge bag while higher-priority work
 * waits. Transport of the payload is either *push* (payload travels
 * with the metadata message) or *pull* (payload stays at the creator
 * and is fetched with coherent loads on dequeue — the faster option the
 * paper selects, Figure 14).
 */

#ifndef HDCPS_CORE_BAG_POLICY_H_
#define HDCPS_CORE_BAG_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cps/task.h"
#include "support/logging.h"

namespace hdcps {

/** How bag payload bytes reach the consuming core. */
enum class BagTransport {
    Pull, ///< payload stays with the creator; coherent loads on dequeue
    Push, ///< payload travels with the metadata over the network
};

/** When to create bags at all. */
enum class BagMode {
    None,      ///< never bag (sRQ / sRQ+TDF configurations)
    Always,    ///< bag every priority group (the paper's "AC" variant)
    Selective, ///< Algorithm 1's window heuristic (the "SC" variant)
};

/** A bag: shared priority plus the task payload. */
struct Bag
{
    Priority priority = 0;
    std::vector<Task> tasks;
};

/** Output of grouping one parent's children (Algorithm 1 lines 4-10). */
struct BagPlan
{
    std::vector<Task> singles; ///< tasks distributed individually
    std::vector<Bag> bags;     ///< bags to distribute as one unit each
};

/** Tunables for Algorithm 1. */
struct BagPolicy
{
    BagMode mode = BagMode::Selective;
    BagTransport transport = BagTransport::Pull;
    size_t minBagSize = 3;  ///< ">= 3 ... tasks used in this paper"
    size_t maxBagSize = 10; ///< "... but < 10"; also the split bound

    /**
     * Allocation-free planning core: group `children` in place and hand
     * each decision to a callback instead of materializing a BagPlan.
     * `single(const Task &)` fires for every individually-distributed
     * task; `bagRange(const Task *first, const Task *last, Priority)`
     * fires for every bag-sized chunk, with [first, last) pointing into
     * the (sorted) `children` buffer. Children are grouped by exact
     * priority (COUNT_PRIORITY in Algorithm 1); each group is bagged
     * when the mode and the size window say so, and groups larger than
     * maxBagSize are split into multiple bags so no single dequeue
     * monopolizes a core. Callers that reuse `children` across batches
     * pay no allocation at all.
     */
    template <typename SingleFn, typename BagRangeFn>
    void
    planRanges(std::vector<Task> &children, SingleFn &&single,
               BagRangeFn &&bagRange) const
    {
        if (children.empty())
            return;
        if (mode == BagMode::None) {
            for (const Task &t : children)
                single(t);
            return;
        }
        hdcps_check(minBagSize >= 1 && minBagSize < maxBagSize,
                    "bag size window must satisfy 1 <= min < max");

        std::sort(children.begin(), children.end(),
                  [](const Task &a, const Task &b) {
                      return a.priority < b.priority;
                  });

        size_t start = 0;
        while (start < children.size()) {
            size_t end = start + 1;
            while (end < children.size() &&
                   children[end].priority == children[start].priority) {
                ++end;
            }
            size_t count = end - start;
            bool bagIt = mode == BagMode::Always
                             ? count >= 2
                             : (count >= minBagSize && count < maxBagSize);
            if (bagIt) {
                // Split oversized groups (Always mode can exceed the
                // bound) so each bag stays under maxBagSize.
                size_t pos = start;
                while (pos < end) {
                    size_t take = std::min(maxBagSize - 1, end - pos);
                    if (take < 2) {
                        // A 1-task remainder is cheaper as a single.
                        single(children[pos]);
                        ++pos;
                        continue;
                    }
                    bagRange(children.data() + pos,
                             children.data() + pos + take,
                             children[start].priority);
                    pos += take;
                }
            } else {
                for (size_t i = start; i < end; ++i)
                    single(children[i]);
            }
            start = end;
        }
    }

    /**
     * Partition children into singles and bags (materialized variant of
     * planRanges, kept for harnesses that want the plan as data).
     */
    BagPlan
    plan(std::vector<Task> children) const
    {
        BagPlan out;
        if (mode == BagMode::None || children.empty()) {
            out.singles = std::move(children);
            return out;
        }
        planRanges(
            children,
            [&out](const Task &t) { out.singles.push_back(t); },
            [&out](const Task *first, const Task *last,
                   Priority priority) {
                Bag bag;
                bag.priority = priority;
                bag.tasks.assign(first, last);
                out.bags.push_back(std::move(bag));
            });
        return out;
    }
};

} // namespace hdcps

#endif // HDCPS_CORE_BAG_POLICY_H_
