/**
 * @file
 * Per-worker pooled allocation for bag envelopes.
 *
 * HD-CPS's bag transport is producer-allocates/consumer-frees: the
 * creating core heap-allocates a Bag, ships its pointer through the
 * sRQ, and whichever core dequeues it frees it. Under load that turns
 * the allocator into a cross-thread contention point (every bag is a
 * malloc on one thread and a free on another) and throws away the
 * task-vector capacity with every bag. This pool removes both costs:
 *
 *  - **acquire** is owner-only and serves from a per-worker free list
 *    (no synchronization at all on the fast path);
 *  - **release** from the owning worker is a plain list push; release
 *    from any other thread CAS-pushes the node onto the *home*
 *    worker's lock-free return stack (multi-producer Treiber push,
 *    owner-only pop-all via exchange — no ABA window);
 *  - recycled bags keep their std::vector capacity, so a warmed-up
 *    scheduler creates bags without touching the allocator again.
 *
 * Nodes are only ever freed by the pool destructor; callers must
 * release every acquired bag before destroying the pool (the scheduler
 * destructor drains its queues into the pool first).
 */

#ifndef HDCPS_CORE_BAG_POOL_H_
#define HDCPS_CORE_BAG_POOL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/bag_policy.h"
#include "support/compiler.h"
#include "support/logging.h"

namespace hdcps {

/** Free-list pool of Bag envelopes with cross-thread returns. */
class BagPool
{
  public:
    explicit BagPool(unsigned numWorkers)
    {
        hdcps_check(numWorkers >= 1, "need at least one worker");
        slots_.reserve(numWorkers);
        for (unsigned i = 0; i < numWorkers; ++i)
            slots_.push_back(std::make_unique<Slot>());
    }

    ~BagPool()
    {
        for (auto &slot : slots_) {
            freeChain(slot->freeList);
            freeChain(slot->returnStack.load(std::memory_order_acquire));
        }
    }

    BagPool(const BagPool &) = delete;
    BagPool &operator=(const BagPool &) = delete;

    /**
     * Hand out a cleared bag for worker `tid` (owner-only). The bag's
     * task vector keeps its recycled capacity. When `recycled` is
     * non-null it reports whether the bag came from the pool rather
     * than a fresh allocation.
     */
    Bag *
    acquire(unsigned tid, bool *recycled = nullptr)
    {
        Slot &slot = *slots_[tid];
        if (!slot.freeList) {
            // Take the whole cross-thread return stack in one exchange
            // (the acquire pairs with releasers' CAS-push releases).
            slot.freeList =
                slot.returnStack.exchange(nullptr,
                                          std::memory_order_acquire);
        }
        Node *node = slot.freeList;
        if (node) {
            slot.freeList = node->next;
            node->tasks.clear(); // keeps capacity
            node->priority = 0;
            slot.recycles.fetch_add(1, std::memory_order_relaxed);
            if (recycled)
                *recycled = true;
            return node;
        }
        node = new Node;
        node->home = tid;
        slot.allocations.fetch_add(1, std::memory_order_relaxed);
        if (recycled)
            *recycled = false;
        return node;
    }

    /**
     * Return a pool-acquired bag from worker `tid` (any thread driving
     * that worker id). Same-worker returns go straight onto the local
     * free list; cross-thread returns CAS-push onto the home worker's
     * return stack.
     */
    void
    release(unsigned tid, Bag *bag)
    {
        Node *node = static_cast<Node *>(bag);
        Slot &home = *slots_[node->home];
        if (node->home == tid) {
            node->next = home.freeList;
            home.freeList = node;
            return;
        }
        Node *head = home.returnStack.load(std::memory_order_relaxed);
        do {
            node->next = head;
        } while (!home.returnStack.compare_exchange_weak(
            head, node, std::memory_order_release,
            std::memory_order_relaxed));
    }

    /**
     * First-touch placement: pre-populate worker `tid`'s free list
     * with `count` envelopes allocated (and fully written) on the
     * calling thread. The scheduler's buffer-placement phase calls
     * this with the caller pinned to the worker's node, so the
     * kernel's first-touch policy homes pooled envelopes on the node
     * that owns them — exactly like the sRQ ring and the send arena.
     * Owner-context only (plain free-list pushes, like acquire).
     * Prewarmed envelopes are placement, not demand misses: they
     * count in prewarmed(), never in allocations().
     */
    void
    placeSlot(unsigned tid, size_t count)
    {
        Slot &slot = *slots_[tid];
        for (size_t i = 0; i < count; ++i) {
            Node *node = new Node;
            node->home = tid;
            node->next = slot.freeList;
            slot.freeList = node;
        }
        slot.prewarmed.fetch_add(count, std::memory_order_relaxed);
    }

    /** Fresh heap allocations performed (diagnostic). */
    uint64_t
    allocations() const
    {
        uint64_t total = 0;
        for (const auto &slot : slots_)
            total += slot->allocations.load(std::memory_order_relaxed);
        return total;
    }

    /** Acquires served from the free lists instead of the allocator. */
    uint64_t
    recycled() const
    {
        uint64_t total = 0;
        for (const auto &slot : slots_)
            total += slot->recycles.load(std::memory_order_relaxed);
        return total;
    }

    /** Envelopes pre-placed onto free lists by placeSlot. */
    uint64_t
    prewarmed() const
    {
        uint64_t total = 0;
        for (const auto &slot : slots_)
            total += slot->prewarmed.load(std::memory_order_relaxed);
        return total;
    }

  private:
    /** A pooled bag: the Bag payload plus intrusive pool linkage. All
     *  bags handed out by acquire() are Nodes, so release() may
     *  downcast safely. */
    struct Node : Bag
    {
        Node *next = nullptr;
        unsigned home = 0;
    };

    struct alignas(cacheLineBytes) Slot
    {
        Node *freeList = nullptr; ///< owner-only
        std::atomic<Node *> returnStack{nullptr};
        std::atomic<uint64_t> allocations{0};
        std::atomic<uint64_t> recycles{0};
        std::atomic<uint64_t> prewarmed{0};
    };

    static void
    freeChain(Node *node)
    {
        while (node) {
            Node *next = node->next;
            delete node;
            node = next;
        }
    }

    std::vector<std::unique_ptr<Slot>> slots_;
};

} // namespace hdcps

#endif // HDCPS_CORE_BAG_POOL_H_
