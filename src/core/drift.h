/**
 * @file
 * Priority-drift measurement — Equation 1 and Algorithm 3 of the paper.
 *
 * Each core publishes the priority of its most recently processed task
 * after every `sendThreshold` tasks (Algorithm 3's SEND to the master
 * core; in shared memory the "send" is a relaxed store into a padded
 * per-core mailbox). The master computes
 *
 *     Priority_Drift = (1/N) * sum_i |P0 - Pi|          (Eq. 1)
 *
 * where P0 is the best (numerically smallest) published priority — the
 * "global highest priority task" of the definition — and Pi each core's
 * published value. The computation is non-blocking: remote cores never
 * wait on it.
 */

#ifndef HDCPS_CORE_DRIFT_H_
#define HDCPS_CORE_DRIFT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "cps/task.h"
#include "support/compiler.h"
#include "support/fault.h"
#include "support/logging.h"

namespace hdcps {

/** Per-core latest-priority mailboxes plus the Eq. 1 reduction. */
class DriftTracker
{
  public:
    /** Mailboxes start at this sentinel until a core first publishes. */
    static constexpr Priority unpublished = ~Priority(0);

    explicit DriftTracker(unsigned numCores) : mailboxes_(numCores)
    {
        hdcps_check(numCores >= 1, "need at least one core");
        for (auto &m : mailboxes_)
            m.value.store(unpublished, std::memory_order_relaxed);
    }

    unsigned numCores() const
    {
        return static_cast<unsigned>(mailboxes_.size());
    }

    /** Reinitialize for a (possibly different) core count. */
    void
    reset(unsigned numCores)
    {
        hdcps_check(numCores >= 1, "need at least one core");
        std::vector<Padded<std::atomic<Priority>>> fresh(numCores);
        mailboxes_.swap(fresh);
        for (auto &m : mailboxes_)
            m.value.store(unpublished, std::memory_order_relaxed);
    }

    /** Algorithm 3: a core reports its latest processed priority. */
    void
    publish(unsigned core, Priority priority)
    {
        // Fault drill: stale mailboxes. Delaying the store models a
        // slow "send" to the master, so the reduction sees old values.
        faultSleep(faultsite::DriftPublishDelay);
        mailboxes_[core].value.store(priority, std::memory_order_relaxed);
    }

    /** Latest value published by a core (sentinel if none yet). */
    Priority
    published(unsigned core) const
    {
        return mailboxes_[core].value.load(std::memory_order_relaxed);
    }

    /**
     * Equation 1 over all cores that have published. Cores that have
     * not yet published are excluded (at startup only the seed core has
     * work). Returns 0 when fewer than two cores have published.
     *
     * Each mailbox is read exactly once, into a local snapshot, before
     * the reduction: re-loading during the sum would race with
     * concurrent publish() calls, and a core publishing a new minimum
     * between the best-scan and the sum makes the unsigned `p - best`
     * wrap to an astronomically large value that poisons the TDF
     * controller for the whole interval.
     */
    double
    computeDrift() const
    {
        Priority snapshot[snapshotChunk];
        Priority best = unpublished;
        unsigned published = 0;
        double sum = 0.0;
        size_t base = 0;
        // Chunked so arbitrary core counts need no heap allocation on
        // this (frequent under small sampling intervals) path. `best`
        // only decreases across chunks, so finishing a chunk before the
        // final best is known can only over-count; the fixup below
        // subtracts the accumulated error exactly.
        while (base < mailboxes_.size()) {
            size_t n = std::min(snapshotChunk,
                                mailboxes_.size() - base);
            Priority chunkBest = best;
            for (size_t i = 0; i < n; ++i) {
                Priority p = mailboxes_[base + i].value.load(
                    std::memory_order_relaxed);
                snapshot[i] = p;
                if (p != unpublished && p < chunkBest)
                    chunkBest = p;
            }
            if (chunkBest < best && published > 0) {
                sum += static_cast<double>(published) *
                       static_cast<double>(best - chunkBest);
            }
            best = chunkBest;
            for (size_t i = 0; i < n; ++i) {
                Priority p = snapshot[i];
                if (p == unpublished)
                    continue;
                ++published;
                sum += static_cast<double>(p - best);
            }
            base += n;
        }
        if (published < 2)
            return 0.0;
        return sum / static_cast<double>(published);
    }

  private:
    /** Stack-snapshot chunk size for computeDrift (covers the Table-I
     *  64-core machine in one pass; larger counts loop). */
    static constexpr size_t snapshotChunk = 64;

    std::vector<Padded<std::atomic<Priority>>> mailboxes_;
};

/** Running average of drift samples taken during one execution. */
class DriftSeries
{
  public:
    void
    record(double drift)
    {
        sum_ += drift;
        ++count_;
        if (drift > max_)
            max_ = drift;
    }

    uint64_t samples() const { return count_; }

    double
    average() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    double maxSample() const { return max_; }

  private:
    double sum_ = 0.0;
    double max_ = 0.0;
    uint64_t count_ = 0;
};

} // namespace hdcps

#endif // HDCPS_CORE_DRIFT_H_
