/**
 * @file
 * Priority-drift measurement — Equation 1 and Algorithm 3 of the paper.
 *
 * Each core publishes the priority of its most recently processed task
 * after every `sendThreshold` tasks (Algorithm 3's SEND to the master
 * core; in shared memory the "send" is a relaxed store into a padded
 * per-core mailbox). The master computes
 *
 *     Priority_Drift = (1/N) * sum_i |P0 - Pi|          (Eq. 1)
 *
 * where P0 is the best (numerically smallest) published priority — the
 * "global highest priority task" of the definition — and Pi each core's
 * published value. The computation is non-blocking: remote cores never
 * wait on it.
 */

#ifndef HDCPS_CORE_DRIFT_H_
#define HDCPS_CORE_DRIFT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cps/task.h"
#include "support/compiler.h"
#include "support/logging.h"

namespace hdcps {

/** Per-core latest-priority mailboxes plus the Eq. 1 reduction. */
class DriftTracker
{
  public:
    /** Mailboxes start at this sentinel until a core first publishes. */
    static constexpr Priority unpublished = ~Priority(0);

    explicit DriftTracker(unsigned numCores) : mailboxes_(numCores)
    {
        hdcps_check(numCores >= 1, "need at least one core");
        for (auto &m : mailboxes_)
            m.value.store(unpublished, std::memory_order_relaxed);
    }

    unsigned numCores() const
    {
        return static_cast<unsigned>(mailboxes_.size());
    }

    /** Reinitialize for a (possibly different) core count. */
    void
    reset(unsigned numCores)
    {
        hdcps_check(numCores >= 1, "need at least one core");
        std::vector<Padded<std::atomic<Priority>>> fresh(numCores);
        mailboxes_.swap(fresh);
        for (auto &m : mailboxes_)
            m.value.store(unpublished, std::memory_order_relaxed);
    }

    /** Algorithm 3: a core reports its latest processed priority. */
    void
    publish(unsigned core, Priority priority)
    {
        mailboxes_[core].value.store(priority, std::memory_order_relaxed);
    }

    /** Latest value published by a core (sentinel if none yet). */
    Priority
    published(unsigned core) const
    {
        return mailboxes_[core].value.load(std::memory_order_relaxed);
    }

    /**
     * Equation 1 over all cores that have published. Cores that have
     * not yet published are excluded (at startup only the seed core has
     * work). Returns 0 when fewer than two cores have published.
     */
    double
    computeDrift() const
    {
        Priority best = unpublished;
        unsigned published = 0;
        for (const auto &m : mailboxes_) {
            Priority p = m.value.load(std::memory_order_relaxed);
            if (p == unpublished)
                continue;
            ++published;
            if (p < best)
                best = p;
        }
        if (published < 2)
            return 0.0;
        double sum = 0.0;
        for (const auto &m : mailboxes_) {
            Priority p = m.value.load(std::memory_order_relaxed);
            if (p == unpublished)
                continue;
            sum += static_cast<double>(p - best);
        }
        return sum / static_cast<double>(published);
    }

  private:
    std::vector<Padded<std::atomic<Priority>>> mailboxes_;
};

/** Running average of drift samples taken during one execution. */
class DriftSeries
{
  public:
    void
    record(double drift)
    {
        sum_ += drift;
        ++count_;
        if (drift > max_)
            max_ = drift;
    }

    uint64_t samples() const { return count_; }

    double
    average() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    double maxSample() const { return max_; }

  private:
    double sum_ = 0.0;
    double max_ = 0.0;
    uint64_t count_ = 0;
};

} // namespace hdcps

#endif // HDCPS_CORE_DRIFT_H_
