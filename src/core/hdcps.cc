#include "core/hdcps.h"

#include <algorithm>
#include <thread>

#include "support/timer.h"

namespace hdcps {

namespace {

/**
 * The per-worker reclamation lock: a tiny spinlock. Owners block-spin
 * (their critical sections only contend with a reclaimer mid-drain,
 * which is short and rare); reclaimers must use the try variant so the
 * only blocking acquire anyone performs is on their *own* lock —
 * cross-worker acquisition never waits, hence never deadlocks.
 */
inline bool
tryLockReclaim(std::atomic<uint32_t> &lock)
{
    uint32_t expected = 0;
    return lock.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

inline void
lockReclaim(std::atomic<uint32_t> &lock)
{
    unsigned spins = 0;
    while (!tryLockReclaim(lock)) {
        if (++spins > 64) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

inline void
unlockReclaim(std::atomic<uint32_t> &lock)
{
    lock.store(0, std::memory_order_release);
}

/** Bag envelopes pre-placed per worker during buffer placement —
 *  enough to cover the in-flight bag churn before the first consumer
 *  returns start refilling the free list. */
constexpr size_t kBagPoolPrewarm = 4;

} // namespace

template <template <typename, typename> class LocalPqT>
BasicHdCpsScheduler<LocalPqT>::BasicHdCpsScheduler(unsigned numWorkers,
                                                   const HdCpsConfig &config)
    : Scheduler(numWorkers), config_(config), drift_(numWorkers),
      tdfController_(config.tdf), pool_(numWorkers)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config.sampleInterval >= 1, "sample interval must be >= 1");
    hdcps_check(config.fixedTdf <= 100, "fixedTdf is a percentage");
    hdcps_check(config.sendFlushThreshold >= 1,
                "send flush threshold must be >= 1");
    hdcps_check(config.localPqWays >= 1, "need at least one local-PQ way");
    hdcps_check(config.crossNodePct <= 100 ||
                    config.crossNodePct == kCrossNodeFollowTdf,
                "crossNodePct is a percentage (or kCrossNodeFollowTdf)");

    // The design-name stem comes from the local backend ("hdcps-srq"
    // for the exact heap, "hdcps-mq" for the relaxed MultiQueue); the
    // mechanism suffixes stack on top as before.
    name_ = LocalPq::kBaseName;
    if (config_.useTdf)
        name_ += "-tdf";
    if (config_.bags.mode == BagMode::Always)
        name_ += "-ac";
    else if (config_.bags.mode == BagMode::Selective)
        name_ += "-sc";

    // Hierarchical routing needs at least two node groups to tell
    // apart; a flat (or single-node-detected) topology keeps the
    // original single-draw chooseDest byte for byte.
    hierarchical_ =
        config_.topology.numNodes() >= 2 && numWorkers >= 2;

    workers_.reserve(numWorkers);
    const uint64_t now = nowNs();
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto w = std::make_unique<WorkerState>();
        // Worker index mixed *into* the seed word (not added to the
        // mixed output) so adjacent workers never get correlated
        // xoshiro streams — same fix as the MultiQueue's.
        w->rng.reseed(
            mix64(config.seed ^ (uint64_t(i) * 0x9e3779b97f4a7c15ULL)));
        w->pq.configure(
            config.localPqWays,
            mix64((config.seed + 0x5851f42d) ^
                  (uint64_t(i) * 0x9e3779b97f4a7c15ULL)));
        w->heartbeatNs.store(now, std::memory_order_relaxed);
        w->node = hierarchical_
                      ? config_.topology.nodeOfWorker(i, numWorkers)
                      : 0;
        workers_.push_back(std::move(w));
    }
    if (hierarchical_) {
        for (unsigned i = 0; i < numWorkers; ++i) {
            WorkerState &w = *workers_[i];
            for (unsigned p = 0; p < numWorkers; ++p) {
                if (p == i)
                    continue;
                (workers_[p]->node == w.node ? w.sameNodePeers
                                             : w.crossNodePeers)
                    .push_back(p);
            }
        }
    }

    // Buffer placement. The kernel's first-touch policy puts a page on
    // the node of the thread that first writes it, so on a pinnable
    // multi-node topology each worker's sRQ ring and send arena are
    // allocated+touched by a short-lived thread pinned to that worker's
    // node. This happens here, before any traffic exists, because
    // swapping buffers later (e.g. in onWorkerStart) would race
    // concurrent producers already delivering into the ring. Synthetic
    // and flat topologies allocate inline — same buffers, no threads.
    if (hierarchical_ && config_.topology.canPin()) {
        std::vector<std::thread> placers;
        placers.reserve(numWorkers);
        for (unsigned i = 0; i < numWorkers; ++i) {
            placers.emplace_back([this, i] {
                config_.topology.pinThreadToNode(workers_[i]->node);
                placeWorkerBuffers(i);
            });
        }
        for (std::thread &t : placers)
            t.join();
    } else {
        for (unsigned i = 0; i < numWorkers; ++i)
            placeWorkerBuffers(i);
    }
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::placeWorkerBuffers(unsigned tid)
{
    // Everything here allocates *and writes* on the calling thread —
    // the ring constructor initializes every slot's sequence number and
    // the vector fills zero their elements — so first-touch placement
    // follows the caller's pinning.
    WorkerState &w = *workers_[tid];
    w.rq = std::make_unique<ReceiveQueue<Envelope>>(config_.rqCapacity);
    w.sendArena.resize(size_t(numWorkers()) * config_.sendFlushThreshold);
    w.sendCount.assign(numWorkers(), 0);
    // Bag envelopes follow the same first-touch policy as the ring and
    // the arena: prewarm a handful of pool nodes on the owning thread
    // so the envelopes this worker forms bags from start out homed on
    // its node instead of wherever the first demand miss ran.
    if (config_.bags.mode != BagMode::None)
        pool_.placeSlot(tid, kBagPoolPrewarm);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::onWorkerStart(unsigned tid)
{
    WorkerState &w = *workers_[tid];
    // Best-effort: synthetic/flat topologies carry no CPU lists, so the
    // pin is a no-op and tests stay host-independent. Called by the
    // slot's own thread — at startup and again by every healed
    // replacement, which is exactly how a replacement rejoins its
    // slot's node group.
    if (hierarchical_ && config_.topology.canPin())
        config_.topology.pinThreadToNode(w.node);
    w.binds.fetch_add(1, std::memory_order_relaxed);
}

template <template <typename, typename> class LocalPqT>
unsigned
BasicHdCpsScheduler<LocalPqT>::nodeOfWorker(unsigned tid) const
{
    return workers_[tid]->node;
}

template <template <typename, typename> class LocalPqT>
uint64_t
BasicHdCpsScheduler<LocalPqT>::workerBinds(unsigned tid) const
{
    return workers_[tid]->binds.load(std::memory_order_relaxed);
}

template <template <typename, typename> class LocalPqT>
BasicHdCpsScheduler<LocalPqT>::~BasicHdCpsScheduler()
{
    // Return any bags still in flight to the pool (runs cut short by
    // tests); the pool frees the backing nodes when it destructs. The
    // drain uses drainPop, not tryPop: with the srq.pop.fail drill
    // still armed, tryPop reports empty while entries remain, and a
    // destructor that believes it would strand their pooled bags past
    // the pool's release-before-destruction contract.
    for (unsigned tid = 0; tid < numWorkers(); ++tid) {
        WorkerState &w = *workers_[tid];
        Envelope envelope;
        while (w.rq->drainPop(envelope)) {
            if (envelope.bag)
                pool_.release(tid, envelope.bag);
        }
        for (unsigned d = 0; d < numWorkers(); ++d) {
            const Envelope *seg =
                w.sendArena.data() + size_t(d) * config_.sendFlushThreshold;
            for (uint32_t i = 0; i < w.sendCount[d]; ++i) {
                if (seg[i].bag)
                    pool_.release(tid, seg[i].bag);
            }
            w.sendCount[d] = 0;
        }
        while (!w.pq.empty()) {
            PqEntry entry = w.pq.pop();
            if (entry.bag)
                pool_.release(tid, entry.bag);
        }
    }
}

template <template <typename, typename> class LocalPqT>
HdCpsConfig
BasicHdCpsScheduler<LocalPqT>::configSrq()
{
    HdCpsConfig config;
    config.useTdf = false;
    config.bags.mode = BagMode::None;
    return config;
}

template <template <typename, typename> class LocalPqT>
HdCpsConfig
BasicHdCpsScheduler<LocalPqT>::configSrqTdf()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::None;
    return config;
}

template <template <typename, typename> class LocalPqT>
HdCpsConfig
BasicHdCpsScheduler<LocalPqT>::configSrqTdfAc()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Always;
    return config;
}

template <template <typename, typename> class LocalPqT>
HdCpsConfig
BasicHdCpsScheduler<LocalPqT>::configSw()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Selective;
    return config;
}

template <template <typename, typename> class LocalPqT>
unsigned
BasicHdCpsScheduler<LocalPqT>::currentTdf() const
{
    return config_.useTdf ? tdfController_.current() : config_.fixedTdf;
}

template <template <typename, typename> class LocalPqT>
double
BasicHdCpsScheduler<LocalPqT>::averageDrift() const
{
    return driftSeries_.average();
}

template <template <typename, typename> class LocalPqT>
size_t
BasicHdCpsScheduler<LocalPqT>::sizeApprox() const
{
    // Only race-free state is read: sRQ pointers are atomics, the
    // overflow queue locks, and the private PQ + active bag are covered
    // by the owner's self-published localBuffered estimate (which can
    // lag by one operation). Good enough for the watchdog's stall dump
    // and the reclaimers' is-anything-stranded pre-check.
    size_t total = 0;
    for (const auto &w : workers_) {
        total += w->rq->sizeApprox() + w->overflow.size() +
                 w->localBuffered.load(std::memory_order_relaxed) +
                 w->stagedTasks.load(std::memory_order_relaxed);
    }
    return total;
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::setReclaimAfterMs(uint64_t ms)
{
    reclaimAfterNs_.store(ms * 1000000, std::memory_order_relaxed);
    // Fresh heartbeats: the time a scheduler sat configured-but-idle
    // before the run must not count toward anyone's staleness.
    const uint64_t now = nowNs();
    for (auto &w : workers_) {
        w->heartbeatNs.store(now, std::memory_order_relaxed);
        w->reclaimBackoffNs = 0;
        w->reclaimBackoffUntilNs = 0;
    }
}

template <template <typename, typename> class LocalPqT>
uint64_t
BasicHdCpsScheduler<LocalPqT>::heartbeatPops(unsigned tid) const
{
    return workers_[tid]->heartbeatPops.load(std::memory_order_relaxed);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::quarantine(unsigned tid)
{
    uint32_t was =
        workers_[tid]->quarantined.exchange(1, std::memory_order_relaxed);
    if (was == 0)
        quarantineCount_.fetch_add(1, std::memory_order_relaxed);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::reinstate(unsigned tid)
{
    uint32_t was =
        workers_[tid]->quarantined.exchange(0, std::memory_order_relaxed);
    if (was != 0)
        quarantineCount_.fetch_sub(1, std::memory_order_relaxed);
}

template <template <typename, typename> class LocalPqT>
bool
BasicHdCpsScheduler<LocalPqT>::isQuarantined(unsigned tid) const
{
    return workers_[tid]->quarantined.load(std::memory_order_relaxed) !=
           0;
}

template <template <typename, typename> class LocalPqT>
size_t
BasicHdCpsScheduler<LocalPqT>::reclaimWorker(unsigned reclaimer,
                                             unsigned victim)
{
    const unsigned n = numWorkers();
    if (n <= 1)
        return 0;
    WorkerState &v = *workers_[victim];
    // Serialize against opportunistic peer reclaimers (who try-lock and
    // give up) and against a concurrent supervisor call. The victim's
    // own thread is out of push/tryPop by contract, so a blocking
    // acquire here only ever waits for a short peer drain to finish.
    lockReclaim(v.reclaimLock);

    // Everything the victim buffered, re-enveloped for redistribution.
    std::vector<Envelope> moved;
    for (unsigned d = 0; d < n; ++d) {
        const Envelope *seg =
            v.sendArena.data() + size_t(d) * config_.sendFlushThreshold;
        for (uint32_t i = 0; i < v.sendCount[d]; ++i)
            moved.push_back(seg[i]);
        v.sendCount[d] = 0;
    }
    v.dirtySends.clear();
    v.stagedTasks.store(0, std::memory_order_relaxed);
    Envelope envelope;
    while (v.rq->drainPop(envelope))
        moved.push_back(envelope);
    Task task;
    while (v.overflow.tryPop(task))
        moved.push_back(Envelope{task, nullptr});
    for (const Task &t : v.activeBag)
        moved.push_back(Envelope{t, nullptr});
    v.activeBag.clear();
    while (!v.pq.empty()) {
        PqEntry entry = v.pq.pop();
        moved.push_back(Envelope{entry.task, entry.bag});
    }
    v.localBuffered.store(0, std::memory_order_relaxed);
    unlockReclaim(v.reclaimLock);

    // Redistribute round-robin into the *other* live workers' sRQs —
    // multi-producer-safe from any thread — spilling to their locked
    // overflow queues when full. Never into a private PQ: the peers'
    // owner threads are running and their PQs are theirs alone.
    //
    // With a multi-node topology the victim's *same-node* peers are
    // preferred: its tasks carry priorities from that node's region of
    // the problem, and keeping them there preserves the locality the
    // hierarchical chooseDest built up. Cross-node peers only take over
    // when every same-node peer is quarantined too.
    size_t tasksMoved = 0;
    std::vector<unsigned> flatOrder;
    if (!hierarchical_) {
        flatOrder.reserve(n - 1);
        for (unsigned k = 0; k < n; ++k) {
            unsigned candidate = (reclaimer + k) % n;
            if (candidate != victim)
                flatOrder.push_back(candidate);
        }
    }
    const std::vector<unsigned> &primary =
        hierarchical_ ? v.sameNodePeers : flatOrder;
    const std::vector<unsigned> &secondary =
        hierarchical_ ? v.crossNodePeers : flatOrder;
    size_t primaryCursor = 0;
    size_t secondaryCursor = 0;
    auto pickLive = [this](const std::vector<unsigned> &cands,
                           size_t *cursor) -> unsigned {
        for (size_t t = 0; t < cands.size(); ++t) {
            unsigned c = cands[(*cursor + t) % cands.size()];
            if (workers_[c]->quarantined.load(
                    std::memory_order_relaxed) == 0) {
                *cursor = (*cursor + t + 1) % cands.size();
                return c;
            }
        }
        return numWorkers();
    };
    for (const Envelope &e : moved) {
        unsigned dest = pickLive(primary, &primaryCursor);
        if (dest == n && hierarchical_)
            dest = pickLive(secondary, &secondaryCursor);
        if (dest == n) {
            // Every peer is quarantined too (pathological): park the
            // tasks back in the victim's overflow so nothing is lost —
            // the replacement worker drains it.
            if (e.bag) {
                for (const Task &t : e.bag->tasks)
                    v.overflow.push(t);
                pool_.release(victim, e.bag);
            } else {
                v.overflow.push(e.task);
            }
            continue;
        }
        tasksMoved += e.bag ? e.bag->tasks.size() : size_t(1);
        if (!workers_[dest]->rq->tryPush(e)) {
            if (e.bag) {
                for (const Task &t : e.bag->tasks)
                    workers_[dest]->overflow.push(t);
                pool_.release(victim, e.bag);
            } else {
                workers_[dest]->overflow.push(e.task);
            }
        }
    }
    reclaimedTasks_.fetch_add(tasksMoved, std::memory_order_relaxed);
    return tasksMoved;
}

template <template <typename, typename> class LocalPqT>
unsigned
BasicHdCpsScheduler<LocalPqT>::chooseDest(unsigned tid, unsigned tdf)
{
    WorkerState &w = *workers_[tid];
    const unsigned n = numWorkers();
    if (n == 1)
        return tid;
    if (!hierarchical_) {
        // One draw decides both: the bound factorizes as 100 * (n - 1),
        // so r % 100 (the TDF roll) and r / 100 (the remote pick,
        // uniform over the other workers) are independent uniforms —
        // half the generator cost of two separate draws on the hottest
        // routing path.
        const uint64_t r = w.rng.below(uint64_t(100) * (n - 1));
        if (static_cast<unsigned>(r % 100) >= tdf)
            return tid;
        unsigned dest = static_cast<unsigned>(r / 100);
        if (dest >= tid)
            ++dest;
        // Supervision mask: while any worker is quarantined (rare — one
        // relaxed load says so), remote picks that land on it fall back
        // to self-enqueue, so no new work routes toward queues being
        // reclaimed. Re-rolling instead would bias the distribution
        // toward re-checking; self is always safe and the quarantine is
        // short.
        if (__builtin_expect(
                quarantineCount_.load(std::memory_order_relaxed) != 0,
                0) &&
            workers_[dest]->quarantined.load(std::memory_order_relaxed) !=
                0)
            return tid;
        return dest;
    }
    // Hierarchical (multi-node) routing: the flat single draw splits in
    // two levels. The same factorized-draw trick supplies both rolls —
    // r % 100 is the TDF roll exactly as before, r / 100 decides
    // whether this remote send may cross node boundaries. The effective
    // cross-node share either tracks the live TDF (the default
    // kCrossNodeFollowTdf: low drift keeps remote traffic on-node, high
    // drift widens its reach along with its rate) or is pinned by
    // config for experiments. The destination itself is a third draw,
    // uniform within the chosen peer group.
    const uint64_t r = w.rng.below(uint64_t(100) * 100);
    if (static_cast<unsigned>(r % 100) >= tdf)
        return tid;
    const unsigned crossPct = config_.crossNodePct == kCrossNodeFollowTdf
                                  ? tdf
                                  : config_.crossNodePct;
    const bool wantCross = static_cast<unsigned>(r / 100) < crossPct;
    // Workers alone on their node have no same-node peers and always
    // send cross-node; the converse (no cross-node peers) cannot happen
    // with >= 2 occupied nodes, but the fallback keeps this total.
    // Which list the draw lands in already says whether the pick
    // crosses nodes (every cross-node peer is off-node by
    // construction), so `crossed` costs no destination dereference.
    const std::vector<unsigned> *peers;
    bool crossed;
    if (wantCross || w.sameNodePeers.empty()) {
        crossed = !w.crossNodePeers.empty();
        peers = crossed ? &w.crossNodePeers : &w.sameNodePeers;
    } else {
        crossed = false;
        peers = &w.sameNodePeers;
    }
    if (peers->empty())
        return tid;
    const unsigned dest =
        (*peers)[static_cast<size_t>(w.rng.below(peers->size()))];
    if (__builtin_expect(
            quarantineCount_.load(std::memory_order_relaxed) != 0, 0) &&
        workers_[dest]->quarantined.load(std::memory_order_relaxed) != 0)
        return tid;
    // Only the distributed single-writer stat is bumped here; the
    // registry's CrossNode/SameNodeEnqueues counters sync from it in
    // sampleNow (paced, one amortized fetch_add per interval) so the
    // hottest routing path never pays a registry RMW.
    bumpCounter(crossed ? w.stats.crossNodeEnqueues
                        : w.stats.sameNodeEnqueues);
    return dest;
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::enqueueLocal(unsigned tid, WorkerState &w,
                             const Envelope &envelope)
{
    // Local enqueue goes straight into the private PQ — no receive
    // queue hop needed (Figure 2, path 1a). Incoming remote work is
    // NOT drained here: popLocal integrates it before every dequeue
    // decision, which is the only place ordering depends on it.
    // Caller holds the owner's reclaimLock when reclamation is armed.
    w.pq.push(makeEntry(envelope.task, envelope.bag));
    w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                          std::memory_order_relaxed);
    bumpCounter(w.stats.localEnqueues);
    if (metrics_)
        metrics_->add(tid, WorkerCounter::LocalEnqueues);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::spillToOverflow(unsigned from, unsigned dest,
                                const Envelope &envelope)
{
    // sRQ full (or fault-forced): spill to the destination's locked
    // overflow queue. Bags are unpacked here — the overflow path is the
    // slow path anyway — and their envelopes go back to the pool.
    // Counters attribute to `from`: the *acting* thread, so the
    // registry's relaxed-write contract holds and per-worker numbers
    // answer "who spilled", not "who was spilled onto".
    bumpCounter(workers_[from]->stats.overflowPushes);
    if (metrics_)
        metrics_->add(from, WorkerCounter::OverflowPushes);
    if (envelope.bag) {
        for (const Task &t : envelope.bag->tasks)
            workers_[dest]->overflow.push(t);
        pool_.release(from, envelope.bag);
    } else {
        workers_[dest]->overflow.push(envelope.task);
    }
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::deliver(unsigned from, unsigned dest,
                        const Envelope &envelope)
{
    if (dest == from) {
        // With reclamation on, the PQ is no longer owner-exclusive, so
        // take our own lock.
        WorkerState &w = *workers_[from];
        const bool guarded =
            reclaimAfterNs_.load(std::memory_order_relaxed) != 0;
        if (guarded)
            lockReclaim(w.reclaimLock);
        enqueueLocal(from, w, envelope);
        if (guarded)
            unlockReclaim(w.reclaimLock);
        return;
    }
    bumpCounter(workers_[from]->stats.remoteEnqueues);
    if (metrics_)
        metrics_->add(from, WorkerCounter::RemoteEnqueues);
    // The fault site forces the spill without consuming sRQ slots, so
    // the overflow path is testable independent of queue capacity.
    if (!faultFires(faultsite::HdcpsOverflowSpill) &&
        workers_[dest]->rq->tryPush(envelope)) {
        return;
    }
    spillToOverflow(from, dest, envelope);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::stageRemote(unsigned from, unsigned dest,
                            const Envelope &envelope)
{
    // Combining buffer: park the envelope per destination; flushDest
    // ships the whole run with one multi-slot sRQ claim. Caller holds
    // the owner's reclaimLock when reclamation is armed, so a reclaimer
    // never observes a half-staged buffer.
    WorkerState &w = *workers_[from];
    bumpCounter(w.stats.remoteEnqueues);
    if (metrics_)
        metrics_->add(from, WorkerCounter::RemoteEnqueues);
    const size_t cap = config_.sendFlushThreshold;
    uint32_t n = w.sendCount[dest];
    if (n == 0)
        w.dirtySends.push_back(dest);
    w.sendArena[size_t(dest) * cap + n] = envelope;
    w.sendCount[dest] = ++n;
    bumpCounter(w.stagedTasks, envelope.bag ? envelope.bag->tasks.size()
                                            : size_t(1));
    if (n >= cap)
        flushDest(from, dest);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::flushDest(unsigned from, unsigned dest)
{
    WorkerState &w = *workers_[from];
    const uint32_t staged = w.sendCount[dest];
    if (staged == 0)
        return;
    const Envelope *buf =
        w.sendArena.data() + size_t(dest) * config_.sendFlushThreshold;
    bumpCounter(w.stats.srqBatchFlushes);
    if (metrics_)
        metrics_->add(from, WorkerCounter::SrqBatchFlushes);
    // Tally the staged weight from the (cache-warm) segment at flush
    // time, rather than maintaining a per-destination running total on
    // every staged task. Must happen before the spill fallback below:
    // spilling a bag releases its envelope back to the pool.
    size_t weight = 0;
    for (uint32_t i = 0; i < staged; ++i)
        weight += buf[i].bag ? buf[i].bag->tasks.size() : size_t(1);
    size_t pushed = 0;
    // One fault check per flush: a firing site forces the whole run
    // down the spill path, same observable outcome as a full sRQ.
    if (!faultFires(faultsite::HdcpsOverflowSpill)) {
        ReceiveQueue<Envelope> &rq = *workers_[dest]->rq;
        while (pushed < staged) {
            size_t n = rq.tryPushN(buf + pushed, staged - pushed);
            if (n == 0)
                break; // destination full: spill the remainder
            pushed += n;
        }
    }
    for (size_t i = pushed; i < staged; ++i)
        spillToOverflow(from, dest, buf[i]);
    w.stagedTasks.store(w.stagedTasks.load(std::memory_order_relaxed) -
                            weight,
                        std::memory_order_relaxed);
    w.sendCount[dest] = 0;
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::flushSends(unsigned tid)
{
    WorkerState &w = *workers_[tid];
    if (w.dirtySends.empty())
        return;
    // dirtySends may hold duplicates after an eager threshold flush;
    // flushDest on an already-empty buffer is a no-op, so that's fine.
    for (unsigned dest : w.dirtySends)
        flushDest(tid, dest);
    w.dirtySends.clear();
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::push(unsigned tid, const Task &task)
{
    // Singles bypass the combining buffers: push() has no batch end to
    // flush at, and staying direct keeps the one-task latency path
    // identical to the original design.
    Envelope envelope;
    envelope.task = task;
    deliver(tid, chooseDest(tid, currentTdf()), envelope);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::pushBatch(unsigned tid, const Task *tasks, size_t count)
{
    if (count == 0)
        return;
    WorkerState &w = *workers_[tid];
    // One TDF read per batch: the heuristic's output only changes on
    // sample boundaries, so per-task reads just add an atomic load to
    // the hottest path without changing any decision.
    const unsigned tdf = currentTdf();
    const bool guarded =
        reclaimAfterNs_.load(std::memory_order_relaxed) != 0;
    // The owner's lock is held across the whole batch when reclamation
    // is armed: it covers the local PQ inserts *and* the combining
    // buffers, so a reclaimer sees envelopes either staged or flushed,
    // never a torn buffer.
    if (guarded)
        lockReclaim(w.reclaimLock);

    auto route = [&](const Task &task, Bag *bag) {
        Envelope envelope;
        envelope.task = task;
        envelope.bag = bag;
        unsigned dest = chooseDest(tid, tdf);
        if (dest == tid)
            enqueueLocal(tid, w, envelope);
        else
            stageRemote(tid, dest, envelope);
    };

    if (config_.bags.mode == BagMode::None) {
        for (size_t i = 0; i < count; ++i)
            route(tasks[i], nullptr);
    } else {
        // planRanges sorts a reused per-worker scratch copy in place —
        // no fresh vector per batch — and bag payloads land in pooled
        // envelopes whose vectors keep their recycled capacity.
        std::vector<Task> &scratch = w.planScratch;
        scratch.assign(tasks, tasks + count);
        config_.bags.planRanges(
            scratch, [&](const Task &t) { route(t, nullptr); },
            [&](const Task *first, const Task *last, Priority priority) {
                bool recycled = false;
                Bag *bag = pool_.acquire(tid, &recycled);
                bag->priority = priority;
                bag->tasks.assign(first, last);
                bumpCounter(w.stats.bagsCreated);
                bumpCounter(w.stats.tasksInBags,
                            uint64_t(last - first));
                if (metrics_) {
                    metrics_->add(tid, WorkerCounter::BagsCreated);
                    metrics_->add(tid, WorkerCounter::TasksInBags,
                                  size_t(last - first));
                    if (recycled)
                        metrics_->add(tid, WorkerCounter::PoolRecycled);
                }
                Task meta;
                meta.priority = priority;
                route(meta, bag);
            });
    }

    // End-of-batch flush: the Scheduler contract says pushed tasks are
    // poppable once pushBatch returns, so no envelope may stay staged.
    flushSends(tid);
    if (guarded)
        unlockReclaim(w.reclaimLock);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::drainIncoming(WorkerState &w)
{
    // Move everything the sRQ and the overflow spill hold into the
    // private PQ. Incoming work is handled "with high priority"
    // (Section III-A) — i.e. before the next dequeue decision. The
    // batch goes through pushBulk, so a large drain pays Floyd's O(n)
    // heapify instead of n sift-ups.
    std::vector<PqEntry> &batch = w.drainScratch;
    batch.clear();
    // Bulk-consume the sRQ in runs: one readPtr advance (and one fault
    // check) per run instead of per entry.
    Envelope run[32];
    size_t n;
    while ((n = w.rq->tryPopN(run, 32)) != 0) {
        for (size_t i = 0; i < n; ++i)
            batch.push_back(makeEntry(run[i].task, run[i].bag));
    }
    Task task;
    while (w.overflow.tryPop(task))
        batch.push_back(makeEntry(task, nullptr));
    if (!batch.empty())
        w.pq.pushBulk(batch.begin(), batch.end());
}

template <template <typename, typename> class LocalPqT>
bool
BasicHdCpsScheduler<LocalPqT>::tryPop(unsigned tid, Task &out)
{
    WorkerState &w = *workers_[tid];
    const uint64_t staleNs = reclaimAfterNs_.load(std::memory_order_relaxed);
    if (staleNs == 0)
        return popLocal(tid, w, out); // original lock-free fast path

    // Heartbeat first: a worker that reaches here is alive even if it
    // finds nothing, and publishing before the lock keeps a long drain
    // from making *us* look stale to everyone else.
    w.heartbeatNs.store(nowNs(), std::memory_order_relaxed);
    lockReclaim(w.reclaimLock);
    bool got = popLocal(tid, w, out);
    if (!got)
        got = reclaimFromStraggler(tid, staleNs, out);
    unlockReclaim(w.reclaimLock);
    if (got)
        w.heartbeatPops.fetch_add(1, std::memory_order_relaxed);
    return got;
}

template <template <typename, typename> class LocalPqT>
bool
BasicHdCpsScheduler<LocalPqT>::popLocal(unsigned tid, WorkerState &w, Task &out)
{
    // Flush-on-pop: anything still staged in the combining buffers goes
    // out before we look for work, so a worker never sits on envelopes
    // it owes peers while it idles or drains its own queue. pushBatch
    // always flushes at batch end, so this is one relaxed load of an
    // owner-written counter in the common case.
    if (w.stagedTasks.load(std::memory_order_relaxed) != 0)
        flushSends(tid);

    // A dequeued bag binds the core until its tasks are done
    // (Section III-B) — serve the active bag first.
    if (!w.activeBag.empty()) {
        out = w.activeBag.back();
        w.activeBag.pop_back();
        w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                              std::memory_order_relaxed);
        maybeSample(tid, w, out.priority);
        return true;
    }

    // Integrate incoming work before the dequeue decision (Section
    // III-A: handled "with high priority"). The drain call is gated on
    // two cheap probes — most pops find both queues empty, and paying
    // a full drain pass (scratch reset, pop loop, heap build check)
    // per pop is measurable on the hot path.
    if (!w.rq->emptyApprox() || w.overflow.sizeApprox() != 0)
        drainIncoming(w);

    if (w.pq.empty()) {
        w.localBuffered.store(0, std::memory_order_relaxed);
        return false;
    }

    PqEntry entry = w.pq.pop();
    if (entry.bag) {
        // Swap instead of move: the bag leaves with activeBag's spent
        // vector (and its capacity) and returns to the pool, so a
        // warmed-up pool never reallocates either buffer.
        w.activeBag.swap(entry.bag->tasks);
        pool_.release(tid, entry.bag);
        hdcps_check(!w.activeBag.empty(), "dequeued an empty bag");
        out = w.activeBag.back();
        w.activeBag.pop_back();
    } else {
        out = entry.task;
    }
    w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                          std::memory_order_relaxed);
    maybeSample(tid, w, out.priority);
    return true;
}

template <template <typename, typename> class LocalPqT>
bool
BasicHdCpsScheduler<LocalPqT>::reclaimFromStraggler(unsigned tid, uint64_t staleNs,
                                     Task &out)
{
    WorkerState &me = *workers_[tid];
    const uint64_t now = nowNs();
    if (now < me.reclaimBackoffUntilNs)
        return false;

    bool sawStale = false;
    size_t moved = 0;
    const unsigned n = numWorkers();
    auto tryVictim = [&](unsigned vid) {
        WorkerState &victim = *workers_[vid];
        uint64_t hb = victim.heartbeatNs.load(std::memory_order_relaxed);
        if (hb <= now && now - hb < staleNs)
            return; // fresh heartbeat: not a straggler
        // Lock-free pre-check: a stale-but-empty peer strands nothing.
        if (victim.rq->sizeApprox() == 0 && victim.overflow.size() == 0 &&
            victim.localBuffered.load(std::memory_order_relaxed) == 0 &&
            victim.stagedTasks.load(std::memory_order_relaxed) == 0) {
            return;
        }
        sawStale = true;
        if (!tryLockReclaim(victim.reclaimLock)) {
            // Either the owner woke up or another reclaimer beat us —
            // both resolve the stall, so just record the race and move
            // on. Never block here (deadlock-freedom, see header).
            reclaimRaces_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_)
                metrics_->add(tid, WorkerCounter::ReclaimRaces);
            return;
        }
        // Drain *everything* the victim buffered — sRQ, overflow spill,
        // active bag, its private PQ, and its send combining buffers (a
        // worker that stalled mid-pushBatch owes those envelopes to its
        // peers; with the victim's lock held they are ours to take).
        for (unsigned d = 0; d < n; ++d) {
            const Envelope *seg = victim.sendArena.data() +
                                  size_t(d) * config_.sendFlushThreshold;
            for (uint32_t i = 0; i < victim.sendCount[d]; ++i) {
                const Envelope &e = seg[i];
                moved += e.bag ? e.bag->tasks.size() : size_t(1);
                me.pq.push(makeEntry(e.task, e.bag));
            }
            victim.sendCount[d] = 0;
        }
        victim.dirtySends.clear();
        victim.stagedTasks.store(0, std::memory_order_relaxed);
        Envelope envelope;
        while (victim.rq->tryPop(envelope)) {
            moved += envelope.bag ? envelope.bag->tasks.size() : 1;
            me.pq.push(makeEntry(envelope.task, envelope.bag));
        }
        Task task;
        while (victim.overflow.tryPop(task)) {
            ++moved;
            me.pq.push(makeEntry(task, nullptr));
        }
        for (const Task &t : victim.activeBag) {
            ++moved;
            me.pq.push(makeEntry(t, nullptr));
        }
        victim.activeBag.clear();
        while (!victim.pq.empty()) {
            PqEntry entry = victim.pq.pop();
            moved += entry.bag ? entry.bag->tasks.size() : 1;
            me.pq.push(entry);
        }
        victim.localBuffered.store(0, std::memory_order_relaxed);
        unlockReclaim(victim.reclaimLock);
    };
    // Victim scan order: same-node stragglers before cross-node ones.
    // Reclaimed tasks land in the reclaimer's private PQ, so draining a
    // same-node victim keeps the stranded work (and its first-touch
    // pages) on the node that owns it; cross-node peers stay reachable
    // as the fallback so no straggler is ever stranded. A flat (or
    // single-node) topology keeps the original modular scan.
    if (hierarchical_) {
        for (unsigned vid : me.sameNodePeers) {
            if (moved != 0)
                break;
            tryVictim(vid);
        }
        for (unsigned vid : me.crossNodePeers) {
            if (moved != 0)
                break;
            tryVictim(vid);
        }
    } else {
        for (unsigned k = 1; k < n && moved == 0; ++k)
            tryVictim((tid + k) % n);
    }

    if (moved == 0) {
        if (sawStale) {
            // Contended or raced-away straggler: back off exponentially
            // so a pack of idle workers doesn't spin on one victim.
            const uint64_t base =
                std::max<uint64_t>(staleNs / 16, 50 * 1000);
            me.reclaimBackoffNs =
                me.reclaimBackoffNs == 0
                    ? base
                    : std::min(me.reclaimBackoffNs * 2, staleNs);
            me.reclaimBackoffUntilNs = now + me.reclaimBackoffNs;
        }
        return false;
    }

    me.reclaimBackoffNs = 0;
    me.reclaimBackoffUntilNs = 0;
    reclaimedTasks_.fetch_add(moved, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(tid, WorkerCounter::ReclaimedTasks, moved);
    return popLocal(tid, me, out);
}

template <template <typename, typename> class LocalPqT>
void
BasicHdCpsScheduler<LocalPqT>::sampleNow(unsigned tid, Priority poppedPriority)
{
    WorkerState &w = *workers_[tid];
    // Algorithm 3: report the latest processed priority to the master.
    drift_.publish(tid, poppedPriority);
    if (metrics_) {
        metrics_->record(tid, WorkerSeries::SrqOccupancy,
                         static_cast<double>(w.rq->sizeApprox()));
        if (hierarchical_) {
            // Lazy registry sync for the node-locality counters:
            // chooseDest only bumps the worker's own distributed stat,
            // and this paced path folds the delta into the registry in
            // one amortized add. The registry can lag the scheduler's
            // own crossNodeEnqueues()/sameNodeEnqueues() totals by up
            // to one sample interval; those totals are authoritative.
            const uint64_t cross =
                w.stats.crossNodeEnqueues.load(std::memory_order_relaxed);
            if (cross != w.syncedCrossNodeEnqueues) {
                metrics_->add(tid, WorkerCounter::CrossNodeEnqueues,
                              cross - w.syncedCrossNodeEnqueues);
                w.syncedCrossNodeEnqueues = cross;
            }
            const uint64_t same =
                w.stats.sameNodeEnqueues.load(std::memory_order_relaxed);
            if (same != w.syncedSameNodeEnqueues) {
                metrics_->add(tid, WorkerCounter::SameNodeEnqueues,
                              same - w.syncedSameNodeEnqueues);
                w.syncedSameNodeEnqueues = same;
            }
        }
    }
    if (!config_.useTdf)
        return;

    // Algorithm 2 fires once a full round of reports has arrived (the
    // paper's dedicated core updates "after receiving task priorities
    // from all cores"), independent of any single worker's progress.
    // The reduction is cheap and rare; a mutex keeps the controller's
    // internal history consistent, and try_lock keeps the path
    // non-blocking for everyone who loses the race.
    unsigned round = publishRound_.fetch_add(1,
                                             std::memory_order_acq_rel) +
                     1;
    if (round < numWorkers())
        return;
    if (!updateMutex_.try_lock())
        return;
    // Subtracting one full round (rather than storing 0) keeps the
    // reports that raced in between the winning fetch_add and this
    // reset: discarding them stretched sampling intervals under
    // contention.
    publishRound_.fetch_sub(numWorkers(), std::memory_order_relaxed);
    double drift = drift_.computeDrift();
    driftSeries_.record(drift);
    unsigned tdf = tdfController_.update(drift);
    if (metrics_) {
        metrics_->recordGlobal(GlobalSeries::TdfDrift, drift);
        metrics_->recordGlobal(GlobalSeries::Tdf,
                               static_cast<double>(tdf));
        if (hierarchical_) {
            // Cumulative cross-node share of remote sends so far, the
            // observable output of the hierarchical split. Recorded
            // here because the try_lock serializes writers, matching
            // recordGlobal's contract.
            const uint64_t cross = crossNodeEnqueues();
            const uint64_t total = cross + sameNodeEnqueues();
            if (total != 0) {
                metrics_->recordGlobal(GlobalSeries::CrossNodePct,
                                       100.0 * double(cross) /
                                           double(total));
            }
        }
    }
    updateMutex_.unlock();
}

// The two shipped backends (see core/local_pq.h). Keeping the member
// definitions here and instantiating explicitly preserves the old
// single-TU codegen for the exact-heap scheduler.
template class BasicHdCpsScheduler<DAryLocalPq>;
template class BasicHdCpsScheduler<RelaxedMqLocalPq>;

} // namespace hdcps
