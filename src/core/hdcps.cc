#include "core/hdcps.h"

namespace hdcps {

HdCpsScheduler::HdCpsScheduler(unsigned numWorkers,
                               const HdCpsConfig &config)
    : Scheduler(numWorkers), config_(config), drift_(numWorkers),
      tdfController_(config.tdf)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config.sampleInterval >= 1, "sample interval must be >= 1");
    hdcps_check(config.fixedTdf <= 100, "fixedTdf is a percentage");

    name_ = "hdcps-srq";
    if (config_.useTdf)
        name_ += "-tdf";
    if (config_.bags.mode == BagMode::Always)
        name_ += "-ac";
    else if (config_.bags.mode == BagMode::Selective)
        name_ += "-sc";

    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto w = std::make_unique<WorkerState>();
        w->rq = std::make_unique<ReceiveQueue<Envelope>>(config.rqCapacity);
        w->rng.reseed(mix64(config.seed + 0x9e37) + i);
        workers_.push_back(std::move(w));
    }
}

HdCpsScheduler::~HdCpsScheduler()
{
    // Free any bags still in flight (runs cut short by tests).
    for (auto &w : workers_) {
        Envelope envelope;
        while (w->rq->tryPop(envelope))
            delete envelope.bag;
        while (!w->pq.empty()) {
            PqEntry entry = w->pq.pop();
            delete entry.bag;
        }
    }
}

HdCpsConfig
HdCpsScheduler::configSrq()
{
    HdCpsConfig config;
    config.useTdf = false;
    config.bags.mode = BagMode::None;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSrqTdf()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::None;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSrqTdfAc()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Always;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSw()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Selective;
    return config;
}

unsigned
HdCpsScheduler::currentTdf() const
{
    return config_.useTdf ? tdfController_.current() : config_.fixedTdf;
}

double
HdCpsScheduler::averageDrift() const
{
    return driftSeries_.average();
}

size_t
HdCpsScheduler::sizeApprox() const
{
    // Only the cross-thread-safe structures are counted: sRQ pointers
    // are atomics, the overflow queue locks. The private PQs and active
    // bags belong to their owners and cannot be read without a race, so
    // this undercounts — acceptable for the watchdog's stall dump,
    // where the interesting signal is work stuck in transfer.
    size_t total = 0;
    for (const auto &w : workers_)
        total += w->rq->sizeApprox() + w->overflow.size();
    return total;
}

unsigned
HdCpsScheduler::chooseDest(unsigned tid)
{
    WorkerState &w = *workers_[tid];
    unsigned tdf = currentTdf();
    if (numWorkers() == 1 || w.rng.below(100) >= tdf)
        return tid;
    // Remote: uniform over the other workers.
    unsigned dest = static_cast<unsigned>(w.rng.below(numWorkers() - 1));
    if (dest >= tid)
        ++dest;
    return dest;
}

void
HdCpsScheduler::deliver(unsigned from, unsigned dest,
                        const Envelope &envelope)
{
    if (dest == from) {
        // Local enqueue goes straight into the private PQ — no receive
        // queue hop needed (Figure 2, path 1a).
        WorkerState &w = *workers_[from];
        drainIncoming(w);
        w.pq.push(PqEntry{envelope.task, envelope.bag});
        localEnqueues_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
            metrics_->add(from, WorkerCounter::LocalEnqueues);
        return;
    }
    remoteEnqueues_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(from, WorkerCounter::RemoteEnqueues);
    // The fault site forces the spill without consuming sRQ slots, so
    // the overflow path is testable independent of queue capacity.
    if (!faultFires(faultsite::HdcpsOverflowSpill) &&
        workers_[dest]->rq->tryPush(envelope)) {
        return;
    }
    // sRQ full: spill to the destination's locked overflow queue. Bags
    // are unpacked here — the overflow path is the slow path anyway.
    overflowPushes_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(dest, WorkerCounter::OverflowPushes);
    if (envelope.bag) {
        for (const Task &t : envelope.bag->tasks)
            workers_[dest]->overflow.push(t);
        delete envelope.bag;
    } else {
        workers_[dest]->overflow.push(envelope.task);
    }
}

void
HdCpsScheduler::push(unsigned tid, const Task &task)
{
    Envelope envelope;
    envelope.task = task;
    deliver(tid, chooseDest(tid), envelope);
}

void
HdCpsScheduler::pushBatch(unsigned tid, const Task *tasks, size_t count)
{
    if (config_.bags.mode == BagMode::None) {
        for (size_t i = 0; i < count; ++i)
            push(tid, tasks[i]);
        return;
    }

    BagPlan plan =
        config_.bags.plan(std::vector<Task>(tasks, tasks + count));
    for (const Task &t : plan.singles)
        push(tid, t);
    for (Bag &bag : plan.bags) {
        bagsCreated_.fetch_add(1, std::memory_order_relaxed);
        tasksInBags_.fetch_add(bag.tasks.size(),
                               std::memory_order_relaxed);
        if (metrics_) {
            metrics_->add(tid, WorkerCounter::BagsCreated);
            metrics_->add(tid, WorkerCounter::TasksInBags,
                          bag.tasks.size());
        }
        Envelope envelope;
        envelope.task.priority = bag.priority;
        envelope.bag = new Bag(std::move(bag));
        deliver(tid, chooseDest(tid), envelope);
    }
}

void
HdCpsScheduler::drainIncoming(WorkerState &w)
{
    // Move everything the sRQ and the overflow spill hold into the
    // private PQ. Incoming work is handled "with high priority"
    // (Section III-A) — i.e. before the next dequeue decision.
    Envelope envelope;
    while (w.rq->tryPop(envelope))
        w.pq.push(PqEntry{envelope.task, envelope.bag});
    Task task;
    while (w.overflow.tryPop(task))
        w.pq.push(PqEntry{task, nullptr});
}

bool
HdCpsScheduler::tryPop(unsigned tid, Task &out)
{
    WorkerState &w = *workers_[tid];

    // A dequeued bag binds the core until its tasks are done
    // (Section III-B) — serve the active bag first.
    if (!w.activeBag.empty()) {
        out = w.activeBag.back();
        w.activeBag.pop_back();
        maybeSample(tid, out.priority);
        return true;
    }

    drainIncoming(w);

    if (w.pq.empty())
        return false;

    PqEntry entry = w.pq.pop();
    if (entry.bag) {
        w.activeBag = std::move(entry.bag->tasks);
        delete entry.bag;
        hdcps_check(!w.activeBag.empty(), "dequeued an empty bag");
        out = w.activeBag.back();
        w.activeBag.pop_back();
    } else {
        out = entry.task;
    }
    maybeSample(tid, out.priority);
    return true;
}

void
HdCpsScheduler::maybeSample(unsigned tid, Priority poppedPriority)
{
    WorkerState &w = *workers_[tid];
    if (++w.popsSinceSample < config_.sampleInterval)
        return;
    w.popsSinceSample = 0;

    // Algorithm 3: report the latest processed priority to the master.
    drift_.publish(tid, poppedPriority);
    if (metrics_) {
        metrics_->record(tid, WorkerSeries::SrqOccupancy,
                         static_cast<double>(w.rq->sizeApprox()));
    }
    if (!config_.useTdf)
        return;

    // Algorithm 2 fires once a full round of reports has arrived (the
    // paper's dedicated core updates "after receiving task priorities
    // from all cores"), independent of any single worker's progress.
    // The reduction is cheap and rare; a mutex keeps the controller's
    // internal history consistent, and try_lock keeps the path
    // non-blocking for everyone who loses the race.
    unsigned round = publishRound_.fetch_add(1,
                                             std::memory_order_acq_rel) +
                     1;
    if (round < numWorkers())
        return;
    if (!updateMutex_.try_lock())
        return;
    // Subtracting one full round (rather than storing 0) keeps the
    // reports that raced in between the winning fetch_add and this
    // reset: discarding them stretched sampling intervals under
    // contention.
    publishRound_.fetch_sub(numWorkers(), std::memory_order_relaxed);
    double drift = drift_.computeDrift();
    driftSeries_.record(drift);
    unsigned tdf = tdfController_.update(drift);
    if (metrics_) {
        metrics_->recordGlobal(GlobalSeries::TdfDrift, drift);
        metrics_->recordGlobal(GlobalSeries::Tdf,
                               static_cast<double>(tdf));
    }
    updateMutex_.unlock();
}

} // namespace hdcps
