#include "core/hdcps.h"

#include <algorithm>
#include <thread>

#include "support/timer.h"

namespace hdcps {

namespace {

/**
 * The per-worker reclamation lock: a tiny spinlock. Owners block-spin
 * (their critical sections only contend with a reclaimer mid-drain,
 * which is short and rare); reclaimers must use the try variant so the
 * only blocking acquire anyone performs is on their *own* lock —
 * cross-worker acquisition never waits, hence never deadlocks.
 */
inline bool
tryLockReclaim(std::atomic<uint32_t> &lock)
{
    uint32_t expected = 0;
    return lock.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

inline void
lockReclaim(std::atomic<uint32_t> &lock)
{
    unsigned spins = 0;
    while (!tryLockReclaim(lock)) {
        if (++spins > 64) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

inline void
unlockReclaim(std::atomic<uint32_t> &lock)
{
    lock.store(0, std::memory_order_release);
}

} // namespace

HdCpsScheduler::HdCpsScheduler(unsigned numWorkers,
                               const HdCpsConfig &config)
    : Scheduler(numWorkers), config_(config), drift_(numWorkers),
      tdfController_(config.tdf)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config.sampleInterval >= 1, "sample interval must be >= 1");
    hdcps_check(config.fixedTdf <= 100, "fixedTdf is a percentage");

    name_ = "hdcps-srq";
    if (config_.useTdf)
        name_ += "-tdf";
    if (config_.bags.mode == BagMode::Always)
        name_ += "-ac";
    else if (config_.bags.mode == BagMode::Selective)
        name_ += "-sc";

    workers_.reserve(numWorkers);
    const uint64_t now = nowNs();
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto w = std::make_unique<WorkerState>();
        w->rq = std::make_unique<ReceiveQueue<Envelope>>(config.rqCapacity);
        w->rng.reseed(mix64(config.seed + 0x9e37) + i);
        w->heartbeatNs.store(now, std::memory_order_relaxed);
        workers_.push_back(std::move(w));
    }
}

HdCpsScheduler::~HdCpsScheduler()
{
    // Free any bags still in flight (runs cut short by tests).
    for (auto &w : workers_) {
        Envelope envelope;
        while (w->rq->tryPop(envelope))
            delete envelope.bag;
        while (!w->pq.empty()) {
            PqEntry entry = w->pq.pop();
            delete entry.bag;
        }
    }
}

HdCpsConfig
HdCpsScheduler::configSrq()
{
    HdCpsConfig config;
    config.useTdf = false;
    config.bags.mode = BagMode::None;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSrqTdf()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::None;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSrqTdfAc()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Always;
    return config;
}

HdCpsConfig
HdCpsScheduler::configSw()
{
    HdCpsConfig config;
    config.useTdf = true;
    config.bags.mode = BagMode::Selective;
    return config;
}

unsigned
HdCpsScheduler::currentTdf() const
{
    return config_.useTdf ? tdfController_.current() : config_.fixedTdf;
}

double
HdCpsScheduler::averageDrift() const
{
    return driftSeries_.average();
}

size_t
HdCpsScheduler::sizeApprox() const
{
    // Only race-free state is read: sRQ pointers are atomics, the
    // overflow queue locks, and the private PQ + active bag are covered
    // by the owner's self-published localBuffered estimate (which can
    // lag by one operation). Good enough for the watchdog's stall dump
    // and the reclaimers' is-anything-stranded pre-check.
    size_t total = 0;
    for (const auto &w : workers_) {
        total += w->rq->sizeApprox() + w->overflow.size() +
                 w->localBuffered.load(std::memory_order_relaxed);
    }
    return total;
}

void
HdCpsScheduler::setReclaimAfterMs(uint64_t ms)
{
    reclaimAfterNs_.store(ms * 1000000, std::memory_order_relaxed);
    // Fresh heartbeats: the time a scheduler sat configured-but-idle
    // before the run must not count toward anyone's staleness.
    const uint64_t now = nowNs();
    for (auto &w : workers_) {
        w->heartbeatNs.store(now, std::memory_order_relaxed);
        w->reclaimBackoffNs = 0;
        w->reclaimBackoffUntilNs = 0;
    }
}

uint64_t
HdCpsScheduler::heartbeatPops(unsigned tid) const
{
    return workers_[tid]->heartbeatPops.load(std::memory_order_relaxed);
}

unsigned
HdCpsScheduler::chooseDest(unsigned tid)
{
    WorkerState &w = *workers_[tid];
    unsigned tdf = currentTdf();
    if (numWorkers() == 1 || w.rng.below(100) >= tdf)
        return tid;
    // Remote: uniform over the other workers.
    unsigned dest = static_cast<unsigned>(w.rng.below(numWorkers() - 1));
    if (dest >= tid)
        ++dest;
    return dest;
}

void
HdCpsScheduler::deliver(unsigned from, unsigned dest,
                        const Envelope &envelope)
{
    if (dest == from) {
        // Local enqueue goes straight into the private PQ — no receive
        // queue hop needed (Figure 2, path 1a). With reclamation on,
        // the PQ is no longer owner-exclusive, so take our own lock.
        WorkerState &w = *workers_[from];
        const bool guarded =
            reclaimAfterNs_.load(std::memory_order_relaxed) != 0;
        if (guarded)
            lockReclaim(w.reclaimLock);
        drainIncoming(w);
        w.pq.push(PqEntry{envelope.task, envelope.bag});
        w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                              std::memory_order_relaxed);
        if (guarded)
            unlockReclaim(w.reclaimLock);
        localEnqueues_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
            metrics_->add(from, WorkerCounter::LocalEnqueues);
        return;
    }
    remoteEnqueues_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(from, WorkerCounter::RemoteEnqueues);
    // The fault site forces the spill without consuming sRQ slots, so
    // the overflow path is testable independent of queue capacity.
    if (!faultFires(faultsite::HdcpsOverflowSpill) &&
        workers_[dest]->rq->tryPush(envelope)) {
        return;
    }
    // sRQ full: spill to the destination's locked overflow queue. Bags
    // are unpacked here — the overflow path is the slow path anyway.
    overflowPushes_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(dest, WorkerCounter::OverflowPushes);
    if (envelope.bag) {
        for (const Task &t : envelope.bag->tasks)
            workers_[dest]->overflow.push(t);
        delete envelope.bag;
    } else {
        workers_[dest]->overflow.push(envelope.task);
    }
}

void
HdCpsScheduler::push(unsigned tid, const Task &task)
{
    Envelope envelope;
    envelope.task = task;
    deliver(tid, chooseDest(tid), envelope);
}

void
HdCpsScheduler::pushBatch(unsigned tid, const Task *tasks, size_t count)
{
    if (config_.bags.mode == BagMode::None) {
        for (size_t i = 0; i < count; ++i)
            push(tid, tasks[i]);
        return;
    }

    BagPlan plan =
        config_.bags.plan(std::vector<Task>(tasks, tasks + count));
    for (const Task &t : plan.singles)
        push(tid, t);
    for (Bag &bag : plan.bags) {
        bagsCreated_.fetch_add(1, std::memory_order_relaxed);
        tasksInBags_.fetch_add(bag.tasks.size(),
                               std::memory_order_relaxed);
        if (metrics_) {
            metrics_->add(tid, WorkerCounter::BagsCreated);
            metrics_->add(tid, WorkerCounter::TasksInBags,
                          bag.tasks.size());
        }
        Envelope envelope;
        envelope.task.priority = bag.priority;
        envelope.bag = new Bag(std::move(bag));
        deliver(tid, chooseDest(tid), envelope);
    }
}

void
HdCpsScheduler::drainIncoming(WorkerState &w)
{
    // Move everything the sRQ and the overflow spill hold into the
    // private PQ. Incoming work is handled "with high priority"
    // (Section III-A) — i.e. before the next dequeue decision.
    Envelope envelope;
    while (w.rq->tryPop(envelope))
        w.pq.push(PqEntry{envelope.task, envelope.bag});
    Task task;
    while (w.overflow.tryPop(task))
        w.pq.push(PqEntry{task, nullptr});
}

bool
HdCpsScheduler::tryPop(unsigned tid, Task &out)
{
    WorkerState &w = *workers_[tid];
    const uint64_t staleNs = reclaimAfterNs_.load(std::memory_order_relaxed);
    if (staleNs == 0)
        return popLocal(tid, w, out); // original lock-free fast path

    // Heartbeat first: a worker that reaches here is alive even if it
    // finds nothing, and publishing before the lock keeps a long drain
    // from making *us* look stale to everyone else.
    w.heartbeatNs.store(nowNs(), std::memory_order_relaxed);
    lockReclaim(w.reclaimLock);
    bool got = popLocal(tid, w, out);
    if (!got)
        got = reclaimFromStraggler(tid, staleNs, out);
    unlockReclaim(w.reclaimLock);
    if (got)
        w.heartbeatPops.fetch_add(1, std::memory_order_relaxed);
    return got;
}

bool
HdCpsScheduler::popLocal(unsigned tid, WorkerState &w, Task &out)
{
    // A dequeued bag binds the core until its tasks are done
    // (Section III-B) — serve the active bag first.
    if (!w.activeBag.empty()) {
        out = w.activeBag.back();
        w.activeBag.pop_back();
        w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                              std::memory_order_relaxed);
        maybeSample(tid, out.priority);
        return true;
    }

    drainIncoming(w);

    if (w.pq.empty()) {
        w.localBuffered.store(0, std::memory_order_relaxed);
        return false;
    }

    PqEntry entry = w.pq.pop();
    if (entry.bag) {
        w.activeBag = std::move(entry.bag->tasks);
        delete entry.bag;
        hdcps_check(!w.activeBag.empty(), "dequeued an empty bag");
        out = w.activeBag.back();
        w.activeBag.pop_back();
    } else {
        out = entry.task;
    }
    w.localBuffered.store(w.pq.size() + w.activeBag.size(),
                          std::memory_order_relaxed);
    maybeSample(tid, out.priority);
    return true;
}

bool
HdCpsScheduler::reclaimFromStraggler(unsigned tid, uint64_t staleNs,
                                     Task &out)
{
    WorkerState &me = *workers_[tid];
    const uint64_t now = nowNs();
    if (now < me.reclaimBackoffUntilNs)
        return false;

    bool sawStale = false;
    size_t moved = 0;
    const unsigned n = numWorkers();
    for (unsigned k = 1; k < n && moved == 0; ++k) {
        unsigned vid = (tid + k) % n;
        WorkerState &victim = *workers_[vid];
        uint64_t hb = victim.heartbeatNs.load(std::memory_order_relaxed);
        if (hb <= now && now - hb < staleNs)
            continue; // fresh heartbeat: not a straggler
        // Lock-free pre-check: a stale-but-empty peer strands nothing.
        if (victim.rq->sizeApprox() == 0 && victim.overflow.size() == 0 &&
            victim.localBuffered.load(std::memory_order_relaxed) == 0) {
            continue;
        }
        sawStale = true;
        if (!tryLockReclaim(victim.reclaimLock)) {
            // Either the owner woke up or another reclaimer beat us —
            // both resolve the stall, so just record the race and move
            // on. Never block here (deadlock-freedom, see header).
            reclaimRaces_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_)
                metrics_->add(tid, WorkerCounter::ReclaimRaces);
            continue;
        }
        // Drain *everything* the victim buffered — sRQ, overflow spill,
        // active bag, and its private PQ. Leaving the PQ behind would
        // strand locally-delivered children of tasks the victim ran
        // before stalling.
        Envelope envelope;
        while (victim.rq->tryPop(envelope)) {
            moved += envelope.bag ? envelope.bag->tasks.size() : 1;
            me.pq.push(PqEntry{envelope.task, envelope.bag});
        }
        Task task;
        while (victim.overflow.tryPop(task)) {
            ++moved;
            me.pq.push(PqEntry{task, nullptr});
        }
        for (const Task &t : victim.activeBag) {
            ++moved;
            me.pq.push(PqEntry{t, nullptr});
        }
        victim.activeBag.clear();
        while (!victim.pq.empty()) {
            PqEntry entry = victim.pq.pop();
            moved += entry.bag ? entry.bag->tasks.size() : 1;
            me.pq.push(entry);
        }
        victim.localBuffered.store(0, std::memory_order_relaxed);
        unlockReclaim(victim.reclaimLock);
    }

    if (moved == 0) {
        if (sawStale) {
            // Contended or raced-away straggler: back off exponentially
            // so a pack of idle workers doesn't spin on one victim.
            const uint64_t base =
                std::max<uint64_t>(staleNs / 16, 50 * 1000);
            me.reclaimBackoffNs =
                me.reclaimBackoffNs == 0
                    ? base
                    : std::min(me.reclaimBackoffNs * 2, staleNs);
            me.reclaimBackoffUntilNs = now + me.reclaimBackoffNs;
        }
        return false;
    }

    me.reclaimBackoffNs = 0;
    me.reclaimBackoffUntilNs = 0;
    reclaimedTasks_.fetch_add(moved, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(tid, WorkerCounter::ReclaimedTasks, moved);
    return popLocal(tid, me, out);
}

void
HdCpsScheduler::maybeSample(unsigned tid, Priority poppedPriority)
{
    WorkerState &w = *workers_[tid];
    if (++w.popsSinceSample < config_.sampleInterval)
        return;
    w.popsSinceSample = 0;

    // Algorithm 3: report the latest processed priority to the master.
    drift_.publish(tid, poppedPriority);
    if (metrics_) {
        metrics_->record(tid, WorkerSeries::SrqOccupancy,
                         static_cast<double>(w.rq->sizeApprox()));
    }
    if (!config_.useTdf)
        return;

    // Algorithm 2 fires once a full round of reports has arrived (the
    // paper's dedicated core updates "after receiving task priorities
    // from all cores"), independent of any single worker's progress.
    // The reduction is cheap and rare; a mutex keeps the controller's
    // internal history consistent, and try_lock keeps the path
    // non-blocking for everyone who loses the race.
    unsigned round = publishRound_.fetch_add(1,
                                             std::memory_order_acq_rel) +
                     1;
    if (round < numWorkers())
        return;
    if (!updateMutex_.try_lock())
        return;
    // Subtracting one full round (rather than storing 0) keeps the
    // reports that raced in between the winning fetch_add and this
    // reset: discarding them stretched sampling intervals under
    // contention.
    publishRound_.fetch_sub(numWorkers(), std::memory_order_relaxed);
    double drift = drift_.computeDrift();
    driftSeries_.record(drift);
    unsigned tdf = tdfController_.update(drift);
    if (metrics_) {
        metrics_->recordGlobal(GlobalSeries::TdfDrift, drift);
        metrics_->recordGlobal(GlobalSeries::Tdf,
                               static_cast<double>(tdf));
    }
    updateMutex_.unlock();
}

} // namespace hdcps
