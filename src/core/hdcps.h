/**
 * @file
 * HD-CPS:SW — the paper's software scheduler (Sections III-A..III-C).
 *
 * Push-style distributed scheduler derived from RELD, with the three
 * software mechanisms of the paper stacked as configuration:
 *
 *  - **sRQ**: a per-core software receive queue decouples task transfer
 *    from processing; the per-core priority queue becomes private to
 *    its owner, so no PQ operation ever takes a lock.
 *  - **TDF**: the drift-aware feedback heuristic (Algorithm 2) adapts
 *    the fraction of children sent to random remote cores, using drift
 *    samples published every `sampleInterval` tasks (Algorithm 3).
 *  - **Bags**: children with equal priorities are bundled (Algorithm 1)
 *    either always ("AC") or selectively within the size window ("SC",
 *    the shipping configuration).
 *
 * The paper's named configurations map to the factories below:
 * sRQ, sRQ+TDF, sRQ+TDF+AC, sRQ+TDF+SC (== HD-CPS:SW).
 *
 * **Straggler resilience (sRQ reclamation).** The sRQ design's weak
 * spot is a stalled owner: remote enqueues keep landing in its receive
 * queue, and every task parked there is stranded until the owner runs
 * again. With reclamation enabled (setReclaimAfterMs), each worker
 * publishes a relaxed heartbeat (pop counter + monotonic epoch) on
 * every tryPop; when a peer's heartbeat is stale past the window, an
 * idle worker acquires the victim's per-worker reclamation lock
 * (try-lock with exponential backoff on contention) and drains the
 * victim's sRQ, overflow spill, active bag, and private PQ into its
 * own private PQ. Owners guard their single-consumer structures with
 * their own lock whenever reclamation is enabled, so the handoff is
 * race-free; with reclamation off (the default) the original
 * lock-free paths run unchanged. See DESIGN.md §10.
 */

#ifndef HDCPS_CORE_HDCPS_H_
#define HDCPS_CORE_HDCPS_H_

#include <atomic>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "core/bag_policy.h"
#include "core/bag_pool.h"
#include "core/drift.h"
#include "core/local_pq.h"
#include "core/recv_queue.h"
#include "core/tdf.h"
#include "cps/scheduler.h"
#include "pq/locked_pq.h"
#include "support/compiler.h"
#include "support/rng.h"
#include "support/topology.h"

namespace hdcps {

/** HdCpsConfig::crossNodePct sentinel: tie the cross-node share of
 *  remote sends to the live TDF output, so the same drift signal that
 *  widens distribution also widens its reach (see chooseDest). */
inline constexpr unsigned kCrossNodeFollowTdf = 255;

/** All HD-CPS:SW tunables (paper defaults). */
struct HdCpsConfig
{
    size_t rqCapacity = 256;        ///< sRQ entries per core
    bool useTdf = false;            ///< enable Algorithm 2
    TdfController::Config tdf{};    ///< initial 50%, step 10%
    unsigned fixedTdf = 98;         ///< distribution % when TDF is off
    unsigned sampleInterval = 2000; ///< tasks per drift sample (Alg. 3)
    BagPolicy bags{BagMode::None, BagTransport::Pull, 3, 10};
    uint64_t seed = 1;
    /**
     * Envelopes staged per destination before an eager combining-buffer
     * flush (pushBatch always flushes everything at batch end, so this
     * only bounds the staging memory of very large batches).
     */
    size_t sendFlushThreshold = 16;
    /** Internal heaps per worker for the relaxed local-PQ backend
     *  (RelaxedMqLocalPq ways; ignored by the exact DAry backend). */
    unsigned localPqWays = 4;
    /**
     * Worker placement across NUMA nodes. The default (one flat node)
     * keeps chooseDest's original single-draw routing and changes
     * nothing. With >= 2 nodes, workers split into contiguous per-node
     * groups (Topology::nodeOfWorker), each worker's buffers are
     * first-touched from a thread pinned to its node, and chooseDest
     * routes hierarchically (same-node first, cross-node as TDF
     * rises). Synthetic topologies give the same grouping/routing
     * without CPU affinity, so tests are host-independent.
     */
    Topology topology{};
    /**
     * Percentage of *remote* sends allowed to cross node boundaries
     * (multi-node topologies only). The default, kCrossNodeFollowTdf,
     * feeds the knob from the drift heuristic: the effective share
     * equals the current TDF, so low-drift phases keep remote traffic
     * on-node and high-drift phases widen it across nodes. Fixed
     * values 0..100 pin the share for experiments.
     */
    unsigned crossNodePct = kCrossNodeFollowTdf;
};

/**
 * The HD-CPS software scheduler, parameterized over its local-PQ
 * backend (the owner-private per-worker priority queue behind the
 * sRQ/bag layer — see core/local_pq.h for the seam's contract and the
 * available backends). Use the `HdCpsScheduler` (exact DAry heap) and
 * `HdCpsMqScheduler` (relaxed sequential MultiQueue) aliases below.
 */
template <template <typename, typename> class LocalPqT>
class BasicHdCpsScheduler : public Scheduler
{
  public:
    BasicHdCpsScheduler(unsigned numWorkers,
                        const HdCpsConfig &config = {});
    ~BasicHdCpsScheduler() override;

    void push(unsigned tid, const Task &task) override;
    void pushBatch(unsigned tid, const Task *tasks, size_t count) override;
    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return name_.c_str(); }

    /** Tasks visible in the cross-thread-safe buffers (sRQs + overflow
     *  queues) plus each owner's self-published private-PQ estimate
     *  (may lag by one operation). See Scheduler. */
    size_t sizeApprox() const override;

    /** Enable sRQ reclamation from stragglers whose heartbeat is older
     *  than `ms` milliseconds (0 disables, the default). Refreshes all
     *  heartbeats so pre-run idleness is not mistaken for a stall.
     *  Must not race with push/tryPop. */
    void setReclaimAfterMs(uint64_t ms) override;

    /** Pin the calling worker thread to its slot's NUMA node (no-op on
     *  flat/synthetic topologies) and count the bind, so replacement
     *  threads spawned into a healed slot rejoin its node group. See
     *  Scheduler::onWorkerStart. */
    void onWorkerStart(unsigned tid) override;

    /** Mask worker `tid` out of chooseDest so no new remote work routes
     *  toward its sRQ (supervision; see Scheduler::quarantine). */
    void quarantine(unsigned tid) override;

    /** Lift a quarantine(): `tid` becomes a routing destination again. */
    void reinstate(unsigned tid) override;

    /**
     * Supervisor-initiated drain of worker `victim`'s buffered tasks —
     * sRQ, overflow, active bag, send arena, private PQ — redistributed
     * into the *other* workers' sRQs (overflow on full), starting the
     * round-robin at `reclaimer`. Unlike the peer path this bypasses
     * heartbeat staleness and never touches any owner-private state of
     * a live worker, so it is safe from a non-worker thread; the caller
     * must guarantee the victim's own thread is out of push/tryPop
     * (wedged past its pause point, or exited). Returns tasks moved.
     */
    size_t reclaimWorker(unsigned reclaimer, unsigned victim) override;

    /** True while `tid` is masked out of chooseDest (tests). */
    bool isQuarantined(unsigned tid) const;

    /** Paper configuration factories. */
    static HdCpsConfig configSrq();
    static HdCpsConfig configSrqTdf();
    static HdCpsConfig configSrqTdfAc();
    static HdCpsConfig configSw(); ///< sRQ + TDF + SC == HD-CPS:SW

    /** Current TDF percentage (the heuristic's live output). */
    unsigned currentTdf() const;

    /** Drift tracker (exposed for tests and the figure harnesses). */
    const DriftTracker &driftTracker() const { return drift_; }

    /** Average of the drift samples the master took (Eq. 1 series). */
    double averageDrift() const;

    uint64_t bagsCreated() const
    {
        return sumStat(&WorkerState::Stats::bagsCreated);
    }

    uint64_t tasksInBags() const
    {
        return sumStat(&WorkerState::Stats::tasksInBags);
    }

    uint64_t remoteEnqueues() const
    {
        return sumStat(&WorkerState::Stats::remoteEnqueues);
    }

    uint64_t localEnqueues() const
    {
        return sumStat(&WorkerState::Stats::localEnqueues);
    }

    /** sRQ overflow fallbacks (diagnostic; should be rare). */
    uint64_t overflowPushes() const
    {
        return sumStat(&WorkerState::Stats::overflowPushes);
    }

    /** Tasks drained from stragglers' queues by peers (reclamation). */
    uint64_t reclaimedTasks() const
    {
        return reclaimedTasks_.load(std::memory_order_relaxed);
    }

    /** Reclamation lock attempts lost to a racing peer. */
    uint64_t reclaimRaces() const
    {
        return reclaimRaces_.load(std::memory_order_relaxed);
    }

    /** Worker `tid`'s heartbeat pop counter (tests, diagnostics). */
    uint64_t heartbeatPops(unsigned tid) const;

    /** The NUMA node worker `tid`'s buffers live on (0 when flat). */
    unsigned nodeOfWorker(unsigned tid) const;

    /** Times a thread entered worker `tid`'s slot via onWorkerStart —
     *  1 after a normal start, +1 per healed replacement (tests). */
    uint64_t workerBinds(unsigned tid) const;

    /** Remote sends routed across node boundaries (multi-node only). */
    uint64_t crossNodeEnqueues() const
    {
        return sumStat(&WorkerState::Stats::crossNodeEnqueues);
    }

    /** Remote sends kept within the sender's node (multi-node only). */
    uint64_t sameNodeEnqueues() const
    {
        return sumStat(&WorkerState::Stats::sameNodeEnqueues);
    }

    /** Combining-buffer flushes into remote sRQs (each flush claims the
     *  destination's slots with at most a few CASes instead of one per
     *  envelope). */
    uint64_t srqBatchFlushes() const
    {
        return sumStat(&WorkerState::Stats::srqBatchFlushes);
    }

    /** Bag envelopes served from the pool instead of the allocator. */
    uint64_t poolRecycled() const { return pool_.recycled(); }

    /** Bag envelopes that did hit the allocator (pool misses). */
    uint64_t poolAllocations() const { return pool_.allocations(); }

    const HdCpsConfig &config() const { return config_; }

  private:
    /** A PQ entry is either a single task or bag metadata.
     *  Invariant: when bag != nullptr, task is a metadata stub with
     *  task.priority == bag->priority and task.node == 0 (so ordering
     *  never chases the bag pointer) — build entries with makeEntry. */
    struct PqEntry
    {
        Task task;       ///< the task, or the bag's metadata stub
        Bag *bag = nullptr;
    };

    static PqEntry
    makeEntry(const Task &task, Bag *bag)
    {
        return PqEntry{task, bag};
    }

    struct PqEntryOrder
    {
        bool
        operator()(const PqEntry &a, const PqEntry &b) const
        {
            // Branch-free (priority, node) lexicographic compare:
            // bitwise &/| instead of short-circuit &&/|| so the
            // compiler emits setcc/and/or instead of data-dependent
            // branches that mispredict ~half the time on randomly
            // ordered priorities (the pop path does ~a dozen compares
            // per dequeue inside siftDown's find-min loop). The full
            // 64-bit priority is compared: SSSP/A* tentative distances
            // exceed 32 bits on large-weight graphs, so a (priority <<
            // 32) | node packed key would truncate and silently invert
            // heap order. Packing into a 96-bit key instead measured
            // slower than this form — alignof(__int128) == 16 grows
            // the entry from 24 to 48 bytes and the heap becomes
            // memory-bound before it becomes compare-bound.
            return static_cast<bool>(
                uint32_t(a.task.priority < b.task.priority) |
                (uint32_t(a.task.priority == b.task.priority) &
                 uint32_t(a.task.node < b.task.node)));
        }
    };

    /** The pluggable owner-private backend, bound to the entry type. */
    using LocalPq = LocalPqT<PqEntry, PqEntryOrder>;

    /** What travels through the receive queue. */
    struct Envelope
    {
        Task task;
        Bag *bag = nullptr;
    };

    struct alignas(cacheLineBytes) WorkerState
    {
        LocalPq pq; ///< private to the owner (see core/local_pq.h)
        std::unique_ptr<ReceiveQueue<Envelope>> rq;
        LockedTaskPq overflow; ///< spill path when the sRQ is full
        std::vector<Task> activeBag; ///< tasks of the bag being drained
        Rng rng;
        uint64_t popsSinceSample = 0;

        /** This worker's NUMA node (Topology::nodeOfWorker, fixed at
         *  construction) and its routing peer lists: every non-self
         *  worker, split by node. Read-only after the ctor. */
        unsigned node = 0;
        std::vector<unsigned> sameNodePeers;
        std::vector<unsigned> crossNodePeers;
        /** Threads that entered this slot via onWorkerStart (startup +
         *  healed replacements); written by the slot's own thread. */
        std::atomic<uint64_t> binds{0};
        /** High-water marks of stats.{cross,same}NodeEnqueues already
         *  folded into the metrics registry (lazy sync in sampleNow).
         *  Owned by the slot's acting thread, like the stats. */
        uint64_t syncedCrossNodeEnqueues = 0;
        uint64_t syncedSameNodeEnqueues = 0;

        /**
         * Reclamation lock guarding pq/activeBag and the consume side
         * of rq/overflow. With reclamation off nobody touches it; with
         * it on, the owner holds it across every local queue access and
         * reclaimers take it via try-lock only (so lock order is always
         * own-then-victim with no blocking second acquire → no
         * deadlock).
         */
        std::atomic<uint32_t> reclaimLock{0};
        /** Heartbeat: monotonic ns of the last tryPop attempt, and the
         *  count of successful pops. Relaxed — freshness only. */
        std::atomic<uint64_t> heartbeatNs{0};
        std::atomic<uint64_t> heartbeatPops{0};
        /** Owner-published |pq| + |activeBag| estimate: lets peers (and
         *  sizeApprox) see private buffered work without racing it. */
        std::atomic<size_t> localBuffered{0};
        /** Supervision flag: nonzero while chooseDest must avoid this
         *  worker (wedged/dead, backlog being reclaimed). */
        std::atomic<uint32_t> quarantined{0};
        /** Reclaimer-local backoff state (owner-only fields). */
        uint64_t reclaimBackoffNs = 0;
        uint64_t reclaimBackoffUntilNs = 0;

        /**
         * Send combining buffers: envelopes staged per destination
         * during pushBatch, shipped with one multi-slot sRQ claim per
         * flush instead of one CAS per envelope. Owner-only, except
         * under the owner's reclaimLock when reclamation is armed (a
         * reclaimer drains a straggler's staged envelopes too).
         *
         * One flat arena instead of a vector-of-vectors: destination
         * d's segment is sendArena[d * sendFlushThreshold ..), with
         * sendCount[d] staged entries. The eager threshold flush keeps
         * every segment within its fixed capacity, and staging becomes
         * one indexed store with no per-destination heap allocation or
         * pointer chase on the hot path.
         */
        std::vector<Envelope> sendArena;
        std::vector<uint32_t> sendCount;  ///< envelopes staged per dest
        std::vector<unsigned> dirtySends; ///< dests with staged envelopes
        /** Tasks currently staged across the send arena, published
         *  for sizeApprox and the idle flush check. */
        std::atomic<size_t> stagedTasks{0};
        /** Reused pushBatch buffer for planRanges (no per-batch copy). */
        std::vector<Task> planScratch;
        /** Reused drainIncoming buffer feeding DAryHeap::pushBulk. */
        std::vector<PqEntry> drainScratch;

        /**
         * Hot-path statistics, distributed per worker exactly like the
         * executor's created/completed counters: the acting worker is
         * the only writer, so increments are single-writer load+store
         * pairs (no RMW — a shared-counter `lock xadd` per task is one
         * of the coordination costs this design exists to remove), and
         * the public accessors sum across workers with relaxed loads.
         */
        struct Stats
        {
            std::atomic<uint64_t> localEnqueues{0};
            std::atomic<uint64_t> remoteEnqueues{0};
            std::atomic<uint64_t> overflowPushes{0};
            std::atomic<uint64_t> bagsCreated{0};
            std::atomic<uint64_t> tasksInBags{0};
            std::atomic<uint64_t> srqBatchFlushes{0};
            std::atomic<uint64_t> crossNodeEnqueues{0};
            std::atomic<uint64_t> sameNodeEnqueues{0};
        };
        Stats stats;
    };

    /** Single-writer increment for the distributed counters above (and
     *  stagedTasks, whose writers are serialized by the reclaim lock
     *  whenever more than the owner can touch it). */
    template <typename T>
    static void
    bumpCounter(std::atomic<T> &counter, T n = 1)
    {
        counter.store(counter.load(std::memory_order_relaxed) + n,
                      std::memory_order_relaxed);
    }

    /** Sum one distributed per-worker counter (relaxed). */
    uint64_t
    sumStat(std::atomic<uint64_t> WorkerState::Stats::*member) const
    {
        uint64_t total = 0;
        for (const auto &w : workers_)
            total += (w->stats.*member).load(std::memory_order_relaxed);
        return total;
    }

    /** First-touch allocation of one worker's buffers (sRQ ring, send
     *  arena, scratch). Called from a thread pinned to the worker's
     *  node when the topology is multi-node and pinnable; inline in
     *  the ctor otherwise. */
    void placeWorkerBuffers(unsigned tid);
    void deliver(unsigned from, unsigned dest, const Envelope &envelope);
    unsigned chooseDest(unsigned tid, unsigned tdf);
    /** Local enqueue straight into the private PQ (caller holds the
     *  owner's reclaimLock when reclamation is armed). */
    void enqueueLocal(unsigned tid, WorkerState &w,
                      const Envelope &envelope);
    /** Stage a remote envelope in tid's combining buffer (same locking
     *  contract as enqueueLocal); flushes eagerly past the threshold. */
    void stageRemote(unsigned from, unsigned dest,
                     const Envelope &envelope);
    /** Ship one destination's staged envelopes via tryPushN; leftovers
     *  that don't fit spill to the destination's overflow queue. */
    void flushDest(unsigned from, unsigned dest);
    /** Flush every dirty destination (end of pushBatch / idle pop). */
    void flushSends(unsigned tid);
    /** Overflow fallback for one envelope; counts against `from`, the
     *  acting thread (see MetricsRegistry attribution contract). */
    void spillToOverflow(unsigned from, unsigned dest,
                         const Envelope &envelope);
    void drainIncoming(WorkerState &w);
    /** Per-pop sampling gate, inlined so the common (non-sampling) pop
     *  pays one increment and compare, not an out-of-line call. */
    void
    maybeSample(unsigned tid, WorkerState &w, Priority poppedPriority)
    {
        if (++w.popsSinceSample < config_.sampleInterval)
            return;
        w.popsSinceSample = 0;
        sampleNow(tid, poppedPriority);
    }
    /** Algorithm 3 report + Algorithm 2 TDF update (sample boundary). */
    void sampleNow(unsigned tid, Priority poppedPriority);
    /** The original tryPop body: activeBag, drain, private PQ. Caller
     *  holds w.reclaimLock when reclamation is enabled. */
    bool popLocal(unsigned tid, WorkerState &w, Task &out);
    /** Scan peers for a stale heartbeat and drain one straggler's
     *  queues into tid's PQ. Caller holds tid's own reclaimLock. */
    bool reclaimFromStraggler(unsigned tid, uint64_t staleNs, Task &out);

    HdCpsConfig config_;
    std::string name_;
    /** True when the topology has >= 2 nodes: chooseDest routes via the
     *  per-worker peer lists instead of the flat single draw. */
    bool hierarchical_ = false;
    std::vector<std::unique_ptr<WorkerState>> workers_;
    DriftTracker drift_;
    TdfController tdfController_;
    std::atomic<unsigned> publishRound_{0};
    std::mutex updateMutex_;
    DriftSeries driftSeries_; ///< guarded by updateMutex_
    /** Number of currently quarantined workers: one relaxed load gates
     *  the chooseDest mask check, so the routing hot path is unchanged
     *  while supervision is idle (the overwhelmingly common case). */
    std::atomic<unsigned> quarantineCount_{0};
    /** Straggler-reclamation knob and counters (0 window = off; these
     *  stay shared atomics — they only move on the rare reclaim path). */
    std::atomic<uint64_t> reclaimAfterNs_{0};
    std::atomic<uint64_t> reclaimedTasks_{0};
    std::atomic<uint64_t> reclaimRaces_{0};
    BagPool pool_;
};

/** HD-CPS:SW as the paper ships it: exact 4-ary heap local PQ. */
using HdCpsScheduler = BasicHdCpsScheduler<DAryLocalPq>;
/** HD-CPS over a relaxed MultiQueue local PQ (design "hdcps-mq"). */
using HdCpsMqScheduler = BasicHdCpsScheduler<RelaxedMqLocalPq>;

// Both backends are explicitly instantiated in hdcps.cc.
extern template class BasicHdCpsScheduler<DAryLocalPq>;
extern template class BasicHdCpsScheduler<RelaxedMqLocalPq>;

} // namespace hdcps

#endif // HDCPS_CORE_HDCPS_H_
