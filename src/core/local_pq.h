/**
 * @file
 * Pluggable local-PQ backends for the HD-CPS scheduler.
 *
 * The sRQ mechanism makes each worker's priority queue private to its
 * owner — no PQ operation ever synchronizes — which turns the local PQ
 * into a swappable policy: anything with push/pushBulk/pop/empty/size
 * and owner-thread-only semantics can sit behind the sRQ/bag layer.
 * `BasicHdCpsScheduler` (core/hdcps.h) is parameterized over that seam,
 * and this header provides the two backends it instantiates:
 *
 *  - DAryLocalPq: the paper's exact 4-ary heap (HD-CPS:SW as shipped).
 *  - RelaxedMqLocalPq: a *sequential* MultiQueue — k small heaps,
 *    pushes spray to a random heap, pops take the better of two random
 *    tops. Because the owner is the only toucher there are no locks,
 *    no buffers, no cached tops: this isolates the MultiQueue's
 *    *ordering relaxation* (cheaper rebalancing, relaxed pop order)
 *    from its concurrency machinery, giving the
 *    drift-aware-TDF-on-relaxed-local-PQ combination the source papers
 *    never tried. Pops are relaxed by design: expected rank error
 *    O(k), traded for shallower heaps and fewer element moves.
 *
 * Backends are owner-private: callers guarantee single-threaded access
 * (the scheduler's reclaim lock covers the straggler-drain exception).
 */

#ifndef HDCPS_CORE_LOCAL_PQ_H_
#define HDCPS_CORE_LOCAL_PQ_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "pq/dary_heap.h"
#include "support/rng.h"

namespace hdcps {

/** The exact backend: a thin veneer over the paper's 4-ary heap. */
template <typename T, typename Compare>
class DAryLocalPq
{
  public:
    /** Design-name stem for schedulers built on this backend. */
    static constexpr const char *kBaseName = "hdcps-srq";

    /** Backend tuning hook; the exact heap has nothing to tune. */
    void configure(unsigned /*ways*/, uint64_t /*seed*/) {}

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }
    void push(T value) { heap_.push(std::move(value)); }

    template <typename InputIt>
    void
    pushBulk(InputIt first, InputIt last)
    {
        heap_.pushBulk(first, last);
    }

    T pop() { return heap_.pop(); }

  private:
    DAryHeap<T, Compare> heap_;
};

/** The relaxed backend: a sequential owner-private MultiQueue. */
template <typename T, typename Compare>
class RelaxedMqLocalPq
{
  public:
    static constexpr const char *kBaseName = "hdcps-mq";

    RelaxedMqLocalPq() { configure(4, 1); }

    /** Set the number of internal heaps ("ways") and the spray RNG
     *  seed. Only valid while empty (the scheduler configures each
     *  worker's backend once, at construction). */
    void
    configure(unsigned ways, uint64_t seed)
    {
        ways_ = std::max(2u, ways);
        heaps_.clear();
        heaps_.resize(ways_);
        rng_.reseed(seed);
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    void
    push(T value)
    {
        heaps_[rng_.below(ways_)].push(std::move(value));
        ++size_;
    }

    /** Bulk insert sprays per element: spreading a drained sRQ batch
     *  across the ways is what keeps the individual heaps shallow. */
    template <typename InputIt>
    void
    pushBulk(InputIt first, InputIt last)
    {
        for (; first != last; ++first)
            push(*first);
    }

    /** Power-of-two-choices pop: the better of two random non-empty
     *  tops; falls back to a best-of-all scan when random draws keep
     *  landing on empty ways (so the relaxation never strands work).
     *  Precondition: !empty(). */
    T
    pop()
    {
        const size_t kNone = ways_;
        size_t a = kNone;
        for (int t = 0; t < 4 && a == kNone; ++t) {
            size_t i = rng_.below(ways_);
            if (!heaps_[i].empty())
                a = i;
        }
        if (a == kNone) {
            for (size_t i = 0; i < ways_; ++i) {
                if (!heaps_[i].empty() &&
                    (a == kNone || cmp_(heaps_[i].top(), heaps_[a].top())))
                    a = i;
            }
        } else {
            size_t b = kNone;
            for (int t = 0; t < 4 && b == kNone; ++t) {
                size_t i = rng_.below(ways_);
                if (i != a && !heaps_[i].empty())
                    b = i;
            }
            if (b != kNone && cmp_(heaps_[b].top(), heaps_[a].top()))
                a = b;
        }
        --size_;
        return heaps_[a].pop();
    }

  private:
    std::vector<DAryHeap<T, Compare>> heaps_;
    Compare cmp_;
    Rng rng_;
    unsigned ways_ = 2;
    size_t size_ = 0;
};

} // namespace hdcps

#endif // HDCPS_CORE_LOCAL_PQ_H_
