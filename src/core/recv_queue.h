/**
 * @file
 * The per-core software receive queue (sRQ) — HD-CPS Section III-A.
 *
 * HD-CPS decouples task *transfer* from task *processing*: remote cores
 * never touch the owner's priority queue; they deposit tasks into this
 * bounded multi-producer/single-consumer ring instead, and the owner
 * drains it into its private PQ at its own pace. The paper describes the
 * slot protocol directly: "a sending core atomically increments the
 * corresponding receive queue's write pointer in the destination core,
 * then places its data into the slot and sets the flag." That is the
 * classic bounded sequence-number queue (Vyukov), implemented here with
 * per-slot sequence counters standing in for the flags.
 */

#ifndef HDCPS_CORE_RECV_QUEUE_H_
#define HDCPS_CORE_RECV_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "support/compiler.h"
#include "support/fault.h"
#include "support/logging.h"

namespace hdcps {

/**
 * Bounded MPSC queue with per-slot sequence flags. tryPush is safe from
 * any thread; tryPop must only be called by the owning (consumer) core.
 */
template <typename T>
class ReceiveQueue
{
  public:
    explicit ReceiveQueue(size_t capacity)
        : slots_(new Slot[capacity]), mask_(capacity - 1)
    {
        hdcps_check(isPowerOf2(capacity) && capacity >= 2,
                    "receive queue capacity must be a power of two >= 2");
        for (size_t i = 0; i < capacity; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    /**
     * Deposit a task from a (possibly remote) producer. Returns false
     * when the queue is full — the caller falls back to the software
     * overflow path, mirroring the hRQ-spills-to-sRQ design in hardware.
     */
    bool
    tryPush(const T &value)
    {
        // Fault drill: report full without touching the ring, so tests
        // can force the overflow spill path at will.
        if (faultFires(faultsite::SrqPushFull))
            return false;
        size_t pos = writePtr_.load(std::memory_order_relaxed);
        while (true) {
            Slot &slot = slots_[pos & mask_];
            size_t seq = slot.seq.load(std::memory_order_acquire);
            intptr_t diff =
                static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
            if (diff == 0) {
                // Slot free at this ticket: claim it by advancing the
                // write pointer (the paper's atomic increment).
                if (writePtr_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = value;
                    // Publishing seq = pos+1 is the paper's "set the
                    // flag" step that makes the slot visible.
                    slot.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = writePtr_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Deposit up to `count` values with a single write-pointer claim.
     * Returns how many were enqueued (0..count): one successful CAS
     * advances the write pointer by n and claims n contiguous slots,
     * so a combining sender pays one coordination round-trip for the
     * whole batch instead of one per task. When the ring lacks room
     * for the full batch the largest claimable prefix is taken (the
     * caller spills the rest to the overflow path).
     *
     * Correctness of the contiguous claim: the single consumer frees
     * slots in ticket order, so if the slot for ticket pos+n-1 is free
     * then every slot for tickets pos..pos+n-2 is free too — probing
     * the *last* slot of a candidate batch suffices.
     */
    size_t
    tryPushN(const T *values, size_t count)
    {
        if (count == 0)
            return 0;
        // Same fault drill as tryPush: the whole batch reports full.
        if (faultFires(faultsite::SrqPushFull))
            return 0;
        size_t pos = writePtr_.load(std::memory_order_relaxed);
        while (true) {
            size_t n = count < capacity() ? count : capacity();
            bool stale = false;
            while (n > 0) {
                Slot &slot = slots_[(pos + n - 1) & mask_];
                size_t seq = slot.seq.load(std::memory_order_acquire);
                intptr_t diff = static_cast<intptr_t>(seq) -
                                static_cast<intptr_t>(pos + n - 1);
                if (diff == 0)
                    break; // last slot free ⇒ the whole prefix is
                if (diff > 0) {
                    stale = true; // another producer claimed past pos
                    break;
                }
                --n; // ring full at this depth: try a shorter claim
            }
            if (stale) {
                pos = writePtr_.load(std::memory_order_relaxed);
                continue;
            }
            if (n == 0)
                return 0;
            // One CAS claims all n tickets (the paper's atomic
            // increment, amortized over the batch).
            if (!writePtr_.compare_exchange_weak(
                    pos, pos + n, std::memory_order_relaxed)) {
                continue; // pos was reloaded by the failed CAS
            }
            for (size_t i = 0; i < n; ++i) {
                Slot &slot = slots_[(pos + i) & mask_];
                slot.value = values[i];
                slot.seq.store(pos + i + 1, std::memory_order_release);
            }
            return n;
        }
    }

    /** Owner-only: take the oldest deposited task. */
    bool
    tryPop(T &out)
    {
        // Fault drill: spurious emptiness. The deposited entries stay
        // in place, so no task is lost — the owner just retries later.
        if (faultFires(faultsite::SrqPopFail))
            return false;
        return drainPop(out);
    }

    /**
     * Owner-only tryPop that bypasses the SrqPopFail fault drill.
     * Teardown drains must observe the real ring state: a destructor
     * that stops on an injected "empty" while entries remain would
     * leak any pooled payloads still in those slots (the drill's
     * entries-stay-put contract assumes the owner retries later, which
     * a destructor never does). Not for use on scheduling paths —
     * those go through tryPop so the drill stays effective.
     */
    bool
    drainPop(T &out)
    {
        // Only the owner writes readPtr_, so relaxed loads/stores keep
        // the owner path as cheap as the old plain field while letting
        // sizeApprox() read it from any thread without a data race.
        size_t read = readPtr_.load(std::memory_order_relaxed);
        Slot &slot = slots_[read & mask_];
        size_t seq = slot.seq.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) -
                static_cast<intptr_t>(read + 1) != 0) {
            return false; // empty (or producer mid-write)
        }
        out = slot.value;
        slot.seq.store(read + mask_ + 1, std::memory_order_release);
        readPtr_.store(read + 1, std::memory_order_relaxed);
        return true;
    }

    /**
     * Owner-only: pop up to `count` published entries into `out`.
     * Returns how many were taken (0..count). The run stops at the
     * first unpublished slot, exactly like repeated tryPop, but pays
     * one fault check and one readPtr_ advance for the whole run
     * instead of one per entry. Per-slot seq releases stay — each
     * freed ticket must be individually visible to producers probing
     * that slot after wraparound.
     */
    size_t
    tryPopN(T *out, size_t count)
    {
        if (count == 0)
            return 0;
        // Fault drill: the whole run reports empty; entries stay put.
        if (faultFires(faultsite::SrqPopFail))
            return 0;
        size_t read = readPtr_.load(std::memory_order_relaxed);
        size_t n = 0;
        while (n < count) {
            Slot &slot = slots_[(read + n) & mask_];
            size_t seq = slot.seq.load(std::memory_order_acquire);
            if (static_cast<intptr_t>(seq) -
                    static_cast<intptr_t>(read + n + 1) != 0)
                break; // empty (or producer mid-write)
            out[n] = slot.value;
            slot.seq.store(read + n + mask_ + 1,
                           std::memory_order_release);
            ++n;
        }
        if (n != 0)
            readPtr_.store(read + n, std::memory_order_relaxed);
        return n;
    }

    /** Owner-only fast emptiness probe: true when the next slot holds
     *  no published entry. One acquire load — callers use it to gate a
     *  full drain pass, which is where the fault drill (SrqPopFail)
     *  still applies. */
    bool
    emptyApprox() const
    {
        size_t read = readPtr_.load(std::memory_order_relaxed);
        const Slot &slot = slots_[read & mask_];
        size_t seq = slot.seq.load(std::memory_order_acquire);
        return static_cast<intptr_t>(seq) -
                   static_cast<intptr_t>(read + 1) !=
               0;
    }

    /** Approximate occupancy (exact for the owner when quiescent).
     *  Safe from any thread — both pointers are atomics. Loading
     *  readPtr_ first keeps the difference non-negative (readPtr_ is
     *  monotonic and never passes writePtr_); the clamp bounds the
     *  overshoot a racing pop can add. */
    size_t
    sizeApprox() const
    {
        size_t r = readPtr_.load(std::memory_order_relaxed);
        size_t w = writePtr_.load(std::memory_order_acquire);
        size_t n = w - r;
        return n > capacity() ? capacity() : n;
    }

    size_t capacity() const { return mask_ + 1; }

  private:
    struct Slot
    {
        std::atomic<size_t> seq;
        T value;
    };

    std::unique_ptr<Slot[]> slots_;
    size_t mask_;
    alignas(cacheLineBytes) std::atomic<size_t> writePtr_{0};
    /** Owner-advanced; atomic so non-owner sizeApprox() reads are not
     *  UB (TSan-clean). */
    alignas(cacheLineBytes) std::atomic<size_t> readPtr_{0};
};

} // namespace hdcps

#endif // HDCPS_CORE_RECV_QUEUE_H_
