/**
 * @file
 * The per-core software receive queue (sRQ) — HD-CPS Section III-A.
 *
 * HD-CPS decouples task *transfer* from task *processing*: remote cores
 * never touch the owner's priority queue; they deposit tasks into this
 * bounded multi-producer/single-consumer ring instead, and the owner
 * drains it into its private PQ at its own pace. The paper describes the
 * slot protocol directly: "a sending core atomically increments the
 * corresponding receive queue's write pointer in the destination core,
 * then places its data into the slot and sets the flag." That is the
 * classic bounded sequence-number queue (Vyukov), implemented here with
 * per-slot sequence counters standing in for the flags.
 */

#ifndef HDCPS_CORE_RECV_QUEUE_H_
#define HDCPS_CORE_RECV_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "support/compiler.h"
#include "support/fault.h"
#include "support/logging.h"

namespace hdcps {

/**
 * Bounded MPSC queue with per-slot sequence flags. tryPush is safe from
 * any thread; tryPop must only be called by the owning (consumer) core.
 */
template <typename T>
class ReceiveQueue
{
  public:
    explicit ReceiveQueue(size_t capacity)
        : slots_(new Slot[capacity]), mask_(capacity - 1)
    {
        hdcps_check(isPowerOf2(capacity) && capacity >= 2,
                    "receive queue capacity must be a power of two >= 2");
        for (size_t i = 0; i < capacity; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    /**
     * Deposit a task from a (possibly remote) producer. Returns false
     * when the queue is full — the caller falls back to the software
     * overflow path, mirroring the hRQ-spills-to-sRQ design in hardware.
     */
    bool
    tryPush(const T &value)
    {
        // Fault drill: report full without touching the ring, so tests
        // can force the overflow spill path at will.
        if (faultFires(faultsite::SrqPushFull))
            return false;
        size_t pos = writePtr_.load(std::memory_order_relaxed);
        while (true) {
            Slot &slot = slots_[pos & mask_];
            size_t seq = slot.seq.load(std::memory_order_acquire);
            intptr_t diff =
                static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
            if (diff == 0) {
                // Slot free at this ticket: claim it by advancing the
                // write pointer (the paper's atomic increment).
                if (writePtr_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = value;
                    // Publishing seq = pos+1 is the paper's "set the
                    // flag" step that makes the slot visible.
                    slot.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = writePtr_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Owner-only: take the oldest deposited task. */
    bool
    tryPop(T &out)
    {
        // Fault drill: spurious emptiness. The deposited entries stay
        // in place, so no task is lost — the owner just retries later.
        if (faultFires(faultsite::SrqPopFail))
            return false;
        // Only the owner writes readPtr_, so relaxed loads/stores keep
        // the owner path as cheap as the old plain field while letting
        // sizeApprox() read it from any thread without a data race.
        size_t read = readPtr_.load(std::memory_order_relaxed);
        Slot &slot = slots_[read & mask_];
        size_t seq = slot.seq.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) -
                static_cast<intptr_t>(read + 1) != 0) {
            return false; // empty (or producer mid-write)
        }
        out = slot.value;
        slot.seq.store(read + mask_ + 1, std::memory_order_release);
        readPtr_.store(read + 1, std::memory_order_relaxed);
        return true;
    }

    /** Approximate occupancy (exact for the owner when quiescent).
     *  Safe from any thread — both pointers are atomics. Loading
     *  readPtr_ first keeps the difference non-negative (readPtr_ is
     *  monotonic and never passes writePtr_); the clamp bounds the
     *  overshoot a racing pop can add. */
    size_t
    sizeApprox() const
    {
        size_t r = readPtr_.load(std::memory_order_relaxed);
        size_t w = writePtr_.load(std::memory_order_acquire);
        size_t n = w - r;
        return n > capacity() ? capacity() : n;
    }

    size_t capacity() const { return mask_ + 1; }

  private:
    struct Slot
    {
        std::atomic<size_t> seq;
        T value;
    };

    std::unique_ptr<Slot[]> slots_;
    size_t mask_;
    alignas(cacheLineBytes) std::atomic<size_t> writePtr_{0};
    /** Owner-advanced; atomic so non-owner sizeApprox() reads are not
     *  UB (TSan-clean). */
    alignas(cacheLineBytes) std::atomic<size_t> readPtr_{0};
};

} // namespace hdcps

#endif // HDCPS_CORE_RECV_QUEUE_H_
