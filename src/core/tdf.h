/**
 * @file
 * The Task Distribution Factor controller — Algorithm 2 of the paper.
 *
 * TDF is the percentage of a core's enqueues that go to random remote
 * cores (75% TDF = three of every four children leave the core). The
 * feedback heuristic compares the current interval's measured priority
 * drift against the previous interval's and hill-climbs:
 *
 *   - drift worsened after a TDF increase  -> decrease (communication
 *     wasn't helping);
 *   - drift worsened after a TDF decrease  -> increase (starved the
 *     task flow);
 *   - drift improved                        -> continue in the last
 *     direction (the move is working).
 *
 * The improved case is where the paper's Algorithm 2 pseudocode
 * ("TDF - 1") and its prose ("the TDF is always increased") disagree;
 * each matches "continue" for exactly one prior direction, so we
 * implement the classic reverse-on-worsening / continue-on-improving
 * hill climber that is consistent with both where they agree. (The
 * literal pseudocode has a downward bias that collapses TDF to its
 * floor and starves remote cores on push-heavy workloads.)
 * The step size (default 10%), initial value (default 50%) and bounds
 * are the tunables swept in Figure 13.
 */

#ifndef HDCPS_CORE_TDF_H_
#define HDCPS_CORE_TDF_H_

#include <atomic>
#include <cmath>
#include <cstdint>

#include "support/logging.h"

namespace hdcps {

/** Feedback controller for the task distribution factor. */
class TdfController
{
  public:
    struct Config
    {
        unsigned initial = 50;  ///< first interval's TDF, percent
        unsigned step = 10;     ///< percent change per decision
        unsigned minTdf = 10;   ///< keep some distribution for balance
        unsigned maxTdf = 100;
        /** Relative drift change below this fraction counts as "no
         *  change": the controller holds TDF instead of reacting to
         *  measurement noise. 0 disables the deadband (default). */
        double deadband = 0.0;
    };

    TdfController() : TdfController(Config{}) {}

    explicit TdfController(const Config &config) : config_(config)
    {
        hdcps_check(config.initial >= config.minTdf &&
                        config.initial <= config.maxTdf,
                    "initial TDF outside [min, max]");
        hdcps_check(config.step >= 1 && config.step <= 100,
                    "TDF step out of range");
        hdcps_check(config.minTdf <= config.maxTdf, "bad TDF bounds");
        tdf_.store(config.initial, std::memory_order_relaxed);
    }

    /** Reinitialize to a fresh state with a (possibly new) config. */
    void
    reset(const Config &config)
    {
        config_ = config;
        tdf_.store(config.initial, std::memory_order_relaxed);
        prevDrift_ = 0.0;
        havePrev_ = false;
        lastDecision_ = Decision::Increase;
        decisions_ = 0;
    }

    /** Current TDF in percent; read by all cores (non-blocking). */
    unsigned
    current() const
    {
        return tdf_.load(std::memory_order_relaxed);
    }

    /**
     * Algorithm 2: one decision, fed with this interval's average
     * drift. Returns the new TDF. Called by the master core only.
     */
    unsigned
    update(double drift)
    {
        unsigned tdf = tdf_.load(std::memory_order_relaxed);
        if (!havePrev_) {
            // First interval: nothing to compare against yet.
            havePrev_ = true;
            prevDrift_ = drift;
            return tdf;
        }

        if (config_.deadband > 0.0) {
            double magnitude = prevDrift_ > 0.0 ? prevDrift_ : 1e-12;
            if (std::fabs(drift - prevDrift_) / magnitude <
                config_.deadband) {
                // Within the noise floor: hold position.
                prevDrift_ = drift;
                return tdf;
            }
        }
        if (drift >= prevDrift_) {
            // Worsened (or flat): reverse the previous move.
            if (lastDecision_ == Decision::Increase) {
                tdf = decrease(tdf);
                lastDecision_ = Decision::Decrease;
            } else {
                tdf = increase(tdf);
                lastDecision_ = Decision::Increase;
            }
        } else {
            // Improved: keep moving the same way.
            if (lastDecision_ == Decision::Increase)
                tdf = increase(tdf);
            else
                tdf = decrease(tdf);
        }
        prevDrift_ = drift;
        tdf_.store(tdf, std::memory_order_relaxed);
        ++decisions_;
        return tdf;
    }

    uint64_t decisions() const { return decisions_; }

    /** Last decision direction (test hook). */
    bool lastWasIncrease() const
    {
        return lastDecision_ == Decision::Increase;
    }

  private:
    enum class Decision { Increase, Decrease };

    unsigned
    increase(unsigned tdf) const
    {
        unsigned next = tdf + config_.step;
        return next > config_.maxTdf ? config_.maxTdf : next;
    }

    unsigned
    decrease(unsigned tdf) const
    {
        return tdf < config_.minTdf + config_.step ? config_.minTdf
                                                   : tdf - config_.step;
    }

    Config config_;
    std::atomic<unsigned> tdf_;
    // Master-core-only state below (no synchronization needed).
    double prevDrift_ = 0.0;
    bool havePrev_ = false;
    Decision lastDecision_ = Decision::Increase;
    uint64_t decisions_ = 0;
};

} // namespace hdcps

#endif // HDCPS_CORE_TDF_H_
