#include "cps/multiqueue.h"

namespace hdcps {

MultiQueueScheduler::MultiQueueScheduler(unsigned numWorkers,
                                         unsigned queuesPerWorker,
                                         uint64_t seed)
    : Scheduler(numWorkers)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(queuesPerWorker >= 1, "need at least one queue/worker");
    size_t numQueues = size_t(numWorkers) * queuesPerWorker;
    queues_.reserve(numQueues);
    for (size_t i = 0; i < numQueues; ++i)
        queues_.push_back(std::make_unique<LockedTaskPq>());
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto w = std::make_unique<WorkerState>();
        w->rng.reseed(mix64(seed + 0x9e51) + i);
        workers_.push_back(std::move(w));
    }
}

void
MultiQueueScheduler::push(unsigned tid, const Task &task)
{
    size_t q = workers_[tid]->rng.below(queues_.size());
    queues_[q]->push(task);
    if (metrics_) {
        // A queue "belongs" to worker q / c for attribution purposes.
        bool local = q / (queues_.size() / numWorkers()) == tid;
        metrics_->add(tid, local ? WorkerCounter::LocalEnqueues
                                 : WorkerCounter::RemoteEnqueues);
    }
}

bool
MultiQueueScheduler::tryPop(unsigned tid, Task &out)
{
    Rng &rng = workers_[tid]->rng;
    // Power of two choices: peek two random queues, pop the better.
    for (int attempt = 0; attempt < 4; ++attempt) {
        size_t a = rng.below(queues_.size());
        size_t b = rng.below(queues_.size());
        Priority pa;
        Priority pb;
        bool hasA = queues_[a]->peekPriority(pa);
        bool hasB = queues_[b]->peekPriority(pb);
        size_t pick;
        if (hasA && hasB) {
            pick = pa <= pb ? a : b;
        } else if (hasA) {
            pick = a;
        } else if (hasB) {
            pick = b;
        } else {
            continue;
        }
        if (queues_[pick]->tryPop(out)) {
            if (metrics_ && metrics_->tick(tid)) {
                metrics_->record(
                    tid, WorkerSeries::QueueOccupancy,
                    static_cast<double>(queues_[pick]->size()));
            }
            return true;
        }
    }
    // Fall back to a full scan so no task can be stranded.
    for (auto &queue : queues_) {
        if (queue->tryPop(out)) {
            if (metrics_ && metrics_->tick(tid)) {
                metrics_->record(tid, WorkerSeries::QueueOccupancy,
                                 static_cast<double>(queue->size()));
            }
            return true;
        }
    }
    return false;
}

} // namespace hdcps
