#include "cps/multiqueue.h"

#include <algorithm>

#include "support/logging.h"

namespace hdcps {

namespace {

/** Descending order for the insertion buffer (minimum at the back). */
inline bool
descending(const Task &a, const Task &b)
{
    return TaskOrder{}(b, a);
}

MultiQueueConfig
classicConfig(unsigned queuesPerWorker, uint64_t seed)
{
    MultiQueueConfig config;
    config.queuesPerWorker = queuesPerWorker;
    config.seed = seed;
    return config;
}

} // namespace

void
MultiQueueScheduler::MqQueue::publish()
{
    count.store(heap.size(), std::memory_order_relaxed);
    cachedTop.store(heap.empty() ? kEmptyTop : heap.top().priority,
                    std::memory_order_release);
}

void
MultiQueueScheduler::MqQueue::pushN(const Task *tasks, size_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    heap.pushBulk(tasks, tasks + n);
    publish();
}

bool
MultiQueueScheduler::MqQueue::popBatch(Priority bound, size_t maxN,
                                       std::vector<Task> &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    // Failure paths still republish: that is how a stale cached top
    // (left by the race this validation defends against) self-heals.
    if (heap.empty() || heap.top().priority > bound) {
        publish();
        return false;
    }
    const size_t n = std::min(maxN, heap.size());
    for (size_t i = 0; i < n; ++i)
        out.push_back(heap.pop());
    publish();
    return true;
}

MultiQueueScheduler::MultiQueueScheduler(unsigned numWorkers,
                                         const MultiQueueConfig &config)
    : Scheduler(numWorkers), config_(config)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config_.queuesPerWorker >= 1,
                "need at least one queue/worker");
    config_.stickiness = std::max(config_.stickiness, 1u);
    config_.insertionBufferCap = std::max<size_t>(config_.insertionBufferCap, 1);
    config_.deletionBufferCap = std::max<size_t>(config_.deletionBufferCap, 1);
    // Worker-blocked layout: queues [w*c, (w+1)*c) belong to worker w,
    // which is what the local/remote attribution in push() relies on.
    const size_t numQueues = size_t(numWorkers) * config_.queuesPerWorker;
    queues_.reserve(numQueues);
    for (size_t i = 0; i < numQueues; ++i)
        queues_.push_back(std::make_unique<MqQueue>());
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto w = std::make_unique<WorkerState>();
        w->rng.reseed(workerStreamSeed(config_.seed, i));
        w->insertionBuffer.reserve(config_.insertionBufferCap);
        w->deletionBuffer.reserve(config_.deletionBufferCap);
        workers_.push_back(std::move(w));
    }
    externalRng_.reseed(workerStreamSeed(config_.seed, numWorkers));
}

MultiQueueScheduler::MultiQueueScheduler(unsigned numWorkers,
                                         unsigned queuesPerWorker,
                                         uint64_t seed)
    : MultiQueueScheduler(numWorkers, classicConfig(queuesPerWorker, seed))
{
}

void
MultiQueueScheduler::flushInsertion(unsigned, WorkerState &w)
{
    if (w.insertionBuffer.empty())
        return;
    queues_[w.insQueue]->pushN(w.insertionBuffer.data(),
                               w.insertionBuffer.size());
    w.insertionBuffer.clear();
}

void
MultiQueueScheduler::publishBuffered(WorkerState &w)
{
    w.buffered.store(w.insertionBuffer.size() +
                         (w.deletionBuffer.size() - w.deletionPos),
                     std::memory_order_release);
}

void
MultiQueueScheduler::push(unsigned tid, const Task &task)
{
    if (tid >= numWorkers()) {
        externalPush(task);
        return;
    }
    WorkerState &w = *workers_[tid];
    if (w.insOpsLeft == 0) {
        // Flush before redrawing so every staged task lands on the
        // queue it was attributed to when pushed.
        flushInsertion(tid, w);
        w.insQueue = unsigned(w.rng.below(queues_.size()));
        w.insOpsLeft = config_.stickiness;
    }
    --w.insOpsLeft;
    auto it = std::upper_bound(w.insertionBuffer.begin(),
                               w.insertionBuffer.end(), task, descending);
    w.insertionBuffer.insert(it, task);
    if (metrics_) {
        const bool local = w.insQueue / config_.queuesPerWorker == tid;
        metrics_->add(tid, local ? WorkerCounter::LocalEnqueues
                                 : WorkerCounter::RemoteEnqueues);
    }
    if (w.insertionBuffer.size() >= config_.insertionBufferCap)
        flushInsertion(tid, w);
    publishBuffered(w);
}

bool
MultiQueueScheduler::refillDeletion(WorkerState &w)
{
    const size_t nq = queues_.size();
    for (int attempt = 0; attempt < 3; ++attempt) {
        if (w.popOpsLeft == 0) {
            w.popA = unsigned(w.rng.below(nq));
            w.popB = unsigned(w.rng.below(nq));
            if (nq > 1) {
                while (w.popB == w.popA)
                    w.popB = unsigned(w.rng.below(nq));
            }
            w.popOpsLeft = config_.stickiness;
        }
        --w.popOpsLeft;
        const Priority ta =
            queues_[w.popA]->cachedTop.load(std::memory_order_acquire);
        const Priority tb =
            queues_[w.popB]->cachedTop.load(std::memory_order_acquire);
        if (ta == kEmptyTop && tb == kEmptyTop) {
            w.popOpsLeft = 0;
            continue;
        }
        // Pop the better of the two peeks; the loser's published top
        // becomes the validation bound under the winner's lock.
        const unsigned pick = ta <= tb ? w.popA : w.popB;
        const Priority bound = ta <= tb ? tb : ta;
        if (queues_[pick]->popBatch(bound, config_.deletionBufferCap,
                                    w.deletionBuffer))
            return true;
        // Raced: winner emptied or its real top is now worse than the
        // loser looked. Redraw instead of popping a worse task.
        w.popOpsLeft = 0;
    }
    return false;
}

bool
MultiQueueScheduler::scanRefill(WorkerState &w)
{
    for (auto &queue : queues_) {
        if (queue->popBatch(kEmptyTop, config_.deletionBufferCap,
                            w.deletionBuffer))
            return true;
    }
    return false;
}

bool
MultiQueueScheduler::tryPop(unsigned tid, Task &out)
{
    if (tid >= numWorkers())
        return externalPop(out);
    WorkerState &w = *workers_[tid];
    if (w.deletionPos >= w.deletionBuffer.size()) {
        w.deletionBuffer.clear();
        w.deletionPos = 0;
        // Full scan when sampling fails, so no task can be stranded
        // behind stale cached tops or unlucky draws.
        if (!refillDeletion(w))
            scanRefill(w);
    }
    const bool haveDel = w.deletionPos < w.deletionBuffer.size();
    const bool haveIns = !w.insertionBuffer.empty();
    if (!haveDel && !haveIns) {
        publishBuffered(w);
        return false;
    }
    const bool fromIns =
        haveIns && (!haveDel || TaskOrder{}(w.insertionBuffer.back(),
                                            w.deletionBuffer[w.deletionPos]));
    if (fromIns) {
        out = w.insertionBuffer.back();
        w.insertionBuffer.pop_back();
    } else {
        out = w.deletionBuffer[w.deletionPos++];
        if (w.deletionPos >= w.deletionBuffer.size()) {
            w.deletionBuffer.clear();
            w.deletionPos = 0;
        }
    }
    publishBuffered(w);
    if (metrics_ && metrics_->tick(tid)) {
        metrics_->record(tid, WorkerSeries::QueueOccupancy,
                         static_cast<double>(sizeApprox()));
    }
    return true;
}

void
MultiQueueScheduler::externalPush(const Task &task)
{
    size_t q;
    {
        std::lock_guard<std::mutex> lock(externalMutex_);
        q = externalRng_.below(queues_.size());
    }
    // Single locked push; external threads have no buffers and no
    // per-worker metrics slot, so neither is touched here.
    queues_[q]->pushN(&task, 1);
}

bool
MultiQueueScheduler::externalPop(Task &out)
{
    std::vector<Task> one;
    for (auto &queue : queues_) {
        if (queue->popBatch(kEmptyTop, 1, one)) {
            out = one.front();
            return true;
        }
    }
    return false;
}

size_t
MultiQueueScheduler::sizeApprox() const
{
    size_t total = 0;
    for (const auto &queue : queues_)
        total += queue->count.load(std::memory_order_relaxed);
    for (const auto &w : workers_)
        total += w->buffered.load(std::memory_order_acquire);
    return total;
}

} // namespace hdcps
