/**
 * @file
 * MultiQueue: the relaxed concurrent priority queue of Rihani, Sanders
 * and Dementiev (SPAA'15), cited by the paper as one of the modern
 * relaxed schedulers HD-CPS competes with.
 *
 * c queues per worker (c = 2 here); a push inserts into a uniformly
 * random queue, a pop peeks two random queues and takes the better
 * top. The expected rank error is O(P), giving a communication-cheap
 * but drift-blind scheduler — a useful extra baseline between RELD
 * (fine-grain push) and OBIM (coarse bags) for the beyond-the-paper
 * ablation benchmark.
 */

#ifndef HDCPS_CPS_MULTIQUEUE_H_
#define HDCPS_CPS_MULTIQUEUE_H_

#include <memory>
#include <vector>

#include "cps/scheduler.h"
#include "pq/locked_pq.h"
#include "support/compiler.h"
#include "support/rng.h"

namespace hdcps {

/** Relaxed multi-queue scheduler (power-of-two-choices pops). */
class MultiQueueScheduler : public Scheduler
{
  public:
    /** queuesPerWorker is the classic "c" parameter. */
    MultiQueueScheduler(unsigned numWorkers, unsigned queuesPerWorker = 2,
                        uint64_t seed = 1);

    void push(unsigned tid, const Task &task) override;
    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return "multiqueue"; }

    size_t numQueues() const { return queues_.size(); }

  private:
    struct alignas(cacheLineBytes) WorkerState
    {
        Rng rng;
    };

    std::vector<std::unique_ptr<LockedTaskPq>> queues_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
};

} // namespace hdcps

#endif // HDCPS_CPS_MULTIQUEUE_H_
