/**
 * @file
 * MultiQueue: relaxed concurrent priority queue, modernized from the
 * SPAA'15 sketch of Rihani, Sanders and Dementiev to the recipe of
 * "Engineering MultiQueues" (Williams, Sanders, Dementiev, ESA'21),
 * which Postnikova et al. argue makes MQs state-of-the-art relaxed
 * priority schedulers.
 *
 * The classic core is unchanged: c queues per worker, pops sample two
 * queues and take the better top, expected rank error O(P). On top of
 * that this implementation adds the three engineering mechanisms the
 * paper shows dominate MQ throughput:
 *
 *  - **Stickiness**: a worker reuses its chosen queue (for pushes) and
 *    queue pair (for pops) for S consecutive operations before
 *    redrawing, amortizing both the RNG draws and the cache misses of
 *    touching fresh queues.
 *  - **Insertion buffers**: pushes stage into a worker-private sorted
 *    buffer and flush to the sticky queue in one batched lock
 *    acquisition (heap pushBulk), instead of one lock per task.
 *  - **Deletion buffers**: a pop refill takes up to D best tasks from
 *    the chosen queue under one lock; subsequent pops serve the buffer
 *    lock-free. Each pop considers both the deletion buffer head and
 *    the insertion buffer minimum, so freshly created high-priority
 *    work is never invisible to its creator.
 *  - **Lock-free cached tops**: every queue publishes its top priority
 *    as a single atomic, updated under the queue lock on every
 *    mutation, so power-of-two-choices peeks never take a mutex. The
 *    old peek/lock/pop race (both peeked tops pop out from under the
 *    chooser, silently serving a much worse task) is closed by
 *    re-validating the winner's real top under its lock against the
 *    loser's published top and redrawing on failure.
 *
 * Worker-private buffers relax the "any worker can pop any task" shape
 * of the original: a task staged in worker w's buffers is only
 * returned by w's own tryPop. The runtime's termination detection
 * tolerates this (workers poll tryPop until the global in-flight count
 * hits zero, so every owner drains its own staging), and failed runs
 * may strand buffered tasks exactly like HD-CPS's private PQs.
 *
 * Queue ownership for metric attribution is explicit: the constructor
 * lays out queuesPerWorker consecutive queues per worker, so queue q
 * belongs to worker q / queuesPerWorker. A push is counted local when
 * its sticky destination queue is owned by the pushing worker. Pushes
 * from threads outside the worker set (seeding or test drivers with
 * tid >= numWorkers) take a bound-checked external path instead of
 * indexing per-worker state out of bounds.
 */

#ifndef HDCPS_CPS_MULTIQUEUE_H_
#define HDCPS_CPS_MULTIQUEUE_H_

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "cps/scheduler.h"
#include "pq/dary_heap.h"
#include "support/compiler.h"
#include "support/rng.h"

namespace hdcps {

/** Engineering-MultiQueues tunables (defaults follow the paper's
 *  moderate-relaxation configuration). */
struct MultiQueueConfig
{
    unsigned queuesPerWorker = 2; ///< the classic "c" parameter
    /** Operations before a worker redraws its sticky queues (1 =
     *  classic fully-random MultiQueue behavior). */
    unsigned stickiness = 8;
    size_t insertionBufferCap = 16; ///< staged pushes per flush
    size_t deletionBufferCap = 8;   ///< tasks per batched pop refill
    uint64_t seed = 1;
};

/** Relaxed multi-queue scheduler (buffered power-of-two-choices). */
class MultiQueueScheduler : public Scheduler
{
  public:
    MultiQueueScheduler(unsigned numWorkers,
                        const MultiQueueConfig &config);
    /** Classic-parameter convenience constructor (c, seed). */
    MultiQueueScheduler(unsigned numWorkers, unsigned queuesPerWorker = 2,
                        uint64_t seed = 1);

    void push(unsigned tid, const Task &task) override;
    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return "multiqueue"; }

    /** Queue-count + published worker-buffer occupancy (lock-free). */
    size_t sizeApprox() const override;

    size_t numQueues() const { return queues_.size(); }
    const MultiQueueConfig &config() const { return config_; }

    /**
     * Per-worker RNG stream seed. Public so tests can assert stream
     * independence: the worker index is mixed *into* the seed word
     * (golden-ratio stride, then SplitMix64) rather than added to the
     * mixed output, so adjacent workers never run correlated xoshiro
     * states offset by 1.
     */
    static uint64_t
    workerStreamSeed(uint64_t seed, unsigned worker)
    {
        return mix64(seed ^ (uint64_t(worker) * 0x9e3779b97f4a7c15ULL));
    }

  private:
    /** Cached-top sentinel for "probably empty". A real task may carry
     *  this priority; the sentinel only biases the lock-free peek, and
     *  the locked scan fallback still finds such tasks. */
    static constexpr Priority kEmptyTop =
        std::numeric_limits<Priority>::max();

    /** One internal queue: locked heap + atomically-published top. */
    struct alignas(cacheLineBytes) MqQueue
    {
        std::mutex mutex;
        DAryHeap<Task, TaskOrder> heap;
        /** heap.top().priority (kEmptyTop when empty), stored under
         *  the mutex after every mutation; peeks read it lock-free. */
        std::atomic<Priority> cachedTop{kEmptyTop};
        std::atomic<size_t> count{0};

        /** Batched insert: one lock, bulk heap build, top republish. */
        void pushN(const Task *tasks, size_t n);
        /**
         * Batched pop of up to maxN best tasks (ascending) into out.
         * Fails without popping when empty, or when the real top
         * turned out worse than `bound` (the losing queue's published
         * top) — the peek/lock/pop re-validation. Republishes the top.
         */
        bool popBatch(Priority bound, size_t maxN,
                      std::vector<Task> &out);

        /** Republish cachedTop/count; caller holds mutex. */
        void publish();
    };

    struct alignas(cacheLineBytes) WorkerState
    {
        Rng rng;
        /** Sticky insertion queue and remaining ops before redraw. */
        unsigned insQueue = 0;
        unsigned insOpsLeft = 0;
        /** Sticky pop pair and remaining ops before redraw. */
        unsigned popA = 0;
        unsigned popB = 0;
        unsigned popOpsLeft = 0;
        /** Staged pushes, sorted descending (minimum at the back). */
        std::vector<Task> insertionBuffer;
        /** Refilled pops, ascending; served from deletionPos. */
        std::vector<Task> deletionBuffer;
        size_t deletionPos = 0;
        /** Owner-published buffer occupancy for sizeApprox. */
        std::atomic<size_t> buffered{0};
    };

    void flushInsertion(unsigned tid, WorkerState &w);
    /** Two-choice batched refill of the deletion buffer; false when
     *  the sampled queues came up empty or kept failing validation. */
    bool refillDeletion(WorkerState &w);
    /** Locked scan of every queue — the no-task-stranded guarantee
     *  when cached tops are stale or sampling is unlucky. */
    bool scanRefill(WorkerState &w);
    void publishBuffered(WorkerState &w);
    /** Bound-checked path for pushes from non-worker threads. */
    void externalPush(const Task &task);
    bool externalPop(Task &out);

    MultiQueueConfig config_;
    std::vector<std::unique_ptr<MqQueue>> queues_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
    /** Guards externalRng_ (external pushes may race each other). */
    std::mutex externalMutex_;
    Rng externalRng_;
};

} // namespace hdcps

#endif // HDCPS_CPS_MULTIQUEUE_H_
