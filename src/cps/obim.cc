#include "cps/obim.h"

#include "support/logging.h"

namespace hdcps {

ObimBase::ObimBase(unsigned numWorkers, const Config &config)
    : Scheduler(numWorkers), config_(config), delta_(config.delta)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config.delta <= 32, "delta out of range");
    hdcps_check(config.chunkSize >= 1, "chunk size must be >= 1");
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        workers_.push_back(std::make_unique<WorkerState>());
}

ObimBag *
ObimBase::findOrCreateBag(Priority base, bool &created)
{
    created = false;
    {
        std::shared_lock<std::shared_mutex> lock(mapMutex_);
        auto it = bags_.find(base);
        if (it != bags_.end())
            return it->second.get();
    }
    std::unique_lock<std::shared_mutex> lock(mapMutex_);
    auto [it, inserted] = bags_.try_emplace(base, nullptr);
    if (inserted) {
        it->second = std::make_unique<ObimBag>(base);
        created = true;
    }
    return it->second.get();
}

ObimBag *
ObimBase::findBestBag()
{
    std::shared_lock<std::shared_mutex> lock(mapMutex_);
    for (auto &[base, bag] : bags_) {
        if (!bag->empty())
            return bag.get();
    }
    return nullptr;
}

bool
ObimBase::bestNonEmptyBase(Priority &base) const
{
    std::shared_lock<std::shared_mutex> lock(mapMutex_);
    for (const auto &[key, bag] : bags_) {
        if (!bag->empty()) {
            base = key;
            return true;
        }
    }
    return false;
}

void
ObimBase::push(unsigned tid, const Task &task)
{
    unsigned delta = delta_.load(std::memory_order_relaxed);
    Priority base = (task.priority >> delta) << delta;
    bool created = false;
    findOrCreateBag(base, created)->push(task);
    if (metrics_) {
        // Every OBIM push lands in the shared map, i.e. is "remote".
        metrics_->add(tid, WorkerCounter::RemoteEnqueues);
        if (created)
            metrics_->add(tid, WorkerCounter::BagsCreated);
    }
}

bool
ObimBase::tryPop(unsigned tid, Task &out)
{
    WorkerState &w = *workers_[tid];

    if (!w.chunk.empty()) {
        out = w.chunk.back();
        w.chunk.pop_back();
        sampleOccupancy(tid, w);
        return true;
    }

    // Refill from the worker's current bag first (bulk processing of a
    // bag is where OBIM's synchronization savings come from).
    if (w.currentBag) {
        size_t got = w.currentBag->popChunk(w.chunk, config_.chunkSize);
        if (got > 0) {
            w.takenFromCurrent += got;
            out = w.chunk.back();
            w.chunk.pop_back();
            sampleOccupancy(tid, w);
            return true;
        }
        onBagExhausted(w.takenFromCurrent);
        w.currentBag = nullptr;
        w.takenFromCurrent = 0;
    }

    // Search the global map for the best non-empty bag.
    ObimBag *best = findBestBag();
    if (!best)
        return false;
    size_t got = best->popChunk(w.chunk, config_.chunkSize);
    if (got == 0)
        return false; // raced with other workers; caller will retry
    w.currentBag = best;
    w.takenFromCurrent = got;
    out = w.chunk.back();
    w.chunk.pop_back();
    sampleOccupancy(tid, w);
    return true;
}

void
ObimBase::sampleOccupancy(unsigned tid, WorkerState &w)
{
    if (!metrics_ || !metrics_->tick(tid))
        return;
    metrics_->record(tid, WorkerSeries::QueueOccupancy,
                     static_cast<double>(w.chunk.size()));
    metrics_->set(tid, WorkerGauge::QueueDepth,
                  static_cast<double>(w.takenFromCurrent));
}

void
ObimBase::repushClaimed(const Task &task)
{
    unsigned delta = delta_.load(std::memory_order_relaxed);
    Priority base = (task.priority >> delta) << delta;
    bool created = false;
    findOrCreateBag(base, created)->push(task);
    // Deliberately no metrics: re-inserting a claimed task is internal
    // movement, not a new enqueue (counting it again double-counted
    // RemoteEnqueues/BagsCreated in the Fig. 11 breakdowns, and wrote
    // the serviced worker's slots from the helper thread).
}

size_t
ObimBase::claimChunk(std::vector<Task> &out, size_t maxCount)
{
    ObimBag *best = findBestBag();
    if (!best)
        return 0;
    return best->popChunk(out, maxCount);
}

size_t
ObimBase::numBags() const
{
    std::shared_lock<std::shared_mutex> lock(mapMutex_);
    return bags_.size();
}

} // namespace hdcps
