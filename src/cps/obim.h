/**
 * @file
 * OBIM: the Galois "ordered by integer metric" scheduler, and the shared
 * machinery its PMOD variant builds on.
 *
 * Pull-style, relax-ordered, coarse-grain: tasks whose priorities fall
 * in the same 2^delta range are merged into one unordered *bag*; bag
 * metadata lives in a global ordered map. A worker out of work scans the
 * map for the highest-priority (lowest-key) non-empty bag and processes
 * tasks from it in chunks. The fixed delta is OBIM's weakness the paper
 * leans on: under-utilized bags (sparse inputs) cause priority drift.
 *
 * Bags are keyed by their priority-range *base* (bucket << delta) rather
 * than the bucket index so that keys stay comparable when PMOD changes
 * delta at runtime.
 */

#ifndef HDCPS_CPS_OBIM_H_
#define HDCPS_CPS_OBIM_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "cps/scheduler.h"
#include "support/compiler.h"

namespace hdcps {

/** One unordered bag of same-priority-range tasks. */
class ObimBag
{
  public:
    explicit ObimBag(Priority base) : base_(base) {}

    Priority base() const { return base_; }

    void
    push(const Task &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(task);
    }

    /** Move up to maxCount tasks into out; returns how many were taken. */
    size_t
    popChunk(std::vector<Task> &out, size_t maxCount)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t take = std::min(maxCount, tasks_.size());
        for (size_t i = 0; i < take; ++i) {
            out.push_back(tasks_.back());
            tasks_.pop_back();
        }
        return take;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tasks_.size();
    }

    bool empty() const { return size() == 0; }

  private:
    mutable std::mutex mutex_;
    std::vector<Task> tasks_;
    Priority base_;
};

/**
 * Shared base for OBIM-family schedulers: the global bag map plus the
 * per-worker chunk cache. Subclasses control the delta policy.
 */
class ObimBase : public Scheduler
{
  public:
    struct Config
    {
        unsigned delta = 3;     ///< log2 of the priority range per bag
        size_t chunkSize = 16;  ///< tasks a worker claims per map visit
    };

    ObimBase(unsigned numWorkers, const Config &config);

    void push(unsigned tid, const Task &task) override;
    bool tryPop(unsigned tid, Task &out) override;

    /** Current delta (PMOD mutates it at runtime). */
    unsigned currentDelta() const
    {
        return delta_.load(std::memory_order_relaxed);
    }

    /** Number of distinct bags ever created (diagnostic). */
    size_t numBags() const;

  protected:
    /** Hook invoked when a worker abandons a bag after draining
     *  tasksTaken tasks from it; PMOD's adaptivity lives here. */
    virtual void onBagExhausted(size_t tasksTaken) { (void)tasksTaken; }

    /**
     * Claim up to maxCount tasks from the current best bag, bypassing
     * per-worker chunk state. Used by Software-Minnow helper threads to
     * prefetch on behalf of workers. Returns the number claimed.
     */
    size_t claimChunk(std::vector<Task> &out, size_t maxCount);

    /**
     * Return a previously claimed task to the bag map *without* metric
     * attribution. For helper threads (Software-Minnow) spilling back
     * tasks that did not fit their staging buffer: the task was already
     * counted as an enqueue when it first entered the map, and a helper
     * must never write a worker's registry slots — counters attribute
     * to the acting thread, and a helper has no worker slot (it keeps
     * its own aggregate instead).
     */
    void repushClaimed(const Task &task);

    /**
     * Base key of the best (lowest-base) non-empty bag, or false when
     * the map holds no work. Read-only: lets staging frontends
     * (Software-Minnow) validate a claimed task's rank at serve time
     * without touching per-worker chunk state.
     */
    bool bestNonEmptyBase(Priority &base) const;

    void setDelta(unsigned delta) { delta_.store(delta,
                                                 std::memory_order_relaxed); }

    Config config_;

  private:
    struct alignas(cacheLineBytes) WorkerState
    {
        std::vector<Task> chunk;  ///< locally claimed tasks
        ObimBag *currentBag = nullptr;
        size_t takenFromCurrent = 0;
    };

    ObimBag *findOrCreateBag(Priority base, bool &created);
    ObimBag *findBestBag();
    void sampleOccupancy(unsigned tid, WorkerState &w);

    mutable std::shared_mutex mapMutex_;
    std::map<Priority, std::unique_ptr<ObimBag>> bags_;
    std::atomic<unsigned> delta_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
};

/** OBIM proper: fixed delta. */
class ObimScheduler : public ObimBase
{
  public:
    explicit ObimScheduler(unsigned numWorkers, const Config &config = {})
        : ObimBase(numWorkers, config)
    {}

    const char *name() const override { return "obim"; }
};

} // namespace hdcps

#endif // HDCPS_CPS_OBIM_H_
