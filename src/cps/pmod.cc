#include "cps/pmod.h"

#include "support/logging.h"

namespace hdcps {

PmodScheduler::PmodScheduler(unsigned numWorkers, const PmodConfig &config)
    : ObimBase(numWorkers, config.obim), pmodConfig_(config)
{
    hdcps_check(config.window >= 1, "window must be >= 1");
    hdcps_check(config.minDelta <= config.maxDelta, "bad delta bounds");
    hdcps_check(config.lowYield < config.highYield,
                "lowYield must be < highYield");
}

void
PmodScheduler::onBagExhausted(size_t tasksTaken)
{
    retiredTasks_.fetch_add(tasksTaken, std::memory_order_relaxed);
    uint64_t retired =
        retiredBags_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (retired % pmodConfig_.window != 0)
        return;

    // Decision point: average tasks drained per retired bag over the
    // *last window only* — a cumulative average would keep reacting to
    // start-up behaviour long after the application changed phase.
    uint64_t tasks =
        retiredTasks_.exchange(0, std::memory_order_relaxed);
    uint64_t avgYield = tasks / pmodConfig_.window;
    unsigned delta = currentDelta();
    if (avgYield < pmodConfig_.lowYield &&
        delta < pmodConfig_.maxDelta) {
        setDelta(delta + 1);
        adjustments_.fetch_add(1, std::memory_order_relaxed);
    } else if (avgYield > pmodConfig_.highYield &&
               delta > pmodConfig_.minDelta) {
        setDelta(delta - 1);
        adjustments_.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace hdcps
