/**
 * @file
 * PMOD: OBIM with runtime bag-utilization tuning (Yesil et al., SC'19).
 *
 * PMOD removes OBIM's fixed-delta weakness by observing how many tasks
 * workers actually drain from each bag before abandoning it. Bags that
 * are consistently under-filled mean the priority range per bag is too
 * narrow (delta too small → many near-empty bags → drift and map churn),
 * so delta grows; bags that are consistently over-filled mean diverging
 * priorities are being merged (delta too large → work inefficiency), so
 * delta shrinks. Adaptation happens every `window` bag retirements.
 */

#ifndef HDCPS_CPS_PMOD_H_
#define HDCPS_CPS_PMOD_H_

#include <atomic>

#include "cps/obim.h"

namespace hdcps {

/** OBIM with adaptive delta. */
class PmodScheduler : public ObimBase
{
  public:
    struct PmodConfig
    {
        Config obim{};               ///< starting delta / chunk size
        size_t window = 32;          ///< bag retirements per decision
        size_t lowYield = 2;         ///< window avg below => merge
        size_t highYield = 64;       ///< window avg above => split
        unsigned minDelta = 0;
        unsigned maxDelta = 8;
    };

    PmodScheduler(unsigned numWorkers, const PmodConfig &config);
    explicit PmodScheduler(unsigned numWorkers)
        : PmodScheduler(numWorkers, PmodConfig{})
    {}

    const char *name() const override { return "pmod"; }

    /** Number of delta adjustments made so far (diagnostic). */
    uint64_t numAdjustments() const
    {
        return adjustments_.load(std::memory_order_relaxed);
    }

  protected:
    void onBagExhausted(size_t tasksTaken) override;

  private:
    PmodConfig pmodConfig_;
    std::atomic<uint64_t> retiredBags_{0};
    std::atomic<uint64_t> retiredTasks_{0};
    std::atomic<uint64_t> adjustments_{0};
};

} // namespace hdcps

#endif // HDCPS_CPS_PMOD_H_
