#include "cps/reld.h"

namespace hdcps {

ReldScheduler::ReldScheduler(unsigned numWorkers, uint64_t seed)
    : Scheduler(numWorkers)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto state = std::make_unique<WorkerState>();
        state->rng.reseed(mix64(seed) + i);
        workers_.push_back(std::move(state));
    }
}

void
ReldScheduler::push(unsigned tid, const Task &task)
{
    // RELD distributes every created task to a random worker (possibly
    // itself); this is the fine-grain continuous distribution model.
    unsigned dest = static_cast<unsigned>(
        workers_[tid]->rng.below(numWorkers()));
    workers_[dest]->pq.push(task);
    if (metrics_) {
        metrics_->add(tid, dest == tid ? WorkerCounter::LocalEnqueues
                                       : WorkerCounter::RemoteEnqueues);
    }
}

bool
ReldScheduler::tryPop(unsigned tid, Task &out)
{
    if (!workers_[tid]->pq.tryPop(out))
        return false;
    if (metrics_ && metrics_->tick(tid)) {
        metrics_->record(tid, WorkerSeries::QueueOccupancy,
                         static_cast<double>(workers_[tid]->pq.size()));
    }
    return true;
}

size_t
ReldScheduler::totalQueued() const
{
    size_t total = 0;
    for (const auto &w : workers_)
        total += w->pq.size();
    return total;
}

} // namespace hdcps
