/**
 * @file
 * RELD: push-style distributed CPS (Yesil et al., SC'19 nomenclature).
 *
 * One lock-guarded priority queue per worker. Every newly created task
 * is sent to a uniformly random worker's PQ (continuous fine-grain
 * distribution), which load-balances execution but makes every enqueue
 * a potentially remote, serializing operation on the destination's PQ —
 * the communication overhead HD-CPS's receive queue removes. This is
 * the paper's starting point for HD-CPS (Section II-B).
 */

#ifndef HDCPS_CPS_RELD_H_
#define HDCPS_CPS_RELD_H_

#include <memory>
#include <vector>

#include "cps/scheduler.h"
#include "pq/locked_pq.h"
#include "support/compiler.h"
#include "support/rng.h"

namespace hdcps {

/** Push-style distributed scheduler with per-worker locked PQs. */
class ReldScheduler : public Scheduler
{
  public:
    explicit ReldScheduler(unsigned numWorkers, uint64_t seed = 1);

    void push(unsigned tid, const Task &task) override;
    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return "reld"; }

    /** Tasks currently buffered across all PQs (test/diagnostic hook). */
    size_t totalQueued() const;

  private:
    struct alignas(cacheLineBytes) WorkerState
    {
        LockedTaskPq pq;
        Rng rng;
    };

    std::vector<std::unique_ptr<WorkerState>> workers_;
};

} // namespace hdcps

#endif // HDCPS_CPS_RELD_H_
