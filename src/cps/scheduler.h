/**
 * @file
 * The common interface all threaded concurrent priority schedulers
 * (CPS designs) implement.
 *
 * A CPS stores newly created tasks and distributes them among worker
 * threads. Workers interact with it from inside the runtime's worker
 * loop: pop a task, process it, push the generated children. The
 * interface is deliberately minimal so every design in the paper — RELD,
 * OBIM, PMOD, Software Minnow, and HD-CPS:SW — plugs into the same
 * runtime and the same workloads.
 *
 * Contract:
 *  - push/tryPop may be called concurrently from different worker ids;
 *    a given worker id is only ever driven by one thread at a time.
 *  - Relaxed priority order: tryPop returns *a* high-priority task, not
 *    necessarily the global best (that relaxation is the whole point of
 *    a CPS).
 *  - No task loss: every pushed task is returned by some tryPop exactly
 *    once. Termination detection is the runtime's job (it counts
 *    in-flight tasks), so transient emptiness is fine.
 */

#ifndef HDCPS_CPS_SCHEDULER_H_
#define HDCPS_CPS_SCHEDULER_H_

#include <cstddef>

#include "cps/task.h"
#include "obs/metrics.h"

namespace hdcps {

/** Abstract threaded concurrent priority scheduler. */
class Scheduler
{
  public:
    explicit Scheduler(unsigned numWorkers) : numWorkers_(numWorkers) {}
    virtual ~Scheduler() = default;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Insert one task on behalf of worker tid. */
    virtual void push(unsigned tid, const Task &task) = 0;

    /**
     * Insert a batch of children created by one parent task. Designs
     * with bag support override this — Algorithm 1 operates on exactly
     * this batch. The default forwards to push() one task at a time.
     */
    virtual void
    pushBatch(unsigned tid, const Task *tasks, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            push(tid, tasks[i]);
    }

    /**
     * Remove a high-priority task for worker tid. Returns false when
     * this worker currently sees no work (other workers may still have
     * some; the runtime keeps polling until its in-flight count hits 0).
     */
    virtual bool tryPop(unsigned tid, Task &out) = 0;

    /** Human-readable design name ("reld", "obim", ...). */
    virtual const char *name() const = 0;

    /**
     * Approximate number of buffered tasks, callable from *any* thread
     * while workers run — used by the runtime watchdog's stall
     * diagnostic. Implementations must only read race-free state
     * (atomics or locked structures); owner-private buffers may be
     * excluded, so the count can undershoot. The default, 0, means
     * "unknown".
     */
    virtual size_t sizeApprox() const { return 0; }

    unsigned numWorkers() const { return numWorkers_; }

    /**
     * Straggler-resilience knob: when a worker's heartbeat is stale by
     * more than `ms` milliseconds, idle peers may reclaim its buffered
     * tasks (0 disables). The threaded runtime forwards
     * RunOptions::reclaimAfterMs here before the workers start, so the
     * RunOptions value is authoritative for executor-driven runs.
     * Designs without per-worker buffers ignore it (the default).
     * Must be called while no worker is inside push/tryPop.
     */
    virtual void setReclaimAfterMs(uint64_t ms) { (void)ms; }

    /**
     * Worker-thread lifecycle hook: the runtime calls this from worker
     * `tid`'s *own* thread before its first pop — at pool startup and
     * again for every replacement thread spawned into a healed slot.
     * Topology-aware designs pin the calling thread to the slot's NUMA
     * node here, so a replacement worker rejoins its node group. Must
     * be idempotent and safe while other workers run (the default is a
     * no-op; overrides must not touch cross-worker state).
     */
    virtual void onWorkerStart(unsigned tid) { (void)tid; }

    /**
     * Supervision hook: stop routing new work toward worker `tid`.
     * Designs with per-worker destination choice (HD-CPS's chooseDest)
     * mask the slot so remote deliveries avoid a wedged/dead worker's
     * queues while its backlog is reclaimed; designs whose queues are
     * globally shared have nothing to mask (the default no-op). The
     * quarantined worker id itself may keep calling push/tryPop — a
     * replacement thread reuses the same slot. Safe to call from a
     * supervisor thread while workers run.
     */
    virtual void quarantine(unsigned tid) { (void)tid; }

    /** Supervision hook: lift a quarantine() so worker `tid` receives
     *  remote work again (replacement worker is live). */
    virtual void reinstate(unsigned tid) { (void)tid; }

    /**
     * Supervision hook: forcibly drain worker `victim`'s buffered
     * tasks (sRQ, overflow, bags, private PQ) into worker
     * `reclaimer`'s queues, regardless of heartbeat staleness —
     * supervisor-initiated, unlike the opportunistic peer reclamation
     * behind setReclaimAfterMs. Returns the number of tasks moved.
     * The caller must guarantee the victim's thread is not inside
     * push/tryPop (it is wedged past its pause point, or exited).
     * Designs without per-worker buffers return 0 (the default).
     */
    virtual size_t
    reclaimWorker(unsigned reclaimer, unsigned victim)
    {
        (void)reclaimer;
        (void)victim;
        return 0;
    }

    /**
     * Attach an observability registry (nullptr detaches). Designs
     * record occupancy series and distribution counters into it; when
     * none is attached the hot paths pay one predictable branch.
     * Wrapper schedulers override this to forward the registry to the
     * wrapped design. Must be called while no worker is inside
     * push/tryPop.
     */
    virtual void attachMetrics(MetricsRegistry *metrics)
    {
        metrics_ = metrics;
    }

    MetricsRegistry *metrics() const { return metrics_; }

  protected:
    MetricsRegistry *metrics_ = nullptr;

  private:
    unsigned numWorkers_;
};

} // namespace hdcps

#endif // HDCPS_CPS_SCHEDULER_H_
