#include "cps/swminnow.h"

namespace hdcps {

SwMinnowScheduler::SwMinnowScheduler(unsigned numWorkers,
                                     const MinnowConfig &config)
    : ObimBase(numWorkers, config.obim), minnowConfig_(config)
{
    hdcps_check(config.numMinnows >= 1, "need at least one minnow thread");
    hdcps_check(isPowerOf2(config.bufferCapacity),
                "staging buffer capacity must be a power of two");
    staging_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        staging_.push_back(
            std::make_unique<SpscRing<Task>>(config.bufferCapacity));
    }
    minnows_.reserve(config.numMinnows);
    for (unsigned i = 0; i < config.numMinnows; ++i)
        minnows_.emplace_back([this, i] { minnowLoop(i); });
}

SwMinnowScheduler::~SwMinnowScheduler()
{
    stop_.store(true, std::memory_order_release);
    for (auto &t : minnows_)
        t.join();
}

bool
SwMinnowScheduler::tryPop(unsigned tid, Task &out)
{
    // Staged work first: this is the decoupling benefit — the worker
    // avoids touching the shared map while its helper keeps up.
    if (staging_[tid]->tryPop(out)) {
        // Serve-time rank re-check: the helper staged whatever was
        // best *at claim time*, and pushes since then may have opened
        // strictly better bags. Serving the stale stage anyway would
        // reintroduce near-domain-width priority drift, so a staged
        // task whose bag trails the map's current best goes back
        // (attribution-free — the helper claimed it, its enqueue is
        // already counted) and the worker falls through to the map.
        const unsigned delta = currentDelta();
        const Priority stagedBase = (out.priority >> delta) << delta;
        Priority mapBest = 0;
        if (bestNonEmptyBase(mapBest) && mapBest < stagedBase) {
            repushClaimed(out);
            restaged_.fetch_add(1, std::memory_order_relaxed);
            return ObimBase::tryPop(tid, out);
        }
        if (metrics_ && metrics_->tick(tid)) {
            metrics_->record(
                tid, WorkerSeries::QueueOccupancy,
                static_cast<double>(staging_[tid]->sizeApprox()));
        }
        return true;
    }
    // Fall back to the plain OBIM path so a lagging helper can never
    // starve a worker or strand tasks.
    return ObimBase::tryPop(tid, out);
}

void
SwMinnowScheduler::minnowLoop(unsigned minnowId)
{
    // Static partition: minnow m serves workers with
    // tid % numMinnows == m (the paper's 36-4 split gives 9 each).
    const unsigned stride = minnowConfig_.numMinnows;
    std::vector<Task> chunk;
    while (!stop_.load(std::memory_order_acquire)) {
        bool didWork = false;
        for (unsigned w = minnowId; w < numWorkers(); w += stride) {
            SpscRing<Task> &ring = *staging_[w];
            if (ring.sizeApprox() > ring.capacity() / 2)
                continue;
            chunk.clear();
            size_t got = claimChunk(chunk, minnowConfig_.prefetchChunk);
            if (got == 0)
                continue;
            didWork = true;
            size_t staged = 0;
            for (; staged < chunk.size(); ++staged) {
                if (!ring.tryPush(chunk[staged]))
                    break;
            }
            prefetched_.fetch_add(staged, std::memory_order_relaxed);
            // Anything that did not fit goes straight back to the map —
            // via the attribution-free path: push(w, ...) from this
            // helper thread would write worker w's registry slots
            // concurrently with worker w itself (single-writer
            // violation) and count the task's enqueue a second time.
            // Helpers keep their own aggregate spill counter instead.
            if (staged < chunk.size()) {
                spilled_.fetch_add(chunk.size() - staged,
                                   std::memory_order_relaxed);
                for (size_t i = staged; i < chunk.size(); ++i)
                    repushClaimed(chunk[i]);
            }
        }
        if (!didWork)
            std::this_thread::yield();
    }
}

} // namespace hdcps
