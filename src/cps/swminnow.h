/**
 * @file
 * Software Minnow: OBIM with dedicated prefetch helper threads.
 *
 * Minnow (Zhang et al., ASPLOS'18) pairs workers with helper engines
 * that keep the next bag of work staged so workers never stall on the
 * shared work-list. The paper's software variant (Section IV-A) models
 * this on a real machine by partitioning cores into worker and minnow
 * groups — e.g. 36 workers + 4 minnows on the 40-core Xeon, each minnow
 * serving 9 workers. Here, minnow helpers are internal std::threads that
 * drain the global bag map into per-worker SPSC staging buffers; workers
 * consume their buffer and only fall back to the global map when the
 * helper lags. Because helpers stage whatever was best *at claim time*,
 * workers re-check a staged task's bag against the map's current best at
 * serve time and return stale stages to the map, which bounds the
 * scheduler's priority drift to the work hidden in staging buffers
 * instead of the whole priority domain. The cost of losing minnow cores' compute shows up
 * naturally (on real multicores) because the helpers occupy hardware
 * threads.
 */

#ifndef HDCPS_CPS_SWMINNOW_H_
#define HDCPS_CPS_SWMINNOW_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cps/obim.h"
#include "support/spsc_ring.h"

namespace hdcps {

/** OBIM + software prefetch helpers ("minnow threads"). */
class SwMinnowScheduler : public ObimBase
{
  public:
    struct MinnowConfig
    {
        Config obim{};
        unsigned numMinnows = 1;    ///< helper threads
        size_t bufferCapacity = 64; ///< per-worker staging ring slots
        size_t prefetchChunk = 16;  ///< tasks staged per helper visit
    };

    SwMinnowScheduler(unsigned numWorkers, const MinnowConfig &config);
    explicit SwMinnowScheduler(unsigned numWorkers)
        : SwMinnowScheduler(numWorkers, MinnowConfig{})
    {}
    ~SwMinnowScheduler() override;

    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return "swminnow"; }

    unsigned numMinnows() const { return minnowConfig_.numMinnows; }

    /** Tasks delivered through staging buffers (diagnostic). */
    uint64_t prefetchedTasks() const
    {
        return prefetched_.load(std::memory_order_relaxed);
    }

    /** Claimed tasks spilled back to the map because the staging ring
     *  was full (helper-thread aggregate — helpers own no registry
     *  slot, so this is their attribution sink). */
    uint64_t spilledTasks() const
    {
        return spilled_.load(std::memory_order_relaxed);
    }

    /** Staged tasks returned to the map at serve time because the map
     *  held a strictly better bag (stale-prefetch re-checks). */
    uint64_t restagedTasks() const
    {
        return restaged_.load(std::memory_order_relaxed);
    }

  private:
    void minnowLoop(unsigned minnowId);

    MinnowConfig minnowConfig_;
    std::vector<std::unique_ptr<SpscRing<Task>>> staging_;
    std::vector<std::thread> minnows_;
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> prefetched_{0};
    std::atomic<uint64_t> spilled_{0};
    std::atomic<uint64_t> restaged_{0};
};

} // namespace hdcps

#endif // HDCPS_CPS_SWMINNOW_H_
