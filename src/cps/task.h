/**
 * @file
 * The unit of scheduling shared by every CPS design in this library.
 *
 * The hardware-visible part of a task is 128 bits — exactly the
 * hRQ/hPQ entry size in the paper (Table I: "Task and Bag ID Size:
 * 128-bits"): a 64-bit priority and a 64-bit payload split into the
 * graph node and an algorithm-defined word (e.g. the tentative distance
 * for SSSP). Lower numeric priority means higher scheduling priority
 * throughout the library; workloads whose natural priority is "bigger
 * is better" (degree, rank) negate at task-creation time.
 *
 * Alongside the Table-I fields the host-side struct carries a
 * multi-tenant tag: the owning service job (0 = the one-shot runtime's
 * "no job") and the delivery attempt (bumped by the ExecutorService
 * retry path). The tag is software bookkeeping for the long-lived
 * scheduling service (runtime/executor_service.h) — it never enters
 * the simulated hardware queues' cost model, which still charges
 * 128-bit entries.
 */

#ifndef HDCPS_CPS_TASK_H_
#define HDCPS_CPS_TASK_H_

#include <cstdint>

namespace hdcps {

using Priority = uint64_t;

/** Service job tag carried by every task (0 = no job). */
using JobId = uint32_t;

/** One schedulable task; trivially copyable, 24 bytes. */
struct Task
{
    Priority priority = 0; ///< lower value = scheduled sooner
    uint32_t node = 0;     ///< graph node this task operates on
    uint32_t data = 0;     ///< algorithm-defined payload word
    JobId job = 0;         ///< owning service job (0 = none)
    /** Service incarnation word: low 24 bits = retry attempt (0 =
     *  first try), high 8 bits = preemption demote stamp (see
     *  runtime/executor_service.h packAttempt/retryAttemptOf). */
    uint32_t attempt = 0;

    friend bool
    operator==(const Task &a, const Task &b)
    {
        return a.priority == b.priority && a.node == b.node &&
               a.data == b.data && a.job == b.job &&
               a.attempt == b.attempt;
    }
};

static_assert(sizeof(Task) == 24,
              "Task is the 128-bit Table-I entry plus the 64-bit "
              "host-side job tag");

/** Min-heap ordering: true when a schedules before b. */
struct TaskOrder
{
    bool
    operator()(const Task &a, const Task &b) const
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.node < b.node; // deterministic tie-break
    }
};

} // namespace hdcps

#endif // HDCPS_CPS_TASK_H_
