/**
 * @file
 * The unit of scheduling shared by every CPS design in this library.
 *
 * A task is 128 bits — exactly the hRQ/hPQ entry size in the paper
 * (Table I: "Task and Bag ID Size: 128-bits"): a 64-bit priority and a
 * 64-bit payload split into the graph node and an algorithm-defined
 * word (e.g. the tentative distance for SSSP). Lower numeric priority
 * means higher scheduling priority throughout the library; workloads
 * whose natural priority is "bigger is better" (degree, rank) negate at
 * task-creation time.
 */

#ifndef HDCPS_CPS_TASK_H_
#define HDCPS_CPS_TASK_H_

#include <cstdint>

namespace hdcps {

using Priority = uint64_t;

/** One schedulable task; trivially copyable, 16 bytes. */
struct Task
{
    Priority priority = 0; ///< lower value = scheduled sooner
    uint32_t node = 0;     ///< graph node this task operates on
    uint32_t data = 0;     ///< algorithm-defined payload word

    friend bool
    operator==(const Task &a, const Task &b)
    {
        return a.priority == b.priority && a.node == b.node &&
               a.data == b.data;
    }
};

static_assert(sizeof(Task) == 16, "Task must be 128 bits (paper, Table I)");

/** Min-heap ordering: true when a schedules before b. */
struct TaskOrder
{
    bool
    operator()(const Task &a, const Task &b) const
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.node < b.node; // deterministic tie-break
    }
};

} // namespace hdcps

#endif // HDCPS_CPS_TASK_H_
