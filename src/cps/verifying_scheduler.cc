#include "cps/verifying_scheduler.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "support/logging.h"
#include "support/rng.h"

namespace hdcps {

VerifyingScheduler::VerifyingScheduler(Scheduler &inner)
    : VerifyingScheduler(inner, Config())
{}

VerifyingScheduler::VerifyingScheduler(Scheduler &inner,
                                       const Config &config)
    : Scheduler(inner.numWorkers()), inner_(inner), config_(config)
{
    hdcps_check(config.sampleInterval >= 1,
                "sample interval must be >= 1");
    name_ = std::string("verifying(") + inner.name() + ")";
}

size_t
VerifyingScheduler::TaskBitsHash::operator()(const TaskBits &k) const
{
    return static_cast<size_t>(mix64(k.hi ^ mix64(k.lo ^ mix64(k.tag))));
}

VerifyingScheduler::TaskBits
VerifyingScheduler::taskKey(const Task &task)
{
    TaskBits key;
    key.hi = task.priority;
    key.lo = (static_cast<uint64_t>(task.node) << 32) | task.data;
    key.tag = (static_cast<uint64_t>(task.job) << 32) | task.attempt;
    return key;
}

VerifyingScheduler::Shard &
VerifyingScheduler::shardFor(const TaskBits &key)
{
    return shards_[TaskBitsHash{}(key) % kShards];
}

void
VerifyingScheduler::recordPush(const Task &task)
{
    pushes_.fetch_add(1, std::memory_order_relaxed);
    TaskBits key = taskKey(task);
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.counts[key];
    ++shard.byPriority[task.priority];
    ++shard.byJob[task.job];
}

void
VerifyingScheduler::recordPop(const Task &task)
{
    pops_.fetch_add(1, std::memory_order_relaxed);
    TaskBits key = taskKey(task);
    Shard &shard = shardFor(key);
    bool bad = false;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        int64_t &count = shard.counts[key];
        if (count <= 0) {
            // Leave the count at its floor instead of going negative:
            // one duplicated pop then reads as one violation, not as a
            // violation plus a phantom "loss" canceling elsewhere.
            bad = true;
            if (count == 0)
                shard.counts.erase(key);
        } else {
            if (--count == 0)
                shard.counts.erase(key);
            auto it = shard.byPriority.find(task.priority);
            if (it != shard.byPriority.end() && --it->second == 0)
                shard.byPriority.erase(it);
            auto jt = shard.byJob.find(task.job);
            if (jt != shard.byJob.end() && --jt->second == 0)
                shard.byJob.erase(jt);
            ++shard.popsByJob[task.job];
        }
    }
    if (bad) {
        std::ostringstream out;
        out << "task {priority=" << task.priority
            << ", node=" << task.node << ", data=" << task.data
            << ", job=" << task.job << ", attempt=" << task.attempt
            << "} popped with no outstanding push "
               "(duplicated or invented)";
        flagViolation(out.str());
    }
}

void
VerifyingScheduler::flagViolation(const std::string &message)
{
    violations_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(samplesMutex_);
    if (violationSamples_.size() < config_.maxViolationSamples)
        violationSamples_.push_back(message);
}

void
VerifyingScheduler::sampleRankError(const Task &popped)
{
    // Global minimum outstanding priority, *after* the pop was
    // recorded: if the popped task was the unique best, the gap is 0.
    bool any = false;
    Priority min = 0;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.byPriority.empty())
            continue;
        Priority p = shard.byPriority.begin()->first;
        if (!any || p < min) {
            any = true;
            min = p;
        }
    }
    double error =
        (any && popped.priority > min)
            ? static_cast<double>(popped.priority - min)
            : 0.0;

    rankSamples_.fetch_add(1, std::memory_order_relaxed);
    uint64_t bits = maxRankErrorBits_.load(std::memory_order_relaxed);
    double current;
    std::memcpy(&current, &bits, sizeof(current));
    while (error > current) {
        uint64_t desired;
        std::memcpy(&desired, &error, sizeof(desired));
        if (maxRankErrorBits_.compare_exchange_weak(
                bits, desired, std::memory_order_relaxed)) {
            break;
        }
        std::memcpy(&current, &bits, sizeof(current));
    }
    if (metrics_) {
        // GlobalSeries rings are single-writer; samplers race freely
        // across workers, so serialize (try_lock: dropping a sample
        // beats blocking a worker).
        if (samplesMutex_.try_lock()) {
            metrics_->recordGlobal(GlobalSeries::RankError, error);
            samplesMutex_.unlock();
        }
    }
}

void
VerifyingScheduler::push(unsigned tid, const Task &task)
{
    recordPush(task); // before: a racing pop must find the count
    inner_.push(tid, task);
}

void
VerifyingScheduler::pushBatch(unsigned tid, const Task *tasks,
                              size_t count)
{
    for (size_t i = 0; i < count; ++i)
        recordPush(tasks[i]);
    // Forward the *batch* so bag-forming designs still see it whole.
    inner_.pushBatch(tid, tasks, count);
}

bool
VerifyingScheduler::tryPop(unsigned tid, Task &out)
{
    if (!inner_.tryPop(tid, out))
        return false;
    recordPop(out); // after: the task has fully left the inner design
    uint64_t n = pops_.load(std::memory_order_relaxed);
    if (n % config_.sampleInterval == 0)
        sampleRankError(out);
    return true;
}

void
VerifyingScheduler::attachMetrics(MetricsRegistry *metrics)
{
    metrics_ = metrics;
    inner_.attachMetrics(metrics);
}

VerifyingScheduler::Report
VerifyingScheduler::report() const
{
    Report report;
    report.pushes = pushes_.load(std::memory_order_relaxed);
    report.pops = pops_.load(std::memory_order_relaxed);
    report.violations = violations_.load(std::memory_order_relaxed);
    report.rankSamples = rankSamples_.load(std::memory_order_relaxed);
    uint64_t bits = maxRankErrorBits_.load(std::memory_order_relaxed);
    std::memcpy(&report.maxRankError, &bits,
                sizeof(report.maxRankError));
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto &entry : shard.counts) {
            if (entry.second > 0)
                report.outstanding +=
                    static_cast<uint64_t>(entry.second);
        }
        for (const auto &entry : shard.byJob) {
            if (entry.second > 0)
                report.outstandingByJob[entry.first] +=
                    static_cast<uint64_t>(entry.second);
        }
        for (const auto &entry : shard.popsByJob) {
            if (entry.second > 0)
                report.popsByJob[entry.first] +=
                    static_cast<uint64_t>(entry.second);
        }
    }
    {
        std::lock_guard<std::mutex> lock(samplesMutex_);
        report.violationSamples = violationSamples_;
    }
    return report;
}

bool
VerifyingScheduler::checkComplete(bool runFailed,
                                  std::string *whyNot) const
{
    Report r = report();
    std::ostringstream out;
    bool ok = true;
    if (r.violations > 0) {
        ok = false;
        out << r.violations << " conservation violation(s)";
        for (const std::string &sample : r.violationSamples)
            out << "\n  - " << sample;
    }
    // A failed run drains out with tasks still queued — loss is only a
    // verdict on runs that claimed to finish.
    if (!runFailed && r.outstanding > 0) {
        if (!ok)
            out << "\n";
        ok = false;
        out << r.outstanding << " task(s) pushed but never popped ("
            << r.pushes << " pushes, " << r.pops << " pops)";
    }
    if (!ok && whyNot)
        *whyNot = out.str();
    return ok;
}

uint64_t
VerifyingScheduler::outstandingForJob(JobId job) const
{
    uint64_t outstanding = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.byJob.find(job);
        if (it != shard.byJob.end() && it->second > 0)
            outstanding += static_cast<uint64_t>(it->second);
    }
    return outstanding;
}

uint64_t
VerifyingScheduler::popsForJob(JobId job) const
{
    uint64_t pops = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.popsByJob.find(job);
        if (it != shard.popsByJob.end() && it->second > 0)
            pops += static_cast<uint64_t>(it->second);
    }
    return pops;
}

bool
VerifyingScheduler::checkJobDrained(JobId job,
                                    std::string *whyNot) const
{
    uint64_t outstanding = outstandingForJob(job);
    if (outstanding == 0)
        return true;
    if (whyNot) {
        std::ostringstream out;
        out << "job " << job << " still has " << outstanding
            << " task(s) pushed but never popped";
        *whyNot = out.str();
    }
    return false;
}

} // namespace hdcps
