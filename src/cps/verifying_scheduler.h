/**
 * @file
 * An invariant-checking wrapper around any Scheduler.
 *
 * The scheduler contract (cps/scheduler.h) promises task conservation:
 * every pushed task comes back from tryPop exactly once, none invented,
 * none lost. Chaos testing (fault injection, straggler pauses, sRQ
 * reclamation) stresses exactly the paths where a buggy design would
 * break that promise — so the soak harness runs every design behind
 * this wrapper, which maintains an exact multiset of outstanding tasks
 * and flags:
 *
 *  - **duplication / invention**: a tryPop returns a task whose
 *    outstanding count is zero (popped twice, or never pushed);
 *  - **loss**: after a *successful* run, tasks remain outstanding that
 *    no tryPop ever returned (failed runs legitimately strand pending
 *    tasks while draining out, so only the duplication check applies);
 *  - **unbounded rank error**: every sampleInterval-th pop compares the
 *    popped priority against the global minimum outstanding priority —
 *    the relaxed-order contract allows inversions, but the sampled gap
 *    makes "how relaxed" observable (GlobalSeries::RankError when a
 *    metrics registry is attached, max + count in the Report).
 *
 * Accounting is job-aware: the multiset key includes the task's service
 * job tag (cps/task.h), and each shard additionally tracks outstanding
 * counts per job. The multi-tenant ExecutorService harnesses use
 * outstandingForJob()/checkJobDrained() to assert *per-job* task
 * conservation — a cancelled or failed job must drain to exactly zero
 * outstanding tasks while co-resident jobs keep theirs.
 *
 * Bookkeeping is a 64-shard hash of mutex-protected count maps: pushes
 * record *before* entering the inner scheduler and pops record *after*
 * leaving it, so a concurrently popped task can never transiently look
 * unknown. The wrapper serves correctness harnesses, not benchmarks —
 * two shard-lock acquisitions per task is the accepted price.
 *
 * Ownership: non-owning. The wrapped scheduler must outlive the
 * wrapper; numWorkers is inherited from it.
 */

#ifndef HDCPS_CPS_VERIFYING_SCHEDULER_H_
#define HDCPS_CPS_VERIFYING_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cps/scheduler.h"
#include "support/compiler.h"

namespace hdcps {

/** Invariant-checking Scheduler wrapper (see file comment). */
class VerifyingScheduler : public Scheduler
{
  public:
    struct Config
    {
        /** Pops between rank-error samples (the min-scan locks every
         *  shard, so sampling keeps it off the per-task path). */
        uint64_t sampleInterval = 64;
        /** Violation messages retained verbatim (the count is exact,
         *  the texts are capped). */
        size_t maxViolationSamples = 8;
    };

    /** End-of-run accounting for harnesses and tests. */
    struct Report
    {
        uint64_t pushes = 0;
        uint64_t pops = 0;
        uint64_t violations = 0;   ///< duplication/invention events
        uint64_t outstanding = 0;  ///< pushed but never popped
        uint64_t rankSamples = 0;
        double maxRankError = 0.0; ///< worst sampled priority inversion
        std::vector<std::string> violationSamples;
        /** Outstanding tasks per service job tag (jobs with zero
         *  outstanding are omitted; key 0 = untagged tasks). */
        std::map<JobId, uint64_t> outstandingByJob;
        /** Successful pops per service job tag — the per-job ledger
         *  the fairness harnesses aggregate into per-tenant completed
         *  shares (key 0 = untagged tasks). */
        std::map<JobId, uint64_t> popsByJob;
    };

    explicit VerifyingScheduler(Scheduler &inner);
    VerifyingScheduler(Scheduler &inner, const Config &config);

    void push(unsigned tid, const Task &task) override;
    void pushBatch(unsigned tid, const Task *tasks, size_t count) override;
    bool tryPop(unsigned tid, Task &out) override;
    const char *name() const override { return name_.c_str(); }
    size_t sizeApprox() const override { return inner_.sizeApprox(); }
    void attachMetrics(MetricsRegistry *metrics) override;
    void setReclaimAfterMs(uint64_t ms) override
    {
        inner_.setReclaimAfterMs(ms);
    }
    void onWorkerStart(unsigned tid) override
    {
        inner_.onWorkerStart(tid);
    }
    void quarantine(unsigned tid) override { inner_.quarantine(tid); }
    void reinstate(unsigned tid) override { inner_.reinstate(tid); }
    size_t
    reclaimWorker(unsigned reclaimer, unsigned victim) override
    {
        return inner_.reclaimWorker(reclaimer, victim);
    }

    Scheduler &inner() { return inner_; }

    /** Snapshot the bookkeeping (callable after the run drained). */
    Report report() const;

    /**
     * The end-of-run verdict: true when every invariant held. Pass
     * `runFailed` for runs that drained out early (loss is then
     * expected and not flagged). On failure, *whyNot (optional) gets a
     * human-readable explanation including retained samples.
     */
    bool checkComplete(bool runFailed, std::string *whyNot = nullptr) const;

    /** Tasks of `job` currently pushed but not popped. Callable while
     *  workers run (shard-locked reads); exact once the job quiesced. */
    uint64_t outstandingForJob(JobId job) const;

    /** Successful pops recorded for `job` so far (monotone; exact once
     *  the job quiesced). Duplicated/invented pops are flagged as
     *  violations and do NOT count here. */
    uint64_t popsForJob(JobId job) const;

    /**
     * Per-job drain verdict for the multi-tenant service harnesses:
     * true when `job` has zero outstanding tasks. On failure, *whyNot
     * (optional) names the count — the per-job analogue of
     * checkComplete's loss check, applicable to cancelled and failed
     * jobs too (the service drains those instead of stranding them).
     */
    bool checkJobDrained(JobId job, std::string *whyNot = nullptr) const;

  private:
    static constexpr size_t kShards = 64;

    /** A task's full identity — the 128 Table-I bits plus the job tag —
     *  hashable; the multiset key is exact, so distinct tasks (and the
     *  same task owned by distinct jobs or retry attempts) never
     *  alias. */
    struct TaskBits
    {
        uint64_t hi = 0;  ///< priority
        uint64_t lo = 0;  ///< node:data
        uint64_t tag = 0; ///< job:attempt

        friend bool
        operator==(const TaskBits &a, const TaskBits &b)
        {
            return a.hi == b.hi && a.lo == b.lo && a.tag == b.tag;
        }
    };

    struct TaskBitsHash
    {
        size_t operator()(const TaskBits &k) const;
    };

    /** Exact multiset shard: per-task outstanding counts plus a
     *  priority histogram for the min-outstanding scan. */
    struct alignas(cacheLineBytes) Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<TaskBits, int64_t, TaskBitsHash> counts;
        std::map<Priority, int64_t> byPriority; ///< prio → live
        std::unordered_map<JobId, int64_t> byJob; ///< job → live
        std::unordered_map<JobId, int64_t> popsByJob; ///< job → pops
    };

    static TaskBits taskKey(const Task &task);
    Shard &shardFor(const TaskBits &key);
    void recordPush(const Task &task);
    void recordPop(const Task &task);
    void flagViolation(const std::string &message);
    void sampleRankError(const Task &popped);

    Scheduler &inner_;
    Config config_;
    std::string name_;
    Shard shards_[kShards];
    std::atomic<uint64_t> pushes_{0};
    std::atomic<uint64_t> pops_{0};
    std::atomic<uint64_t> violations_{0};
    std::atomic<uint64_t> rankSamples_{0};
    std::atomic<uint64_t> maxRankErrorBits_{0}; ///< double, CAS-maxed
    mutable std::mutex samplesMutex_; ///< violationSamples_ + series
    std::vector<std::string> violationSamples_;
};

} // namespace hdcps

#endif // HDCPS_CPS_VERIFYING_SCHEDULER_H_
