#include "graph/builder.h"

#include <algorithm>

namespace hdcps {

Graph
GraphBuilder::build(bool dedup)
{
    // Drop self-loops up front; none of the evaluated workloads use them
    // and they only waste scheduler work.
    std::erase_if(edges_, [](const Triple &t) { return t.src == t.dst; });

    std::sort(edges_.begin(), edges_.end(),
              [](const Triple &a, const Triple &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.weight < b.weight;
              });

    if (dedup) {
        // After the sort above, the first of each (src,dst) run carries
        // the minimum weight, so unique() keeps exactly that edge.
        auto last = std::unique(edges_.begin(), edges_.end(),
                                [](const Triple &a, const Triple &b) {
                                    return a.src == b.src && a.dst == b.dst;
                                });
        edges_.erase(last, edges_.end());
    }

    std::vector<EdgeId> offsets(static_cast<size_t>(numNodes_) + 1, 0);
    for (const Triple &t : edges_)
        ++offsets[t.src + 1];
    for (NodeId i = 0; i < numNodes_; ++i)
        offsets[i + 1] += offsets[i];

    std::vector<NodeId> dests(edges_.size());
    std::vector<Weight> weights(weighted_ ? edges_.size() : 0);
    for (size_t i = 0; i < edges_.size(); ++i) {
        dests[i] = edges_[i].dst;
        if (weighted_)
            weights[i] = edges_[i].weight;
    }
    edges_.clear();
    edges_.shrink_to_fit();
    return Graph(std::move(offsets), std::move(dests), std::move(weights));
}

} // namespace hdcps
