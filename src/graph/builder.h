/**
 * @file
 * Mutable edge-list accumulator that finalizes into a CSR Graph.
 */

#ifndef HDCPS_GRAPH_BUILDER_H_
#define HDCPS_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hdcps {

/**
 * Collects directed edges and finalizes them into an immutable Graph.
 * Self-loops are dropped at build time; parallel edges are optionally
 * deduplicated keeping the minimum weight (the standard convention for
 * shortest-path inputs).
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(NodeId numNodes, bool weighted = true)
        : numNodes_(numNodes), weighted_(weighted)
    {}

    /** Add one directed edge; weight is ignored for unweighted graphs. */
    void
    addEdge(NodeId src, NodeId dst, Weight weight = 1)
    {
        hdcps_check(src < numNodes_ && dst < numNodes_,
                    "edge (%u -> %u) out of range (n=%u)", src, dst,
                    numNodes_);
        edges_.push_back({src, dst, weight});
    }

    /** Add both (src,dst) and (dst,src) with the same weight. */
    void
    addUndirectedEdge(NodeId a, NodeId b, Weight weight = 1)
    {
        addEdge(a, b, weight);
        addEdge(b, a, weight);
    }

    size_t numPendingEdges() const { return edges_.size(); }
    NodeId numNodes() const { return numNodes_; }

    /**
     * Finalize into a Graph. The builder is left empty afterwards.
     *
     * @param dedup merge parallel edges keeping the smallest weight.
     */
    Graph build(bool dedup = true);

  private:
    struct Triple
    {
        NodeId src;
        NodeId dst;
        Weight weight;
    };

    NodeId numNodes_;
    bool weighted_;
    std::vector<Triple> edges_;
};

} // namespace hdcps

#endif // HDCPS_GRAPH_BUILDER_H_
