#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/builder.h"
#include "support/compiler.h"
#include "support/rng.h"

namespace hdcps {

namespace {

Weight
randomWeight(Rng &rng, const GenParams &params)
{
    return static_cast<Weight>(rng.range(1, params.maxWeight));
}

} // namespace

Graph
makeRoadGrid(uint32_t width, uint32_t height, const GenParams &params)
{
    hdcps_check(width >= 2 && height >= 2, "grid must be at least 2x2");
    const NodeId n = width * height;
    Rng rng(params.seed);
    GraphBuilder builder(n, true);

    auto id = [&](uint32_t x, uint32_t y) -> NodeId { return y * width + x; };

    // Grid edges; ~12% removed to force detours, as in real road
    // networks where the straight-line route is often unavailable.
    // Weight floor of 2x the unit grid distance keeps the Euclidean A*
    // heuristic admissible.
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            if (x + 1 < width && !rng.chance(0.12)) {
                Weight w = static_cast<Weight>(
                    2 + rng.below(std::max<Weight>(params.maxWeight / 10, 1)));
                builder.addUndirectedEdge(id(x, y), id(x + 1, y), w);
            }
            if (y + 1 < height && !rng.chance(0.12)) {
                Weight w = static_cast<Weight>(
                    2 + rng.below(std::max<Weight>(params.maxWeight / 10, 1)));
                builder.addUndirectedEdge(id(x, y), id(x, y + 1), w);
            }
        }
    }

    // A small number of highway shortcuts between distant grid points.
    const uint32_t numHighways = std::max<uint32_t>(n / 256, 4);
    for (uint32_t i = 0; i < numHighways; ++i) {
        uint32_t x0 = static_cast<uint32_t>(rng.below(width));
        uint32_t y0 = static_cast<uint32_t>(rng.below(height));
        uint32_t x1 = static_cast<uint32_t>(rng.below(width));
        uint32_t y1 = static_cast<uint32_t>(rng.below(height));
        if (x0 == x1 && y0 == y1)
            continue;
        // Highways are fast but still respect the Euclidean lower bound
        // (cost >= 2 * distance with the distance floor below).
        double dist = std::hypot(double(x1) - x0, double(y1) - y0);
        Weight w = static_cast<Weight>(std::ceil(2.0 * dist));
        builder.addUndirectedEdge(id(x0, y0), id(x1, y1), std::max<Weight>(w, 2));
    }

    Graph g = builder.build(true);

    std::vector<std::pair<int32_t, int32_t>> coords(n);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            coords[id(x, y)] = {static_cast<int32_t>(x),
                                static_cast<int32_t>(y)};
    g.setCoordinates(std::move(coords));
    return g;
}

Graph
makeBanded(NodeId numNodes, uint32_t avgDegree, uint32_t band,
           const GenParams &params)
{
    hdcps_check(numNodes >= 2, "banded graph needs >= 2 nodes");
    hdcps_check(band >= 1, "band must be >= 1");
    Rng rng(params.seed);
    GraphBuilder builder(numNodes, true);

    for (NodeId i = 0; i < numNodes; ++i) {
        int64_t lo = std::max<int64_t>(0, int64_t(i) - band);
        int64_t hi = std::min<int64_t>(numNodes - 1, int64_t(i) + band);
        // Always keep a chain edge so the graph stays connected.
        if (i + 1 < numNodes)
            builder.addEdge(i, i + 1, randomWeight(rng, params));
        uint32_t extra = avgDegree > 1 ? avgDegree - 1 : 0;
        for (uint32_t k = 0; k < extra; ++k) {
            NodeId dst = static_cast<NodeId>(
                rng.range(static_cast<uint64_t>(lo),
                          static_cast<uint64_t>(hi)));
            if (dst != i)
                builder.addEdge(i, dst, randomWeight(rng, params));
        }
    }
    return builder.build(true);
}

Graph
makeRmat(unsigned scale, EdgeId numEdges, double a, double b, double c,
         const GenParams &params)
{
    hdcps_check(scale >= 2 && scale <= 30, "rmat scale out of range");
    const double d = 1.0 - a - b - c;
    hdcps_check(d > -1e-9, "rmat probabilities exceed 1");
    const NodeId n = NodeId(1) << scale;
    Rng rng(params.seed);
    GraphBuilder builder(n, true);

    for (EdgeId e = 0; e < numEdges; ++e) {
        NodeId src = 0;
        NodeId dst = 0;
        for (unsigned level = 0; level < scale; ++level) {
            double r = rng.uniform();
            unsigned quadrant;
            if (r < a) {
                quadrant = 0;
            } else if (r < a + b) {
                quadrant = 1;
            } else if (r < a + b + c) {
                quadrant = 2;
            } else {
                quadrant = 3;
            }
            src = (src << 1) | (quadrant >> 1);
            dst = (dst << 1) | (quadrant & 1);
        }
        builder.addEdge(src, dst, randomWeight(rng, params));
    }

    // Ensure node i -> i+1 chain for connectivity from node 0, keeping
    // the workloads' reachable fraction high without distorting the
    // degree distribution materially.
    for (NodeId i = 0; i + 1 < n; ++i)
        builder.addEdge(i, i + 1, randomWeight(rng, params));

    return builder.build(true);
}

Graph
makeUniformRandom(NodeId numNodes, EdgeId numEdges, const GenParams &params)
{
    hdcps_check(numNodes >= 2, "random graph needs >= 2 nodes");
    Rng rng(params.seed);
    GraphBuilder builder(numNodes, true);
    for (EdgeId e = 0; e < numEdges; ++e) {
        NodeId src = static_cast<NodeId>(rng.below(numNodes));
        NodeId dst = static_cast<NodeId>(rng.below(numNodes));
        if (src != dst)
            builder.addEdge(src, dst, randomWeight(rng, params));
    }
    for (NodeId i = 0; i + 1 < numNodes; ++i)
        builder.addEdge(i, i + 1, randomWeight(rng, params));
    return builder.build(true);
}

Graph
makePaperInput(const std::string &name, unsigned scale, uint64_t seed)
{
    hdcps_check(scale >= 1 && scale <= 64, "scale out of range");
    GenParams params;
    params.seed = seed;
    if (name == "usa") {
        // Sparse road network: avg degree ~2.5 (paper's rUSA is 1.2 on a
        // directed count; our undirected grid doubles it), big diameter.
        uint32_t side = 64 * static_cast<uint32_t>(std::sqrt(double(scale)) * 2);
        return makeRoadGrid(side, side, params);
    }
    if (name == "cage") {
        // Quasi-regular: avg degree ~ 17 out-edges (34 in the paper's
        // undirected count), max degree bounded by the band.
        NodeId n = 3000 * scale;
        return makeBanded(n, 17, 40, params);
    }
    if (name == "wg") {
        // Web graph: strong skew (paper: avg 11, max 6.4k).
        unsigned sc = 13 + log2Ceil(scale);
        return makeRmat(sc, EdgeId(6) << sc, 0.57, 0.19, 0.19, params);
    }
    if (name == "lj") {
        // Social graph: denser power law (paper: avg 28, max 20k).
        unsigned sc = 12 + log2Ceil(scale);
        return makeRmat(sc, EdgeId(14) << sc, 0.50, 0.22, 0.22, params);
    }
    hdcps_fatal("unknown paper input '%s' (want cage|usa|wg|lj)",
                name.c_str());
}

const char *const *
paperInputNames(size_t &count)
{
    static const char *const names[] = {"cage", "usa", "wg", "lj"};
    count = 4;
    return names;
}

} // namespace hdcps
