/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * The paper evaluates on CAGE14 (dense, quasi-regular), the USA road
 * network (very sparse, near-planar), Web-Google (power-law web graph)
 * and LiveJournal (dense power-law social graph). Those datasets are not
 * redistributable here, so these generators produce inputs matching the
 * properties the paper's analysis depends on: average degree, maximum
 * degree, diameter class (road networks have huge diameters, social
 * graphs tiny ones), and weight distribution. Every generator is fully
 * determined by its seed.
 */

#ifndef HDCPS_GRAPH_GENERATORS_H_
#define HDCPS_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace hdcps {

/** Parameters shared by all generators. */
struct GenParams
{
    uint64_t seed = 1;
    Weight maxWeight = 100; ///< weights uniform in [1, maxWeight]
};

/**
 * Road-network-like graph: width x height grid with bidirectional edges
 * between 4-neighbours, a fraction of edges removed to create detours,
 * and a few long "highway" shortcuts. Nodes carry 2-D coordinates so the
 * A* heuristic is admissible (weights are scaled above the coordinate
 * distance). Stands in for rUSA: avg degree ~2-3.5, huge diameter.
 */
Graph makeRoadGrid(uint32_t width, uint32_t height,
                   const GenParams &params = {});

/**
 * Banded quasi-regular graph: node i connects to ~avgDegree random
 * distinct neighbours within [i-band, i+band]. Stands in for CAGE14:
 * high average degree, low maximum degree, strong locality.
 */
Graph makeBanded(NodeId numNodes, uint32_t avgDegree, uint32_t band,
                 const GenParams &params = {});

/**
 * RMAT power-law graph (Chakrabarti et al. probabilities). Stands in for
 * Web-Google (scale ~0.57/0.19/0.19/0.05) and LiveJournal (denser):
 * skewed degrees with a heavy tail, small diameter.
 */
Graph makeRmat(unsigned scale, EdgeId numEdges, double a, double b, double c,
               const GenParams &params = {});

/** Uniform random digraph (Erdos-Renyi G(n, m) style). */
Graph makeUniformRandom(NodeId numNodes, EdgeId numEdges,
                        const GenParams &params = {});

/**
 * The four paper-shaped inputs at a configurable scale factor, keyed by
 * name: "cage", "usa", "wg", "lj". scale=1 targets quick CI runs
 * (~50-200k edges); larger scales grow roughly linearly.
 */
Graph makePaperInput(const std::string &name, unsigned scale = 1,
                     uint64_t seed = 1);

/** Names accepted by makePaperInput, in Table II order. */
const char *const *paperInputNames(size_t &count);

} // namespace hdcps

#endif // HDCPS_GRAPH_GENERATORS_H_
