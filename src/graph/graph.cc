#include "graph/graph.h"

#include <algorithm>
#include <vector>

namespace hdcps {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> dests,
             std::vector<Weight> weights)
    : offsets_(std::move(offsets)), dests_(std::move(dests)),
      weights_(std::move(weights))
{
    hdcps_check(!offsets_.empty(), "CSR offsets must have >= 1 entry");
    hdcps_check(offsets_.front() == 0, "CSR offsets must start at 0");
    hdcps_check(offsets_.back() == dests_.size(),
                "CSR offsets end (%llu) != edge count (%zu)",
                static_cast<unsigned long long>(offsets_.back()),
                dests_.size());
    hdcps_check(weights_.empty() || weights_.size() == dests_.size(),
                "weights size (%zu) != edge count (%zu)", weights_.size(),
                dests_.size());
    for (size_t i = 1; i < offsets_.size(); ++i) {
        hdcps_check(offsets_[i - 1] <= offsets_[i],
                    "CSR offsets must be non-decreasing at node %zu", i - 1);
    }
    const NodeId n = numNodes();
    for (NodeId d : dests_)
        hdcps_check(d < n, "edge destination %u out of range (n=%u)", d, n);
}

void
Graph::setCoordinates(std::vector<std::pair<int32_t, int32_t>> coords)
{
    hdcps_check(coords.size() == numNodes(),
                "coordinate count (%zu) != node count (%u)", coords.size(),
                numNodes());
    coords_ = std::move(coords);
}

Graph
Graph::transpose() const
{
    const NodeId n = numNodes();
    std::vector<EdgeId> offsets(n + 1, 0);
    for (NodeId d : dests_)
        ++offsets[d + 1];
    for (NodeId i = 0; i < n; ++i)
        offsets[i + 1] += offsets[i];

    std::vector<NodeId> dests(dests_.size());
    std::vector<Weight> weights(weights_.empty() ? 0 : dests_.size());
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId src = 0; src < n; ++src) {
        for (EdgeId e = edgeBegin(src); e < edgeEnd(src); ++e) {
            EdgeId slot = cursor[dests_[e]]++;
            dests[slot] = src;
            if (!weights_.empty())
                weights[slot] = weights_[e];
        }
    }
    Graph t(std::move(offsets), std::move(dests), std::move(weights));
    if (hasCoordinates())
        t.setCoordinates(coords_);
    return t;
}

Weight
Graph::maxWeight() const
{
    if (weights_.empty())
        return 1;
    Weight best = 1;
    for (Weight w : weights_)
        best = std::max(best, w);
    return best;
}

NodeId
Graph::reachableFrom(NodeId src) const
{
    hdcps_check(src < numNodes(), "source %u out of range", src);
    std::vector<bool> seen(numNodes(), false);
    std::vector<NodeId> stack{src};
    seen[src] = true;
    NodeId count = 0;
    while (!stack.empty()) {
        NodeId node = stack.back();
        stack.pop_back();
        ++count;
        for (EdgeId e = edgeBegin(node); e < edgeEnd(node); ++e) {
            NodeId dst = dests_[e];
            if (!seen[dst]) {
                seen[dst] = true;
                stack.push_back(dst);
            }
        }
    }
    return count;
}

GraphStats
computeStats(const Graph &g)
{
    GraphStats stats;
    stats.nodes = g.numNodes();
    stats.edges = g.numEdges();
    if (stats.nodes == 0)
        return stats;
    stats.avgDegree =
        static_cast<double>(stats.edges) / static_cast<double>(stats.nodes);
    stats.minDegree = ~0u;
    for (NodeId n = 0; n < stats.nodes; ++n) {
        uint32_t d = g.degree(n);
        stats.maxDegree = std::max(stats.maxDegree, d);
        stats.minDegree = std::min(stats.minDegree, d);
    }
    return stats;
}

} // namespace hdcps
