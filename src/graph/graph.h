/**
 * @file
 * Immutable directed graph in compressed sparse row (CSR) form.
 *
 * This is the substrate every workload in the paper operates on. The
 * representation is a standard offset/destination/weight CSR with an
 * optional per-node 2-D coordinate table (used by the A* heuristic for
 * road-network-style inputs). Graphs are constructed through
 * GraphBuilder or the generators/loaders and never mutated afterwards,
 * so concurrent readers need no synchronization.
 */

#ifndef HDCPS_GRAPH_GRAPH_H_
#define HDCPS_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "support/logging.h"

namespace hdcps {

using NodeId = uint32_t;
using EdgeId = uint64_t;
using Weight = uint32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = ~NodeId(0);

/** One outgoing edge as seen during iteration. */
struct Edge
{
    NodeId dest;
    Weight weight;
};

/** Immutable CSR digraph with optional node coordinates. */
class Graph
{
  public:
    Graph() = default;

    /**
     * Assemble from raw CSR arrays. offsets must have numNodes+1 entries
     * with offsets.front() == 0 and offsets.back() == dests.size();
     * weights must be empty (unweighted: all weights read as 1) or the
     * same length as dests.
     */
    Graph(std::vector<EdgeId> offsets, std::vector<NodeId> dests,
          std::vector<Weight> weights);

    NodeId
    numNodes() const
    {
        return offsets_.empty() ? 0
                                : static_cast<NodeId>(offsets_.size() - 1);
    }

    EdgeId numEdges() const { return static_cast<EdgeId>(dests_.size()); }

    bool weighted() const { return !weights_.empty(); }

    EdgeId
    edgeBegin(NodeId n) const
    {
        return offsets_[n];
    }

    EdgeId
    edgeEnd(NodeId n) const
    {
        return offsets_[n + 1];
    }

    uint32_t
    degree(NodeId n) const
    {
        return static_cast<uint32_t>(offsets_[n + 1] - offsets_[n]);
    }

    NodeId edgeDest(EdgeId e) const { return dests_[e]; }

    Weight
    edgeWeight(EdgeId e) const
    {
        return weights_.empty() ? 1 : weights_[e];
    }

    /** Lightweight range over a node's outgoing edges. */
    class EdgeRange
    {
      public:
        class Iterator
        {
          public:
            Iterator(const Graph *g, EdgeId e) : g_(g), e_(e) {}

            Edge
            operator*() const
            {
                return {g_->edgeDest(e_), g_->edgeWeight(e_)};
            }

            Iterator &
            operator++()
            {
                ++e_;
                return *this;
            }

            bool
            operator!=(const Iterator &o) const
            {
                return e_ != o.e_;
            }

          private:
            const Graph *g_;
            EdgeId e_;
        };

        EdgeRange(const Graph *g, EdgeId begin, EdgeId end)
            : g_(g), begin_(begin), end_(end)
        {}

        Iterator begin() const { return {g_, begin_}; }
        Iterator end() const { return {g_, end_}; }
        size_t size() const { return end_ - begin_; }

      private:
        const Graph *g_;
        EdgeId begin_;
        EdgeId end_;
    };

    EdgeRange
    outEdges(NodeId n) const
    {
        return {this, offsets_[n], offsets_[n + 1]};
    }

    /** Attach 2-D coordinates (one pair per node); enables A* heuristic. */
    void setCoordinates(std::vector<std::pair<int32_t, int32_t>> coords);

    bool hasCoordinates() const { return !coords_.empty(); }

    int32_t coordX(NodeId n) const { return coords_[n].first; }
    int32_t coordY(NodeId n) const { return coords_[n].second; }

    /** Build the transpose (all edges reversed); coordinates carry over. */
    Graph transpose() const;

    /** Largest edge weight (1 for unweighted/empty graphs). */
    Weight maxWeight() const;

    /** Number of nodes reachable from src following out-edges. */
    NodeId reachableFrom(NodeId src) const;

    const std::vector<EdgeId> &rawOffsets() const { return offsets_; }
    const std::vector<NodeId> &rawDests() const { return dests_; }
    const std::vector<Weight> &rawWeights() const { return weights_; }

  private:
    std::vector<EdgeId> offsets_;
    std::vector<NodeId> dests_;
    std::vector<Weight> weights_;
    std::vector<std::pair<int32_t, int32_t>> coords_;
};

/** Degree and size statistics (Table II columns). */
struct GraphStats
{
    NodeId nodes = 0;
    EdgeId edges = 0;
    double avgDegree = 0.0;
    uint32_t maxDegree = 0;
    uint32_t minDegree = 0;
};

/** Compute Table-II-style statistics for a graph. */
GraphStats computeStats(const Graph &g);

} // namespace hdcps

#endif // HDCPS_GRAPH_GRAPH_H_
