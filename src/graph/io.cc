#include "graph/io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/builder.h"

namespace hdcps {

namespace {

constexpr uint64_t binaryMagic = 0x48444350534752ULL; // "HDCPSGR"
constexpr uint32_t binaryVersion = 1;

/** The module's single failure funnel: printf-formats the message and
 *  throws GraphIoError (recoverable by the caller — see io.h). */
[[noreturn]] void
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
ioError(const char *fmt, ...)
{
    char buffer[512];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    throw GraphIoError(buffer);
}

[[noreturn]] void
parseError(const std::string &name, size_t line, const char *what)
{
    ioError("%s:%zu: %s", name.c_str(), line, what);
}

std::ifstream
openOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        ioError("cannot open '%s' for reading", path.c_str());
    return in;
}

template <typename T>
void
writeRaw(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &in, const std::string &name)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        ioError("%s: truncated binary graph", name.c_str());
    return value;
}

} // namespace

Graph
loadDimacs(std::istream &in, const std::string &name)
{
    std::string line;
    size_t lineNo = 0;
    NodeId numNodes = 0;
    bool haveHeader = false;
    GraphBuilder builder(0);

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == 'c')
            continue;
        std::istringstream fields(line);
        char kind;
        fields >> kind;
        if (kind == 'p') {
            std::string problem;
            uint64_t n = 0;
            uint64_t m = 0;
            fields >> problem >> n >> m;
            if (!fields || problem != "sp")
                parseError(name, lineNo, "bad 'p sp N M' header");
            if (n == 0 || n > invalidNode)
                parseError(name, lineNo, "node count out of range");
            numNodes = static_cast<NodeId>(n);
            builder = GraphBuilder(numNodes, true);
            haveHeader = true;
        } else if (kind == 'a') {
            if (!haveHeader)
                parseError(name, lineNo, "arc before 'p' header");
            uint64_t u = 0;
            uint64_t v = 0;
            int64_t w = 0;
            fields >> u >> v >> w;
            if (!fields)
                parseError(name, lineNo, "bad arc line");
            if (u < 1 || u > numNodes || v < 1 || v > numNodes)
                parseError(name, lineNo, "arc endpoint out of range");
            if (w < 0)
                parseError(name, lineNo, "negative arc weight");
            builder.addEdge(static_cast<NodeId>(u - 1),
                            static_cast<NodeId>(v - 1),
                            static_cast<Weight>(w));
        } else {
            parseError(name, lineNo, "unknown record type");
        }
    }
    if (!haveHeader)
        ioError("%s: no 'p sp' header found", name.c_str());
    return builder.build(true);
}

Graph
loadDimacsFile(const std::string &path)
{
    auto in = openOrThrow(path);
    return loadDimacs(in, path);
}

Graph
loadMatrixMarket(std::istream &in, const std::string &name)
{
    std::string line;
    size_t lineNo = 0;

    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    if (!std::getline(in, line))
        ioError("%s: empty file", name.c_str());
    ++lineNo;
    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (tag != "%%MatrixMarket" || object != "matrix" ||
        format != "coordinate") {
        parseError(name, lineNo, "expected MatrixMarket coordinate banner");
    }
    const bool pattern = (field == "pattern");
    const bool symmetric = (symmetry == "symmetric");
    if (!pattern && field != "real" && field != "integer")
        parseError(name, lineNo, "unsupported MatrixMarket field type");

    // Size line (after comments).
    uint64_t rows = 0;
    uint64_t cols = 0;
    uint64_t entries = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream sizes(line);
        sizes >> rows >> cols >> entries;
        if (!sizes)
            parseError(name, lineNo, "bad size line");
        break;
    }
    if (rows == 0 || cols == 0)
        ioError("%s: missing size line", name.c_str());
    uint64_t n = std::max(rows, cols);
    if (n > invalidNode)
        ioError("%s: too many nodes", name.c_str());

    GraphBuilder builder(static_cast<NodeId>(n), true);
    uint64_t seen = 0;
    while (seen < entries && std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream entry(line);
        uint64_t r = 0;
        uint64_t c = 0;
        double value = 1.0;
        entry >> r >> c;
        if (!entry)
            parseError(name, lineNo, "bad entry line");
        if (!pattern)
            entry >> value;
        if (r < 1 || r > n || c < 1 || c > n)
            parseError(name, lineNo, "entry out of range");
        // Off-diagonal structure becomes edges; value maps to a positive
        // integer weight (CAGE weights are reals in (0,1]).
        Weight w = 1;
        if (!pattern) {
            double mag = std::fabs(value);
            w = static_cast<Weight>(
                std::max(1.0, std::ceil(mag * 100.0)));
        }
        NodeId src = static_cast<NodeId>(r - 1);
        NodeId dst = static_cast<NodeId>(c - 1);
        if (src != dst) {
            builder.addEdge(src, dst, w);
            if (symmetric)
                builder.addEdge(dst, src, w);
        }
        ++seen;
    }
    if (seen != entries)
        ioError("%s: expected %llu entries, found %llu", name.c_str(),
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(seen));
    return builder.build(true);
}

Graph
loadMatrixMarketFile(const std::string &path)
{
    auto in = openOrThrow(path);
    return loadMatrixMarket(in, path);
}

Graph
loadEdgeList(std::istream &in, const std::string &name)
{
    std::string line;
    size_t lineNo = 0;
    struct RawEdge
    {
        uint64_t src;
        uint64_t dst;
        Weight weight;
    };
    std::vector<RawEdge> edges;
    uint64_t maxNode = 0;

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream fields(line);
        uint64_t u = 0;
        uint64_t v = 0;
        uint64_t w = 1;
        fields >> u >> v;
        if (!fields)
            parseError(name, lineNo, "bad edge line");
        fields >> w; // optional weight
        if (!fields)
            w = 1;
        edges.push_back({u, v, static_cast<Weight>(w == 0 ? 1 : w)});
        maxNode = std::max({maxNode, u, v});
    }
    if (edges.empty())
        ioError("%s: no edges found", name.c_str());
    if (maxNode + 1 > invalidNode)
        ioError("%s: too many nodes", name.c_str());

    GraphBuilder builder(static_cast<NodeId>(maxNode + 1), true);
    for (const RawEdge &e : edges) {
        builder.addEdge(static_cast<NodeId>(e.src),
                        static_cast<NodeId>(e.dst), e.weight);
    }
    return builder.build(true);
}

Graph
loadEdgeListFile(const std::string &path)
{
    auto in = openOrThrow(path);
    return loadEdgeList(in, path);
}

void
saveDimacs(const Graph &g, std::ostream &out)
{
    out << "c written by hdcps\n"
        << "p sp " << g.numNodes() << " " << g.numEdges() << "\n";
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            out << "a " << n + 1 << " " << g.edgeDest(e) + 1 << " "
                << g.edgeWeight(e) << "\n";
        }
    }
}

void
saveDimacsFile(const Graph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        ioError("cannot open '%s' for writing", path.c_str());
    saveDimacs(g, out);
    if (!out)
        ioError("write to '%s' failed", path.c_str());
}

void
saveEdgeList(const Graph &g, std::ostream &out)
{
    out << "# nodes " << g.numNodes() << " edges " << g.numEdges()
        << "\n";
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (EdgeId e = g.edgeBegin(n); e < g.edgeEnd(n); ++e) {
            out << n << " " << g.edgeDest(e) << " " << g.edgeWeight(e)
                << "\n";
        }
    }
}

void
saveEdgeListFile(const Graph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        ioError("cannot open '%s' for writing", path.c_str());
    saveEdgeList(g, out);
    if (!out)
        ioError("write to '%s' failed", path.c_str());
}

void
saveBinary(const Graph &g, std::ostream &out)
{
    writeRaw(out, binaryMagic);
    writeRaw(out, binaryVersion);
    writeRaw<uint32_t>(out, g.hasCoordinates() ? 1 : 0);
    writeRaw<uint64_t>(out, g.numNodes());
    writeRaw<uint64_t>(out, g.numEdges());
    writeRaw<uint32_t>(out, g.weighted() ? 1 : 0);

    const auto &offsets = g.rawOffsets();
    const auto &dests = g.rawDests();
    const auto &weights = g.rawWeights();
    out.write(reinterpret_cast<const char *>(offsets.data()),
              static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
    out.write(reinterpret_cast<const char *>(dests.data()),
              static_cast<std::streamsize>(dests.size() * sizeof(NodeId)));
    if (g.weighted()) {
        out.write(
            reinterpret_cast<const char *>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(Weight)));
    }
    if (g.hasCoordinates()) {
        for (NodeId n = 0; n < g.numNodes(); ++n) {
            writeRaw<int32_t>(out, g.coordX(n));
            writeRaw<int32_t>(out, g.coordY(n));
        }
    }
}

void
saveBinaryFile(const Graph &g, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        ioError("cannot open '%s' for writing", path.c_str());
    saveBinary(g, out);
    if (!out)
        ioError("write to '%s' failed", path.c_str());
}

Graph
loadBinary(std::istream &in, const std::string &name)
{
    if (readRaw<uint64_t>(in, name) != binaryMagic)
        ioError("%s: not an HD-CPS binary graph", name.c_str());
    if (readRaw<uint32_t>(in, name) != binaryVersion)
        ioError("%s: unsupported binary graph version", name.c_str());
    const bool hasCoords = readRaw<uint32_t>(in, name) != 0;
    const uint64_t n = readRaw<uint64_t>(in, name);
    const uint64_t m = readRaw<uint64_t>(in, name);
    const bool weighted = readRaw<uint32_t>(in, name) != 0;
    if (n + 1 > invalidNode)
        ioError("%s: node count out of range", name.c_str());

    std::vector<EdgeId> offsets(n + 1);
    std::vector<NodeId> dests(m);
    std::vector<Weight> weights(weighted ? m : 0);
    in.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
    in.read(reinterpret_cast<char *>(dests.data()),
            static_cast<std::streamsize>(dests.size() * sizeof(NodeId)));
    if (weighted) {
        in.read(reinterpret_cast<char *>(weights.data()),
                static_cast<std::streamsize>(weights.size() *
                                             sizeof(Weight)));
    }
    if (!in)
        ioError("%s: truncated binary graph", name.c_str());
    Graph g(std::move(offsets), std::move(dests), std::move(weights));
    if (hasCoords) {
        std::vector<std::pair<int32_t, int32_t>> coords(n);
        for (uint64_t i = 0; i < n; ++i) {
            coords[i].first = readRaw<int32_t>(in, name);
            coords[i].second = readRaw<int32_t>(in, name);
        }
        g.setCoordinates(std::move(coords));
    }
    return g;
}

Graph
loadBinaryFile(const std::string &path)
{
    auto in = openOrThrow(path);
    return loadBinary(in, path);
}

Graph
loadAnyFile(const std::string &path)
{
    auto dot = path.rfind('.');
    std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
    if (ext == "gr")
        return loadDimacsFile(path);
    if (ext == "mtx")
        return loadMatrixMarketFile(path);
    if (ext == "bin")
        return loadBinaryFile(path);
    return loadEdgeListFile(path);
}

} // namespace hdcps
