/**
 * @file
 * Graph file loaders and writers.
 *
 * Supported formats:
 *  - DIMACS shortest-path (.gr): the format the USA road network ships
 *    in ("p sp N M" header, "a u v w" arc lines, 1-based node ids).
 *  - Matrix Market coordinate (.mtx): the format CAGE14 ships in;
 *    pattern and real entries, general and symmetric layouts.
 *  - Plain edge lists (.el): "u v [w]" per line, '#' comments, 0-based —
 *    the SNAP convention used by Web-Google / LiveJournal.
 *  - A fast binary container (.bin) for caching converted graphs.
 *
 * Malformed or unreadable input is reported by throwing GraphIoError
 * with the file name and line number in the message. It is the only
 * exception type this module throws deliberately, so callers (the CLI,
 * conversion scripts) can catch it at their boundary, print the
 * message, and exit cleanly — a bad input file is a user error, not a
 * reason to abort the process from deep inside a library.
 */

#ifndef HDCPS_GRAPH_IO_H_
#define HDCPS_GRAPH_IO_H_

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.h"

namespace hdcps {

/** Thrown by every loader/saver here on bad input or I/O failure. */
class GraphIoError : public std::runtime_error
{
  public:
    explicit GraphIoError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Load a DIMACS .gr stream. */
Graph loadDimacs(std::istream &in, const std::string &name = "<stream>");
/** Load a DIMACS .gr file. */
Graph loadDimacsFile(const std::string &path);

/** Load a Matrix Market coordinate stream. */
Graph loadMatrixMarket(std::istream &in,
                       const std::string &name = "<stream>");
/** Load a Matrix Market coordinate file. */
Graph loadMatrixMarketFile(const std::string &path);

/** Load a SNAP-style edge list stream (0-based "u v [w]" lines). */
Graph loadEdgeList(std::istream &in, const std::string &name = "<stream>");
/** Load a SNAP-style edge list file. */
Graph loadEdgeListFile(const std::string &path);

/** Write DIMACS shortest-path format (1-based "a u v w" arcs). */
void saveDimacs(const Graph &g, std::ostream &out);
void saveDimacsFile(const Graph &g, const std::string &path);

/** Write a SNAP-style edge list ("u v w" per line, 0-based). */
void saveEdgeList(const Graph &g, std::ostream &out);
void saveEdgeListFile(const Graph &g, const std::string &path);

/** Write the binary container. */
void saveBinary(const Graph &g, std::ostream &out);
void saveBinaryFile(const Graph &g, const std::string &path);

/** Read the binary container back. */
Graph loadBinary(std::istream &in, const std::string &name = "<stream>");
Graph loadBinaryFile(const std::string &path);

/**
 * Load any supported file by extension (.gr, .mtx, .el/.txt, .bin);
 * falls back to edge list for unknown extensions.
 */
Graph loadAnyFile(const std::string &path);

} // namespace hdcps

#endif // HDCPS_GRAPH_IO_H_
