#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace hdcps {

namespace {

/** JSON number formatting: shortest round-trippable double; JSON has
 *  no NaN/Inf, so non-finite values degrade to null. */
void
jsonNumber(std::ostream &out, double v)
{
    if (!std::isfinite(v)) {
        out << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
}

void
jsonString(std::ostream &out, const std::string &s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace

void
writeMetricsJson(std::ostream &out, const MetricsSnapshot &snap)
{
    out << "{\n";
    out << "  \"schema\": \"hdcps-metrics-v1\",\n";
    out << "  \"epoch_ns\": " << snap.epochNs << ",\n";
    out << "  \"taken_ns\": " << snap.takenNs << ",\n";
    out << "  \"num_workers\": " << snap.numWorkers << ",\n";
    out << "  \"sample_interval\": " << snap.sampleInterval << ",\n";

    out << "  \"counters\": {";
    for (size_t i = 0; i < snap.counters.size(); ++i) {
        const auto &c = snap.counters[i];
        out << (i ? ",\n    " : "\n    ");
        jsonString(out, c.name);
        out << ": {\"total\": " << c.total << ", \"per_worker\": [";
        for (size_t w = 0; w < c.perWorker.size(); ++w)
            out << (w ? ", " : "") << c.perWorker[w];
        out << "]}";
    }
    out << "\n  },\n";

    out << "  \"gauges\": {";
    for (size_t i = 0; i < snap.gauges.size(); ++i) {
        const auto &g = snap.gauges[i];
        out << (i ? ",\n    " : "\n    ");
        jsonString(out, g.name);
        out << ": {\"per_worker\": [";
        for (size_t w = 0; w < g.perWorker.size(); ++w) {
            out << (w ? ", " : "");
            jsonNumber(out, g.perWorker[w]);
        }
        out << "]}";
    }
    out << "\n  },\n";

    out << "  \"series\": [";
    for (size_t i = 0; i < snap.series.size(); ++i) {
        const auto &s = snap.series[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"name\": ";
        jsonString(out, s.name);
        out << ", \"worker\": ";
        if (s.worker < 0)
            out << "null";
        else
            out << s.worker;
        uint64_t kept = s.samples.size();
        out << ", \"total_recorded\": " << s.totalRecorded
            << ", \"dropped\": " << (s.totalRecorded - kept)
            << ", \"samples\": [";
        for (size_t j = 0; j < s.samples.size(); ++j) {
            out << (j ? ", " : "") << "[" << s.samples[j].t << ", ";
            jsonNumber(out, s.samples[j].value);
            out << "]";
        }
        out << "]}";
    }
    out << "\n  ]\n";
    out << "}\n";
}

std::string
metricsToJson(const MetricsSnapshot &snap)
{
    std::ostringstream out;
    writeMetricsJson(out, snap);
    return out.str();
}

void
writeMetricsCsv(std::ostream &out, const MetricsSnapshot &snap)
{
    out << "kind,name,worker,t_ns,value\n";
    for (const auto &c : snap.counters) {
        out << "counter," << c.name << ",,," << c.total << "\n";
        for (size_t w = 0; w < c.perWorker.size(); ++w) {
            out << "counter," << c.name << "," << w << ",,"
                << c.perWorker[w] << "\n";
        }
    }
    char buf[32];
    for (const auto &g : snap.gauges) {
        for (size_t w = 0; w < g.perWorker.size(); ++w) {
            std::snprintf(buf, sizeof(buf), "%.17g", g.perWorker[w]);
            out << "gauge," << g.name << "," << w << ",," << buf << "\n";
        }
    }
    for (const auto &s : snap.series) {
        for (const MetricSample &sample : s.samples) {
            out << "series," << s.name << ",";
            if (s.worker >= 0)
                out << s.worker;
            out << "," << sample.t << ",";
            std::snprintf(buf, sizeof(buf), "%.17g", sample.value);
            out << buf << "\n";
        }
    }
}

bool
writeMetricsFile(const std::string &path, const MetricsSnapshot &snap)
{
    std::ofstream out(path);
    if (!out)
        return false;
    size_t dot = path.find_last_of('.');
    bool csv = dot != std::string::npos && path.substr(dot) == ".csv";
    if (csv)
        writeMetricsCsv(out, snap);
    else
        writeMetricsJson(out, snap);
    return bool(out);
}

} // namespace hdcps
