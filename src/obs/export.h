/**
 * @file
 * Exporters for metrics snapshots: a self-describing JSON document and
 * a long-format CSV. The schema is documented in README.md
 * ("Observability: metrics output schema") — keep the two in sync.
 */

#ifndef HDCPS_OBS_EXPORT_H_
#define HDCPS_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace hdcps {

/** Write the snapshot as one JSON object (schema hdcps-metrics-v1). */
void writeMetricsJson(std::ostream &out, const MetricsSnapshot &snap);

/** The same document as a string (convenience for tests/tools). */
std::string metricsToJson(const MetricsSnapshot &snap);

/**
 * Long-format CSV: header `kind,name,worker,t_ns,value`; one row per
 * counter/gauge value and per series sample. `worker` is empty for
 * global series and counter totals; `t_ns` is empty for counters and
 * gauges.
 */
void writeMetricsCsv(std::ostream &out, const MetricsSnapshot &snap);

/**
 * Write the snapshot to `path`, picking the format by extension
 * (".csv" -> CSV, anything else -> JSON). Returns false when the file
 * cannot be opened.
 */
bool writeMetricsFile(const std::string &path,
                      const MetricsSnapshot &snap);

} // namespace hdcps

#endif // HDCPS_OBS_EXPORT_H_
