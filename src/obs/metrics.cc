#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace hdcps {

const char *
workerCounterName(WorkerCounter c)
{
    static const char *const names[unsigned(WorkerCounter::Count)] = {
        "tasks_processed", "empty_tasks",   "local_enqueues",
        "remote_enqueues", "overflow_pushes", "bags_created",
        "tasks_in_bags",   "reclaimed_tasks", "reclaim_races",
        "srq_batch_flushes", "pool_recycled", "task_retries",
        "drained_tasks",   "worker_restarts", "health_transitions",
        "poisoned_tasks",  "cross_node_enqueues", "same_node_enqueues",
        "demoted_tasks",
    };
    return names[unsigned(c)];
}

const char *
workerGaugeName(WorkerGauge g)
{
    static const char *const names[unsigned(WorkerGauge::Count)] = {
        "queue_depth",
        "pending_tasks",
    };
    return names[unsigned(g)];
}

const char *
workerSeriesName(WorkerSeries s)
{
    static const char *const names[unsigned(WorkerSeries::Count)] = {
        "srq_occupancy", "queue_occupancy", "enqueue_ns",
        "dequeue_ns",    "compute_ns",      "comm_ns",
    };
    return names[unsigned(s)];
}

const char *
globalSeriesName(GlobalSeries s)
{
    static const char *const names[unsigned(GlobalSeries::Count)] = {
        "drift",
        "tdf_drift",
        "tdf",
        "rank_error",
        "job_latency_ms",
        "reclaim_latency_ms",
        "cross_node_pct",
    };
    return names[unsigned(s)];
}

MetricsRegistry::MetricsRegistry(unsigned numWorkers,
                                 const Config &config)
    : config_(config), epochNs_(nowNs())
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(config.seriesCapacity >= 1,
                "series capacity must be >= 1");
    hdcps_check(config.sampleInterval >= 1,
                "sample interval must be >= 1");
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto slot = std::make_unique<WorkerSlot>();
        slot->series.reserve(unsigned(WorkerSeries::Count));
        for (unsigned s = 0; s < unsigned(WorkerSeries::Count); ++s) {
            slot->series.push_back(std::make_unique<MetricTimeSeries>(
                config.seriesCapacity));
        }
        workers_.push_back(std::move(slot));
    }
    global_.reserve(unsigned(GlobalSeries::Count));
    for (unsigned s = 0; s < unsigned(GlobalSeries::Count); ++s) {
        global_.push_back(
            std::make_unique<MetricTimeSeries>(config.seriesCapacity));
    }
    globalBusy_ = std::make_unique<std::atomic<uint64_t>[]>(
        unsigned(GlobalSeries::Count));
    for (unsigned s = 0; s < unsigned(GlobalSeries::Count); ++s)
        globalBusy_[s].store(0, std::memory_order_relaxed);
}

int
MetricsRegistry::customSeries(const std::string &name)
{
    hdcps_check(!name.empty(), "custom series needs a name");
    std::lock_guard<std::mutex> lock(customMutex_);
    for (size_t i = 0; i < custom_.size(); ++i) {
        if (custom_[i]->name == name)
            return int(i);
    }
    auto entry = std::make_unique<CustomSeries>();
    entry->name = name;
    entry->series =
        std::make_unique<MetricTimeSeries>(config_.seriesCapacity);
    custom_.push_back(std::move(entry));
    return int(custom_.size() - 1);
}

void
MetricsRegistry::recordCustom(int handle, double value)
{
    CustomSeries *entry;
    {
        std::lock_guard<std::mutex> lock(customMutex_);
        hdcps_check(handle >= 0 &&
                        size_t(handle) < custom_.size(),
                    "bad custom series handle %d", handle);
        entry = custom_[handle].get();
    }
    // Negative slots below the GlobalSeries range encode custom
    // handles for the violation report.
    WriterCheck check(*this, entry->busy,
                      -1 - int(GlobalSeries::Count) - handle);
    if (config_.sampleShift != 0 &&
        !entry->series->offerSampled(config_.sampleShift))
        return;
    entry->series->record(now(), value);
}

uint64_t
MetricsRegistry::writerTag()
{
    static std::atomic<uint64_t> next{1};
    thread_local uint64_t tag =
        next.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

void
MetricsRegistry::noteWriterViolation(int slot, uint64_t prevTag,
                                     uint64_t myTag) const
{
    writerViolations_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream out;
    if (slot >= 0) {
        out << "worker slot " << slot;
    } else {
        unsigned s = unsigned(-1 - slot);
        if (s < unsigned(GlobalSeries::Count))
            out << "global series '"
                << globalSeriesName(GlobalSeries(s)) << "'";
        else
            out << "custom series #"
                << (s - unsigned(GlobalSeries::Count));
    }
    out << " written concurrently by thread #" << myTag
        << " while thread #" << prevTag << " was mid-write";
    if (config_.abortOnWriterViolation)
        hdcps_fatal("metrics single-writer violation: %s",
                    out.str().c_str());
    std::lock_guard<std::mutex> lock(violationMutex_);
    constexpr size_t kMaxSamples = 8;
    if (violationSamples_.size() < kMaxSamples)
        violationSamples_.push_back(out.str());
}

std::vector<std::string>
MetricsRegistry::writerViolationSamples() const
{
    std::lock_guard<std::mutex> lock(violationMutex_);
    return violationSamples_;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.epochNs = epochNs_;
    snap.takenNs = now();
    snap.numWorkers = numWorkers();
    snap.sampleInterval = config_.sampleInterval;

    for (unsigned c = 0; c < unsigned(WorkerCounter::Count); ++c) {
        MetricsSnapshot::Counter counter;
        counter.name = workerCounterName(WorkerCounter(c));
        counter.perWorker.reserve(workers_.size());
        for (const auto &w : workers_) {
            uint64_t v = w->counters[c].load(std::memory_order_relaxed);
            counter.perWorker.push_back(v);
            counter.total += v;
        }
        snap.counters.push_back(std::move(counter));
    }

    for (unsigned g = 0; g < unsigned(WorkerGauge::Count); ++g) {
        MetricsSnapshot::Gauge gauge;
        gauge.name = workerGaugeName(WorkerGauge(g));
        gauge.perWorker.reserve(workers_.size());
        for (const auto &w : workers_)
            gauge.perWorker.push_back(
                w->gauges[g].load(std::memory_order_relaxed));
        snap.gauges.push_back(std::move(gauge));
    }

    auto addSeries = [&snap](const MetricTimeSeries &ts,
                             const char *name, int worker) {
        uint64_t total = ts.totalRecorded();
        if (total == 0)
            return; // never written: keep exports compact
        MetricsSnapshot::Series series;
        series.name = name;
        series.worker = worker;
        series.totalRecorded = total;
        series.samples = ts.snapshot();
        snap.series.push_back(std::move(series));
    };

    for (unsigned s = 0; s < unsigned(GlobalSeries::Count); ++s)
        addSeries(*global_[s], globalSeriesName(GlobalSeries(s)), -1);
    {
        std::lock_guard<std::mutex> lock(customMutex_);
        for (const auto &entry : custom_)
            addSeries(*entry->series, entry->name.c_str(), -1);
    }
    for (unsigned tid = 0; tid < workers_.size(); ++tid) {
        for (unsigned s = 0; s < unsigned(WorkerSeries::Count); ++s) {
            addSeries(*workers_[tid]->series[s],
                      workerSeriesName(WorkerSeries(s)), int(tid));
        }
    }
    return snap;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    numWorkers = std::max(numWorkers, other.numWorkers);
    takenNs = std::max(takenNs, other.takenNs);
    for (const Counter &theirs : other.counters) {
        auto it = std::find_if(counters.begin(), counters.end(),
                               [&theirs](const Counter &c) {
                                   return c.name == theirs.name;
                               });
        if (it == counters.end()) {
            counters.push_back(theirs);
            continue;
        }
        it->total += theirs.total;
        it->perWorker.resize(
            std::max(it->perWorker.size(), theirs.perWorker.size()), 0);
        for (size_t i = 0; i < theirs.perWorker.size(); ++i)
            it->perWorker[i] += theirs.perWorker[i];
    }
    for (const Gauge &theirs : other.gauges) {
        auto it = std::find_if(gauges.begin(), gauges.end(),
                               [&theirs](const Gauge &g) {
                                   return g.name == theirs.name;
                               });
        if (it == gauges.end())
            gauges.push_back(theirs);
        else
            *it = theirs; // gauges are last-value: newest snapshot wins
    }
    for (const Series &theirs : other.series)
        series.push_back(theirs);
}

} // namespace hdcps
