/**
 * @file
 * Low-overhead scheduler observability: per-worker, cache-padded metric
 * slots (counters + gauges + fixed-capacity time-series ring buffers)
 * behind one registry, with a snapshot/merge API.
 *
 * Motivation (MultiQueues engineering paper, PMOD): adaptive schedulers
 * are only debuggable and tunable when their internal signals — drift,
 * TDF decisions, receive-queue occupancy, bag creation — are visible
 * *over time*, not just as end-of-run averages. A lone average hides
 * exactly the pathologies that matter (e.g. a wrapped-subtraction drift
 * spike poisons the TDF controller for one interval and then vanishes
 * into the mean).
 *
 * Concurrency contract (kept deliberately loose so the hot path stays
 * cheap):
 *  - counter/gauge writes are relaxed atomics — safe from any thread;
 *  - each TimeSeries has a single writer at a time (per-worker series
 *    are written by the owning worker; global series by whichever
 *    thread holds the sampling role, serialized by the caller);
 *  - snapshot() may run concurrently with writers. Samples about to be
 *    overwritten in a full ring can tear (timestamp from one sample,
 *    value from another) — acceptable for observability, and all
 *    accesses are atomic so there is no UB and TSan stays quiet.
 *
 * Attribution contract (audited in PR 4, enforced on demand here):
 * every scheduler/runtime metrics call must act on the *calling*
 * thread's worker slot — "who did it", never "who it was done to". A
 * given worker id is driven by one thread at a time (sequential
 * handoffs, e.g. the executor's single-threaded seeding phase, are
 * fine), so no two threads should ever be inside a write to the same
 * slot simultaneously. Config::checkSingleWriter arms a debug checker
 * that records the writing thread per slot (and per global series) for
 * the duration of each write and flags any overlapping write by a
 * different thread; Config::abortOnWriterViolation upgrades the flag
 * to a fatal abort. The checker is off by default and costs the hot
 * path one predicted branch.
 */

#ifndef HDCPS_OBS_METRICS_H_
#define HDCPS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/compiler.h"
#include "support/logging.h"
#include "support/timer.h"

namespace hdcps {

/** One timestamped observation (t is ns since the registry's epoch). */
struct MetricSample
{
    uint64_t t = 0;
    double value = 0.0;
};

/**
 * Fixed-capacity ring of timestamped samples. Overwrites the oldest
 * sample when full; totalRecorded() exposes how many were ever written
 * so exporters can report drops.
 */
class MetricTimeSeries
{
  public:
    explicit MetricTimeSeries(size_t capacity) : capacity_(capacity)
    {
        hdcps_check(capacity >= 1, "time series capacity must be >= 1");
        slots_ = std::make_unique<Slot[]>(capacity);
    }

    size_t capacity() const { return capacity_; }

    /** Samples ever recorded (recorded - min(recorded, capacity) were
     *  dropped by the ring). */
    uint64_t
    totalRecorded() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /** Append one sample. Single writer at a time (see file comment). */
    void
    record(uint64_t t, double value)
    {
        uint64_t n = count_.load(std::memory_order_relaxed);
        Slot &slot = slots_[n % capacity_];
        slot.t.store(t, std::memory_order_relaxed);
        slot.value.store(value, std::memory_order_relaxed);
        count_.store(n + 1, std::memory_order_release);
    }

    /**
     * Sampled-recording gate (Config::sampleShift): count the offer and
     * return true for 1 in 2^shift offers — the first of every stride,
     * so short runs still produce points. Same single-writer contract
     * as record(); the counter is a load+store pair, not an RMW, for
     * the same reason the schedulers' distributed counters are.
     */
    bool
    offerSampled(unsigned shift)
    {
        uint64_t n = offered_.load(std::memory_order_relaxed);
        offered_.store(n + 1, std::memory_order_relaxed);
        return (n & ((uint64_t(1) << shift) - 1)) == 0;
    }

    /** Offers ever made through offerSampled (0 when unsampled). */
    uint64_t
    totalOffered() const
    {
        return offered_.load(std::memory_order_relaxed);
    }

    /** The retained samples, oldest first. Safe concurrently with the
     *  writer (wraparound tearing possible, see file comment). */
    std::vector<MetricSample>
    snapshot() const
    {
        uint64_t n = count_.load(std::memory_order_acquire);
        uint64_t keep = n < capacity_ ? n : capacity_;
        std::vector<MetricSample> out;
        out.reserve(keep);
        for (uint64_t i = n - keep; i < n; ++i) {
            const Slot &slot = slots_[i % capacity_];
            out.push_back(
                MetricSample{slot.t.load(std::memory_order_relaxed),
                             slot.value.load(std::memory_order_relaxed)});
        }
        return out;
    }

  private:
    struct Slot
    {
        std::atomic<uint64_t> t{0};
        std::atomic<double> value{0.0};
    };

    std::unique_ptr<Slot[]> slots_;
    size_t capacity_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> offered_{0}; ///< offerSampled calls ever made
};

/** Per-worker monotonic counters. */
enum class WorkerCounter : unsigned {
    TasksProcessed = 0, ///< pops whose processing completed
    EmptyTasks,         ///< processed tasks that created no children
    LocalEnqueues,      ///< tasks pushed to the worker's own queue
    RemoteEnqueues,     ///< tasks pushed toward another worker
    OverflowPushes,     ///< sRQ-full fallbacks to the spill path
    BagsCreated,        ///< Algorithm 1 bags created
    TasksInBags,        ///< tasks shipped inside bags
    ReclaimedTasks,     ///< tasks drained from a straggler's queues
    ReclaimRaces,       ///< reclamation lock attempts lost to a peer
    SrqBatchFlushes,    ///< combining-buffer flushes into a remote sRQ
    PoolRecycled,       ///< bag envelopes served from the pool free list
    TaskRetries,        ///< service tasks re-pushed after a transient failure
    DrainedTasks,       ///< tasks discarded for a cancelled/failed/expired job
    WorkerRestarts,     ///< replacement workers spawned into a freed slot
    HealthTransitions,  ///< supervisor health-FSM state changes
    PoisonedTasks,      ///< tasks diverted to a job's dead-letter queue
    CrossNodeEnqueues,  ///< remote sends routed across NUMA node bounds
    SameNodeEnqueues,   ///< remote sends kept within the sender's node
    DemotedTasks,       ///< incarnations re-tagged by job preemption
    Count
};

/** Per-worker last-value gauges. */
enum class WorkerGauge : unsigned {
    QueueDepth = 0, ///< tasks buffered at the worker (design-defined)
    PendingTasks,   ///< runtime in-flight count (sampled by worker 0)
    Count
};

/** Per-worker time series. */
enum class WorkerSeries : unsigned {
    SrqOccupancy = 0, ///< HD-CPS receive-queue occupancy at sample time
    QueueOccupancy,   ///< baseline designs' local buffered work
    EnqueueNs,        ///< cumulative per-phase breakdown (threaded runtime)
    DequeueNs,
    ComputeNs,
    CommNs,
    Count
};

/** Global (master-written) time series. */
enum class GlobalSeries : unsigned {
    Drift = 0, ///< executor's design-independent Eq. 1 samples
    TdfDrift,  ///< drift samples the TDF controller actually consumed
    Tdf,       ///< TDF percentage after each Algorithm 2 decision
    RankError, ///< verifying wrapper's sampled priority-inversion gap
    JobLatencyMs, ///< service per-job submit-to-terminal latency
    ReclaimLatencyMs, ///< supervisor quarantine-to-reclaimed latency
    CrossNodePct, ///< % of remote sends that crossed node boundaries
    Count
};

const char *workerCounterName(WorkerCounter c);
const char *workerGaugeName(WorkerGauge g);
const char *workerSeriesName(WorkerSeries s);
const char *globalSeriesName(GlobalSeries s);

/** Everything a registry held at one instant, merged and nameable. */
struct MetricsSnapshot
{
    struct Counter
    {
        std::string name;
        uint64_t total = 0;
        std::vector<uint64_t> perWorker;
    };

    struct Gauge
    {
        std::string name;
        std::vector<double> perWorker;
    };

    struct Series
    {
        std::string name;
        int worker = -1; ///< -1 = global
        uint64_t totalRecorded = 0;
        std::vector<MetricSample> samples;
    };

    uint64_t epochNs = 0;       ///< registry creation, absolute ns
    uint64_t takenNs = 0;       ///< snapshot time relative to epoch
    unsigned numWorkers = 0;
    uint64_t sampleInterval = 0;
    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Series> series; ///< only non-empty series

    /**
     * Fold another snapshot into this one (counters add element-wise by
     * name, gauges keep the other's values where set, series are
     * appended). Used to combine registries from repeated runs.
     */
    void merge(const MetricsSnapshot &other);
};

/**
 * The registry: one cache-padded slot per worker plus the global
 * series. Hot-path methods are branch-plus-relaxed-atomic cheap; the
 * expensive work (naming, merging, export) happens in snapshot().
 */
class MetricsRegistry
{
  public:
    struct Config
    {
        size_t seriesCapacity = 4096; ///< ring slots per time series
        /** Pops between occupancy samples taken via tick(). */
        uint64_t sampleInterval = 500;
        /** Arm the single-writer debug checker (see file comment).
         *  Conformance/chaos harness knob, not a production default. */
        bool checkSingleWriter = false;
        /** With the checker armed, abort the process on a cross-thread
         *  write instead of only counting it. */
        bool abortOnWriterViolation = false;
        /**
         * Always-on sampling mode: when nonzero, record()/recordGlobal()
         * keep only 1 in 2^sampleShift offered samples per series (the
         * first of each stride, so short runs still yield points) and
         * drop the rest before touching the ring or the clock. Cheap
         * enough to leave attached during perf-gate runs; 0 (default)
         * records everything, the original behavior.
         */
        unsigned sampleShift = 0;
    };

    explicit MetricsRegistry(unsigned numWorkers)
        : MetricsRegistry(numWorkers, Config{})
    {}

    MetricsRegistry(unsigned numWorkers, const Config &config);

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    uint64_t sampleInterval() const { return config_.sampleInterval; }

    /** Nanoseconds since the registry was created. */
    uint64_t now() const { return nowNs() - epochNs_; }

    /** Bump a per-worker counter (attribute to the acting thread's
     *  worker id; see the attribution contract in the file comment). */
    void
    add(unsigned tid, WorkerCounter c, uint64_t n = 1)
    {
        WriterCheck check(*this, workers_[tid]->busy, int(tid));
        workers_[tid]->counters[unsigned(c)].fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Set a per-worker gauge (acting thread's worker id). */
    void
    set(unsigned tid, WorkerGauge g, double value)
    {
        WriterCheck check(*this, workers_[tid]->busy, int(tid));
        workers_[tid]->gauges[unsigned(g)].store(
            value, std::memory_order_relaxed);
    }

    /** Record into a per-worker series (owning worker only). */
    void
    record(unsigned tid, WorkerSeries s, double value)
    {
        WriterCheck check(*this, workers_[tid]->busy, int(tid));
        MetricTimeSeries &series = *workers_[tid]->series[unsigned(s)];
        if (config_.sampleShift != 0 &&
            !series.offerSampled(config_.sampleShift))
            return;
        series.record(now(), value);
    }

    /**
     * Get-or-create a *named* global series for populations only known
     * at runtime (e.g. the service's per-tenant share/backlog series).
     * Returns a stable handle for recordCustom; the same name always
     * yields the same handle. Thread-safe; intended for cold-path
     * setup, not per-task calls.
     */
    int customSeries(const std::string &name);

    /** Record into a custom series (single writer per series, same
     *  contract as recordGlobal). Snapshots report it as a global
     *  (worker == -1) series under its registered name. */
    void recordCustom(int handle, double value);

    /** Record into a global series (caller serializes writers). */
    void
    recordGlobal(GlobalSeries s, double value)
    {
        WriterCheck check(*this, globalBusy_[unsigned(s)], -1 - int(s));
        MetricTimeSeries &series = *global_[unsigned(s)];
        if (config_.sampleShift != 0 &&
            !series.offerSampled(config_.sampleShift))
            return;
        series.record(now(), value);
    }

    /**
     * Per-worker sampling pacer: count one pop for tid and return true
     * every sampleInterval-th call. Owning worker only — this is the
     * one-liner that lets every scheduler design emit occupancy series
     * without keeping its own sampling state.
     */
    bool
    tick(unsigned tid)
    {
        WorkerSlot &w = *workers_[tid];
        WriterCheck check(*this, w.busy, int(tid));
        if (++w.ticks < config_.sampleInterval)
            return false;
        w.ticks = 0;
        return true;
    }

    /**
     * Cross-thread writes the armed checker flagged so far. A nonzero
     * count means some metrics call acted on a slot while a different
     * thread was mid-write to it — an attribution bug in a scheduler or
     * the runtime, never legitimate load.
     */
    uint64_t
    writerViolations() const
    {
        return writerViolations_.load(std::memory_order_relaxed);
    }

    /** Retained human-readable violation descriptions (capped). */
    std::vector<std::string> writerViolationSamples() const;

    /** Name, merge and copy out everything currently held. */
    MetricsSnapshot snapshot() const;

  private:
    struct alignas(cacheLineBytes) WorkerSlot
    {
        std::atomic<uint64_t>
            counters[unsigned(WorkerCounter::Count)] = {};
        std::atomic<double> gauges[unsigned(WorkerGauge::Count)] = {};
        uint64_t ticks = 0; ///< owner-only tick() state
        std::vector<std::unique_ptr<MetricTimeSeries>> series;
        /** Debug-checker cell: tag of the thread currently inside a
         *  write to this slot, 0 when none (unused unless armed). */
        std::atomic<uint64_t> busy{0};
    };

    /**
     * RAII guard marking one write to a slot/series. With the checker
     * off it is a single predicted branch; armed, it exchanges the
     * writing thread's tag into the busy cell and flags overlap with a
     * different tag. Detection is overlap-based on purpose: sequential
     * handoffs of a worker id between threads are legal, simultaneous
     * writes never are.
     */
    class WriterCheck
    {
      public:
        WriterCheck(const MetricsRegistry &registry,
                    std::atomic<uint64_t> &cell, int slot)
        {
            if (__builtin_expect(!registry.config_.checkSingleWriter, 1))
                return;
            cell_ = &cell;
            uint64_t me = writerTag();
            uint64_t prev = cell.exchange(me, std::memory_order_acq_rel);
            if (prev != 0 && prev != me)
                registry.noteWriterViolation(slot, prev, me);
        }

        ~WriterCheck()
        {
            if (cell_)
                cell_->store(0, std::memory_order_release);
        }

        WriterCheck(const WriterCheck &) = delete;
        WriterCheck &operator=(const WriterCheck &) = delete;

      private:
        std::atomic<uint64_t> *cell_ = nullptr;
    };

    /** Small dense per-thread tag (1-based; 0 means "no writer"). */
    static uint64_t writerTag();

    /** Count + describe one flagged cross-thread write. `slot` >= 0 is
     *  a worker id; negative encodes global series -1 - int(series). */
    void noteWriterViolation(int slot, uint64_t prevTag,
                             uint64_t myTag) const;

    /** One runtime-named global series (customSeries). The busy cell
     *  is per-series so the single-writer checker covers these too. */
    struct CustomSeries
    {
        std::string name;
        std::unique_ptr<MetricTimeSeries> series;
        std::atomic<uint64_t> busy{0};
    };

    Config config_;
    uint64_t epochNs_;
    std::vector<std::unique_ptr<WorkerSlot>> workers_;
    std::vector<std::unique_ptr<MetricTimeSeries>> global_;
    /** Runtime-named series; append-only behind customMutex_ (entries
     *  have stable addresses, so recordCustom only takes the mutex to
     *  resolve the handle). */
    mutable std::mutex customMutex_;
    std::vector<std::unique_ptr<CustomSeries>> custom_;
    /** Debug-checker cells for the global series (parallel to global_). */
    std::unique_ptr<std::atomic<uint64_t>[]> globalBusy_;
    mutable std::atomic<uint64_t> writerViolations_{0};
    mutable std::mutex violationMutex_;
    mutable std::vector<std::string> violationSamples_;
};

} // namespace hdcps

#endif // HDCPS_OBS_METRICS_H_
