/**
 * @file
 * Bucketed integer priority queue.
 *
 * Used by the sequential reference implementations (Dijkstra/delta-
 * stepping baselines) where priorities are small integers. Pop returns
 * an element from the lowest non-empty bucket; pushes below the cursor
 * rewind it, so the queue also works for label-correcting algorithms
 * whose priorities are not strictly monotone.
 */

#ifndef HDCPS_PQ_BUCKET_QUEUE_H_
#define HDCPS_PQ_BUCKET_QUEUE_H_

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace hdcps {

/** FIFO-within-bucket integer priority queue. */
template <typename T>
class BucketQueue
{
  public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    void
    push(uint64_t priority, T value)
    {
        if (priority >= buckets_.size())
            buckets_.resize(priority + 1);
        buckets_[priority].push_back(std::move(value));
        if (priority < cursor_)
            cursor_ = priority;
        ++count_;
    }

    /** Priority of the lowest non-empty bucket. */
    uint64_t
    topPriority()
    {
        hdcps_check(count_ > 0, "topPriority() on empty bucket queue");
        advance();
        return cursor_;
    }

    T
    pop()
    {
        hdcps_check(count_ > 0, "pop() on empty bucket queue");
        advance();
        T value = std::move(buckets_[cursor_].back());
        buckets_[cursor_].pop_back();
        --count_;
        return value;
    }

  private:
    void
    advance()
    {
        while (cursor_ < buckets_.size() && buckets_[cursor_].empty())
            ++cursor_;
        hdcps_check(cursor_ < buckets_.size(),
                    "bucket queue cursor ran off the end");
    }

    std::vector<std::vector<T>> buckets_;
    size_t cursor_ = 0;
    size_t count_ = 0;
};

} // namespace hdcps

#endif // HDCPS_PQ_BUCKET_QUEUE_H_
