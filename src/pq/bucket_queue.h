/**
 * @file
 * Bucketed integer priority queue.
 *
 * Used by the sequential reference implementations (Dial's-algorithm
 * Dijkstra oracle, delta-stepping baselines) where priorities are small
 * integers. Pop returns the oldest element of the lowest non-empty
 * bucket (FIFO within a bucket, so oracle tie-break order is the
 * insertion order and soak comparisons stay deterministic); pushes
 * below the cursor rewind it, so the queue also works for
 * label-correcting algorithms whose priorities are not strictly
 * monotone.
 *
 * Priorities are full 64-bit values, but the bucket array is only
 * materialized below a configurable span: `push(priority + 1)`-sized
 * resizes were unbounded, so one >2^32 priority (e.g. an SSSP distance
 * on a large-weight graph) allocated the address space away. Pushes at
 * or above the span spill to a comparison-based overflow heap whose
 * entries carry an insertion sequence number, preserving the global
 * FIFO-within-priority contract across both storage tiers.
 */

#ifndef HDCPS_PQ_BUCKET_QUEUE_H_
#define HDCPS_PQ_BUCKET_QUEUE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "pq/dary_heap.h"
#include "support/logging.h"

namespace hdcps {

/** FIFO-within-bucket integer priority queue with a bounded bucket
 *  span and a heap fallback for wide priority domains. */
template <typename T>
class BucketQueue
{
  public:
    /** Largest priority (exclusive) served by a dense bucket; chosen so
     *  the worst-case bucket directory stays tens of MB, not the 2^64
     *  the unbounded resize allowed. */
    static constexpr uint64_t kDefaultMaxBucketSpan = uint64_t(1) << 22;

    explicit BucketQueue(uint64_t maxBucketSpan = kDefaultMaxBucketSpan)
        : maxBucketSpan_(maxBucketSpan)
    {
        hdcps_check(maxBucketSpan >= 1, "bucket span must be >= 1");
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    uint64_t maxBucketSpan() const { return maxBucketSpan_; }

    /** Elements currently held by the wide-domain heap fallback. */
    size_t overflowSize() const { return overflow_.size(); }

    void
    push(uint64_t priority, T value)
    {
        if (priority >= maxBucketSpan_) {
            overflow_.push(
                OverflowEntry{priority, nextSeq_++, std::move(value)});
        } else {
            if (priority >= buckets_.size()) {
                buckets_.resize(priority + 1);
                occupancy_.resize((buckets_.size() + 63) / 64, 0);
            }
            Bucket &bucket = buckets_[priority];
            if (bucket.drained())
                occupancy_[priority / 64] |= uint64_t(1)
                                             << (priority % 64);
            bucket.items.push_back(std::move(value));
            if (priority < cursor_)
                cursor_ = priority;
        }
        ++count_;
    }

    /** Priority of the best (lowest, oldest-first) element. */
    uint64_t
    topPriority()
    {
        hdcps_check(count_ > 0, "topPriority() on empty bucket queue");
        advance();
        return bucketIsBest() ? cursor_ : overflow_.top().priority;
    }

    T
    pop()
    {
        hdcps_check(count_ > 0, "pop() on empty bucket queue");
        advance();
        --count_;
        if (!bucketIsBest())
            return overflow_.pop().value;
        Bucket &bucket = buckets_[cursor_];
        T value = std::move(bucket.items[bucket.head++]);
        if (bucket.head == bucket.items.size()) {
            bucket.reset();
            occupancy_[cursor_ / 64] &= ~(uint64_t(1) << (cursor_ % 64));
        }
        return value;
    }

  private:
    /** One dense bucket; `head` implements FIFO without pop_front —
     *  consumed slots are reclaimed when the bucket empties. */
    struct Bucket
    {
        std::vector<T> items;
        size_t head = 0;

        bool drained() const { return head == items.size(); }

        void
        reset()
        {
            items.clear();
            head = 0;
        }
    };

    /** `seq` restores insertion order among equal priorities, matching
     *  the dense buckets' FIFO. */
    struct OverflowEntry
    {
        uint64_t priority;
        uint64_t seq;
        T value;
    };

    struct OverflowOrder
    {
        bool
        operator()(const OverflowEntry &a, const OverflowEntry &b) const
        {
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.seq < b.seq;
        }
    };

    /**
     * Bulk rebase: jump the cursor to the lowest occupied bucket at or
     * above it. The occupancy bitmap (one bit per bucket, maintained
     * on the empty/non-empty transitions in push/pop) turns what used
     * to be a one-bucket-at-a-time walk into word-sized strides — a
     * cursor stranded far below the live range (common after a
     * label-correcting rewind or a sparse high-priority burst) crosses
     * 64 empty buckets per iteration plus one countr_zero, instead of
     * 64 loads.
     */
    void
    advance()
    {
        size_t word = cursor_ / 64;
        if (word >= occupancy_.size()) {
            cursor_ = buckets_.size();
            return;
        }
        uint64_t bits = occupancy_[word] &
                        (~uint64_t(0) << (cursor_ % 64));
        while (bits == 0) {
            if (++word == occupancy_.size()) {
                cursor_ = buckets_.size();
                return;
            }
            bits = occupancy_[word];
        }
        cursor_ = word * 64 +
                  static_cast<size_t>(std::countr_zero(bits));
    }

    /** After advance(): does the dense tier hold the best element?
     *  The tiers never tie — buckets hold only priorities below the
     *  span, the overflow heap only those at or above it. */
    bool
    bucketIsBest() const
    {
        if (cursor_ >= buckets_.size())
            return false;
        return overflow_.empty() ||
               cursor_ < overflow_.top().priority;
    }

    std::vector<Bucket> buckets_;
    /** One bit per bucket: set iff the bucket has live (unconsumed)
     *  items. Parallel to buckets_, 64 buckets per word. */
    std::vector<uint64_t> occupancy_;
    DAryHeap<OverflowEntry, OverflowOrder> overflow_;
    uint64_t maxBucketSpan_;
    uint64_t nextSeq_ = 0;
    size_t cursor_ = 0;
    size_t count_ = 0;
};

} // namespace hdcps

#endif // HDCPS_PQ_BUCKET_QUEUE_H_
