/**
 * @file
 * Sequential d-ary min-heap.
 *
 * The workhorse priority queue behind the per-core software PQs of RELD
 * and HD-CPS, and behind the simulator's software-PQ cost model. A 4-ary
 * layout is the default: it halves tree depth versus a binary heap and
 * keeps children of a node within one cache line for 8/16-byte elements,
 * which matters because PQ rebalancing is precisely the overhead the
 * paper's hPQ exists to hide.
 */

#ifndef HDCPS_PQ_DARY_HEAP_H_
#define HDCPS_PQ_DARY_HEAP_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "support/logging.h"

namespace hdcps {

/**
 * Min-heap with configurable arity. Compare(a, b) returning true means
 * "a orders before b" (for a min-heap, a has the smaller key).
 */
template <typename T, typename Compare = std::less<T>, unsigned Arity = 4>
class DAryHeap
{
    static_assert(Arity >= 2, "heap arity must be >= 2");

  public:
    DAryHeap() = default;
    explicit DAryHeap(Compare cmp) : cmp_(std::move(cmp)) {}

    bool empty() const { return elems_.empty(); }
    size_t size() const { return elems_.size(); }

    void reserve(size_t n) { elems_.reserve(n); }

    /** Number of element moves performed since construction/reset.
     *  The simulator charges PQ cycles proportional to this. */
    uint64_t movesPerformed() const { return moves_; }
    void resetMoveCounter() { moves_ = 0; }

    const T &
    top() const
    {
        hdcps_check(!elems_.empty(), "top() on empty heap");
        return elems_.front();
    }

    void
    push(T value)
    {
        elems_.push_back(std::move(value));
        siftUp(elems_.size() - 1);
    }

    T
    pop()
    {
        hdcps_check(!elems_.empty(), "pop() on empty heap");
        T result = std::move(elems_.front());
        elems_.front() = std::move(elems_.back());
        elems_.pop_back();
        if (!elems_.empty())
            siftDown(0);
        return result;
    }

    /**
     * Append a run of elements in one go. Large batches (at least half
     * the existing occupancy) rebuild the heap bottom-up with Floyd's
     * O(n) heapify instead of paying O(k log n) sift-ups — the case
     * drainIncoming hits when a combining sender lands a full sRQ's
     * worth of envelopes at once. Small batches sift up per element.
     */
    template <typename InputIt>
    void
    pushBulk(InputIt first, InputIt last)
    {
        const size_t oldSize = elems_.size();
        elems_.insert(elems_.end(), first, last);
        const size_t added = elems_.size() - oldSize;
        if (added == 0)
            return;
        if (added >= 2 && added >= oldSize / 2) {
            for (size_t i = (elems_.size() - 2) / Arity + 1; i-- > 0;)
                siftDown(i);
        } else {
            for (size_t i = oldSize; i < elems_.size(); ++i)
                siftUp(i);
        }
    }

    void
    clear()
    {
        elems_.clear();
    }

    /** Validate the heap property; test hook, O(n). */
    bool
    isValidHeap() const
    {
        for (size_t i = 1; i < elems_.size(); ++i) {
            size_t parent = (i - 1) / Arity;
            if (cmp_(elems_[i], elems_[parent]))
                return false;
        }
        return true;
    }

  private:
    void
    siftUp(size_t idx)
    {
        T value = std::move(elems_[idx]);
        while (idx > 0) {
            size_t parent = (idx - 1) / Arity;
            if (!cmp_(value, elems_[parent]))
                break;
            elems_[idx] = std::move(elems_[parent]);
            ++moves_;
            idx = parent;
        }
        elems_[idx] = std::move(value);
        ++moves_;
    }

    void
    siftDown(size_t idx)
    {
        const size_t count = elems_.size();
        T value = std::move(elems_[idx]);
        while (true) {
            size_t first = idx * Arity + 1;
            if (first >= count)
                break;
            size_t last = std::min(first + Arity, count);
            size_t best = first;
            for (size_t child = first + 1; child < last; ++child) {
                if (cmp_(elems_[child], elems_[best]))
                    best = child;
            }
            if (!cmp_(elems_[best], value))
                break;
            elems_[idx] = std::move(elems_[best]);
            ++moves_;
            idx = best;
        }
        elems_[idx] = std::move(value);
        ++moves_;
    }

    std::vector<T> elems_;
    Compare cmp_;
    uint64_t moves_ = 0;
};

} // namespace hdcps

#endif // HDCPS_PQ_DARY_HEAP_H_
