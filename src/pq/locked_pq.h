/**
 * @file
 * Mutex-guarded concurrent priority queue.
 *
 * This is the per-core PQ of the RELD design: both local dequeues and
 * remote enqueues take the same lock, which is exactly the serialization
 * HD-CPS's receive queue removes (paper Section III-A). Kept
 * deliberately simple so the contrast with the decoupled design is the
 * scheduling policy, not queue micro-optimizations.
 */

#ifndef HDCPS_PQ_LOCKED_PQ_H_
#define HDCPS_PQ_LOCKED_PQ_H_

#include <atomic>
#include <mutex>

#include "cps/task.h"
#include "pq/dary_heap.h"

namespace hdcps {

/** Thread-safe min-priority queue of tasks. */
class LockedTaskPq
{
  public:
    void
    push(const Task &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        heap_.push(task);
        count_.store(heap_.size(), std::memory_order_release);
    }

    /**
     * Pop the highest-priority task; false when empty.
     *
     * The emptiness probe below is lock-free and may return false
     * while a racing push() still holds the mutex. That is a
     * deliberate, linearizable outcome: a push that has not yet
     * published its count_ store (release, under the lock) has not
     * completed, so the probe's acquire load observing 0 linearizes
     * the pop *before* that push. The acquire/release pair on count_
     * guarantees the converse — once a pusher's store is visible, a
     * probing popper also sees the heap insertion when it takes the
     * lock.
     *
     * Termination safety under the executor's two-pass quiescence
     * scan does not rest on this probe being conservative: the
     * executor bumps its created counter BEFORE calling push, so at
     * the moment quiescence (created == completed) can first be
     * observed, every push has returned — and a returned push has
     * published count_, which a subsequent probe's acquire load is
     * then guaranteed to see. A transient "empty" during an in-flight
     * push can therefore only add a retry, never a lost task. The
     * probe exists because HD-CPS drains this spill queue on every
     * local enqueue and every pop, and it is almost always empty —
     * skipping the mutex keeps the overflow path's cost out of the
     * fast path entirely.
     */
    bool
    tryPop(Task &out)
    {
        if (count_.load(std::memory_order_acquire) == 0)
            return false;
        std::lock_guard<std::mutex> lock(mutex_);
        if (heap_.empty())
            return false;
        out = heap_.pop();
        count_.store(heap_.size(), std::memory_order_release);
        return true;
    }

    /** Priority of the best task; false when empty. */
    bool
    peekPriority(Priority &out) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (heap_.empty())
            return false;
        out = heap_.top().priority;
        return true;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return heap_.size();
    }

    /** Lock-free occupancy estimate (exact once writers quiesce). */
    size_t
    sizeApprox() const
    {
        return count_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

  private:
    mutable std::mutex mutex_;
    DAryHeap<Task, TaskOrder> heap_;
    /** |heap_|, published under the lock for the tryPop fast path. */
    std::atomic<size_t> count_{0};
};

} // namespace hdcps

#endif // HDCPS_PQ_LOCKED_PQ_H_
