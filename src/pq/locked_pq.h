/**
 * @file
 * Mutex-guarded concurrent priority queue.
 *
 * This is the per-core PQ of the RELD design: both local dequeues and
 * remote enqueues take the same lock, which is exactly the serialization
 * HD-CPS's receive queue removes (paper Section III-A). Kept
 * deliberately simple so the contrast with the decoupled design is the
 * scheduling policy, not queue micro-optimizations.
 */

#ifndef HDCPS_PQ_LOCKED_PQ_H_
#define HDCPS_PQ_LOCKED_PQ_H_

#include <mutex>

#include "cps/task.h"
#include "pq/dary_heap.h"

namespace hdcps {

/** Thread-safe min-priority queue of tasks. */
class LockedTaskPq
{
  public:
    void
    push(const Task &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        heap_.push(task);
    }

    /** Pop the highest-priority task; false when empty. */
    bool
    tryPop(Task &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (heap_.empty())
            return false;
        out = heap_.pop();
        return true;
    }

    /** Priority of the best task; false when empty. */
    bool
    peekPriority(Priority &out) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (heap_.empty())
            return false;
        out = heap_.top().priority;
        return true;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return heap_.size();
    }

    bool empty() const { return size() == 0; }

  private:
    mutable std::mutex mutex_;
    DAryHeap<Task, TaskOrder> heap_;
};

} // namespace hdcps

#endif // HDCPS_PQ_LOCKED_PQ_H_
