#include "runtime/executor.h"

#include <atomic>
#include <thread>

#include "support/compiler.h"
#include "support/logging.h"
#include "support/timer.h"

namespace hdcps {

namespace {

/** Shared state visible to all workers of one run. */
struct RunState
{
    Scheduler *sched = nullptr;
    const ProcessFn *process = nullptr;
    RunOptions options;
    std::atomic<int64_t> pending{0};
    DriftTracker drift;
    DriftSeries series; ///< touched by worker 0 only

    explicit RunState(unsigned numThreads) : drift(numThreads) {}
};

void
workerLoop(RunState &state, unsigned tid, Breakdown &breakdown)
{
    Scheduler &sched = *state.sched;
    const ProcessFn &process = *state.process;
    const bool timed = state.options.recordBreakdown;
    MetricsRegistry *metrics = state.options.metrics;
    std::vector<Task> children;
    children.reserve(64);
    unsigned idleSpins = 0;
    uint64_t popsSinceSample = 0;

    while (true) {
        uint64_t t0 = timed ? nowNs() : 0;
        Task task;
        bool got = sched.tryPop(tid, task);
        uint64_t t1 = timed ? nowNs() : 0;

        if (!got) {
            if (timed)
                breakdown[Component::Comm] += t1 - t0;
            if (state.pending.load(std::memory_order_acquire) == 0) {
                if (metrics) {
                    // Per-worker totals land once, at loop exit — the
                    // hot path itself stays metrics-free.
                    metrics->add(tid, WorkerCounter::TasksProcessed,
                                 breakdown.tasksProcessed);
                    metrics->add(tid, WorkerCounter::EmptyTasks,
                                 breakdown.emptyTasks);
                }
                return;
            }
            // Backoff: brief spin, then yield so oversubscribed hosts
            // (threads > cores) still make progress.
            if (++idleSpins > 32) {
                std::this_thread::yield();
                idleSpins = 0;
            }
            continue;
        }
        idleSpins = 0;

        children.clear();
        process(tid, task, children);
        uint64_t t2 = timed ? nowNs() : 0;

        if (!children.empty()) {
            // Children enter the in-flight count *before* they become
            // poppable, so the count can never transiently hit zero
            // while work exists.
            state.pending.fetch_add(
                static_cast<int64_t>(children.size()),
                std::memory_order_acq_rel);
            sched.pushBatch(tid, children.data(), children.size());
        }
        state.pending.fetch_sub(1, std::memory_order_acq_rel);
        uint64_t t3 = timed ? nowNs() : 0;

        if (timed) {
            breakdown[Component::Dequeue] += t1 - t0;
            breakdown[Component::Compute] += t2 - t1;
            breakdown[Component::Enqueue] += t3 - t2;
        }
        ++breakdown.tasksProcessed;
        if (children.empty())
            ++breakdown.emptyTasks;

        // Design-independent drift reporting (Eq. 1): publish every
        // pop, sample on worker 0's interval.
        state.drift.publish(tid, task.priority);
        if (++popsSinceSample >= state.options.driftSampleInterval) {
            popsSinceSample = 0;
            if (tid == 0) {
                double drift = state.drift.computeDrift();
                state.series.record(drift);
                if (metrics) {
                    metrics->recordGlobal(GlobalSeries::Drift, drift);
                    metrics->set(
                        0, WorkerGauge::PendingTasks,
                        static_cast<double>(state.pending.load(
                            std::memory_order_relaxed)));
                }
            }
            if (metrics && timed) {
                // Cumulative per-phase breakdown as a series: the
                // deltas between samples localize where time went
                // within the run, which the end-of-run totals cannot.
                metrics->record(
                    tid, WorkerSeries::EnqueueNs,
                    static_cast<double>(breakdown[Component::Enqueue]));
                metrics->record(
                    tid, WorkerSeries::DequeueNs,
                    static_cast<double>(breakdown[Component::Dequeue]));
                metrics->record(
                    tid, WorkerSeries::ComputeNs,
                    static_cast<double>(breakdown[Component::Compute]));
                metrics->record(
                    tid, WorkerSeries::CommNs,
                    static_cast<double>(breakdown[Component::Comm]));
            }
        }
    }
}

} // namespace

RunResult
run(Scheduler &sched, const std::vector<Task> &initial,
    const ProcessFn &process, const RunOptions &options)
{
    hdcps_check(options.numThreads >= 1, "need at least one thread");
    hdcps_check(options.numThreads == sched.numWorkers(),
                "thread count (%u) != scheduler workers (%u)",
                options.numThreads, sched.numWorkers());
    hdcps_check(options.driftSampleInterval >= 1,
                "drift sample interval must be >= 1");
    if (options.metrics) {
        hdcps_check(options.metrics->numWorkers() >= options.numThreads,
                    "metrics registry has %u workers, need %u",
                    options.metrics->numWorkers(), options.numThreads);
        sched.attachMetrics(options.metrics);
    }

    RunState state(options.numThreads);
    state.sched = &sched;
    state.process = &process;
    state.options = options;
    state.pending.store(static_cast<int64_t>(initial.size()),
                        std::memory_order_relaxed);

    // Seed tasks in 16-task chunks interleaved across workers before
    // any worker starts (single-threaded phase, so per-worker push is
    // safe): chunks keep the initial list's spatial locality, the
    // interleave spreads skewed regions.
    constexpr size_t seed_chunk = 16;
    for (size_t i = 0; i < initial.size(); ++i) {
        sched.push(static_cast<unsigned>((i / seed_chunk) %
                                         options.numThreads),
                   initial[i]);
    }

    RunResult result;
    result.perWorker.assign(options.numThreads, Breakdown{});

    uint64_t startNs = nowNs();
    if (options.numThreads == 1) {
        workerLoop(state, 0, result.perWorker[0]);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(options.numThreads);
        for (unsigned tid = 0; tid < options.numThreads; ++tid) {
            threads.emplace_back([&state, &result, tid] {
                workerLoop(state, tid, result.perWorker[tid]);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    result.wallNs = nowNs() - startNs;

    hdcps_check(state.pending.load() == 0,
                "pending count nonzero after termination");

    for (const Breakdown &b : result.perWorker)
        result.total += b;
    result.avgDrift = state.series.average();
    result.maxDrift = state.series.maxSample();
    result.driftSamples = state.series.samples();
    return result;
}

} // namespace hdcps
