#include "runtime/executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "runtime/worker_common.h"
#include "support/compiler.h"
#include "support/fault.h"
#include "support/logging.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace hdcps {

namespace {

/** Shared state visible to all workers of one run. The distributed
 *  termination counters and the failure latch are the shared
 *  runtime/worker_common.h machinery — the ExecutorService keeps the
 *  same two per *job*. */
struct RunState
{
    Scheduler *sched = nullptr;
    const ProcessFn *process = nullptr;
    RunOptions options;
    TerminationCounters term;
    DriftTracker drift;
    DriftSeries series; ///< touched by worker 0 only

    /** Failure latch: stop tells workers to drain out; the first
     *  error wins (see FailureLatch). */
    FailureLatch latch;

    /** Per-worker pop counters for the watchdog's progress check —
     *  padded so the unconditional relaxed increment never contends. */
    std::vector<Padded<std::atomic<uint64_t>>> pops;
    /** Monotonic ns of each worker's last successful pop (seeded with
     *  the run start), written only when the watchdog is armed — lets
     *  the stall diagnostic name *which* worker went quiet and for how
     *  long, not just who popped least overall. */
    std::vector<Padded<std::atomic<uint64_t>>> lastPopNs;
    uint64_t startNs = 0;

    explicit RunState(unsigned numThreads)
        : term(numThreads), drift(numThreads), pops(numThreads),
          lastPopNs(numThreads)
    {}
};

uint64_t
totalPops(const RunState &state)
{
    uint64_t total = 0;
    for (const auto &p : state.pops)
        total += p.value.load(std::memory_order_relaxed);
    return total;
}

/** Everything a human needs to debug a stalled run, as one string. */
std::string
stallDiagnostic(const RunState &state)
{
    std::ostringstream out;
    out << "watchdog: no task popped for " << state.options.watchdogMs
        << " ms with " << state.term.pendingApprox()
        << " tasks in flight; scheduler '" << state.sched->name()
        << "' reports ~" << state.sched->sizeApprox()
        << " buffered tasks (0 = unknown); pops per worker:";
    const uint64_t now = nowNs();
    for (size_t tid = 0; tid < state.pops.size(); ++tid) {
        uint64_t pops =
            state.pops[tid].value.load(std::memory_order_relaxed);
        uint64_t last =
            state.lastPopNs[tid].value.load(std::memory_order_relaxed);
        uint64_t ageMs = now > last ? (now - last) / 1000000 : 0;
        out << (tid == 0 ? " " : ", ") << "w" << tid << "=" << pops;
        if (pops == 0)
            out << " (no pops, " << ageMs << " ms since start)";
        else
            out << " (last pop " << ageMs << " ms ago)";
    }
    if (state.options.metrics) {
        out << "; counters:";
        MetricsSnapshot snap = state.options.metrics->snapshot();
        bool first = true;
        for (const auto &counter : snap.counters) {
            if (counter.total == 0)
                continue;
            out << (first ? " " : ", ") << counter.name << "="
                << counter.total;
            first = false;
        }
        if (first)
            out << " (all zero)";
    }
    return out.str();
}

/**
 * Monitor loop for the opt-in progress watchdog. Sleeps on `cv` in
 * window-sized slices; a window with pending work but an unchanged
 * global pop count is a stall, which fails the run. The cv (rather
 * than a plain sleep) lets run() retire the watchdog immediately once
 * the workers are done.
 */
void
watchdogLoop(RunState &state, std::mutex &mutex,
             std::condition_variable &cv, const bool &done)
{
    const auto window = std::chrono::milliseconds(state.options.watchdogMs);
    uint64_t lastPops = totalPops(state);
    std::unique_lock<std::mutex> lock(mutex);
    while (!done) {
        if (cv.wait_for(lock, window, [&done] { return done; }))
            return;
        if (state.latch.stopRequested())
            return;
        uint64_t pops = totalPops(state);
        bool stalled = pops == lastPops && state.term.pendingApprox() > 0;
        if (stalled) {
            state.latch.fail(stallDiagnostic(state));
            return;
        }
        lastPops = pops;
    }
}

void
workerLoop(RunState &state, unsigned tid, Breakdown &breakdown)
{
    Scheduler &sched = *state.sched;
    const ProcessFn &process = *state.process;
    const bool timed = state.options.recordBreakdown;
    MetricsRegistry *metrics = state.options.metrics;
    std::vector<Task> children;
    children.reserve(64);
    IdleBackoff backoff;
    uint64_t popsSinceSample = 0;

    while (true) {
        // Drain out as soon as any worker (or the watchdog) failed the
        // run — checked every iteration, so an idling worker reacts
        // within one backoff round rather than spinning until its own
        // pending==0 view changes.
        if (state.latch.stopRequested())
            break;

        // Straggler drill: with an injector installed, this worker may
        // cooperatively sleep here — the only blocking point in the
        // loop, placed before the pop so a paused worker looks exactly
        // like a descheduled one (stale heartbeat, stranded queues).
        stragglerPausePoint(tid);

        uint64_t t0 = timed ? nowNs() : 0;
        Task task;
        // Fault drill: the pop itself misfires. The task stays queued,
        // so the worker simply takes one idle round.
        bool got = !faultFires(faultsite::ExecPopFail) &&
                   sched.tryPop(tid, task);
        uint64_t t1 = timed ? nowNs() : 0;

        if (!got) {
            if (timed)
                breakdown[Component::Comm] += t1 - t0;
            if (state.term.quiescent())
                break;
            backoff.idle();
            continue;
        }
        backoff.reset();
        state.pops[tid].value.fetch_add(1, std::memory_order_relaxed);
        if (state.options.watchdogMs > 0) {
            state.lastPopNs[tid].value.store(timed ? t1 : nowNs(),
                                             std::memory_order_relaxed);
        }

        children.clear();
        try {
            // Fault drill: stand-in for a ProcessFn that throws.
            if (faultFires(faultsite::ExecProcessThrow)) {
                throw FaultInjectedError(
                    "injected ProcessFn failure (exec.process.throw)");
            }
            process(tid, task, children);
        } catch (const std::exception &e) {
            // The popped task dies here: no children were pushed (the
            // push happens below), so completing it with no creations
            // keeps the counters consistent for the drain.
            state.term.noteCompleted(tid);
            state.latch.fail("worker " + std::to_string(tid) +
                             ": ProcessFn threw: " + e.what());
            break;
        } catch (...) {
            state.term.noteCompleted(tid);
            state.latch.fail("worker " + std::to_string(tid) +
                             ": ProcessFn threw a non-std exception");
            break;
        }
        uint64_t t2 = timed ? nowNs() : 0;

        if (!children.empty()) {
            // Children enter the created count *before* they become
            // poppable, so the counters can never transiently read
            // quiescent while work exists. Own padded slot: no
            // contention no matter how many workers spawn at once.
            state.term.noteCreated(tid, children.size());
            sched.pushBatch(tid, children.data(), children.size());
        }
        state.term.noteCompleted(tid);
        uint64_t t3 = timed ? nowNs() : 0;

        if (timed) {
            breakdown[Component::Dequeue] += t1 - t0;
            breakdown[Component::Compute] += t2 - t1;
            breakdown[Component::Enqueue] += t3 - t2;
        }
        ++breakdown.tasksProcessed;
        if (children.empty())
            ++breakdown.emptyTasks;

        // Design-independent drift reporting (Eq. 1): publish every
        // pop, sample on worker 0's interval.
        state.drift.publish(tid, task.priority);
        if (++popsSinceSample >= state.options.driftSampleInterval) {
            popsSinceSample = 0;
            if (tid == 0) {
                double drift = state.drift.computeDrift();
                state.series.record(drift);
                if (metrics) {
                    metrics->recordGlobal(GlobalSeries::Drift, drift);
                    metrics->set(
                        0, WorkerGauge::PendingTasks,
                        static_cast<double>(state.term.pendingApprox()));
                }
            }
            if (metrics && timed) {
                // Cumulative per-phase breakdown as a series: the
                // deltas between samples localize where time went
                // within the run, which the end-of-run totals cannot.
                metrics->record(
                    tid, WorkerSeries::EnqueueNs,
                    static_cast<double>(breakdown[Component::Enqueue]));
                metrics->record(
                    tid, WorkerSeries::DequeueNs,
                    static_cast<double>(breakdown[Component::Dequeue]));
                metrics->record(
                    tid, WorkerSeries::ComputeNs,
                    static_cast<double>(breakdown[Component::Compute]));
                metrics->record(
                    tid, WorkerSeries::CommNs,
                    static_cast<double>(breakdown[Component::Comm]));
            }
        }
    }

    if (metrics) {
        // Per-worker totals land once, at loop exit — the hot path
        // itself stays metrics-free.
        metrics->add(tid, WorkerCounter::TasksProcessed,
                     breakdown.tasksProcessed);
        metrics->add(tid, WorkerCounter::EmptyTasks,
                     breakdown.emptyTasks);
    }
}

} // namespace

RunResult
run(Scheduler &sched, const std::vector<Task> &initial,
    const ProcessFn &process, const RunOptions &options)
{
    hdcps_check(options.numThreads >= 1, "need at least one thread");
    hdcps_check(options.numThreads == sched.numWorkers(),
                "thread count (%u) != scheduler workers (%u)",
                options.numThreads, sched.numWorkers());
    hdcps_check(options.driftSampleInterval >= 1,
                "drift sample interval must be >= 1");
    if (options.metrics) {
        hdcps_check(options.metrics->numWorkers() >= options.numThreads,
                    "metrics registry has %u workers, need %u",
                    options.metrics->numWorkers(), options.numThreads);
        sched.attachMetrics(options.metrics);
    }
    // Unconditional: RunOptions is authoritative, so a scheduler reused
    // across runs cannot carry a stale window into a run that wants the
    // default (off).
    sched.setReclaimAfterMs(options.reclaimAfterMs);

    RunState state(options.numThreads);
    state.sched = &sched;
    state.process = &process;
    state.options = options;
    // Seeds count as created by worker 0 (single-threaded phase; the
    // thread spawns below publish the stores to every worker).
    state.term.seedCreated(0, initial.size());
    state.startNs = nowNs();
    for (auto &slot : state.lastPopNs)
        slot.value.store(state.startNs, std::memory_order_relaxed);

    // Seed tasks in 16-task chunks interleaved across workers before
    // any worker starts (single-threaded phase, so per-worker push is
    // safe): chunks keep the initial list's spatial locality, the
    // interleave spreads skewed regions.
    constexpr size_t seed_chunk = 16;
    for (size_t i = 0; i < initial.size(); ++i) {
        sched.push(static_cast<unsigned>((i / seed_chunk) %
                                         options.numThreads),
                   initial[i]);
    }

    RunResult result;
    result.perWorker.assign(options.numThreads, Breakdown{});

    // The watchdog rides alongside the workers; `done` + cv retire it
    // the moment they all exit, failed run or not.
    std::mutex watchdogMutex;
    std::condition_variable watchdogCv;
    bool watchdogDone = false;
    std::thread watchdog;
    if (options.watchdogMs > 0) {
        watchdog = std::thread([&] {
            watchdogLoop(state, watchdogMutex, watchdogCv, watchdogDone);
        });
    }

    uint64_t startNs = nowNs();
    if (options.numThreads == 1) {
        workerLoop(state, 0, result.perWorker[0]);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(options.numThreads);
        for (unsigned tid = 0; tid < options.numThreads; ++tid) {
            threads.emplace_back([&state, &result, tid] {
                // Lifecycle hook from the worker's own thread before
                // its first pop (topology-aware designs pin here). The
                // single-threaded path above skips it on purpose: that
                // runs on the caller's thread, which must not end up
                // permanently pinned.
                state.sched->onWorkerStart(tid);
                workerLoop(state, tid, result.perWorker[tid]);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    result.wallNs = nowNs() - startNs;

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMutex);
            watchdogDone = true;
        }
        watchdogCv.notify_all();
        watchdog.join();
    }

    result.failed = state.latch.failed();
    if (result.failed) {
        result.error = state.latch.error();
    } else {
        hdcps_check(state.term.pendingApprox() == 0,
                    "pending count nonzero after termination");
    }

    for (const Breakdown &b : result.perWorker)
        result.total += b;
    result.avgDrift = state.series.average();
    result.maxDrift = state.series.maxSample();
    result.driftSamples = state.series.samples();
    return result;
}

} // namespace hdcps
