/**
 * @file
 * The threaded execution engine: drives any Scheduler with any
 * task-processing function on real host threads.
 *
 * Responsibilities:
 *  - spawn workers and run the pop/process/push loop;
 *  - distributed termination detection: each worker counts tasks it
 *    created and tasks it completed in its own cache-line-padded
 *    counters (a task counts as created before it is poppable and as
 *    completed only after its children were pushed), and an idle
 *    worker declares the run done when a completed-first scan of all
 *    counters balances twice in a row — no global in-flight counter on
 *    the per-task hot path (see quiescentOnce in executor.cc for the
 *    soundness argument, DESIGN.md §11 for the full write-up);
 *  - per-worker completion-time breakdown (enqueue/dequeue/compute/
 *    comm, Section IV-C of the paper);
 *  - design-independent priority-drift reporting (Eq. 1), sampled by
 *    worker 0 every driftSampleInterval of its own pops. This is the
 *    metric Figure 3/5 plot for *every* CPS design, separate from the
 *    HD-CPS-internal tracker that feeds the TDF heuristic;
 *  - graceful failure: a ProcessFn that throws fails the run instead of
 *    terminating the process — the first error is latched into the
 *    RunResult, every worker drains out via a stop flag, and all
 *    threads are joined before run() returns;
 *  - an opt-in progress watchdog (RunOptions::watchdogMs) that fails a
 *    run stuck with in-flight tasks but no pops, attaching a
 *    diagnostic dump (per-worker pop counts *and* last-pop ages)
 *    instead of hanging forever;
 *  - straggler hooks: each worker passes a cooperative pause point
 *    (support/straggler.h) every loop iteration so tests can stall
 *    chosen workers deterministically, and RunOptions::reclaimAfterMs
 *    arms scheduler-side reclamation of a stalled worker's queues.
 */

#ifndef HDCPS_RUNTIME_EXECUTOR_H_
#define HDCPS_RUNTIME_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "core/drift.h"
#include "cps/scheduler.h"
#include "obs/metrics.h"
#include "stats/breakdown.h"

namespace hdcps {

/**
 * Task-processing callback: consume `task`, append created children to
 * `children` (pre-cleared). Must be thread-safe across distinct calls.
 */
using ProcessFn =
    std::function<void(unsigned tid, const Task &task,
                       std::vector<Task> &children)>;

/** Executor tunables. */
struct RunOptions
{
    unsigned numThreads = 1;
    unsigned driftSampleInterval = 2000; ///< pops between Eq.1 samples
    bool recordBreakdown = true;         ///< per-op timing on/off
    /**
     * Progress watchdog window in milliseconds; 0 disables it. When
     * enabled, a monitor thread checks every window: if tasks are still
     * in flight but no worker popped anything for a full window, the
     * run is failed with a diagnostic dump (per-worker pop counts,
     * scheduler occupancy, metrics totals) instead of hanging.
     */
    uint64_t watchdogMs = 0;
    /**
     * Straggler-reclamation window in milliseconds; 0 disables it.
     * Forwarded to Scheduler::setReclaimAfterMs before workers start
     * (always — the RunOptions value is authoritative), so designs with
     * per-worker buffers let idle peers drain a worker whose heartbeat
     * has been stale for longer than this window. Designs without such
     * buffers ignore the knob.
     */
    uint64_t reclaimAfterMs = 0;
    /**
     * Optional observability sink. When set, run() attaches it to the
     * scheduler and records time series on the drift sampling cadence:
     * the Eq. 1 drift signal (worker 0), each worker's cumulative
     * per-phase breakdown, and the in-flight task gauge. The registry
     * must have at least numThreads workers and outlive run().
     */
    MetricsRegistry *metrics = nullptr;
};

/** Everything a figure harness needs from one execution. */
struct RunResult
{
    Breakdown total;                   ///< merged over all workers
    std::vector<Breakdown> perWorker;
    uint64_t wallNs = 0;               ///< completion time
    double avgDrift = 0.0;             ///< mean of Eq. 1 samples
    double maxDrift = 0.0;
    uint64_t driftSamples = 0;
    /**
     * Failure latch. When a ProcessFn throws or the watchdog detects a
     * stall, the run drains out early: failed flips true, error holds
     * the *first* failure's message, and the remaining counters reflect
     * only the work done before the stop. On a failed run tasks may be
     * left unprocessed — callers must not trust partial results.
     */
    bool failed = false;
    std::string error;

    bool ok() const { return !failed; }
};

/**
 * Run `process` over `initial` and everything it spawns, scheduling
 * through `sched`. Blocks until all tasks are done and workers joined.
 * Never terminates the process on a ProcessFn exception — inspect
 * RunResult::ok() / error instead.
 */
RunResult run(Scheduler &sched, const std::vector<Task> &initial,
              const ProcessFn &process, const RunOptions &options);

} // namespace hdcps

#endif // HDCPS_RUNTIME_EXECUTOR_H_
