#include "runtime/executor_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/fault.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace hdcps {

namespace detail {

/**
 * Everything the service tracks for one job. Shared between the
 * service (jobs table, admission queue) and the caller's JobHandle;
 * the record outlives the service entry so handles stay valid after
 * the job finishes.
 */
struct JobRecord
{
    JobRecord(unsigned numSlots, ExecutorService *owner)
        : term(numSlots), svc(owner)
    {}

    JobId id = 0;
    std::string name;
    ProcessFn process;
    RetryPolicy retry;
    Priority priority = 0;
    uint64_t submitNs = 0;
    uint64_t deadlineNs = 0; ///< absolute; 0 = no deadline
    std::vector<Task> initial;

    std::atomic<JobState> state{JobState::Queued};
    /**
     * Pending terminal verdict for failure paths. Completed doubles
     * as the "no failure claimed" sentinel; the first terminateJob
     * CAS wins and its Failed/Cancelled value is what the finishing
     * worker publishes. Stored before the latch raises stop, so any
     * worker that observes stopRequested also observes the verdict
     * (release/acquire through the stop flag).
     */
    std::atomic<JobState> verdict{JobState::Completed};

    /** Per-job conservation ledger + quiescence scan — the executor's
     *  run-level termination counters, one instance per tenant. */
    TerminationCounters term;
    /** Per-job drain latch: stopRequested() is the worker-visible
     *  "discard this job's tasks" signal. */
    FailureLatch latch;

    std::atomic<double> latencyMs{0.0};
    std::mutex waitMutex;
    std::condition_variable waitCv;

    /**
     * Poison-task quarantine. A task the svc.task.poison drill marks
     * (keyed by node+data, attempt-independent) fails on *every*
     * attempt; once retries are exhausted the final incarnation lands
     * in deadLetters instead of being re-queued forever. poisonGate is
     * the hot-path skip: the per-task check costs one relaxed load
     * until the first poisoning (release store pairs with the acquire
     * load so a retry incarnation popped elsewhere sees its key).
     */
    std::atomic<uint32_t> poisonGate{0};
    mutable std::mutex poisonMutex;
    std::vector<uint64_t> poisonKeys;
    std::vector<Task> deadLetters;
    std::atomic<uint64_t> poisoned{0};

    static uint64_t
    poisonKey(const Task &t)
    {
        return (uint64_t(t.node) << 32) | t.data;
    }

    void
    markPoisoned(const Task &t)
    {
        std::lock_guard<std::mutex> lock(poisonMutex);
        uint64_t key = poisonKey(t);
        for (uint64_t k : poisonKeys) {
            if (k == key)
                return;
        }
        poisonKeys.push_back(key);
        poisonGate.store(uint32_t(poisonKeys.size()),
                         std::memory_order_release);
    }

    bool
    isPoisoned(const Task &t) const
    {
        if (poisonGate.load(std::memory_order_acquire) == 0)
            return false;
        std::lock_guard<std::mutex> lock(poisonMutex);
        uint64_t key = poisonKey(t);
        for (uint64_t k : poisonKeys) {
            if (k == key)
                return true;
        }
        return false;
    }

    ExecutorService *svc; ///< valid until the job is terminal
};

} // namespace detail

using detail::JobRecord;

const char *
jobStateName(JobState s)
{
    static const char *const names[] = {
        "queued",    "running",   "draining", "completed",
        "failed",    "cancelled", "rejected",
    };
    return names[unsigned(s)];
}

// --- JobHandle ---------------------------------------------------------

JobId
JobHandle::id() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->id;
}

const std::string &
JobHandle::name() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->name;
}

JobState
JobHandle::state() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->state.load(std::memory_order_acquire);
}

std::string
JobHandle::error() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobState s = record_->state.load(std::memory_order_acquire);
    if (s != JobState::Failed && s != JobState::Cancelled &&
        s != JobState::Rejected)
        return std::string();
    return record_->latch.failed() ? record_->latch.error()
                                   : std::string();
}

bool
JobHandle::cancel()
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    if (jobStateTerminal(record_->state.load(std::memory_order_acquire)))
        return false;
    // Non-terminal implies the service is still alive (shutdown only
    // returns once every admitted job is terminal), so svc is valid.
    return record_->svc->terminateJob(record_, JobState::Cancelled,
                                      "job '" + record_->name +
                                          "' cancelled",
                                      /*widenCancelRace=*/true);
}

JobState
JobHandle::wait()
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobRecord &r = *record_;
    std::unique_lock<std::mutex> lock(r.waitMutex);
    r.waitCv.wait(lock, [&r] {
        return jobStateTerminal(r.state.load(std::memory_order_acquire));
    });
    return r.state.load(std::memory_order_acquire);
}

bool
JobHandle::waitFor(uint64_t ms, JobState *out)
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobRecord &r = *record_;
    std::unique_lock<std::mutex> lock(r.waitMutex);
    bool done = r.waitCv.wait_for(
        lock, std::chrono::milliseconds(ms), [&r] {
            return jobStateTerminal(
                r.state.load(std::memory_order_acquire));
        });
    if (done && out)
        *out = r.state.load(std::memory_order_acquire);
    return done;
}

double
JobHandle::latencyMs() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->latencyMs.load(std::memory_order_acquire);
}

uint64_t
JobHandle::tasksCompleted() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->term.completedTotal();
}

uint64_t
JobHandle::poisonedTasks() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->poisoned.load(std::memory_order_acquire);
}

std::vector<Task>
JobHandle::deadLetters() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    std::lock_guard<std::mutex> lock(record_->poisonMutex);
    return record_->deadLetters;
}

// --- ExecutorService ---------------------------------------------------

ExecutorService::ExecutorService(Scheduler &sched,
                                 const ServiceOptions &options)
    : sched_(sched), options_(options)
{
    hdcps_check(options.numThreads >= 1, "need at least one thread");
    hdcps_check(options.numThreads == sched.numWorkers(),
                "thread count (%u) != scheduler workers (%u)",
                options.numThreads, sched.numWorkers());
    hdcps_check(options.admissionCapacity >= 1,
                "admission capacity must be >= 1");
    if (options.metrics) {
        hdcps_check(options.metrics->numWorkers() >= options.numThreads,
                    "metrics registry has %u workers, need %u",
                    options.metrics->numWorkers(), options.numThreads);
        sched.attachMetrics(options.metrics);
    }
    sched.setReclaimAfterMs(options.reclaimAfterMs);

    if (options_.supervisor.enabled) {
        supervisor_ = std::make_unique<WorkerSupervisor>(
            options_.numThreads, options_.supervisor);
        // Arm every slot's heartbeat before the threads exist so a
        // slow spawn can't read as a wedge.
        uint64_t now = nowNs();
        for (unsigned tid = 0; tid < options_.numThreads; ++tid)
            supervisor_->beat(tid, now);
    }

    workers_.reserve(options.numThreads);
    for (unsigned tid = 0; tid < options.numThreads; ++tid)
        workers_.emplace_back([this, tid] { workerEntry(tid); });
    deadlineMonitor_ = std::thread([this] { deadlineLoop(); });
    if (supervisor_)
        supervisorThread_ = std::thread([this] { supervisorLoop(); });
}

ExecutorService::~ExecutorService()
{
    shutdown();
}

JobHandle
ExecutorService::submit(JobSpec spec)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    auto record = std::make_shared<JobRecord>(options_.numThreads, this);
    record->id = nextJobId_.fetch_add(1, std::memory_order_relaxed);
    record->name = spec.name.empty()
                       ? "job-" + std::to_string(record->id)
                       : std::move(spec.name);
    record->process = std::move(spec.process);
    record->retry = spec.retry;
    record->priority = spec.priority;
    record->submitNs = nowNs();
    if (spec.deadlineMs > 0)
        record->deadlineNs =
            record->submitNs + spec.deadlineMs * 1000000ull;
    record->initial = std::move(spec.initial);
    for (Task &t : record->initial) {
        t.job = record->id;
        t.attempt = 0;
    }

    auto reject = [&](const std::string &why) {
        record->latch.fail(why);
        {
            std::lock_guard<std::mutex> lock(record->waitMutex);
            record->state.store(JobState::Rejected,
                                std::memory_order_release);
        }
        record->waitCv.notify_all();
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return JobHandle(record);
    };

    if (!record->process) {
        return reject("job '" + record->name +
                      "' rejected: no ProcessFn");
    }
    if (record->retry.maxAttempts < 1) {
        return reject("job '" + record->name +
                      "' rejected: maxAttempts must be >= 1");
    }

    // The job must be findable by id before any of its tasks can be
    // popped, and tasks become poppable the moment an adopter seeds
    // them — so the table insert happens before the admission insert.
    {
        std::unique_lock<std::shared_mutex> lock(jobsMutex_);
        jobs_.emplace(record->id, record);
    }

    bool admittedNow = false;
    {
        std::unique_lock<std::mutex> lock(admitMutex_);
        bool full =
            admitQueue_.size() >= options_.admissionCapacity;
        // Fault drill: admission pretends the queue is full. Forces
        // the rejection path even for blocking submitters (blocking on
        // a fictitious full queue would hang forever).
        bool forcedFull = faultFires(faultsite::SvcAdmitFull);
        if ((full && !options_.blockWhenFull) || forcedFull) {
            // fallthrough to reject below, outside the lock
        } else {
            if (full) {
                admitSpace_.wait(lock, [this] {
                    return shutdown_.load(std::memory_order_acquire) ||
                           escalated_.load(std::memory_order_acquire) ||
                           admitQueue_.size() <
                               options_.admissionCapacity;
                });
            }
            if (!shutdown_.load(std::memory_order_acquire) &&
                !escalated_.load(std::memory_order_acquire)) {
                admitQueue_.emplace(
                    std::make_pair(record->priority, record->id),
                    record);
                admittedNow = true;
            }
        }
    }

    if (!admittedNow) {
        {
            std::unique_lock<std::shared_mutex> lock(jobsMutex_);
            jobs_.erase(record->id);
        }
        std::string why;
        if (escalated_.load(std::memory_order_acquire)) {
            why = "job '" + record->name +
                  "' rejected: service escalated (worker restart "
                  "budget exhausted)";
        } else if (shutdown_.load(std::memory_order_acquire)) {
            why = "job '" + record->name +
                  "' rejected: service shutting down";
        } else {
            why = "job '" + record->name +
                  "' rejected: admission queue full (capacity " +
                  std::to_string(options_.admissionCapacity) + ")";
        }
        return reject(why);
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    activeJobs_.fetch_add(1, std::memory_order_acq_rel);
    work_.notify_one();
    return JobHandle(record);
}

bool
ExecutorService::adoptOne(unsigned tid)
{
    RecordPtr record;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        if (admitQueue_.empty())
            return false;
        auto it = admitQueue_.begin();
        record = it->second;
        admitQueue_.erase(it);
    }
    admitSpace_.notify_one(); // freed one admission slot

    // Only the adopter transitions a popped record out of Queued:
    // cancel and deadline expiry finish a queued job only after
    // erasing it from the queue themselves (under admitMutex_), so a
    // record we popped is still ours.
    JobState expected = JobState::Queued;
    bool owned = record->state.compare_exchange_strong(
        expected, JobState::Running, std::memory_order_acq_rel);
    hdcps_check(owned, "adopted job %u not in Queued state",
                record->id);

    // Seed under this worker's own tid (the only one this thread may
    // push on). Chunked so bag-based designs see child-batch-sized
    // pushBatch calls rather than one giant bag.
    std::vector<Task> seeds = std::move(record->initial);
    record->initial.clear();
    if (!seeds.empty()) {
        record->term.noteCreated(tid, seeds.size());
        constexpr size_t chunk = 256;
        for (size_t i = 0; i < seeds.size(); i += chunk) {
            size_t n = std::min(chunk, seeds.size() - i);
            sched_.pushBatch(tid, seeds.data() + i, n);
        }
    }
    // A job admitted with zero seed tasks is already quiescent.
    maybeFinishJob(record);
    return true;
}

uint64_t
ExecutorService::retryBackoffUs(const Record &record,
                                const Task &task) const
{
    const RetryPolicy &retry = record.retry;
    if (retry.backoffBaseUs == 0)
        return 0;
    // Exponential in the attempt that just failed, capped, plus
    // deterministic seeded jitter (up to +50%) so co-failing tasks
    // don't retry in lockstep.
    unsigned shift = std::min(task.attempt, 32u);
    uint64_t base = retry.backoffBaseUs << shift;
    base = std::min(base, retry.backoffMaxUs);
    uint64_t jitter =
        mix64(options_.seed ^ (uint64_t(record.id) << 32) ^
              (uint64_t(task.node) << 8) ^ task.attempt) %
        (base / 2 + 1);
    return std::min(base + jitter, retry.backoffMaxUs);
}

void
ExecutorService::handleTaskFailure(unsigned tid,
                                   const RecordPtr &record,
                                   const Task &task, const char *what)
{
    if (task.attempt + 1 < record->retry.maxAttempts) {
        // Transient: back off, then re-push the next incarnation. The
        // bumped attempt makes it a fresh conservation-ledger key —
        // the failed incarnation completes, the retry is created, so
        // per-job accounting stays exact with no shared retry table.
        uint64_t us = retryBackoffUs(*record, task);
        if (us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(us));
        Task again = task;
        ++again.attempt;
        record->term.noteCreated(tid);
        sched_.push(tid, again);
        record->term.noteCompleted(tid);
        taskRetries_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::TaskRetries);
        // No finish attempt: the retried incarnation is outstanding,
        // so the job cannot be quiescent.
        return;
    }
    if (record->retry.deadLetterOnExhaustion) {
        // Poison quarantine: the task burned every attempt, but the
        // job's policy says divert it, not fail the tenant. The final
        // incarnation lands in the dead-letter queue and is counted
        // completed — the conservation ledger balances (the pop was
        // already recorded) and the job can still reach Completed.
        {
            std::lock_guard<std::mutex> lock(record->poisonMutex);
            record->deadLetters.push_back(task);
        }
        record->poisoned.fetch_add(1, std::memory_order_release);
        poisonedTasks_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::PoisonedTasks);
        record->term.noteCompleted(tid);
        maybeFinishJob(record);
        return;
    }
    record->term.noteCompleted(tid);
    std::ostringstream msg;
    msg << "job '" << record->name << "': task (node " << task.node
        << ", prio " << task.priority << ") failed after "
        << (task.attempt + 1) << " attempt(s): " << what;
    terminateJob(record, JobState::Failed, msg.str(),
                 /*widenCancelRace=*/false);
    maybeFinishJob(record);
}

void
ExecutorService::processTask(unsigned tid, const RecordPtr &record,
                             const Task &task,
                             std::vector<Task> &children)
{
    if (record->latch.stopRequested()) {
        // Draining: the job already failed / was cancelled / expired.
        // Discard the task but keep the ledger exact — the job's
        // outstanding count still reaches zero, which is what the
        // per-job conservation check (VerifyingScheduler ::
        // checkJobDrained) asserts.
        tasksDrained_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::DrainedTasks);
        record->term.noteCompleted(tid);
        maybeFinishJob(record);
        return;
    }

    children.clear();
    try {
        // Fault drill: service task processing throws.
        if (faultFires(faultsite::SvcJobFail)) {
            throw FaultInjectedError(
                "injected service task failure (svc.job.fail)");
        }
        // Poison drill: mark this task so *every* attempt fails. Only
        // first incarnations consult the drill (attempt == 0 before
        // faultFires), so the invocation index — and with it the set
        // of poisoned tasks under a fixed seed — is independent of
        // retry interleaving.
        if (task.attempt == 0 &&
            faultFires(faultsite::SvcTaskPoison)) {
            record->markPoisoned(task);
        }
        if (record->isPoisoned(task)) {
            throw FaultInjectedError(
                "injected poison task (svc.task.poison)");
        }
        record->process(tid, task, children);
    } catch (const std::exception &e) {
        handleTaskFailure(tid, record, task, e.what());
        return;
    } catch (...) {
        handleTaskFailure(tid, record, task, "non-std exception");
        return;
    }

    for (Task &c : children) {
        c.job = record->id;
        c.attempt = 0;
    }
    if (!children.empty()) {
        // Created before poppable — same ordering the executor's
        // run-level counters rely on, now per job.
        record->term.noteCreated(tid, children.size());
        sched_.pushBatch(tid, children.data(), children.size());
    }
    record->term.noteCompleted(tid);
    if (options_.metrics)
        options_.metrics->add(tid, WorkerCounter::TasksProcessed);
    maybeFinishJob(record);
}

void
ExecutorService::workerEntry(unsigned tid)
{
    // Every thread that enters the slot — the pool's original worker
    // and each healed replacement — announces itself to the scheduler
    // first, so topology-aware designs pin it to the slot's node before
    // its first pop.
    sched_.onWorkerStart(tid);
    const uint64_t epoch = supervisor_ ? supervisor_->epochOf(tid) : 0;
    bool crashed = false;
    try {
        workerLoop(tid, epoch);
    } catch (...) {
        // Anything escaping the worker loop — the crash drill or a
        // genuine bug — is a worker death, not process death: latch it
        // so the supervisor heals the slot instead of the pool
        // silently shrinking.
        crashed = true;
    }
    if (supervisor_)
        supervisor_->noteExit(tid, crashed);
}

void
ExecutorService::workerLoop(unsigned tid, uint64_t epoch)
{
    std::vector<Task> children;
    children.reserve(64);
    IdleBackoff backoff;

    while (true) {
        if (supervisor_) {
            supervisor_->beat(tid, nowNs());
            // Superseded: the supervisor declared this incarnation
            // wedged and bumped the slot epoch. Exit cooperatively —
            // holding no task, loop-top — so the replacement can take
            // over; the supervisor reclaims anything this thread
            // pushed since the reclamation pass.
            if (supervisor_->superseded(tid, epoch))
                return;
            // Crash drill: die as if a bug killed this worker. The
            // throw escapes to workerEntry, which latches the exit.
            if (faultFires(faultsite::SvcWorkerDie)) {
                throw FaultInjectedError(
                    "injected worker death (svc.worker.die)");
            }
            // Wedge drill: stall here, heartbeat stale, holding no
            // task — the supervisor walks Suspect -> Wedged and
            // supersedes us, caught by the re-check below. A
            // Delay-armed site chooses its own stall; other modes
            // (once/nth/prob) stall 3x the wedged threshold so the
            // detection provably trips.
            if (faultFires(faultsite::SvcWorkerWedge)) {
                uint64_t ns = faultAmount(faultsite::SvcWorkerWedge);
                if (ns == 0) {
                    ns = options_.supervisor.wedgedAfterMs * 3 *
                         1000000ull;
                }
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(ns));
            }
            if (supervisor_->superseded(tid, epoch))
                return;
        }

        // Straggler drill: same cooperative pause point as the
        // one-shot executor, so soak/chaos scenarios translate.
        stragglerPausePoint(tid);

        bool adopted = adoptOne(tid);

        Task task;
        // Fault drill: spurious pop failure; the task stays queued.
        bool got = !faultFires(faultsite::ExecPopFail) &&
                   sched_.tryPop(tid, task);
        if (!got) {
            if (adopted)
                continue;
            if (shutdown_.load(std::memory_order_acquire) &&
                activeJobs_.load(std::memory_order_acquire) == 0)
                break;
            if (backoff.idle() &&
                activeJobs_.load(std::memory_order_acquire) == 0) {
                // Truly idle service: no admitted jobs at all, so no
                // tasks can appear except through submit (which
                // notifies). Sleep briefly instead of spinning.
                std::unique_lock<std::mutex> lock(admitMutex_);
                if (admitQueue_.empty() &&
                    !shutdown_.load(std::memory_order_acquire)) {
                    work_.wait_for(lock,
                                   std::chrono::milliseconds(1));
                }
            }
            continue;
        }
        backoff.reset();

        RecordPtr record;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            auto it = jobs_.find(task.job);
            if (it != jobs_.end())
                record = it->second;
        }
        // A popped task's job must be live: records are erased only
        // once quiescent, and a task in the scheduler is
        // created-but-not-completed by definition.
        hdcps_check(record != nullptr,
                    "popped task for unknown job %u", task.job);
        processTask(tid, record, task, children);
    }
}

bool
ExecutorService::terminateJob(const RecordPtr &record, JobState verdict,
                              const std::string &message,
                              bool widenCancelRace)
{
    // First verdict wins: the CAS claims the terminal state the
    // finishing worker will publish. Losers only reinforce the stop.
    JobState sentinel = JobState::Completed;
    if (!record->verdict.compare_exchange_strong(
            sentinel, verdict, std::memory_order_acq_rel)) {
        record->latch.requestStop();
        return false;
    }

    // Fault drill: widen the window between claiming the verdict and
    // publishing the drain — the job may complete normally meanwhile,
    // which is exactly the cancel/complete race under test.
    if (widenCancelRace)
        faultSleep(faultsite::SvcCancelRace);

    // Publish: latches the error and raises stop (release), making
    // the verdict visible to any worker that observes the stop.
    record->latch.fail(message);

    // A still-queued job has no tasks to drain: finish it in place.
    // The queue erase and the adopter's pop are both under
    // admitMutex_, so exactly one side wins.
    bool wasQueued = false;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        wasQueued =
            admitQueue_.erase({record->priority, record->id}) > 0;
    }
    if (wasQueued) {
        admitSpace_.notify_one();
        {
            std::lock_guard<std::mutex> lock(record->waitMutex);
            record->state.store(verdict, std::memory_order_release);
        }
        finishRecord(*record, verdict);
        return true;
    }

    // Running (or mid-adoption): flip the observable state; workers
    // drain via the latch regardless, and the last completion
    // publishes the verdict. The CAS may lose to a concurrent
    // completion — that is the documented race, completion wins.
    JobState running = JobState::Running;
    record->state.compare_exchange_strong(running, JobState::Draining,
                                          std::memory_order_acq_rel);
    return true;
}

void
ExecutorService::maybeFinishJob(const RecordPtr &record)
{
    // Per-job quiescence: same completed-first two-pass scan the
    // executor uses for run-level termination (worker_common.h), over
    // this job's ledger only. Cost is 2 * numThreads cache-line loads
    // per completion — acceptable for a robustness-first service.
    if (!record->term.quiescent())
        return;
    JobState expected = record->state.load(std::memory_order_acquire);
    while (!jobStateTerminal(expected)) {
        JobState terminal =
            record->latch.stopRequested()
                ? record->verdict.load(std::memory_order_acquire)
                : JobState::Completed;
        bool won;
        {
            // State flips to terminal under waitMutex so wait()'s
            // predicate check can't miss the wakeup.
            std::lock_guard<std::mutex> lock(record->waitMutex);
            won = record->state.compare_exchange_strong(
                expected, terminal, std::memory_order_acq_rel);
        }
        if (won) {
            finishRecord(*record, terminal);
            return;
        }
        // `expected` was refreshed by the failed CAS (e.g. a
        // concurrent Running -> Draining flip); re-evaluate.
    }
}

void
ExecutorService::finishRecord(Record &record, JobState terminal)
{
    // Exactly-once per admitted job: callers reach here only after
    // winning the terminal-state transition.
    double ms =
        static_cast<double>(nowNs() - record.submitNs) / 1e6;
    record.latencyMs.store(ms, std::memory_order_release);

    {
        std::unique_lock<std::shared_mutex> lock(jobsMutex_);
        jobs_.erase(record.id);
    }

    switch (terminal) {
      case JobState::Completed:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::Failed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::Cancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        hdcps_check(false, "finishRecord with non-terminal state %u",
                    unsigned(terminal));
    }

    {
        std::lock_guard<std::mutex> lock(latencyMutex_);
        latenciesMs_.push_back(ms);
        // latencyMutex_ serializes writers, satisfying the global
        // series single-writer contract.
        if (options_.metrics) {
            options_.metrics->recordGlobal(GlobalSeries::JobLatencyMs,
                                           ms);
        }
    }

    activeJobs_.fetch_sub(1, std::memory_order_acq_rel);
    record.waitCv.notify_all();
    work_.notify_all(); // shutdown exit condition may hold now
    deadlineCv_.notify_all();
}

void
ExecutorService::deadlineLoop()
{
    std::vector<RecordPtr> expired;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(deadlineMutex_);
            deadlineCv_.wait_for(
                lock, std::chrono::milliseconds(1), [this] {
                    return shutdown_.load(std::memory_order_acquire) &&
                           activeJobs_.load(
                               std::memory_order_acquire) == 0;
                });
        }
        if (shutdown_.load(std::memory_order_acquire) &&
            activeJobs_.load(std::memory_order_acquire) == 0)
            return;

        expired.clear();
        uint64_t now = nowNs();
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            for (const auto &[id, record] : jobs_) {
                if (record->deadlineNs != 0 &&
                    now > record->deadlineNs &&
                    !jobStateTerminal(record->state.load(
                        std::memory_order_acquire)) &&
                    !record->latch.stopRequested()) {
                    expired.push_back(record);
                }
            }
        }
        for (const RecordPtr &record : expired) {
            uint64_t budget =
                (record->deadlineNs - record->submitNs) / 1000000;
            std::ostringstream msg;
            msg << "job '" << record->name << "': deadline of "
                << budget << " ms exceeded";
            if (terminateJob(record, JobState::Failed, msg.str(),
                             /*widenCancelRace=*/false)) {
                deadlineExpired_.fetch_add(1,
                                           std::memory_order_relaxed);
            }
        }
    }
}

void
ExecutorService::supervisorLoop()
{
    const auto interval = std::chrono::milliseconds(
        std::max<uint64_t>(options_.supervisor.probeIntervalMs, 1));
    while (true) {
        {
            std::unique_lock<std::mutex> lock(supervisorMutex_);
            supervisorCv_.wait_for(lock, interval, [this] {
                return shutdown_.load(std::memory_order_acquire) &&
                       activeJobs_.load(std::memory_order_acquire) ==
                           0;
            });
        }
        // Supervise *through* the shutdown drain — a worker that dies
        // mid-drain still needs healing or its jobs never quiesce —
        // and exit only once every admitted job is terminal.
        if (shutdown_.load(std::memory_order_acquire) &&
            activeJobs_.load(std::memory_order_acquire) == 0)
            return;
        for (unsigned tid = 0; tid < options_.numThreads; ++tid) {
            switch (supervisor_->poll(tid, nowNs())) {
              case WorkerSupervisor::Decision::Quarantine:
                quarantineAndReclaim(tid);
                break;
              case WorkerSupervisor::Decision::Restart:
                healWorker(tid);
                break;
              case WorkerSupervisor::Decision::Escalate:
                escalateService(tid);
                break;
              case WorkerSupervisor::Decision::None:
                break;
            }
        }
    }
}

size_t
ExecutorService::quarantineAndReclaim(unsigned tid)
{
    sched_.quarantine(tid);
    const unsigned peer = (tid + 1) % options_.numThreads;
    uint64_t t0 = nowNs();
    size_t moved = sched_.reclaimWorker(peer, tid);
    if (options_.metrics) {
        // Only the supervisor thread ever writes this global series,
        // so its single-writer busy cell never sees overlap.
        options_.metrics->recordGlobal(GlobalSeries::ReclaimLatencyMs,
                                       double(nowNs() - t0) / 1e6);
    }
    work_.notify_all(); // reclaimed tasks now sit with (idle?) peers
    return moved;
}

void
ExecutorService::healWorker(unsigned tid)
{
    // The dead incarnation latched its exit, so this join is prompt;
    // after it the slot has exactly zero driver threads.
    if (workers_[tid].joinable())
        workers_[tid].join();
    // Reclaim *after* the join: a superseded zombie may have pushed
    // tasks between the wedge-time reclamation and its exit, and a
    // crash-path death was never reclaimed at all. Both ways, nothing
    // strands in a slot nobody drives. (Quarantining twice is
    // harmless.)
    quarantineAndReclaim(tid);
    supervisor_->noteRestarted(tid, nowNs());
    if (options_.metrics) {
        // Post-join, pre-spawn: nothing else drives slot tid's metric
        // row, so these writes satisfy the single-writer check.
        options_.metrics->add(tid, WorkerCounter::WorkerRestarts);
        uint64_t flips = supervisor_->drainTransitions(tid);
        if (flips > 0) {
            options_.metrics->add(
                tid, WorkerCounter::HealthTransitions, flips);
        }
    }
    workers_[tid] = std::thread([this, tid] { workerEntry(tid); });
    sched_.reinstate(tid);
}

void
ExecutorService::escalateService(unsigned tid)
{
    // First escalation fails the tenants; every escalated slot (more
    // workers may die afterwards with the budget already spent) is
    // individually joined, reclaimed, retired, and drained.
    const bool first =
        !escalated_.exchange(true, std::memory_order_acq_rel);
    admitSpace_.notify_all(); // blocked submitters re-check and reject

    if (workers_[tid].joinable())
        workers_[tid].join();
    quarantineAndReclaim(tid);
    supervisor_->retire(tid);
    if (options_.metrics) {
        uint64_t flips = supervisor_->drainTransitions(tid);
        if (flips > 0) {
            options_.metrics->add(
                tid, WorkerCounter::HealthTransitions, flips);
        }
    }

    if (first) {
        std::vector<RecordPtr> live;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            live.reserve(jobs_.size());
            for (const auto &[id, record] : jobs_)
                live.push_back(record);
        }
        for (const RecordPtr &record : live) {
            terminateJob(record, JobState::Failed,
                         "job '" + record->name +
                             "' failed: service escalated (worker "
                             "restart budget exhausted)",
                         /*widenCancelRace=*/false);
            maybeFinishJob(record);
        }
    }

    // Drain the retired slot ourselves: with no thread driving it —
    // and possibly no live worker left at all — its remaining tasks
    // must still reach their pop so every job's ledger balances.
    Task task;
    while (sched_.tryPop(tid, task)) {
        RecordPtr record;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            auto it = jobs_.find(task.job);
            if (it != jobs_.end())
                record = it->second;
        }
        hdcps_check(record != nullptr,
                    "popped task for unknown job %u", task.job);
        tasksDrained_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::DrainedTasks);
        record->term.noteCompleted(tid);
        maybeFinishJob(record);
    }
    work_.notify_all();
}

uint64_t
ExecutorService::activeJobs() const
{
    return activeJobs_.load(std::memory_order_acquire);
}

ServiceStats
ExecutorService::stats() const
{
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.deadlineExpired =
        deadlineExpired_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.taskRetries = taskRetries_.load(std::memory_order_relaxed);
    s.tasksDrained = tasksDrained_.load(std::memory_order_relaxed);
    s.poisonedTasks = poisonedTasks_.load(std::memory_order_relaxed);
    if (supervisor_) {
        SupervisorStats sup = supervisor_->stats();
        s.workerRestarts = sup.workerRestarts;
        s.healthTransitions = sup.healthTransitions;
        s.wedgesDetected = sup.wedgesDetected;
        s.crashesDetected = sup.crashesDetected;
        s.escalated = sup.escalated;
    }

    std::vector<double> lat;
    {
        std::lock_guard<std::mutex> lock(latencyMutex_);
        lat = latenciesMs_;
    }
    s.jobsMeasured = lat.size();
    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        auto pct = [&lat](double q) {
            size_t idx = static_cast<size_t>(q * double(lat.size()));
            return lat[std::min(idx, lat.size() - 1)];
        };
        s.jobLatencyP50Ms = pct(0.50);
        s.jobLatencyP99Ms = pct(0.99);
        s.jobLatencyMaxMs = lat.back();
    }
    return s;
}

WorkerHealth
ExecutorService::workerHealth(unsigned tid) const
{
    hdcps_check(tid < options_.numThreads, "bad worker id %u", tid);
    return supervisor_ ? supervisor_->health(tid)
                       : WorkerHealth::Healthy;
}

bool
ExecutorService::escalated() const
{
    return escalated_.load(std::memory_order_acquire);
}

void
ExecutorService::shutdown()
{
    std::lock_guard<std::mutex> guard(shutdownMutex_);
    shutdown_.store(true, std::memory_order_release);
    admitSpace_.notify_all();
    work_.notify_all();
    deadlineCv_.notify_all();
    supervisorCv_.notify_all();
    // The supervisor heals through the drain and exits once every job
    // is terminal; join it *first* so it stops swapping replacement
    // threads into workers_ before we join those.
    if (supervisorThread_.joinable())
        supervisorThread_.join();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    if (deadlineMonitor_.joinable())
        deadlineMonitor_.join();
}

} // namespace hdcps
