#include "runtime/executor_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/fault.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace hdcps {

namespace detail {

/**
 * Everything the service tracks for one job. Shared between the
 * service (jobs table, admission queue) and the caller's JobHandle;
 * the record outlives the service entry so handles stay valid after
 * the job finishes.
 */
struct JobRecord
{
    JobRecord(unsigned numSlots, ExecutorService *owner)
        : term(numSlots), svc(owner)
    {}

    JobId id = 0;
    std::string name;
    ProcessFn process;
    RetryPolicy retry;
    Priority priority = 0;
    TenantId tenant = 0;
    /** Effective fair-share weight (JobSpec::weight, or the tenant
     *  quota default). Written once at submit under admitMutex_. */
    double weight = 1.0;
    /** SFQ service demand: max(1, seed count). */
    double cost = 1.0;
    Priority demotePenalty = 0;
    uint64_t submitNs = 0;
    uint64_t deadlineNs = 0; ///< absolute; 0 = no deadline
    uint64_t demoteAfterNs = 0; ///< absolute; 0 = no auto-demotion
    std::vector<Task> initial;

    /**
     * Preemption level: popped incarnations whose demote stamp lags
     * this are re-tagged (priority += levels * demotePenalty) and
     * re-pushed instead of processed. Bumped by deprioritize() and the
     * deadline monitor's demoteAfterMs path; never decremented.
     */
    std::atomic<uint32_t> demoteLevel{0};
    std::atomic<RejectReason> rejectReason{RejectReason::None};

    std::atomic<JobState> state{JobState::Queued};
    /**
     * Pending terminal verdict for failure paths. Completed doubles
     * as the "no failure claimed" sentinel; the first terminateJob
     * CAS wins and its Failed/Cancelled value is what the finishing
     * worker publishes. Stored before the latch raises stop, so any
     * worker that observes stopRequested also observes the verdict
     * (release/acquire through the stop flag).
     */
    std::atomic<JobState> verdict{JobState::Completed};

    /** Per-job conservation ledger + quiescence scan — the executor's
     *  run-level termination counters, one instance per tenant. */
    TerminationCounters term;
    /** Per-job drain latch: stopRequested() is the worker-visible
     *  "discard this job's tasks" signal. */
    FailureLatch latch;

    std::atomic<double> latencyMs{0.0};
    std::mutex waitMutex;
    std::condition_variable waitCv;

    /**
     * Poison-task quarantine. A task the svc.task.poison drill marks
     * (keyed by node+data, attempt-independent) fails on *every*
     * attempt; once retries are exhausted the final incarnation lands
     * in deadLetters instead of being re-queued forever. poisonGate is
     * the hot-path skip: the per-task check costs one relaxed load
     * until the first poisoning (release store pairs with the acquire
     * load so a retry incarnation popped elsewhere sees its key).
     */
    std::atomic<uint32_t> poisonGate{0};
    mutable std::mutex poisonMutex;
    std::vector<uint64_t> poisonKeys;
    std::vector<Task> deadLetters;
    std::atomic<uint64_t> poisoned{0};

    static uint64_t
    poisonKey(const Task &t)
    {
        return (uint64_t(t.node) << 32) | t.data;
    }

    void
    markPoisoned(const Task &t)
    {
        std::lock_guard<std::mutex> lock(poisonMutex);
        uint64_t key = poisonKey(t);
        for (uint64_t k : poisonKeys) {
            if (k == key)
                return;
        }
        poisonKeys.push_back(key);
        poisonGate.store(uint32_t(poisonKeys.size()),
                         std::memory_order_release);
    }

    bool
    isPoisoned(const Task &t) const
    {
        if (poisonGate.load(std::memory_order_acquire) == 0)
            return false;
        std::lock_guard<std::mutex> lock(poisonMutex);
        uint64_t key = poisonKey(t);
        for (uint64_t k : poisonKeys) {
            if (k == key)
                return true;
        }
        return false;
    }

    ExecutorService *svc; ///< valid until the job is terminal
    /** Owning tenant's fair-queueing state (stable address; set at
     *  submit under admitMutex_, before any task of the job exists). */
    ExecutorService::TenantState *tenantState = nullptr;
};

} // namespace detail

using detail::JobRecord;

const char *
jobStateName(JobState s)
{
    static const char *const names[] = {
        "queued",    "running",   "draining", "completed",
        "failed",    "cancelled", "rejected",
    };
    return names[unsigned(s)];
}

const char *
rejectReasonName(RejectReason r)
{
    static const char *const names[] = {
        "none",          "invalid_spec",        "queue_full",
        "tenant_queue_full", "tenant_rate_limited", "shutting_down",
        "escalated",
    };
    return names[unsigned(r)];
}

// --- JobHandle ---------------------------------------------------------

JobId
JobHandle::id() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->id;
}

const std::string &
JobHandle::name() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->name;
}

JobState
JobHandle::state() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->state.load(std::memory_order_acquire);
}

std::string
JobHandle::error() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobState s = record_->state.load(std::memory_order_acquire);
    if (s != JobState::Failed && s != JobState::Cancelled &&
        s != JobState::Rejected)
        return std::string();
    return record_->latch.failed() ? record_->latch.error()
                                   : std::string();
}

bool
JobHandle::cancel()
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    if (jobStateTerminal(record_->state.load(std::memory_order_acquire)))
        return false;
    // Non-terminal implies the service is still alive (shutdown only
    // returns once every admitted job is terminal), so svc is valid.
    return record_->svc->terminateJob(record_, JobState::Cancelled,
                                      "job '" + record_->name +
                                          "' cancelled",
                                      /*widenCancelRace=*/true);
}

JobState
JobHandle::wait()
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobRecord &r = *record_;
    std::unique_lock<std::mutex> lock(r.waitMutex);
    r.waitCv.wait(lock, [&r] {
        return jobStateTerminal(r.state.load(std::memory_order_acquire));
    });
    return r.state.load(std::memory_order_acquire);
}

bool
JobHandle::waitFor(uint64_t ms, JobState *out)
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    JobRecord &r = *record_;
    std::unique_lock<std::mutex> lock(r.waitMutex);
    bool done = r.waitCv.wait_for(
        lock, std::chrono::milliseconds(ms), [&r] {
            return jobStateTerminal(
                r.state.load(std::memory_order_acquire));
        });
    if (done && out)
        *out = r.state.load(std::memory_order_acquire);
    return done;
}

RejectReason
JobHandle::rejectReason() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->rejectReason.load(std::memory_order_acquire);
}

TenantId
JobHandle::tenant() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->tenant;
}

bool
JobHandle::deprioritize()
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    if (jobStateTerminal(record_->state.load(std::memory_order_acquire)))
        return false;
    uint32_t level =
        record_->demoteLevel.load(std::memory_order_acquire);
    while (level < kMaxDemoteLevel) {
        if (record_->demoteLevel.compare_exchange_weak(
                level, level + 1, std::memory_order_acq_rel)) {
            return true;
        }
    }
    return false; // already at the cap
}

uint32_t
JobHandle::demoteLevel() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->demoteLevel.load(std::memory_order_acquire);
}

double
JobHandle::latencyMs() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->latencyMs.load(std::memory_order_acquire);
}

uint64_t
JobHandle::tasksCompleted() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->term.completedTotal();
}

uint64_t
JobHandle::poisonedTasks() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    return record_->poisoned.load(std::memory_order_acquire);
}

std::vector<Task>
JobHandle::deadLetters() const
{
    hdcps_check(record_ != nullptr, "invalid JobHandle");
    std::lock_guard<std::mutex> lock(record_->poisonMutex);
    return record_->deadLetters;
}

// --- ExecutorService ---------------------------------------------------

ExecutorService::ExecutorService(Scheduler &sched,
                                 const ServiceOptions &options)
    : sched_(sched), options_(options)
{
    hdcps_check(options.numThreads >= 1, "need at least one thread");
    hdcps_check(options.numThreads == sched.numWorkers(),
                "thread count (%u) != scheduler workers (%u)",
                options.numThreads, sched.numWorkers());
    hdcps_check(options.admissionCapacity >= 1,
                "admission capacity must be >= 1");
    if (options.metrics) {
        hdcps_check(options.metrics->numWorkers() >= options.numThreads,
                    "metrics registry has %u workers, need %u",
                    options.metrics->numWorkers(), options.numThreads);
        sched.attachMetrics(options.metrics);
    }
    sched.setReclaimAfterMs(options.reclaimAfterMs);

    // Materialize configured tenants up front so quotas and weights
    // apply from the very first submit; tenants first seen at submit
    // time get defaults (weight 1, no limits).
    uint64_t bucketEpoch = nowNs();
    for (const auto &[id, quota] : options_.tenants) {
        hdcps_check(quota.weight > 0.0,
                    "tenant %u: weight must be > 0", id);
        auto state = std::make_unique<TenantState>();
        state->id = id;
        state->quota = quota;
        state->bucket.configure(quota.admitRatePerSec,
                                quota.admitBurst, bucketEpoch);
        tenants_.emplace(id, std::move(state));
    }

    if (options_.supervisor.enabled) {
        supervisor_ = std::make_unique<WorkerSupervisor>(
            options_.numThreads, options_.supervisor);
        // Arm every slot's heartbeat before the threads exist so a
        // slow spawn can't read as a wedge.
        uint64_t now = nowNs();
        for (unsigned tid = 0; tid < options_.numThreads; ++tid)
            supervisor_->beat(tid, now);
    }

    workers_.reserve(options.numThreads);
    for (unsigned tid = 0; tid < options.numThreads; ++tid)
        workers_.emplace_back([this, tid] { workerEntry(tid); });
    deadlineMonitor_ = std::thread([this] { deadlineLoop(); });
    if (supervisor_)
        supervisorThread_ = std::thread([this] { supervisorLoop(); });
}

ExecutorService::~ExecutorService()
{
    shutdown();
}

JobHandle
ExecutorService::submit(JobSpec spec)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    auto record = std::make_shared<JobRecord>(options_.numThreads, this);
    record->id = nextJobId_.fetch_add(1, std::memory_order_relaxed);
    record->name = spec.name.empty()
                       ? "job-" + std::to_string(record->id)
                       : std::move(spec.name);
    record->process = std::move(spec.process);
    record->retry = spec.retry;
    record->priority = spec.priority;
    record->tenant = spec.tenant;
    record->demotePenalty = spec.demotePenalty;
    record->submitNs = nowNs();
    if (spec.deadlineMs > 0)
        record->deadlineNs =
            record->submitNs + spec.deadlineMs * 1000000ull;
    if (spec.demoteAfterMs > 0)
        record->demoteAfterNs =
            record->submitNs + spec.demoteAfterMs * 1000000ull;
    record->initial = std::move(spec.initial);
    for (Task &t : record->initial) {
        t.job = record->id;
        t.attempt = 0;
    }
    record->cost =
        std::max<double>(1.0, double(record->initial.size()));

    auto reject = [&](RejectReason reason, const std::string &why) {
        record->rejectReason.store(reason, std::memory_order_release);
        record->latch.fail(why);
        {
            std::lock_guard<std::mutex> lock(record->waitMutex);
            record->state.store(JobState::Rejected,
                                std::memory_order_release);
        }
        record->waitCv.notify_all();
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return JobHandle(record);
    };

    if (!record->process) {
        return reject(RejectReason::InvalidSpec,
                      "job '" + record->name +
                          "' rejected: no ProcessFn");
    }
    if (record->retry.maxAttempts < 1) {
        return reject(RejectReason::InvalidSpec,
                      "job '" + record->name +
                          "' rejected: maxAttempts must be >= 1");
    }

    // The job must be findable by id before any of its tasks can be
    // popped, and tasks become poppable the moment an adopter seeds
    // them — so the table insert happens before the admission insert.
    {
        std::unique_lock<std::shared_mutex> lock(jobsMutex_);
        jobs_.emplace(record->id, record);
    }

    bool admittedNow = false;
    RejectReason reason = RejectReason::QueueFull;
    size_t tenantCap = 0;
    {
        std::unique_lock<std::mutex> lock(admitMutex_);
        TenantState &ts = tenantStateLocked(spec.tenant);
        ts.submitted++;
        double weight =
            spec.weight > 0.0 ? spec.weight : ts.quota.weight;
        record->weight = weight > 0.0 ? weight : 1.0;
        record->tenantState = &ts;
        tenantCap = ts.quota.maxQueuedJobs;

        auto globalFull = [&] {
            return queuedJobs_ >= options_.admissionCapacity;
        };
        auto tenantFull = [&] {
            return ts.quota.maxQueuedJobs != 0 &&
                   ts.backlog.size() >= ts.quota.maxQueuedJobs;
        };

        if (!ts.bucket.tryTake(nowNs())) {
            // Rate limits always reject: a blocked rate-limited
            // submitter would have no event to wake it.
            reason = RejectReason::TenantRateLimited;
            ts.rejected++;
        } else {
            bool full = globalFull() || tenantFull();
            // Fault drill: admission pretends the queue is full.
            // Forces the rejection path even for blocking submitters
            // (blocking on a fictitious full queue would hang
            // forever).
            bool forcedFull = faultFires(faultsite::SvcAdmitFull);
            if ((full && !options_.blockWhenFull) || forcedFull) {
                reason = (!forcedFull && tenantFull() && !globalFull())
                             ? RejectReason::TenantQueueFull
                             : RejectReason::QueueFull;
                ts.rejected++;
            } else {
                if (full) {
                    admitSpace_.wait(lock, [&] {
                        return shutdown_.load(
                                   std::memory_order_acquire) ||
                               escalated_.load(
                                   std::memory_order_acquire) ||
                               (!globalFull() && !tenantFull());
                    });
                }
                if (!shutdown_.load(std::memory_order_acquire) &&
                    !escalated_.load(std::memory_order_acquire)) {
                    ts.backlog.emplace(
                        std::make_pair(record->priority, record->id),
                        record);
                    // Newly backlogged tenant: freeze its head start
                    // tag NOW. The tag must not be re-derived from the
                    // advancing global clock at every dispatch bid, or
                    // a light tenant's bid would slide forward with
                    // vtime_ forever and never be served (see
                    // adoptOne).
                    if (ts.backlog.size() == 1)
                        ts.headStart =
                            std::max(vtime_, ts.virtualFinish);
                    ++queuedJobs_;
                    ts.admitted++;
                    admittedNow = true;
                } else {
                    reason = escalated_.load(std::memory_order_acquire)
                                 ? RejectReason::Escalated
                                 : RejectReason::ShuttingDown;
                    ts.rejected++;
                }
            }
        }
    }

    if (!admittedNow) {
        {
            std::unique_lock<std::shared_mutex> lock(jobsMutex_);
            jobs_.erase(record->id);
        }
        std::string why = "job '" + record->name + "' rejected: ";
        switch (reason) {
          case RejectReason::Escalated:
            why += "service escalated (worker restart budget "
                   "exhausted)";
            break;
          case RejectReason::ShuttingDown:
            why += "service shutting down";
            break;
          case RejectReason::TenantQueueFull:
            why += "tenant " + std::to_string(spec.tenant) +
                   " queue quota reached (max " +
                   std::to_string(tenantCap) + " queued jobs)";
            break;
          case RejectReason::TenantRateLimited:
            why += "tenant " + std::to_string(spec.tenant) +
                   " admission rate limit exceeded";
            break;
          default:
            why += "admission queue full (capacity " +
                   std::to_string(options_.admissionCapacity) + ")";
            break;
        }
        return reject(reason, why);
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    activeJobs_.fetch_add(1, std::memory_order_acq_rel);
    work_.notify_one();
    return JobHandle(record);
}

ExecutorService::TenantState &
ExecutorService::tenantStateLocked(TenantId id)
{
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
        auto state = std::make_unique<TenantState>();
        state->id = id;
        state->bucket.configure(0.0, 1.0, nowNs());
        it = tenants_.emplace(id, std::move(state)).first;
    }
    return *it->second;
}

void
ExecutorService::noteTasksCreated(Record &record, unsigned tid,
                                  uint64_t n)
{
    record.term.noteCreated(tid, n);
    inFlightTasks_.fetch_add(n, std::memory_order_relaxed);
    if (record.tenantState) {
        record.tenantState->inFlightTasks.fetch_add(
            n, std::memory_order_relaxed);
    }
}

void
ExecutorService::noteTaskCompleted(Record &record, unsigned tid)
{
    record.term.noteCompleted(tid);
    inFlightTasks_.fetch_sub(1, std::memory_order_relaxed);
    if (record.tenantState) {
        record.tenantState->inFlightTasks.fetch_sub(
            1, std::memory_order_relaxed);
    }
}

bool
ExecutorService::adoptOne(unsigned tid)
{
    RecordPtr record;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        if (queuedJobs_ == 0)
            return false;
        // Global in-flight budget: at saturation dispatch is the
        // bottleneck, so the SFQ pick below governs the completed-task
        // share. (A dispatched job may overshoot the budget with its
        // whole seed batch; the gate only delays *further* jobs.)
        if (options_.maxInFlightTasks != 0 &&
            inFlightTasks_.load(std::memory_order_acquire) >=
                options_.maxInFlightTasks)
            return false;
        // Start-time fair queueing: each backlogged, quota-eligible
        // tenant bids with its FROZEN head start tag (stamped when the
        // job reached the head of the tenant's backlog — at admission
        // into an empty backlog, or right after the previous dispatch)
        // plus cost/weight for the head job. The smallest candidate
        // finish wins; equal finishes go to the smaller start tag (the
        // tenant that has waited longest in virtual time), then to the
        // lowest tenant id via map order. Freezing the start tag is
        // the load-bearing part: re-deriving it from the advancing
        // global clock at every bid would slide a light tenant's
        // finish forward in lockstep with a heavy tenant's dispatches
        // — max(vtime, finish) + 1/w grows exactly as fast as the
        // winner's next bid — and starve it, which is the bug this
        // policy replaces. The start tie-break matters too: with unit
        // costs and integer weight ratios, finish ties recur every
        // round, and breaking them by id alone would hand a lower-id
        // heavy tenant the win forever. Charging cost/weight means a
        // weight-2 tenant's clock advances half as fast — twice the
        // dispatch share while both are backlogged — and taking
        // max(vtime_, virtualFinish) at head promotion means idle
        // time banks no credit.
        TenantState *best = nullptr;
        double bestFinish = 0.0;
        for (auto &[id, state] : tenants_) {
            TenantState &ts = *state;
            if (ts.backlog.empty())
                continue;
            if (ts.quota.maxInFlightTasks != 0 &&
                ts.inFlightTasks.load(std::memory_order_relaxed) >=
                    ts.quota.maxInFlightTasks)
                continue;
            // Head cost is read live (a higher-priority job may have
            // displaced the head since promotion); the start tag is
            // the frozen one.
            const Record &head = *ts.backlog.begin()->second;
            double finish = ts.headStart + head.cost / head.weight;
            if (best == nullptr || finish < bestFinish ||
                (finish == bestFinish &&
                 ts.headStart < best->headStart)) {
                best = &ts;
                bestFinish = finish;
            }
        }
        if (best == nullptr)
            return false; // every backlogged tenant is quota-gated
        auto it = best->backlog.begin();
        record = it->second;
        best->backlog.erase(it);
        --queuedJobs_;
        // The global clock tracks the served start tag, monotonically
        // (a frozen tag can lag vtime_ when the tenant sat quota-gated
        // — served late must not drag the clock backwards).
        vtime_ = std::max(vtime_, best->headStart);
        best->virtualFinish = bestFinish;
        // Promote the next job in this tenant's backlog: its start tag
        // freezes here, not at bid time.
        if (!best->backlog.empty())
            best->headStart = std::max(vtime_, best->virtualFinish);
    }
    admitSpace_.notify_one(); // freed one admission slot

    // Only the adopter transitions a popped record out of Queued:
    // cancel and deadline expiry finish a queued job only after
    // erasing it from the queue themselves (under admitMutex_), so a
    // record we popped is still ours.
    JobState expected = JobState::Queued;
    bool owned = record->state.compare_exchange_strong(
        expected, JobState::Running, std::memory_order_acq_rel);
    hdcps_check(owned, "adopted job %u not in Queued state",
                record->id);

    // Seed under this worker's own tid (the only one this thread may
    // push on). Chunked so bag-based designs see child-batch-sized
    // pushBatch calls rather than one giant bag.
    std::vector<Task> seeds = std::move(record->initial);
    record->initial.clear();
    // A job deprioritized while still queued seeds at its current
    // standing — stamped and penalized up front, so its incarnations
    // never need the pop-time re-tag.
    uint32_t level = std::min(
        record->demoteLevel.load(std::memory_order_acquire),
        kMaxDemoteLevel);
    if (level != 0) {
        for (Task &t : seeds) {
            t.attempt = packAttempt(0, level);
            t.priority += Priority(level) * record->demotePenalty;
        }
    }
    if (!seeds.empty()) {
        noteTasksCreated(*record, tid, seeds.size());
        constexpr size_t chunk = 256;
        for (size_t i = 0; i < seeds.size(); i += chunk) {
            size_t n = std::min(chunk, seeds.size() - i);
            sched_.pushBatch(tid, seeds.data() + i, n);
        }
    }
    // A job admitted with zero seed tasks is already quiescent.
    maybeFinishJob(record);
    return true;
}

uint64_t
ExecutorService::retryBackoffUs(const Record &record,
                                const Task &task) const
{
    const RetryPolicy &retry = record.retry;
    if (retry.backoffBaseUs == 0)
        return 0;
    // Exponential in the retry attempt that just failed (the demote
    // stamp in the high bits is standing, not history — it must not
    // widen the backoff), capped, plus deterministic seeded jitter
    // (up to +50%) so co-failing tasks don't retry in lockstep.
    unsigned shift = std::min(retryAttemptOf(task.attempt), 32u);
    uint64_t base = retry.backoffBaseUs << shift;
    base = std::min(base, retry.backoffMaxUs);
    uint64_t jitter =
        mix64(options_.seed ^ (uint64_t(record.id) << 32) ^
              (uint64_t(task.node) << 8) ^
              retryAttemptOf(task.attempt)) %
        (base / 2 + 1);
    return std::min(base + jitter, retry.backoffMaxUs);
}

void
ExecutorService::handleTaskFailure(unsigned tid,
                                   const RecordPtr &record,
                                   const Task &task, const char *what)
{
    uint32_t tries = retryAttemptOf(task.attempt);
    if (tries + 1 < record->retry.maxAttempts) {
        // Transient: back off, then re-push the next incarnation. The
        // bumped attempt makes it a fresh conservation-ledger key —
        // the failed incarnation completes, the retry is created, so
        // per-job accounting stays exact with no shared retry table.
        // The demote stamp rides along unchanged: a retry keeps its
        // standing.
        uint64_t us = retryBackoffUs(*record, task);
        if (us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(us));
        Task again = task;
        again.attempt =
            packAttempt(tries + 1, demoteStampOf(task.attempt));
        noteTasksCreated(*record, tid, 1);
        sched_.push(tid, again);
        noteTaskCompleted(*record, tid);
        taskRetries_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::TaskRetries);
        // No finish attempt: the retried incarnation is outstanding,
        // so the job cannot be quiescent.
        return;
    }
    if (record->retry.deadLetterOnExhaustion) {
        // Poison quarantine: the task burned every attempt, but the
        // job's policy says divert it, not fail the tenant. The final
        // incarnation lands in the dead-letter queue and is counted
        // completed — the conservation ledger balances (the pop was
        // already recorded) and the job can still reach Completed.
        {
            std::lock_guard<std::mutex> lock(record->poisonMutex);
            record->deadLetters.push_back(task);
        }
        record->poisoned.fetch_add(1, std::memory_order_release);
        poisonedTasks_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::PoisonedTasks);
        noteTaskCompleted(*record, tid);
        maybeFinishJob(record);
        return;
    }
    noteTaskCompleted(*record, tid);
    std::ostringstream msg;
    msg << "job '" << record->name << "': task (node " << task.node
        << ", prio " << task.priority << ") failed after "
        << (tries + 1) << " attempt(s): " << what;
    terminateJob(record, JobState::Failed, msg.str(),
                 /*widenCancelRace=*/false);
    maybeFinishJob(record);
}

void
ExecutorService::processTask(unsigned tid, const RecordPtr &record,
                             const Task &task,
                             std::vector<Task> &children)
{
    if (record->latch.stopRequested()) {
        // Draining: the job already failed / was cancelled / expired.
        // Discard the task but keep the ledger exact — the job's
        // outstanding count still reaches zero, which is what the
        // per-job conservation check (VerifyingScheduler ::
        // checkJobDrained) asserts.
        tasksDrained_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::DrainedTasks);
        noteTaskCompleted(*record, tid);
        maybeFinishJob(record);
        return;
    }

    // Cooperative preemption: an incarnation stamped before the job's
    // current demote level is stale — re-tag it at the new standing
    // (penalized priority, fresh stamp) and re-push instead of
    // processing. Ledger-wise this is exactly a retry: the stale
    // incarnation completes, a distinct new key is created, so per-job
    // conservation stays exact through the VerifyingScheduler.
    uint32_t level = std::min(
        record->demoteLevel.load(std::memory_order_acquire),
        kMaxDemoteLevel);
    uint32_t stamp = demoteStampOf(task.attempt);
    if (stamp < level) {
        Task again = task;
        again.attempt =
            packAttempt(retryAttemptOf(task.attempt), level);
        again.priority = task.priority +
                         Priority(level - stamp) *
                             record->demotePenalty;
        noteTasksCreated(*record, tid, 1);
        sched_.push(tid, again);
        noteTaskCompleted(*record, tid);
        demotedTasks_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::DemotedTasks);
        // No finish attempt: the re-tagged incarnation is outstanding,
        // so the job cannot be quiescent.
        return;
    }

    children.clear();
    try {
        // Fault drill: service task processing throws.
        if (faultFires(faultsite::SvcJobFail)) {
            throw FaultInjectedError(
                "injected service task failure (svc.job.fail)");
        }
        // Poison drill: mark this task so *every* attempt fails. Only
        // pristine first incarnations consult the drill (raw attempt
        // word 0: first try AND demote stamp 0), so the invocation
        // index — and with it the set of poisoned tasks under a fixed
        // seed — is independent of retry and demotion interleaving.
        if (task.attempt == 0 &&
            faultFires(faultsite::SvcTaskPoison)) {
            record->markPoisoned(task);
        }
        if (record->isPoisoned(task)) {
            throw FaultInjectedError(
                "injected poison task (svc.task.poison)");
        }
        record->process(tid, task, children);
    } catch (const std::exception &e) {
        handleTaskFailure(tid, record, task, e.what());
        return;
    } catch (...) {
        handleTaskFailure(tid, record, task, "non-std exception");
        return;
    }

    for (Task &c : children) {
        c.job = record->id;
        // Children are born at the job's current standing: stamped
        // with the level observed above so they skip the re-tag path,
        // and penalized the same way a re-tag would have.
        c.attempt = packAttempt(0, level);
        if (level != 0)
            c.priority += Priority(level) * record->demotePenalty;
    }
    if (!children.empty()) {
        // Created before poppable — same ordering the executor's
        // run-level counters rely on, now per job.
        noteTasksCreated(*record, tid, children.size());
        sched_.pushBatch(tid, children.data(), children.size());
    }
    noteTaskCompleted(*record, tid);
    if (record->tenantState) {
        record->tenantState->tasksProcessed.fetch_add(
            1, std::memory_order_relaxed);
    }
    if (options_.metrics)
        options_.metrics->add(tid, WorkerCounter::TasksProcessed);
    maybeFinishJob(record);
}

void
ExecutorService::workerEntry(unsigned tid)
{
    // Every thread that enters the slot — the pool's original worker
    // and each healed replacement — announces itself to the scheduler
    // first, so topology-aware designs pin it to the slot's node before
    // its first pop.
    sched_.onWorkerStart(tid);
    const uint64_t epoch = supervisor_ ? supervisor_->epochOf(tid) : 0;
    bool crashed = false;
    try {
        workerLoop(tid, epoch);
    } catch (...) {
        // Anything escaping the worker loop — the crash drill or a
        // genuine bug — is a worker death, not process death: latch it
        // so the supervisor heals the slot instead of the pool
        // silently shrinking.
        crashed = true;
    }
    if (supervisor_)
        supervisor_->noteExit(tid, crashed);
}

void
ExecutorService::workerLoop(unsigned tid, uint64_t epoch)
{
    std::vector<Task> children;
    children.reserve(64);
    IdleBackoff backoff;

    while (true) {
        if (supervisor_) {
            supervisor_->beat(tid, nowNs());
            // Superseded: the supervisor declared this incarnation
            // wedged and bumped the slot epoch. Exit cooperatively —
            // holding no task, loop-top — so the replacement can take
            // over; the supervisor reclaims anything this thread
            // pushed since the reclamation pass.
            if (supervisor_->superseded(tid, epoch))
                return;
            // Crash drill: die as if a bug killed this worker. The
            // throw escapes to workerEntry, which latches the exit.
            if (faultFires(faultsite::SvcWorkerDie)) {
                throw FaultInjectedError(
                    "injected worker death (svc.worker.die)");
            }
            // Wedge drill: stall here, heartbeat stale, holding no
            // task — the supervisor walks Suspect -> Wedged and
            // supersedes us, caught by the re-check below. A
            // Delay-armed site chooses its own stall; other modes
            // (once/nth/prob) stall 3x the wedged threshold so the
            // detection provably trips.
            if (faultFires(faultsite::SvcWorkerWedge)) {
                uint64_t ns = faultAmount(faultsite::SvcWorkerWedge);
                if (ns == 0) {
                    ns = options_.supervisor.wedgedAfterMs * 3 *
                         1000000ull;
                }
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(ns));
            }
            if (supervisor_->superseded(tid, epoch))
                return;
        }

        // Straggler drill: same cooperative pause point as the
        // one-shot executor, so soak/chaos scenarios translate.
        stragglerPausePoint(tid);

        bool adopted = adoptOne(tid);

        Task task;
        // Fault drill: spurious pop failure; the task stays queued.
        bool got = !faultFires(faultsite::ExecPopFail) &&
                   sched_.tryPop(tid, task);
        if (!got) {
            if (adopted)
                continue;
            if (shutdown_.load(std::memory_order_acquire) &&
                activeJobs_.load(std::memory_order_acquire) == 0)
                break;
            if (backoff.idle() &&
                activeJobs_.load(std::memory_order_acquire) == 0) {
                // Truly idle service: no admitted jobs at all, so no
                // tasks can appear except through submit (which
                // notifies). Sleep briefly instead of spinning.
                std::unique_lock<std::mutex> lock(admitMutex_);
                if (queuedJobs_ == 0 &&
                    !shutdown_.load(std::memory_order_acquire)) {
                    work_.wait_for(lock,
                                   std::chrono::milliseconds(1));
                }
            }
            continue;
        }
        backoff.reset();

        RecordPtr record;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            auto it = jobs_.find(task.job);
            if (it != jobs_.end())
                record = it->second;
        }
        // A popped task's job must be live: records are erased only
        // once quiescent, and a task in the scheduler is
        // created-but-not-completed by definition.
        hdcps_check(record != nullptr,
                    "popped task for unknown job %u", task.job);
        processTask(tid, record, task, children);
    }
}

bool
ExecutorService::terminateJob(const RecordPtr &record, JobState verdict,
                              const std::string &message,
                              bool widenCancelRace)
{
    // First verdict wins: the CAS claims the terminal state the
    // finishing worker will publish. Losers only reinforce the stop.
    JobState sentinel = JobState::Completed;
    if (!record->verdict.compare_exchange_strong(
            sentinel, verdict, std::memory_order_acq_rel)) {
        record->latch.requestStop();
        return false;
    }

    // Fault drill: widen the window between claiming the verdict and
    // publishing the drain — the job may complete normally meanwhile,
    // which is exactly the cancel/complete race under test.
    if (widenCancelRace)
        faultSleep(faultsite::SvcCancelRace);

    // Publish: latches the error and raises stop (release), making
    // the verdict visible to any worker that observes the stop.
    record->latch.fail(message);

    // A still-queued job has no tasks to drain: finish it in place.
    // The queue erase and the adopter's pop are both under
    // admitMutex_, so exactly one side wins.
    bool wasQueued = false;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        // tenantState is assigned under this mutex at submit; a record
        // terminated in the narrow window before that assignment was
        // never queued.
        if (record->tenantState) {
            wasQueued = record->tenantState->backlog.erase(
                            {record->priority, record->id}) > 0;
            if (wasQueued)
                --queuedJobs_;
        }
    }
    if (wasQueued) {
        admitSpace_.notify_one();
        {
            std::lock_guard<std::mutex> lock(record->waitMutex);
            record->state.store(verdict, std::memory_order_release);
        }
        finishRecord(*record, verdict);
        return true;
    }

    // Running (or mid-adoption): flip the observable state; workers
    // drain via the latch regardless, and the last completion
    // publishes the verdict. The CAS may lose to a concurrent
    // completion — that is the documented race, completion wins.
    JobState running = JobState::Running;
    record->state.compare_exchange_strong(running, JobState::Draining,
                                          std::memory_order_acq_rel);
    return true;
}

void
ExecutorService::maybeFinishJob(const RecordPtr &record)
{
    // Per-job quiescence: same completed-first two-pass scan the
    // executor uses for run-level termination (worker_common.h), over
    // this job's ledger only. Cost is 2 * numThreads cache-line loads
    // per completion — acceptable for a robustness-first service.
    if (!record->term.quiescent())
        return;
    JobState expected = record->state.load(std::memory_order_acquire);
    while (!jobStateTerminal(expected)) {
        JobState terminal =
            record->latch.stopRequested()
                ? record->verdict.load(std::memory_order_acquire)
                : JobState::Completed;
        bool won;
        {
            // State flips to terminal under waitMutex so wait()'s
            // predicate check can't miss the wakeup.
            std::lock_guard<std::mutex> lock(record->waitMutex);
            won = record->state.compare_exchange_strong(
                expected, terminal, std::memory_order_acq_rel);
        }
        if (won) {
            finishRecord(*record, terminal);
            return;
        }
        // `expected` was refreshed by the failed CAS (e.g. a
        // concurrent Running -> Draining flip); re-evaluate.
    }
}

void
ExecutorService::finishRecord(Record &record, JobState terminal)
{
    // Exactly-once per admitted job: callers reach here only after
    // winning the terminal-state transition.
    double ms =
        static_cast<double>(nowNs() - record.submitNs) / 1e6;
    record.latencyMs.store(ms, std::memory_order_release);

    {
        std::unique_lock<std::shared_mutex> lock(jobsMutex_);
        jobs_.erase(record.id);
    }

    switch (terminal) {
      case JobState::Completed:
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (record.tenantState) {
            record.tenantState->jobsCompleted.fetch_add(
                1, std::memory_order_relaxed);
        }
        break;
      case JobState::Failed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::Cancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        hdcps_check(false, "finishRecord with non-terminal state %u",
                    unsigned(terminal));
    }

    {
        std::lock_guard<std::mutex> lock(latencyMutex_);
        latenciesMs_.push_back(ms);
        // latencyMutex_ serializes writers, satisfying the global
        // series single-writer contract.
        if (options_.metrics) {
            options_.metrics->recordGlobal(GlobalSeries::JobLatencyMs,
                                           ms);
        }
    }

    activeJobs_.fetch_sub(1, std::memory_order_acq_rel);
    record.waitCv.notify_all();
    work_.notify_all(); // shutdown exit condition may hold now
    deadlineCv_.notify_all();
}

void
ExecutorService::deadlineLoop()
{
    std::vector<RecordPtr> expired;
    std::vector<RecordPtr> pressured;
    uint64_t lastSeriesNs = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(deadlineMutex_);
            deadlineCv_.wait_for(
                lock, std::chrono::milliseconds(1), [this] {
                    return shutdown_.load(std::memory_order_acquire) &&
                           activeJobs_.load(
                               std::memory_order_acquire) == 0;
                });
        }
        if (shutdown_.load(std::memory_order_acquire) &&
            activeJobs_.load(std::memory_order_acquire) == 0)
            return;

        expired.clear();
        pressured.clear();
        uint64_t now = nowNs();
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            for (const auto &[id, record] : jobs_) {
                if (jobStateTerminal(record->state.load(
                        std::memory_order_acquire)) ||
                    record->latch.stopRequested())
                    continue;
                if (record->deadlineNs != 0 &&
                    now > record->deadlineNs) {
                    expired.push_back(record);
                } else if (record->demoteAfterNs != 0 &&
                           now > record->demoteAfterNs &&
                           record->demoteLevel.load(
                               std::memory_order_relaxed) == 0) {
                    pressured.push_back(record);
                }
            }
        }
        for (const RecordPtr &record : expired) {
            uint64_t budget =
                (record->deadlineNs - record->submitNs) / 1000000;
            std::ostringstream msg;
            msg << "job '" << record->name << "': deadline of "
                << budget << " ms exceeded";
            if (terminateJob(record, JobState::Failed, msg.str(),
                             /*widenCancelRace=*/false)) {
                deadlineExpired_.fetch_add(1,
                                           std::memory_order_relaxed);
            }
        }
        // Deadline-pressure auto-demotion: a job past its soft budget
        // keeps running at lower standing instead of failing. One
        // level only — the CAS loses to a racing deprioritize(), which
        // already lowered the job further.
        for (const RecordPtr &record : pressured) {
            uint32_t zero = 0;
            if (record->demoteLevel.compare_exchange_strong(
                    zero, 1, std::memory_order_acq_rel)) {
                autoDemotedJobs_.fetch_add(1,
                                           std::memory_order_relaxed);
            }
        }
        // Per-tenant share/backlog series, paced to ~10ms. The
        // deadline monitor is the single writer of these customSeries
        // rings, satisfying the registry's single-writer contract.
        if (options_.metrics && now - lastSeriesNs >= 10000000ull) {
            lastSeriesNs = now;
            recordTenantSeries();
        }
    }
}

void
ExecutorService::recordTenantSeries()
{
    struct Row
    {
        TenantState *state;
        uint64_t processed;
        size_t backlog;
    };
    std::vector<Row> rows;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        rows.reserve(tenants_.size());
        for (auto &[id, state] : tenants_) {
            TenantState &ts = *state;
            if (ts.shareSeries < 0) {
                std::string base = "tenant" + std::to_string(id);
                ts.shareSeries =
                    options_.metrics->customSeries(base + ".share");
                ts.backlogSeries =
                    options_.metrics->customSeries(base + ".backlog");
            }
            rows.push_back(
                {&ts,
                 ts.tasksProcessed.load(std::memory_order_relaxed),
                 ts.backlog.size()});
        }
    }
    // Record outside the admission lock: TenantState addresses are
    // stable, and only this thread touches lastTasksProcessed or
    // writes these series.
    uint64_t totalDelta = 0;
    for (const Row &row : rows)
        totalDelta += row.processed - row.state->lastTasksProcessed;
    for (const Row &row : rows) {
        uint64_t delta = row.processed - row.state->lastTasksProcessed;
        row.state->lastTasksProcessed = row.processed;
        if (totalDelta > 0) {
            options_.metrics->recordCustom(
                row.state->shareSeries,
                double(delta) / double(totalDelta));
        }
        options_.metrics->recordCustom(row.state->backlogSeries,
                                       double(row.backlog));
    }
}

void
ExecutorService::supervisorLoop()
{
    const auto interval = std::chrono::milliseconds(
        std::max<uint64_t>(options_.supervisor.probeIntervalMs, 1));
    while (true) {
        {
            std::unique_lock<std::mutex> lock(supervisorMutex_);
            supervisorCv_.wait_for(lock, interval, [this] {
                return shutdown_.load(std::memory_order_acquire) &&
                       activeJobs_.load(std::memory_order_acquire) ==
                           0;
            });
        }
        // Supervise *through* the shutdown drain — a worker that dies
        // mid-drain still needs healing or its jobs never quiesce —
        // and exit only once every admitted job is terminal.
        if (shutdown_.load(std::memory_order_acquire) &&
            activeJobs_.load(std::memory_order_acquire) == 0)
            return;
        for (unsigned tid = 0; tid < options_.numThreads; ++tid) {
            switch (supervisor_->poll(tid, nowNs())) {
              case WorkerSupervisor::Decision::Quarantine:
                quarantineAndReclaim(tid);
                break;
              case WorkerSupervisor::Decision::Restart:
                healWorker(tid);
                break;
              case WorkerSupervisor::Decision::Escalate:
                escalateService(tid);
                break;
              case WorkerSupervisor::Decision::None:
                break;
            }
        }
    }
}

size_t
ExecutorService::quarantineAndReclaim(unsigned tid)
{
    sched_.quarantine(tid);
    const unsigned peer = (tid + 1) % options_.numThreads;
    uint64_t t0 = nowNs();
    size_t moved = sched_.reclaimWorker(peer, tid);
    if (options_.metrics) {
        // Only the supervisor thread ever writes this global series,
        // so its single-writer busy cell never sees overlap.
        options_.metrics->recordGlobal(GlobalSeries::ReclaimLatencyMs,
                                       double(nowNs() - t0) / 1e6);
    }
    work_.notify_all(); // reclaimed tasks now sit with (idle?) peers
    return moved;
}

void
ExecutorService::healWorker(unsigned tid)
{
    // The dead incarnation latched its exit, so this join is prompt;
    // after it the slot has exactly zero driver threads.
    if (workers_[tid].joinable())
        workers_[tid].join();
    // Reclaim *after* the join: a superseded zombie may have pushed
    // tasks between the wedge-time reclamation and its exit, and a
    // crash-path death was never reclaimed at all. Both ways, nothing
    // strands in a slot nobody drives. (Quarantining twice is
    // harmless.)
    quarantineAndReclaim(tid);
    supervisor_->noteRestarted(tid, nowNs());
    if (options_.metrics) {
        // Post-join, pre-spawn: nothing else drives slot tid's metric
        // row, so these writes satisfy the single-writer check.
        options_.metrics->add(tid, WorkerCounter::WorkerRestarts);
        uint64_t flips = supervisor_->drainTransitions(tid);
        if (flips > 0) {
            options_.metrics->add(
                tid, WorkerCounter::HealthTransitions, flips);
        }
    }
    workers_[tid] = std::thread([this, tid] { workerEntry(tid); });
    sched_.reinstate(tid);
}

void
ExecutorService::escalateService(unsigned tid)
{
    // First escalation fails the tenants; every escalated slot (more
    // workers may die afterwards with the budget already spent) is
    // individually joined, reclaimed, retired, and drained.
    const bool first =
        !escalated_.exchange(true, std::memory_order_acq_rel);
    admitSpace_.notify_all(); // blocked submitters re-check and reject

    if (workers_[tid].joinable())
        workers_[tid].join();
    quarantineAndReclaim(tid);
    supervisor_->retire(tid);
    if (options_.metrics) {
        uint64_t flips = supervisor_->drainTransitions(tid);
        if (flips > 0) {
            options_.metrics->add(
                tid, WorkerCounter::HealthTransitions, flips);
        }
    }

    if (first) {
        std::vector<RecordPtr> live;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            live.reserve(jobs_.size());
            for (const auto &[id, record] : jobs_)
                live.push_back(record);
        }
        for (const RecordPtr &record : live) {
            terminateJob(record, JobState::Failed,
                         "job '" + record->name +
                             "' failed: service escalated (worker "
                             "restart budget exhausted)",
                         /*widenCancelRace=*/false);
            maybeFinishJob(record);
        }
    }

    // Drain the retired slot ourselves: with no thread driving it —
    // and possibly no live worker left at all — its remaining tasks
    // must still reach their pop so every job's ledger balances.
    Task task;
    while (sched_.tryPop(tid, task)) {
        RecordPtr record;
        {
            std::shared_lock<std::shared_mutex> lock(jobsMutex_);
            auto it = jobs_.find(task.job);
            if (it != jobs_.end())
                record = it->second;
        }
        hdcps_check(record != nullptr,
                    "popped task for unknown job %u", task.job);
        tasksDrained_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->add(tid, WorkerCounter::DrainedTasks);
        noteTaskCompleted(*record, tid);
        maybeFinishJob(record);
    }
    work_.notify_all();
}

uint64_t
ExecutorService::activeJobs() const
{
    return activeJobs_.load(std::memory_order_acquire);
}

ServiceStats
ExecutorService::stats() const
{
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.deadlineExpired =
        deadlineExpired_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.taskRetries = taskRetries_.load(std::memory_order_relaxed);
    s.tasksDrained = tasksDrained_.load(std::memory_order_relaxed);
    s.poisonedTasks = poisonedTasks_.load(std::memory_order_relaxed);
    s.demotedTasks = demotedTasks_.load(std::memory_order_relaxed);
    s.autoDemotedJobs =
        autoDemotedJobs_.load(std::memory_order_relaxed);
    if (supervisor_) {
        SupervisorStats sup = supervisor_->stats();
        s.workerRestarts = sup.workerRestarts;
        s.healthTransitions = sup.healthTransitions;
        s.wedgesDetected = sup.wedgesDetected;
        s.crashesDetected = sup.crashesDetected;
        s.escalated = sup.escalated;
    }

    std::vector<double> lat;
    {
        std::lock_guard<std::mutex> lock(latencyMutex_);
        lat = latenciesMs_;
    }
    s.jobsMeasured = lat.size();
    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        auto pct = [&lat](double q) {
            size_t idx = static_cast<size_t>(q * double(lat.size()));
            return lat[std::min(idx, lat.size() - 1)];
        };
        s.jobLatencyP50Ms = pct(0.50);
        s.jobLatencyP99Ms = pct(0.99);
        s.jobLatencyMaxMs = lat.back();
    }
    return s;
}

std::vector<TenantStats>
ExecutorService::tenantStats() const
{
    std::vector<TenantStats> out;
    std::lock_guard<std::mutex> lock(admitMutex_);
    out.reserve(tenants_.size());
    for (const auto &[id, state] : tenants_) {
        const TenantState &ts = *state;
        TenantStats s;
        s.tenant = id;
        s.weight = ts.quota.weight;
        s.submitted = ts.submitted;
        s.admitted = ts.admitted;
        s.rejected = ts.rejected;
        s.jobsCompleted =
            ts.jobsCompleted.load(std::memory_order_relaxed);
        s.tasksProcessed =
            ts.tasksProcessed.load(std::memory_order_relaxed);
        s.queuedJobs = ts.backlog.size();
        s.inFlightTasks =
            ts.inFlightTasks.load(std::memory_order_relaxed);
        s.virtualFinish = ts.virtualFinish;
        out.push_back(s);
    }
    return out;
}

WorkerHealth
ExecutorService::workerHealth(unsigned tid) const
{
    hdcps_check(tid < options_.numThreads, "bad worker id %u", tid);
    return supervisor_ ? supervisor_->health(tid)
                       : WorkerHealth::Healthy;
}

bool
ExecutorService::escalated() const
{
    return escalated_.load(std::memory_order_acquire);
}

void
ExecutorService::shutdown()
{
    std::lock_guard<std::mutex> guard(shutdownMutex_);
    shutdown_.store(true, std::memory_order_release);
    admitSpace_.notify_all();
    work_.notify_all();
    deadlineCv_.notify_all();
    supervisorCv_.notify_all();
    // The supervisor heals through the drain and exits once every job
    // is terminal; join it *first* so it stops swapping replacement
    // threads into workers_ before we join those.
    if (supervisorThread_.joinable())
        supervisorThread_.join();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    if (deadlineMonitor_.joinable())
        deadlineMonitor_.join();
}

} // namespace hdcps
