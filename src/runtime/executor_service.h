/**
 * @file
 * Long-lived multi-tenant scheduling service over any CPS design.
 *
 * The one-shot executor (executor.h) answers "run this workload to
 * completion once". Real deployments of a concurrent priority
 * scheduler look different: a resident worker pool serves a *stream*
 * of jobs — each with its own task-processing function, initial tasks,
 * job-level priority, deadline and retry policy — and one tenant's
 * failure must not take down its neighbours. ExecutorService is that
 * service, layered on the exact same building blocks as the executor
 * (see runtime/worker_common.h):
 *
 *  - Two-level scheduling with weighted fair sharing: admission
 *    dispatch is start-time fair queueing (SFQ) across *tenants* —
 *    each tenant keeps a virtual-finish clock, every dispatch charges
 *    cost(job)/weight to it, and the eligible tenant with the smallest
 *    candidate virtual finish time wins. Within one tenant, jobs keep
 *    the original strict (priority, FIFO) order; task-level
 *    interleaving inside the shared CPS stays relaxed — co-resident
 *    jobs' tasks mix freely in the scheduler, tagged with their
 *    owner's JobId (cps/task.h). The pre-fairness policy — one strict
 *    (priority, id) queue across all jobs — starved low-priority
 *    tenants indefinitely under sustained high-priority load; SFQ
 *    bounds every backlogged tenant's wait by the weighted round.
 *  - Per-tenant quotas (ServiceOptions::tenants): max queued jobs,
 *    max in-flight tasks (a dispatch-eligibility gate), and a
 *    token-bucket admission rate. Violations reject at submit with a
 *    typed reason (JobHandle::rejectReason()); queue-space quotas
 *    honor blockWhenFull, rate limits always reject. A global
 *    ServiceOptions::maxInFlightTasks budget makes dispatch the
 *    bottleneck at saturation, which is what turns the weighted
 *    dispatch share into a completed-task share.
 *  - Cooperative preemption: JobHandle::deprioritize() (or the
 *    deadline-pressure auto path, JobSpec::demoteAfterMs) bumps a
 *    running job's demote level. Its already-queued task incarnations
 *    are lazily re-tagged at pop time — pushed back with a lower
 *    effective priority and a new demote stamp in the attempt word —
 *    instead of drained, so the job keeps running at lower standing
 *    and per-job conservation stays exact (each re-tag completes the
 *    old incarnation and creates a distinct new ledger key, the same
 *    shape as a retry).
 *  - Per-job failure isolation: every admitted job carries its own
 *    TerminationCounters and FailureLatch. A thrown ProcessFn (after
 *    retries are exhausted), an expired deadline, or JobHandle::cancel
 *    latches that job's first error and flips it to Draining: workers
 *    keep popping its tasks but discard them (counted, so the per-job
 *    conservation ledger still balances to zero) until the job is
 *    quiescent — co-resident jobs never notice.
 *  - Per-job completion detection: the executor's distributed
 *    created/completed counters and completed-first quiescence scan,
 *    instantiated once per job. Whichever worker completes a job's
 *    last task wins a CAS to the terminal state, records the latency,
 *    and wakes waiters.
 *  - Bounded admission with backpressure: at most
 *    ServiceOptions::admissionCapacity jobs may be queued (admitted
 *    but not yet adopted by a worker). An overflowing submit either
 *    rejects with a reason (default) or blocks until space frees,
 *    per ServiceOptions::blockWhenFull.
 *  - Transient-failure retries: a ProcessFn throw re-pushes the task
 *    with attempt+1 after seeded exponential backoff, up to
 *    RetryPolicy::maxAttempts; the attempt rides in the Task itself,
 *    so the retried incarnation is a distinct conservation-ledger key
 *    and no shared retry table is needed.
 *
 * Supervision and self-healing (runtime/supervisor.h, DESIGN.md §15):
 * when ServiceOptions::supervisor.enabled is set, a supervisor thread
 * drives a per-worker health FSM off loop-top heartbeats and a
 * worker-exit latch. A worker that wedges (stale heartbeat) or dies
 * (crash drill / escaped exception) is quarantined — the scheduler
 * stops routing remote work at it — its buffered tasks are forcibly
 * reclaimed into live peers, and a replacement thread is spawned into
 * the freed slot, up to SupervisorPolicy::maxRestarts per sliding
 * window; past the budget the service escalates: every live job fails,
 * future submissions are rejected, and the slot is retired. Task
 * conservation stays exact throughout — reclaimed tasks re-enter live
 * queues and drained tasks are counted per job.
 *
 * Poison-task quarantine: a task that exhausts RetryPolicy::maxAttempts
 * is, when RetryPolicy::deadLetterOnExhaustion is set, diverted to the
 * job's dead-letter queue (JobHandle::deadLetters) instead of failing
 * the job — the job can still complete with poisonedTasks() > 0.
 *
 * Fault sites (support/fault.h): `svc.admit.full` forces admission
 * rejection, `svc.job.fail` throws inside service task processing,
 * `svc.cancel.race` delays cancel between the drain latch and its
 * publication to widen the cancel/complete race, `svc.worker.wedge`
 * stalls a worker at its loop top without heartbeats,
 * `svc.worker.die` makes a worker exit its loop as if crashed, and
 * `svc.task.poison` makes a task fail on every attempt.
 *
 * Thread safety: submit/cancel/wait/stats are safe from any thread
 * (including concurrently with each other); shutdown() and the
 * destructor must not race with submit().
 */

#ifndef HDCPS_RUNTIME_EXECUTOR_SERVICE_H_
#define HDCPS_RUNTIME_EXECUTOR_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cps/scheduler.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "runtime/supervisor.h"
#include "runtime/worker_common.h"

namespace hdcps {

/** Tenant identity: jobs sharing a tenant id share one fair-queueing
 *  virtual clock and one quota set. 0 is the default tenant. */
using TenantId = uint32_t;

/**
 * Task::attempt packing. The low 24 bits count service retry attempts
 * (the original meaning); the high 8 bits carry the job's demote stamp
 * at task-creation/re-tag time, so a preempted job's stale
 * incarnations are recognizable at pop time and every re-tag is a
 * distinct conservation-ledger key.
 */
inline constexpr uint32_t kRetryAttemptBits = 24;
inline constexpr uint32_t kRetryAttemptMask =
    (uint32_t(1) << kRetryAttemptBits) - 1;
inline constexpr uint32_t kMaxDemoteLevel = 255;

constexpr uint32_t
retryAttemptOf(uint32_t attempt)
{
    return attempt & kRetryAttemptMask;
}

constexpr uint32_t
demoteStampOf(uint32_t attempt)
{
    return attempt >> kRetryAttemptBits;
}

constexpr uint32_t
packAttempt(uint32_t retryAttempt, uint32_t demoteStamp)
{
    return (demoteStamp << kRetryAttemptBits) |
           (retryAttempt & kRetryAttemptMask);
}

/** Why a submit was rejected (JobHandle::rejectReason()). */
enum class RejectReason : unsigned {
    None = 0,          ///< not rejected
    InvalidSpec,       ///< no ProcessFn, or maxAttempts < 1
    QueueFull,         ///< service-wide admission capacity exceeded
    TenantQueueFull,   ///< tenant's maxQueuedJobs quota exceeded
    TenantRateLimited, ///< tenant's admission token bucket was empty
    ShuttingDown,      ///< service is shutting down
    Escalated,         ///< supervisor escalation failed the service
};

const char *rejectReasonName(RejectReason r);

/** Per-tenant fair-share weight and admission quotas
 *  (ServiceOptions::tenants). Every field's default is "unlimited". */
struct TenantQuota
{
    /** Fair-share weight for jobs that leave JobSpec::weight at 0. A
     *  tenant with weight 2 receives twice the dispatch share of a
     *  weight-1 tenant while both are backlogged. */
    double weight = 1.0;
    /** Max jobs admitted-but-not-dispatched for this tenant; beyond it
     *  submit rejects TenantQueueFull (or blocks, per blockWhenFull).
     *  0 = unlimited. */
    size_t maxQueuedJobs = 0;
    /** Dispatch-eligibility gate: while the tenant has this many tasks
     *  in flight, no further job of its dispatches. 0 = unlimited. */
    uint64_t maxInFlightTasks = 0;
    /** Token-bucket admission rate: submits/second refill, up to
     *  admitBurst tokens banked. Violations always reject
     *  (TenantRateLimited) — a blocked rate-limited submitter would
     *  have nothing to wake it. 0 = unlimited. */
    double admitRatePerSec = 0.0;
    double admitBurst = 4.0;
};

/** Retry policy for transiently failing tasks of one job. */
struct RetryPolicy
{
    /** Total tries per task (1 = no retries: first throw fails the
     *  job). A task whose attempt reaches maxAttempts-1 and throws
     *  again latches the job failure. */
    uint32_t maxAttempts = 1;
    /** Backoff before attempt k retries is roughly
     *  min(backoffBaseUs << (k-1), backoffMaxUs) plus seeded jitter. */
    uint64_t backoffBaseUs = 50;
    uint64_t backoffMaxUs = 5000;
    /** Poison-task policy: when true, a task that exhausts maxAttempts
     *  is diverted to the job's dead-letter queue instead of latching
     *  the job failure — the job can still complete, with the
     *  quarantined tasks inspectable via JobHandle::deadLetters(). */
    bool deadLetterOnExhaustion = false;
};

/** One job submitted to the service. */
struct JobSpec
{
    std::string name;         ///< for error messages and reports
    ProcessFn process;        ///< per-job task-processing function
    std::vector<Task> initial; ///< seed tasks (job/attempt tags are
                               ///< stamped by the service)
    Priority priority = 0;     ///< within-tenant: lower = dispatched sooner
    /** Owning tenant: the fair-share clock and quotas this job charges
     *  against. */
    TenantId tenant = 0;
    /** Fair-share weight of this job's dispatch charge; 0 (default)
     *  inherits the tenant's TenantQuota::weight. */
    double weight = 0.0;
    /** Wall-clock budget from submission; 0 = none. A job still
     *  Queued or Running past its deadline fails with a deadline
     *  error and drains. */
    uint64_t deadlineMs = 0;
    /** Deadline-pressure auto-demotion: a job still not terminal this
     *  many ms after submission is deprioritized once (demote level 1)
     *  by the deadline monitor — it keeps running at lower standing
     *  instead of being failed. 0 = never. */
    uint64_t demoteAfterMs = 0;
    /** Priority added to a task incarnation per demote level when a
     *  preempted job's tasks are re-tagged (lower standing = larger
     *  numeric priority). */
    Priority demotePenalty = uint64_t(1) << 16;
    RetryPolicy retry;
};

/** Lifecycle of one job. Terminal states: Completed, Failed,
 *  Cancelled, Rejected. */
enum class JobState : unsigned {
    Queued = 0, ///< admitted, waiting for a worker to adopt it
    Running,    ///< seeded; its tasks are in the shared scheduler
    Draining,   ///< failure latched; tasks are being discarded
    Completed,  ///< all tasks processed, conservation balanced
    Failed,     ///< ProcessFn error (retries exhausted) or deadline
    Cancelled,  ///< JobHandle::cancel won
    Rejected,   ///< never admitted (queue full, or shutdown)
};

const char *jobStateName(JobState s);

/** True for states no job ever leaves. */
inline bool
jobStateTerminal(JobState s)
{
    return s == JobState::Completed || s == JobState::Failed ||
           s == JobState::Cancelled || s == JobState::Rejected;
}

class ExecutorService;

namespace detail {
struct JobRecord;
} // namespace detail

/**
 * Caller-side handle to one submitted job. Copyable (shared
 * ownership); outliving the service is safe — the record is detached
 * at shutdown and terminal by then.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return record_ != nullptr; }
    JobId id() const;
    const std::string &name() const;

    JobState state() const;
    bool done() const { return jobStateTerminal(state()); }

    /** First error of a Failed/Cancelled/Rejected job ("" otherwise). */
    std::string error() const;

    /** Typed rejection cause (None unless state() == Rejected). */
    RejectReason rejectReason() const;

    /** The tenant this job was submitted under. */
    TenantId tenant() const;

    /**
     * Cooperative preemption: bump the job's demote level (capped at
     * kMaxDemoteLevel). Already-queued task incarnations are re-tagged
     * at pop time with priority += levels * JobSpec::demotePenalty and
     * re-pushed — the job keeps running at lower effective standing
     * instead of draining. Returns true when the level was bumped
     * (false once the job is terminal).
     */
    bool deprioritize();

    /** Current demote level (0 = never deprioritized). */
    uint32_t demoteLevel() const;

    /**
     * Request cancellation. A Queued job is cancelled in place (never
     * runs); a Running job flips to Draining and its tasks are
     * discarded until quiescent. Returns true when this call latched
     * the cancellation, false when the job was already terminal or
     * already failing (the earlier verdict wins).
     */
    bool cancel();

    /** Block until the job is terminal; returns the terminal state. */
    JobState wait();

    /** Bounded wait; false on timeout (job not yet terminal). */
    bool waitFor(uint64_t ms, JobState *out = nullptr);

    /** Submit-to-terminal latency in ms (0 until terminal). */
    double latencyMs() const;

    /** Tasks this job completed (processed + discarded), for tests. */
    uint64_t tasksCompleted() const;

    /** Tasks this job dead-lettered (poison quarantine). */
    uint64_t poisonedTasks() const;

    /** Snapshot of the job's dead-letter queue: the final incarnation
     *  of every poisoned task, in quarantine order. */
    std::vector<Task> deadLetters() const;

  private:
    friend class ExecutorService;
    explicit JobHandle(std::shared_ptr<detail::JobRecord> record)
        : record_(std::move(record))
    {}

    std::shared_ptr<detail::JobRecord> record_;
};

/** Service tunables. */
struct ServiceOptions
{
    unsigned numThreads = 1;
    /** Max jobs admitted but not yet adopted by a worker. Submissions
     *  beyond this are rejected (or block, see blockWhenFull). */
    size_t admissionCapacity = 16;
    /** Overflowing submit blocks for queue space instead of
     *  rejecting. Shutdown unblocks such submitters with Rejected.
     *  Applies to the service-wide capacity and to per-tenant
     *  maxQueuedJobs quotas; rate limits always reject. */
    bool blockWhenFull = false;
    /**
     * Global in-flight task budget: while at least this many tasks are
     * created-but-not-completed across all jobs, no further queued job
     * dispatches (a dispatching job may overshoot transiently — its
     * seeds and children are never split). This is the saturation
     * throttle that makes the fair-queueing dispatch order govern the
     * completed-task share; 0 (default) = dispatch greedily, the
     * pre-fairness behavior.
     */
    uint64_t maxInFlightTasks = 0;
    /** Per-tenant weights and quotas. Tenants absent from the map get
     *  default TenantQuota (weight 1, no limits) on first use. */
    std::map<TenantId, TenantQuota> tenants;
    uint64_t seed = 1;           ///< retry-backoff jitter seed
    uint64_t reclaimAfterMs = 0; ///< forwarded to the scheduler
    /** Optional observability sink (>= numThreads worker slots,
     *  outlives the service). Workers attribute TaskRetries /
     *  DrainedTasks to their own slots; job latencies land in the
     *  JobLatencyMs global series. */
    MetricsRegistry *metrics = nullptr;
    /** Worker supervision: health FSM thresholds, replacement-worker
     *  budget, escalation (disabled by default — zero extra threads,
     *  zero per-iteration cost). */
    SupervisorPolicy supervisor;
};

/** Aggregate service counters + job-latency percentiles. */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;  ///< admission-queue overflow or shutdown
    uint64_t completed = 0;
    uint64_t failed = 0;    ///< ProcessFn errors (incl. deadline)
    uint64_t deadlineExpired = 0; ///< subset of failed
    uint64_t cancelled = 0;
    uint64_t taskRetries = 0;
    uint64_t tasksDrained = 0; ///< discarded for draining jobs
    uint64_t poisonedTasks = 0; ///< dead-lettered across all jobs
    uint64_t demotedTasks = 0; ///< incarnations re-tagged by preemption
    uint64_t autoDemotedJobs = 0; ///< demoteAfterMs auto-demotions
    /** Supervision (all 0 / false while supervision is disabled). */
    uint64_t workerRestarts = 0;
    uint64_t healthTransitions = 0;
    uint64_t wedgesDetected = 0;
    uint64_t crashesDetected = 0;
    bool escalated = false;
    /** Submit-to-terminal latency over terminal (non-rejected) jobs. */
    double jobLatencyP50Ms = 0.0;
    double jobLatencyP99Ms = 0.0;
    double jobLatencyMaxMs = 0.0;
    uint64_t jobsMeasured = 0;
};

/** Per-tenant accounting snapshot (ExecutorService::tenantStats()). */
struct TenantStats
{
    TenantId tenant = 0;
    double weight = 1.0;       ///< TenantQuota default weight
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t jobsCompleted = 0;
    uint64_t tasksProcessed = 0; ///< successful ProcessFn completions
    uint64_t queuedJobs = 0;     ///< backlog at snapshot time
    uint64_t inFlightTasks = 0;  ///< created-but-not-completed now
    double virtualFinish = 0.0;  ///< SFQ clock (diagnostics)
};

/**
 * The long-lived worker pool. Owns its worker threads and a deadline
 * monitor; schedules every job's tasks through the caller-provided
 * scheduler (any CPS design — wrap it in a VerifyingScheduler to get
 * per-job conservation checking). The scheduler must have exactly
 * ServiceOptions::numThreads workers and must outlive the service.
 */
class ExecutorService
{
  public:
    ExecutorService(Scheduler &sched, const ServiceOptions &options);
    ~ExecutorService();

    ExecutorService(const ExecutorService &) = delete;
    ExecutorService &operator=(const ExecutorService &) = delete;

    /**
     * Submit one job. Always returns a handle: inspect
     * handle.state() == JobState::Rejected (with handle.error() as the
     * reason) for admission failures. Safe from any thread, including
     * several submitters at once.
     */
    JobHandle submit(JobSpec spec);

    /** Jobs admitted and not yet terminal (queued + running +
     *  draining). */
    uint64_t activeJobs() const;

    /** Aggregate counters and latency percentiles so far. */
    ServiceStats stats() const;

    /** Per-tenant accounting for every tenant seen so far, ascending
     *  by tenant id. Safe from any thread. */
    std::vector<TenantStats> tenantStats() const;

    /** Health of worker slot `tid` (Healthy when supervision is
     *  disabled). Safe from any thread. */
    WorkerHealth workerHealth(unsigned tid) const;

    /** True once the supervisor spent the restart budget and failed
     *  the service: live jobs fail, new submissions are rejected. */
    bool escalated() const;

    /**
     * Stop accepting work, run every already-admitted job to a
     * terminal state, then join all threads. Idempotent; called by the
     * destructor. Blocked submitters are released with Rejected.
     */
    void shutdown();

  private:
    friend class JobHandle; ///< cancel/deprioritize route through here
    friend struct detail::JobRecord; ///< holds its TenantState pointer

    using Record = detail::JobRecord;
    using RecordPtr = std::shared_ptr<detail::JobRecord>;

    /**
     * One tenant's fair-queueing state. Structure (backlog, clocks,
     * bucket, plain counters) is guarded by admitMutex_; the atomics
     * are touched on the per-task hot path without it. Stored behind
     * stable unique_ptrs: JobRecords keep a raw pointer for inflight
     * accounting, and tenants are never erased while the service
     * lives.
     */
    struct TenantState
    {
        TenantId id = 0;
        TenantQuota quota;
        /** Backlog ordered by (job priority, id): strict priority +
         *  FIFO *within* the tenant; SFQ picks across tenants. */
        std::map<std::pair<Priority, JobId>, RecordPtr> backlog;
        double virtualFinish = 0.0; ///< SFQ per-tenant clock
        /** Frozen start tag of the current backlog head. Stamped when
         *  the backlog becomes non-empty and again after each
         *  dispatch — never re-derived from the advancing global
         *  clock at bid time, which would let a heavy tenant's
         *  dispatches push a light tenant's bid forward forever. */
        double headStart = 0.0;
        TokenBucket bucket;         ///< admission rate limiter
        uint64_t submitted = 0;
        uint64_t admitted = 0;
        uint64_t rejected = 0;
        std::atomic<uint64_t> inFlightTasks{0};
        std::atomic<uint64_t> jobsCompleted{0};
        std::atomic<uint64_t> tasksProcessed{0};
        /** Deadline-monitor-only sampling state for the per-tenant
         *  share/backlog series. */
        int shareSeries = -1;
        int backlogSeries = -1;
        uint64_t lastTasksProcessed = 0;
    };

    /** Thread entry for slot `tid`: runs workerLoop and latches the
     *  exit (crash vs cooperative) with the supervisor. */
    void workerEntry(unsigned tid);
    void workerLoop(unsigned tid, uint64_t epoch);
    void deadlineLoop();

    /** Supervisor thread: poll the health FSM and execute its
     *  decisions (quarantine + reclaim, heal, escalate). */
    void supervisorLoop();

    /** Quarantine `tid` and force-reclaim its buffered tasks into live
     *  peers; records ReclaimLatencyMs. Returns tasks moved. */
    size_t quarantineAndReclaim(unsigned tid);

    /** Heal a Dead slot: join the dead incarnation, reclaim its
     *  backlog, flush supervision metrics (post-join safe window),
     *  spawn a replacement, lift the quarantine. */
    void healWorker(unsigned tid);

    /** Restart budget spent: retire `tid`, fail every live job,
     *  reject future submissions, and drain the retired slot's queues
     *  so no task (and no job) strands. */
    void escalateService(unsigned tid);

    /** Dispatch the fair-queueing winner (if any tenant is eligible):
     *  seed its tasks under this worker's tid. Returns true when a job
     *  was adopted. */
    bool adoptOne(unsigned tid);

    /** Get-or-create a tenant's state; admitMutex_ must be held. */
    TenantState &tenantStateLocked(TenantId id);

    /** Ledger + in-flight accounting for `n` tasks created by `tid`
     *  on behalf of record's job (before they become poppable). */
    void noteTasksCreated(Record &record, unsigned tid, uint64_t n);

    /** Ledger + in-flight accounting for one completed task. */
    void noteTaskCompleted(Record &record, unsigned tid);

    /** Record per-tenant share/backlog series (deadline monitor only,
     *  every ~10ms). */
    void recordTenantSeries();

    /** Pop-side handling of one task belonging to `record`. */
    void processTask(unsigned tid, const RecordPtr &record,
                     const Task &task, std::vector<Task> &children);

    /** A task of `record` threw: retry with backoff, or exhaust the
     *  policy and latch the job failure. */
    void handleTaskFailure(unsigned tid, const RecordPtr &record,
                           const Task &task, const char *what);

    /**
     * Latch a failure verdict for the job (first verdict wins) and
     * start its drain; a still-Queued job is finished in place.
     * `widenCancelRace` arms the svc.cancel.race delay between the
     * verdict claim and the stop-flag publication. Returns true when
     * this call claimed the verdict.
     */
    bool terminateJob(const RecordPtr &record, JobState verdict,
                      const std::string &message, bool widenCancelRace);

    /** Terminal-transition attempt: if the job is quiescent, CAS it to
     *  its terminal state, record latency, wake waiters. */
    void maybeFinishJob(const RecordPtr &record);

    /** One-time terminal bookkeeping (state already stored). */
    void finishRecord(Record &record, JobState terminal);

    uint64_t retryBackoffUs(const Record &record,
                            const Task &task) const;

    Scheduler &sched_;
    ServiceOptions options_;

    /** Job table: every admitted, non-terminal job by id. Read on the
     *  per-task hot path (shared), written on admit/finish. */
    mutable std::shared_mutex jobsMutex_;
    std::unordered_map<JobId, RecordPtr> jobs_;

    /**
     * Admission state: per-tenant backlogs plus the global SFQ virtual
     * time. vtime_ advances to the winner's virtual start tag on every
     * dispatch, so a tenant going idle and returning gets no banked
     * credit (its clock snaps forward to max(vtime_, own finish)).
     * All guarded by admitMutex_.
     */
    mutable std::mutex admitMutex_;
    std::map<TenantId, std::unique_ptr<TenantState>> tenants_;
    double vtime_ = 0.0;
    size_t queuedJobs_ = 0; ///< total backlog across tenants
    std::condition_variable admitSpace_; ///< blocked submitters
    std::condition_variable work_;       ///< idle workers

    std::atomic<uint32_t> nextJobId_{1};
    std::atomic<bool> shutdown_{false};
    std::atomic<bool> escalated_{false};
    std::atomic<uint64_t> activeJobs_{0};

    /** Aggregate counters (relaxed; exact because each event is
     *  counted exactly once). */
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> deadlineExpired_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> taskRetries_{0};
    std::atomic<uint64_t> tasksDrained_{0};
    std::atomic<uint64_t> poisonedTasks_{0};
    std::atomic<uint64_t> demotedTasks_{0};
    std::atomic<uint64_t> autoDemotedJobs_{0};
    /** Created-but-not-completed tasks across all jobs (the
     *  maxInFlightTasks dispatch gate). */
    std::atomic<uint64_t> inFlightTasks_{0};

    /** Latencies of terminal (non-rejected) jobs, ms. The mutex also
     *  serializes JobLatencyMs recordGlobal writers. */
    mutable std::mutex latencyMutex_;
    std::vector<double> latenciesMs_;

    /** Deadline monitor pacing (own mutex: never contends workers). */
    std::mutex deadlineMutex_;
    std::condition_variable deadlineCv_;

    /** Supervisor pacing (own mutex, same pattern as the deadline
     *  monitor). Null while supervision is disabled. */
    std::unique_ptr<WorkerSupervisor> supervisor_;
    std::mutex supervisorMutex_;
    std::condition_variable supervisorCv_;
    std::thread supervisorThread_;

    std::mutex shutdownMutex_; ///< serializes the join phase
    std::vector<std::thread> workers_;
    std::thread deadlineMonitor_;
};

} // namespace hdcps

#endif // HDCPS_RUNTIME_EXECUTOR_SERVICE_H_
