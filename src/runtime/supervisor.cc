#include "runtime/supervisor.h"

#include "support/logging.h"

namespace hdcps {

const char *
workerHealthName(WorkerHealth h)
{
    switch (h) {
    case WorkerHealth::Healthy: return "healthy";
    case WorkerHealth::Suspect: return "suspect";
    case WorkerHealth::Wedged: return "wedged";
    case WorkerHealth::Dead: return "dead";
    case WorkerHealth::Retired: return "retired";
    }
    return "?";
}

WorkerSupervisor::WorkerSupervisor(unsigned numWorkers,
                                   SupervisorPolicy policy)
    : policy_(policy)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(policy_.wedgedAfterMs >= policy_.suspectAfterMs,
                "wedged threshold below suspect threshold");
    slots_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        slots_.push_back(std::make_unique<Slot>());
}

void
WorkerSupervisor::transition(Slot &slot, WorkerHealth next)
{
    slot.pendingTransitions += 1;
    totalTransitions_.fetch_add(1, std::memory_order_relaxed);
    slot.health.store(next, std::memory_order_release);
}

WorkerSupervisor::Decision
WorkerSupervisor::poll(unsigned tid, uint64_t nowNs)
{
    Slot &slot = *slots_[tid];
    const WorkerHealth h =
        slot.health.load(std::memory_order_relaxed);
    if (h == WorkerHealth::Retired || h == WorkerHealth::Dead)
        return Decision::None; // mid-heal or out of service

    WorkerLifeline &life = slot.lifeline;

    // The exit latch outranks staleness: the thread is provably gone.
    if (life.exited.load(std::memory_order_acquire)) {
        const bool crashed =
            life.crashed.load(std::memory_order_relaxed);
        // A clean exit from a non-superseded worker is the shutdown
        // drain — the shutdown flag governs it, not the supervisor.
        if (!crashed && h != WorkerHealth::Wedged)
            return Decision::None;
        if (crashed)
            crashesDetected_.fetch_add(1, std::memory_order_relaxed);
        transition(slot, WorkerHealth::Dead);
        if (escalated_.load(std::memory_order_relaxed) ||
            !restartAllowed(nowNs)) {
            escalated_.store(true, std::memory_order_release);
            return Decision::Escalate;
        }
        restartWindow_.push_back(nowNs); // pre-charge the budget
        return Decision::Restart;
    }

    const uint64_t hb =
        life.heartbeatNs.load(std::memory_order_relaxed);
    if (hb == 0 || nowNs <= hb)
        return Decision::None; // not yet started, or clock skew
    const uint64_t staleNs = nowNs - hb;
    const uint64_t suspectNs = policy_.suspectAfterMs * 1000000ull;
    const uint64_t wedgedNs = policy_.wedgedAfterMs * 1000000ull;

    if (staleNs >= wedgedNs) {
        if (h != WorkerHealth::Wedged) {
            // Supersede first (release pairs with the zombie's
            // superseded() acquire), then report: by the time the
            // service quarantines and reclaims, any late wake of the
            // stuck thread exits at its next loop top instead of
            // racing the reclamation.
            life.epoch.fetch_add(1, std::memory_order_release);
            wedgesDetected_.fetch_add(1, std::memory_order_relaxed);
            if (h == WorkerHealth::Healthy)
                transition(slot, WorkerHealth::Suspect);
            transition(slot, WorkerHealth::Wedged);
            return Decision::Quarantine;
        }
        return Decision::None; // already superseded; await its exit
    }
    if (staleNs >= suspectNs) {
        if (h == WorkerHealth::Healthy)
            transition(slot, WorkerHealth::Suspect);
        return Decision::None;
    }
    if (h == WorkerHealth::Suspect)
        transition(slot, WorkerHealth::Healthy); // heartbeat recovered
    return Decision::None;
}

void
WorkerSupervisor::noteRestarted(unsigned tid, uint64_t nowNs)
{
    Slot &slot = *slots_[tid];
    WorkerLifeline &life = slot.lifeline;
    // The dead incarnation was joined, so no thread observes these
    // until the replacement spawns and captures epochOf().
    life.epoch.fetch_add(1, std::memory_order_release);
    life.crashed.store(false, std::memory_order_relaxed);
    life.exited.store(false, std::memory_order_release);
    life.heartbeatNs.store(nowNs, std::memory_order_relaxed);
    slot.restarts += 1;
    totalRestarts_.fetch_add(1, std::memory_order_relaxed);
    transition(slot, WorkerHealth::Healthy);
}

void
WorkerSupervisor::retire(unsigned tid)
{
    Slot &slot = *slots_[tid];
    if (slot.health.load(std::memory_order_relaxed) !=
        WorkerHealth::Retired)
        transition(slot, WorkerHealth::Retired);
}

bool
WorkerSupervisor::restartAllowed(uint64_t nowNs)
{
    const uint64_t windowNs = policy_.restartWindowMs * 1000000ull;
    while (!restartWindow_.empty() &&
           restartWindow_.front() + windowNs <= nowNs)
        restartWindow_.pop_front();
    return restartWindow_.size() < policy_.maxRestarts;
}

SupervisorStats
WorkerSupervisor::stats() const
{
    SupervisorStats s;
    s.healthTransitions =
        totalTransitions_.load(std::memory_order_relaxed);
    s.workerRestarts = totalRestarts_.load(std::memory_order_relaxed);
    s.wedgesDetected = wedgesDetected_.load(std::memory_order_relaxed);
    s.crashesDetected =
        crashesDetected_.load(std::memory_order_relaxed);
    s.escalated = escalated_.load(std::memory_order_acquire);
    return s;
}

uint64_t
WorkerSupervisor::drainTransitions(unsigned tid)
{
    Slot &slot = *slots_[tid];
    const uint64_t n = slot.pendingTransitions;
    slot.pendingTransitions = 0;
    return n;
}

} // namespace hdcps
