/**
 * @file
 * Worker supervision for the ExecutorService: a per-worker health FSM
 * driven by heartbeat freshness and the worker-exit latch, plus the
 * restart-budget policy that decides between healing and escalation.
 *
 * Health model (DESIGN.md §15):
 *
 *       fresh beat                 stale > suspectAfterMs
 *   Healthy <-------- Suspect -------------------------+
 *      |  ^              |                             |
 *      |  | noteRestarted| stale > wedgedAfterMs       |
 *      |  |              v                             |
 *      |  +---------- Wedged --(exit latch)--> Dead ---+--> Retired
 *      |                                        ^    (budget spent /
 *      +------------- (crash exit latch) -------+     shutdown)
 *
 * Division of labor: the supervisor *detects and decides* — it never
 * touches scheduler queues, metric slots, or threads itself. The
 * ExecutorService's supervisor loop executes the returned Decision
 * (quarantine + reclaim via the Scheduler supervision hooks, join +
 * respawn of the std::thread, metric flushes in the post-join safe
 * window). That split keeps this class a lock-free state machine that
 * is trivially exercised by unit tests without threads.
 *
 * Threading contract:
 *  - Worker API (beat / superseded / noteExit) is called by worker
 *    threads; it only touches that worker's padded WorkerLifeline
 *    atomics.
 *  - Supervisor API (poll / noteRestarted / retire / restartAllowed)
 *    is called by exactly one supervisor thread; per-slot FSM state is
 *    plain data owned by that thread.
 *  - Read-only views (health / stats accessors) are safe from any
 *    thread: health is mirrored into an atomic per slot.
 */

#ifndef HDCPS_RUNTIME_SUPERVISOR_H_
#define HDCPS_RUNTIME_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "runtime/worker_common.h"

namespace hdcps {

/** Per-worker health states, ordered by severity. */
enum class WorkerHealth : uint8_t {
    Healthy, ///< heartbeat fresh, thread live
    Suspect, ///< heartbeat stale past the suspect threshold
    Wedged,  ///< stale past the wedged threshold; superseded + quarantined
    Dead,    ///< exit latch observed (crash, or wedged thread drained out)
    Retired, ///< slot permanently out of service (escalation / shutdown)
};

const char *workerHealthName(WorkerHealth h);

/** Detection thresholds and healing budget for the supervisor. */
struct SupervisorPolicy
{
    /** Master switch; when false the service spawns no supervisor
     *  thread and workers pay only the heartbeat store. */
    bool enabled = false;
    /** Supervisor probe cadence. */
    uint64_t probeIntervalMs = 2;
    /** Heartbeat staleness that demotes Healthy -> Suspect. */
    uint64_t suspectAfterMs = 20;
    /** Staleness that demotes Suspect -> Wedged (supersede, quarantine,
     *  reclaim). Must be >= suspectAfterMs. */
    uint64_t wedgedAfterMs = 100;
    /** Replacement spawns allowed per sliding window before the
     *  supervisor escalates and fails the service. */
    unsigned maxRestarts = 8;
    /** Width of the restart-budget sliding window. */
    uint64_t restartWindowMs = 10000;
};

/** Aggregate supervision counters (monotone; readable any time). */
struct SupervisorStats
{
    uint64_t healthTransitions = 0;
    uint64_t workerRestarts = 0;
    uint64_t wedgesDetected = 0;
    uint64_t crashesDetected = 0;
    bool escalated = false;
};

/**
 * The health FSM over all worker slots. One instance per
 * ExecutorService, sized at construction; slots are identified by the
 * same tid the scheduler and metrics use.
 */
class WorkerSupervisor
{
  public:
    /** What the service's supervisor loop must do for a slot now. */
    enum class Decision : uint8_t {
        None,       ///< no action
        Quarantine, ///< newly Wedged: quarantine + reclaim; epoch bumped
        Restart,    ///< Dead, budget ok: join, reclaim, respawn, then
                    ///< noteRestarted
        Escalate,   ///< Dead, budget spent: fail the service, retire
    };

    WorkerSupervisor(unsigned numWorkers, SupervisorPolicy policy);

    // ---- worker-thread API -------------------------------------------

    /** Publish liveness; call at every loop top. Relaxed — one padded
     *  store, same budget as the HD-CPS sRQ heartbeat. */
    void
    beat(unsigned tid, uint64_t nowNs)
    {
        slots_[tid]->lifeline.heartbeatNs.store(
            nowNs, std::memory_order_relaxed);
    }

    /** True once the supervisor superseded this incarnation: the
     *  caller must exit its loop and noteExit(). Acquire pairs with
     *  the supervisor's epoch bump. */
    bool
    superseded(unsigned tid, uint64_t myEpoch) const
    {
        return slots_[tid]->lifeline.epoch.load(
                   std::memory_order_acquire) != myEpoch;
    }

    /** The epoch a newly spawned worker must capture before its first
     *  superseded() check. */
    uint64_t
    epochOf(unsigned tid) const
    {
        return slots_[tid]->lifeline.epoch.load(
            std::memory_order_acquire);
    }

    /** Latch this incarnation's exit. Every path out of the worker
     *  loop must call this exactly once; `crashed` marks drill-killed
     *  or exception exits (they trigger healing) versus cooperative
     *  supersession/shutdown exits (consumed silently). */
    void
    noteExit(unsigned tid, bool crashed)
    {
        WorkerLifeline &life = slots_[tid]->lifeline;
        life.crashed.store(crashed, std::memory_order_relaxed);
        life.exited.store(true, std::memory_order_release);
    }

    // ---- supervisor-thread API (single caller) -----------------------

    /**
     * Advance slot `tid`'s FSM against the clock and return what the
     * service must do. Quarantine is returned exactly once per wedge
     * (the epoch is bumped before returning, superseding the stuck
     * thread); Restart/Escalate exactly once per death (the exit latch
     * is consumed). Restart decisions pre-charge the budget window.
     */
    Decision poll(unsigned tid, uint64_t nowNs);

    /** A replacement thread for `tid` was spawned: rearm the lifeline
     *  (fresh heartbeat, clear latches) and mark Healthy. Call after
     *  the old thread was joined and before the new one runs. */
    void noteRestarted(unsigned tid, uint64_t nowNs);

    /** Permanently remove `tid` from supervision (escalation or
     *  shutdown teardown of a dead slot). */
    void retire(unsigned tid);

    /** True while the restart budget has headroom at `nowNs`. */
    bool restartAllowed(uint64_t nowNs);

    // ---- read-only views (any thread) --------------------------------

    WorkerHealth
    health(unsigned tid) const
    {
        return slots_[tid]->health.load(std::memory_order_acquire);
    }

    bool
    escalated() const
    {
        return escalated_.load(std::memory_order_acquire);
    }

    SupervisorStats stats() const;

    /** Health transitions charged to slot `tid` since the last drain.
     *  Supervisor thread only; the service flushes the value into the
     *  per-worker metrics slot inside the post-join safe window. */
    uint64_t drainTransitions(unsigned tid);

    const SupervisorPolicy &policy() const { return policy_; }
    unsigned numWorkers() const { return unsigned(slots_.size()); }

  private:
    struct Slot
    {
        WorkerLifeline lifeline;
        /** Mirrored FSM state for cross-thread reads. */
        std::atomic<WorkerHealth> health{WorkerHealth::Healthy};
        /** Supervisor-private: transitions not yet drained into the
         *  per-worker metrics slot. */
        uint64_t pendingTransitions = 0;
        uint64_t restarts = 0;
    };

    void transition(Slot &slot, WorkerHealth next);

    SupervisorPolicy policy_;
    std::vector<std::unique_ptr<Slot>> slots_;
    /** Restart timestamps inside the sliding budget window
     *  (supervisor-thread private). */
    std::deque<uint64_t> restartWindow_;
    std::atomic<uint64_t> totalTransitions_{0};
    std::atomic<uint64_t> totalRestarts_{0};
    std::atomic<uint64_t> wedgesDetected_{0};
    std::atomic<uint64_t> crashesDetected_{0};
    std::atomic<bool> escalated_{false};
};

} // namespace hdcps

#endif // HDCPS_RUNTIME_SUPERVISOR_H_
