/**
 * @file
 * Worker-loop machinery shared by the one-shot executor (executor.cc)
 * and the long-lived multi-tenant ExecutorService
 * (executor_service.cc). Both drive the same pop/process/push loop
 * shape over a Scheduler; what they share lives here so the service is
 * a true generalization of the executor rather than a fork of it:
 *
 *  - TerminationCounters: the distributed created/completed counters
 *    and the completed-first quiescence scan (soundness argument on
 *    quiescentOnce; DESIGN.md §11). The executor keeps one instance
 *    per run; the service keeps one per *job*, which is exactly what
 *    turns run-level termination detection into per-job completion
 *    detection.
 *  - FailureLatch: first-error-wins failure latching plus the stop
 *    flag workers drain on. The executor latches once per run; the
 *    service embeds one latch per job, so one job's failure (thrown
 *    ProcessFn, expired deadline, explicit cancel) stops only that
 *    job's processing while co-resident jobs keep running.
 *  - IdleBackoff: the brief-spin-then-yield policy an empty-handed
 *    worker follows so oversubscribed hosts still make progress.
 *  - TokenBucket: the deterministic admission rate limiter the
 *    service's per-tenant quotas use (DESIGN.md §17).
 */

#ifndef HDCPS_RUNTIME_WORKER_COMMON_H_
#define HDCPS_RUNTIME_WORKER_COMMON_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/compiler.h"

namespace hdcps {

/**
 * Distributed termination state: per-worker monotone counters of tasks
 * created (seeds + children, bumped by the creating worker *before*
 * the push makes them poppable) and tasks completed (bumped with
 * release order after the task's children were pushed — or after its
 * failure was latched). Each worker only ever writes its own
 * cache-line-padded slot, so the per-task cost is two uncontended RMWs
 * instead of two fetch_adds on one global in-flight counter that every
 * core fights over.
 */
class TerminationCounters
{
  public:
    explicit TerminationCounters(unsigned numSlots)
        : created_(numSlots), completed_(numSlots)
    {}

    /** Count `n` tasks created by slot `tid`. Call *before* the push
     *  that makes them poppable. */
    void
    noteCreated(unsigned tid, uint64_t n = 1)
    {
        created_[tid].value.fetch_add(n, std::memory_order_release);
    }

    /** Relaxed seed-phase store (single-threaded, before workers
     *  start; the thread spawns publish it). */
    void
    seedCreated(unsigned tid, uint64_t n)
    {
        created_[tid].value.store(n, std::memory_order_relaxed);
    }

    /** Count one task completed by slot `tid`. Call *after* its
     *  children were pushed (or its failure latched). */
    void
    noteCompleted(unsigned tid)
    {
        completed_[tid].value.fetch_add(1, std::memory_order_release);
    }

    /**
     * One quiescence scan: read ALL completed counters first
     * (acquire), then ALL created counters, and compare the sums.
     *
     * Why completed-first makes the check sound: both counters are
     * monotone, and at any single instant created >= completed (a task
     * is counted created before it is poppable, so before it can
     * complete). Let D be the completed sum we read and C the created
     * sum read *after* it. By monotonicity C >= created@(end of
     * completed scan) >= completed@(same instant) >= D. So C == D
     * forces created == completed at the instant the completed scan
     * finished — i.e. the system was quiescent then. New tasks are
     * only created by in-flight tasks (seeding happens before workers
     * consume), so a quiescent system stays quiescent, and the
     * detection is safe: no false positives, and once all work is done
     * the next scan sees it. The acquire loads pair with the workers'
     * release increments, so a detector that observes a completion
     * also observes every child that completion created (created is
     * bumped before completed).
     */
    bool
    quiescentOnce() const
    {
        uint64_t done = 0;
        for (const auto &c : completed_)
            done += c.value.load(std::memory_order_acquire);
        uint64_t made = 0;
        for (const auto &c : created_)
            made += c.value.load(std::memory_order_acquire);
        return made == done;
    }

    /**
     * Two-pass termination check (the paper's HW protocol confirms an
     * idle snapshot with a second round before broadcasting DONE; we
     * mirror that shape). The single completed-first scan is already
     * sound — the confirm pass is cheap insurance on the cold idle
     * path and keeps the software check structurally faithful to
     * Section III-D.
     */
    bool quiescent() const { return quiescentOnce() && quiescentOnce(); }

    /** In-flight estimate for diagnostics and gauges. Reading
     *  completed before created keeps the difference non-negative. */
    uint64_t
    pendingApprox() const
    {
        uint64_t done = 0;
        for (const auto &c : completed_)
            done += c.value.load(std::memory_order_acquire);
        uint64_t made = 0;
        for (const auto &c : created_)
            made += c.value.load(std::memory_order_acquire);
        return made - done;
    }

    uint64_t
    createdTotal() const
    {
        uint64_t made = 0;
        for (const auto &c : created_)
            made += c.value.load(std::memory_order_acquire);
        return made;
    }

    uint64_t
    completedTotal() const
    {
        uint64_t done = 0;
        for (const auto &c : completed_)
            done += c.value.load(std::memory_order_acquire);
        return done;
    }

  private:
    std::vector<Padded<std::atomic<uint64_t>>> created_;
    std::vector<Padded<std::atomic<uint64_t>>> completed_;
};

/**
 * First-error failure latch: stop tells workers to drain out; failed
 * guards the first-error claim; error is written once, under mutex, by
 * the claim winner. Later callers lose the claim race and only
 * reinforce the stop flag — the error a caller reads afterwards is
 * always the first one.
 */
class FailureLatch
{
  public:
    /** Latch `message` as the failure and raise stop. Returns true for
     *  the claim winner (whose message was kept). */
    bool
    fail(std::string message)
    {
        bool expected = false;
        bool won = failed_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel);
        if (won) {
            std::lock_guard<std::mutex> lock(mutex_);
            error_ = std::move(message);
        }
        stop_.store(true, std::memory_order_release);
        return won;
    }

    /** Raise stop without recording an error (graceful drain). */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    bool
    stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    bool
    failed() const
    {
        return failed_.load(std::memory_order_acquire);
    }

    /** The first error. Safe once failed() is true (the winner stored
     *  it before raising failed); the lock is cold-path insurance. */
    std::string
    error() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return error_;
    }

  private:
    std::atomic<bool> stop_{false};
    std::atomic<bool> failed_{false};
    mutable std::mutex mutex_;
    std::string error_;
};

/**
 * Per-worker lifeline shared between a worker thread and its
 * supervisor (runtime/supervisor.h): a relaxed heartbeat the worker
 * publishes every loop iteration, a slot epoch the supervisor bumps to
 * supersede a wedged thread, and an exit latch that catches *anything*
 * leaving the worker loop — a crash drill, an escaped exception, or a
 * superseded thread acknowledging its replacement. Cache-line padded:
 * the heartbeat store is on every worker's per-iteration hot path.
 */
struct alignas(cacheLineBytes) WorkerLifeline
{
    /** Monotonic ns of the worker's last loop-top visit (relaxed —
     *  freshness only, exactly like the HD-CPS sRQ heartbeats). */
    std::atomic<uint64_t> heartbeatNs{0};
    /** Slot incarnation. A worker captures the epoch at spawn and
     *  exits at the next loop top once the supervisor bumped it
     *  (acquire/release pairing: a superseded worker that observes the
     *  bump also observes everything the supervisor published before
     *  it). */
    std::atomic<uint64_t> epoch{1};
    /** Exit latch: set exactly once by the exiting thread of the
     *  current incarnation, consumed (and cleared) by the supervisor
     *  before a replacement is spawned. */
    std::atomic<bool> exited{false};
    /** True when the exit was a crash (drill or escaped exception)
     *  rather than a cooperative supersession/shutdown exit. */
    std::atomic<bool> crashed{false};
};

/**
 * Deterministic token-bucket rate limiter: refills continuously at
 * ratePerSec up to a burst capacity; each admission consumes one
 * token. Callers pass the clock in, so tests can drive it with a
 * virtual time base and the refill math stays reproducible.
 *
 * NOT thread-safe — callers serialize access (the ExecutorService
 * consults its tenants' buckets under the admission mutex, which it
 * already holds on that path).
 */
class TokenBucket
{
  public:
    /** (Re)arm the bucket: ratePerSec <= 0 disables limiting (every
     *  tryTake succeeds). The bucket starts full. */
    void
    configure(double ratePerSec, double burst, uint64_t nowNs)
    {
        ratePerNs_ = ratePerSec > 0.0 ? ratePerSec / 1e9 : 0.0;
        capacity_ = std::max(burst, 1.0);
        tokens_ = capacity_;
        lastNs_ = nowNs;
    }

    bool unlimited() const { return ratePerNs_ <= 0.0; }

    /** Refill to `nowNs`, then take one token. False = rate exceeded. */
    bool
    tryTake(uint64_t nowNs)
    {
        if (unlimited())
            return true;
        if (nowNs > lastNs_) {
            tokens_ = std::min(
                capacity_,
                tokens_ + double(nowNs - lastNs_) * ratePerNs_);
            lastNs_ = nowNs;
        }
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    double tokens() const { return tokens_; }

  private:
    double ratePerNs_ = 0.0; ///< 0 = unlimited
    double capacity_ = 1.0;
    double tokens_ = 1.0;
    uint64_t lastNs_ = 0;
};

/** Idle-loop backoff: brief spin, then yield so oversubscribed hosts
 *  (threads > cores) still make progress. */
class IdleBackoff
{
  public:
    void reset() { spins_ = 0; }

    /** One empty-handed round; yields every 32nd call. Returns true
     *  when it yielded (callers may escalate to sleeping). */
    bool
    idle()
    {
        if (++spins_ <= 32)
            return false;
        spins_ = 0;
        std::this_thread::yield();
        return true;
    }

  private:
    unsigned spins_ = 0;
};

} // namespace hdcps

#endif // HDCPS_RUNTIME_WORKER_COMMON_H_
