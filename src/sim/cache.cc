#include "sim/cache.h"

#include <algorithm>

#include "support/compiler.h"
#include "support/logging.h"

namespace hdcps {

void
CacheModel::TagArray::init(unsigned numSets, unsigned numWays)
{
    ways = numWays;
    sets.assign(numSets, {});
    for (auto &set : sets)
        set.reserve(numWays);
}

bool
CacheModel::TagArray::touch(uint64_t line)
{
    auto &set = sets[line % sets.size()];
    auto it = std::find(set.begin(), set.end(), line);
    if (it == set.end())
        return false;
    // Move to front (MRU position).
    set.erase(it);
    set.insert(set.begin(), line);
    return true;
}

void
CacheModel::TagArray::insert(uint64_t line)
{
    auto &set = sets[line % sets.size()];
    if (set.size() >= ways)
        set.pop_back(); // silent LRU eviction
    set.insert(set.begin(), line);
}

CacheModel::CacheModel(const SimConfig &config, NocMesh &noc)
    : config_(config), noc_(noc), numCores_(config.numCores),
      lineShift_(log2Exact(config.lineBytes)), l1_(config.numCores),
      l2_(config.numCores)
{
    unsigned l1Sets = config.l1SizeBytes / (config.lineBytes * config.l1Ways);
    unsigned l2Sets = config.l2SizeBytes / (config.lineBytes * config.l2Ways);
    for (unsigned c = 0; c < numCores_; ++c) {
        l1_[c].init(l1Sets, config.l1Ways);
        l2_[c].init(l2Sets, config.l2Ways);
    }
}

Cycle
CacheModel::access(unsigned core, uint64_t addr, bool write, Cycle now)
{
    ++stats_.accesses;
    const uint64_t line = addr >> lineShift_;
    Cycle cost = config_.l1Latency;

    DirEntry &dir = directory_[line];
    auto noteWrite = [&] {
        if (write) {
            if (dir.lastWriter != ~0u && dir.lastWriter != core) {
                // Steal the line: invalidation round trip to the
                // previous writer (uncontended estimate).
                ++stats_.invalidations;
                cost += 2 * noc_.uncontendedLatency(core, dir.lastWriter,
                                                    config_.flitBits);
            }
            dir.lastWriter = core;
            dir.dirty = true;
        }
    };

    if (l1_[core].touch(line)) {
        ++stats_.l1Hits;
        noteWrite();
        return cost;
    }
    cost += config_.l2Latency;
    if (l2_[core].touch(line)) {
        ++stats_.l2Hits;
        l1_[core].insert(line);
        noteWrite();
        return cost;
    }

    // L2 miss: go through the directory home tile.
    const unsigned home = homeTile(line);
    const uint32_t lineBits = config_.lineBytes * 8;
    Cycle arrivalAtHome =
        noc_.transfer(core, home, config_.flitBits, now + cost);
    cost = arrivalAtHome - now;

    if (dir.dirty && dir.lastWriter != ~0u && dir.lastWriter != core) {
        // Dirty in another tile: forward + cache-to-cache transfer.
        ++stats_.remoteFetches;
        cost += noc_.uncontendedLatency(home, dir.lastWriter,
                                        config_.flitBits);
        cost += config_.l2Latency;
        cost += noc_.uncontendedLatency(dir.lastWriter, core, lineBits);
        if (!write)
            dir.dirty = false; // downgraded to shared
    } else {
        // Serve from DRAM through the line's controller.
        ++stats_.dramFetches;
        cost += config_.dramLatency;
        cost += noc_.uncontendedLatency(home, core, lineBits);
    }

    l2_[core].insert(line);
    l1_[core].insert(line);
    noteWrite();
    return cost;
}

Cycle
CacheModel::scan(unsigned core, uint64_t addr, uint64_t bytes, bool write,
                 Cycle now)
{
    if (bytes == 0)
        return 0;
    Cycle cost = 0;
    uint64_t first = addr >> lineShift_;
    uint64_t last = (addr + bytes - 1) >> lineShift_;
    for (uint64_t line = first; line <= last; ++line) {
        cost += access(core, line << lineShift_, write, now + cost);
    }
    return cost;
}

} // namespace hdcps
