/**
 * @file
 * Two-level cache hierarchy with a directory-style coherence cost model.
 *
 * Each tile has a private L1 and a private-L2 slice (Table I geometry),
 * modeled as real set-associative LRU tag arrays so locality effects —
 * the reason the paper's *pull* bag transport wins (Figure 14) — emerge
 * from actual line reuse rather than constants. Coherence is modeled at
 * cost granularity: a directory home tile per line (address
 * interleaved) tracks the last writer; reads that miss locally fetch
 * from the dirty owner or DRAM over the mesh, and writes that steal a
 * line from another core pay an invalidation round trip. Evictions are
 * silent (no writeback traffic), a deliberate simplification noted in
 * DESIGN.md.
 */

#ifndef HDCPS_SIM_CACHE_H_
#define HDCPS_SIM_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.h"
#include "sim/noc.h"

namespace hdcps {

/** Cache/coherence statistics for one simulation. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t l1Hits = 0;
    uint64_t l2Hits = 0;
    uint64_t remoteFetches = 0; ///< served dirty from another tile
    uint64_t dramFetches = 0;
    uint64_t invalidations = 0;
};

/** Cost-model cache hierarchy shared by all simulated cores. */
class CacheModel
{
  public:
    CacheModel(const SimConfig &config, NocMesh &noc);

    /**
     * Charge one data access by `core` to byte address `addr` at time
     * `now`; returns the access latency in cycles.
     */
    Cycle access(unsigned core, uint64_t addr, bool write, Cycle now);

    /**
     * Charge a sequential scan of `bytes` starting at `addr` (edge
     * arrays, bag payloads): one access() per distinct cache line.
     */
    Cycle scan(unsigned core, uint64_t addr, uint64_t bytes, bool write,
               Cycle now);

    const CacheStats &stats() const { return stats_; }

    void resetStats() { stats_ = CacheStats{}; }

  private:
    /** One set-associative LRU tag array. */
    struct TagArray
    {
        std::vector<std::vector<uint64_t>> sets; ///< MRU-first tag lists
        unsigned ways = 0;

        void init(unsigned numSets, unsigned numWays);
        bool touch(uint64_t line);  ///< probe+update LRU; true on hit
        void insert(uint64_t line); ///< fill, evicting LRU silently
    };

    struct DirEntry
    {
        unsigned lastWriter = ~0u;
        bool dirty = false;
    };

    unsigned homeTile(uint64_t line) const
    {
        return static_cast<unsigned>(line % numCores_);
    }

    /** By value: a reference here dangled when SimMachine was built
     *  from a temporary SimConfig (caught by the asan-ubsan preset). */
    const SimConfig config_;
    NocMesh &noc_;
    unsigned numCores_;
    unsigned lineShift_;
    std::vector<TagArray> l1_;
    std::vector<TagArray> l2_;
    std::unordered_map<uint64_t, DirEntry> directory_;
    CacheStats stats_;
};

} // namespace hdcps

#endif // HDCPS_SIM_CACHE_H_
