#include "sim/config.h"

#include "support/compiler.h"
#include "support/logging.h"

namespace hdcps {

void
SimConfig::check() const
{
    hdcps_check(numCores >= 1, "need at least one core");
    hdcps_check(meshWidth >= 1 && numCores % meshWidth == 0,
                "mesh width %u does not tile %u cores", meshWidth,
                numCores);
    hdcps_check(isPowerOf2(lineBytes), "line size must be a power of two");
    hdcps_check(l1SizeBytes % (lineBytes * l1Ways) == 0,
                "L1 geometry does not divide into sets");
    hdcps_check(l2SizeBytes % (lineBytes * l2Ways) == 0,
                "L2 geometry does not divide into sets");
    hdcps_check(dramControllers >= 1, "need at least one DRAM controller");
    hdcps_check(flitBits >= 8, "flit size too small");
}

void
SimConfig::printTable(std::ostream &os) const
{
    os << "Number of Cores          " << numCores
       << " RISC-V, In-Order @ 1 GHz\n"
       << "L1-I, L1-D Cache per core  " << l1SizeBytes / 1024 << " KB, "
       << l1Ways << "-way Assoc., " << l1Latency << " cycle\n"
       << "L2 Inclusive Cache per core  " << l2SizeBytes / 1024
       << " KB, " << l2Ways << "-way Assoc.\n"
       << "Directory Protocol       Invalidation-based MESI cost model\n"
       << "DRAM Controllers         " << dramControllers << ", "
       << dramLatency << " ns latency\n"
       << "Mesh                     " << meshWidth << "x" << meshHeight()
       << " electrical 2-D, XY routing\n"
       << "Hop Latency              " << hopLatency
       << " cycles (1-router, 1-link)\n"
       << "Contention Model         link contention, " << flitBits
       << " bit flits\n"
       << "Per-core Queue Entries   " << hrqEntries << " hRQ, "
       << hpqEntries << " hPQ entries\n"
       << "HW Queue Latency         " << hwQueueLatency
       << " cycles per access\n"
       << "Task and Bag ID Size     " << taskBits << "-bits\n";
}

} // namespace hdcps
