/**
 * @file
 * Simulated machine parameters — Table I of the paper.
 *
 * The simulator models the paper's 64-core tiled RISC-V multicore:
 * in-order cores at 1 GHz, private L1 + per-core L2 slice with a
 * MESI-style directory cost model, 8 DRAM controllers at 100 ns, an
 * 8x8 electrical 2-D mesh with XY routing, 2-cycle hops, 64-bit flits
 * and link contention, and the per-core hardware queues (32-entry hRQ,
 * 48-entry hPQ, 5-cycle access, 128-bit entries).
 *
 * The software-cost parameters at the bottom model the instruction
 * streams a real core executes for scheduler work (priority-queue
 * rebalancing, atomic RMW round trips); they stand in for the Xeon
 * machine of the paper's software experiments (see DESIGN.md).
 */

#ifndef HDCPS_SIM_CONFIG_H_
#define HDCPS_SIM_CONFIG_H_

#include <cstdint>
#include <ostream>

namespace hdcps {

/** Simulation time in core cycles (1 GHz: 1 cycle == 1 ns). */
using Cycle = uint64_t;

/** Table I parameters plus the software-operation cost model. */
struct SimConfig
{
    // Cores and mesh geometry.
    unsigned numCores = 64;
    unsigned meshWidth = 8; ///< 8x8 tiles; must satisfy w*h == numCores

    // Memory subsystem.
    uint32_t lineBytes = 64;
    uint32_t l1SizeBytes = 32 * 1024;
    uint32_t l1Ways = 4;
    uint32_t l1Latency = 1;
    uint32_t l2SizeBytes = 256 * 1024;
    uint32_t l2Ways = 8;
    uint32_t l2Latency = 8;
    uint32_t dramControllers = 8;
    uint32_t dramLatency = 100; ///< 100 ns @ 1 GHz

    // Interconnect.
    uint32_t hopLatency = 2; ///< 1 router + 1 link cycle per hop
    uint32_t flitBits = 64;

    // Hardware queues (HD-CPS:HW).
    uint32_t hrqEntries = 32;
    uint32_t hpqEntries = 48;
    uint32_t hwQueueLatency = 5; ///< cycles per hRQ/hPQ access
    uint32_t taskBits = 128;     ///< task/bag id size on the wire

    // Software scheduler cost model (cycles).
    uint32_t aluOpCost = 1;
    uint32_t atomicRmwCost = 20;     ///< uncontended RMW round trip
    uint32_t swPqBaseCost = 14;      ///< fixed part of a software PQ op
    uint32_t swPqPerLevelCost = 7;   ///< per heap level rebalanced
    uint32_t taskFixedCost = 12;     ///< per-task bookkeeping in compute
    uint32_t perEdgeAluCost = 3;     ///< ALU work per scanned edge
    uint32_t mapSearchBaseCost = 18; ///< OBIM global map lookup, fixed
    uint32_t idlePollCycles = 40;    ///< re-poll interval when starved

    /** Validate invariants; call after hand-editing fields. */
    void check() const;

    /** Mesh height derived from numCores and meshWidth. */
    unsigned
    meshHeight() const
    {
        return numCores / meshWidth;
    }

    /** Print the Table-I-style parameter listing. */
    void printTable(std::ostream &os) const;
};

} // namespace hdcps

#endif // HDCPS_SIM_CONFIG_H_
