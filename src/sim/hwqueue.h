/**
 * @file
 * The per-core hardware queues of HD-CPS:HW (paper Section III-D).
 *
 * hRQ: a small FIFO that absorbs incoming hardware messages with no
 * core involvement; when full, arrivals spill to the software receive
 * path. hPQ: a small priority queue in front of the software PQ; an
 * insert into a full hPQ evicts the *lowest*-priority entry to the
 * software queue, so the hardware always holds the best tasks and a
 * dequeue is a single 5-cycle access. Entries are 128 bits (one Task).
 *
 * Capacities are runtime parameters because Figure 7 sweeps them; a
 * capacity of zero turns the queue off (pure software mode).
 */

#ifndef HDCPS_SIM_HWQUEUE_H_
#define HDCPS_SIM_HWQUEUE_H_

#include <deque>
#include <optional>
#include <vector>

#include "cps/task.h"
#include "support/fault.h"
#include "support/logging.h"

namespace hdcps {

/** Hardware receive queue: bounded FIFO. */
class HwRecvQueue
{
  public:
    explicit HwRecvQueue(size_t capacity) : capacity_(capacity) {}

    bool full() const { return fifo_.size() >= capacity_; }
    bool empty() const { return fifo_.empty(); }
    size_t size() const { return fifo_.size(); }
    size_t capacity() const { return capacity_; }

    /** Accept an arriving message; false when full (spill to software). */
    bool
    tryPush(const Task &task)
    {
        // The fault site reports full regardless of occupancy, driving
        // the spill-to-software path at any capacity.
        if (full() || faultFires(faultsite::SimHrqFull))
            return false;
        fifo_.push_back(task);
        if (fifo_.size() > highWater_)
            highWater_ = fifo_.size();
        return true;
    }

    bool
    tryPop(Task &out)
    {
        if (fifo_.empty())
            return false;
        out = fifo_.front();
        fifo_.pop_front();
        return true;
    }

    /** Largest occupancy seen (Figure 7's utilization analysis). */
    size_t highWater() const { return highWater_; }

  private:
    std::deque<Task> fifo_;
    size_t capacity_;
    size_t highWater_ = 0;
};

/** Hardware priority queue: bounded min-PQ with evict-max-on-full. */
class HwPriorityQueue
{
  public:
    explicit HwPriorityQueue(size_t capacity) : capacity_(capacity)
    {
        entries_.reserve(capacity);
    }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Insert; when full, the lowest-priority (numerically largest)
     * entry — possibly the incoming one — is returned for the software
     * PQ to absorb.
     */
    std::optional<Task>
    pushEvict(const Task &task)
    {
        if (capacity_ == 0)
            return task;
        // The fault site pretends the hPQ is full (only meaningful when
        // it holds something to evict), exercising the evict path early.
        const bool forceFull =
            faultFires(faultsite::SimHpqEvict) && !entries_.empty();
        if (!forceFull && entries_.size() < capacity_) {
            entries_.push_back(task);
            if (entries_.size() > highWater_)
                highWater_ = entries_.size();
            return std::nullopt;
        }
        size_t worst = 0;
        for (size_t i = 1; i < entries_.size(); ++i) {
            if (TaskOrder{}(entries_[worst], entries_[i]))
                worst = i;
        }
        if (TaskOrder{}(task, entries_[worst])) {
            Task evicted = entries_[worst];
            entries_[worst] = task;
            return evicted;
        }
        return task; // incoming entry is the worst: spill it directly
    }

    /** Priority of the best entry; empty() must be false. */
    Priority
    minPriority() const
    {
        hdcps_check(!entries_.empty(), "minPriority() on empty hPQ");
        size_t best = bestIndex();
        return entries_[best].priority;
    }

    Task
    popMin()
    {
        hdcps_check(!entries_.empty(), "popMin() on empty hPQ");
        size_t best = bestIndex();
        Task out = entries_[best];
        entries_[best] = entries_.back();
        entries_.pop_back();
        return out;
    }

    size_t highWater() const { return highWater_; }

  private:
    size_t
    bestIndex() const
    {
        size_t best = 0;
        for (size_t i = 1; i < entries_.size(); ++i) {
            if (TaskOrder{}(entries_[i], entries_[best]))
                best = i;
        }
        return best;
    }

    std::vector<Task> entries_;
    size_t capacity_;
    size_t highWater_ = 0;
};

} // namespace hdcps

#endif // HDCPS_SIM_HWQUEUE_H_
