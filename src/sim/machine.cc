#include "sim/machine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace hdcps {

SimMachine::SimMachine(const SimConfig &config, Workload &workload,
                       uint64_t seed)
    : config_(config), workload_(&workload), noc_(config),
      cache_(config, noc_), busyUntil_(config.numCores, 0),
      breakdown_(config.numCores), localBump_(config.numCores, 0),
      mailboxes_(config.numCores), drift_(config.numCores)
{
    config_.check();
    rngs_.reserve(config.numCores);
    for (unsigned c = 0; c < config.numCores; ++c)
        rngs_.emplace_back(mix64(seed) + c * 0x9e3779b9ull);
}

void
SimMachine::advance(unsigned core, Cycle cycles, Component comp)
{
    busyUntil_[core] += cycles;
    breakdown_[core][comp] += cycles;
    if (comp != Component::Comm)
        lastProductive_ = std::max(lastProductive_, busyUntil_[core]);
}

void
SimMachine::stallUntil(unsigned core, Cycle cycle)
{
    if (cycle > busyUntil_[core]) {
        breakdown_[core][Component::Comm] += cycle - busyUntil_[core];
        busyUntil_[core] = cycle;
    }
}

uint64_t
SimMachine::allocLocal(unsigned core, uint64_t bytes)
{
    uint64_t offset = localBump_[core];
    localBump_[core] = (offset + bytes) % localRegionBytes_;
    return coreLocalAddr(core, offset);
}

Cycle
SimMachine::chargeCompute(unsigned core, NodeId node, uint32_t edges,
                          const NodeId *writes, size_t numWrites)
{
    Cycle start = busyUntil_[core];
    Cycle cost = config_.taskFixedCost;
    // Read the task's node record.
    cost += cache_.access(core, nodeAddr(node), false, start + cost);
    if (edges > 0) {
        // Sequential scan of the out-edge array.
        EdgeId base = workload_->graph().edgeBegin(node);
        cost += cache_.scan(core, edgeAddr(base), uint64_t(edges) * 8,
                            false, start + cost);
        cost += uint64_t(edges) * config_.perEdgeAluCost;
        // Touch each scanned destination's node record. Destinations
        // come from the edge list (bounded by the actual out-degree;
        // kernels like MST may report a different span — approximate
        // with the first `edges` destinations of this node).
        const Graph &g = workload_->graph();
        EdgeId end = std::min<EdgeId>(base + edges, g.edgeEnd(node));
        for (EdgeId e = base; e < end; ++e) {
            cost += cache_.access(core, nodeAddr(g.edgeDest(e)), false,
                                  start + cost);
        }
    }
    // Writes for each produced child (label updates).
    for (size_t i = 0; i < numWrites; ++i) {
        cost += cache_.access(core, nodeAddr(writes[i]), true,
                              start + cost);
    }
    advance(core, cost, Component::Compute);
    ++breakdown_[core].tasksProcessed;
    if (numWrites == 0 && edges == 0)
        ++breakdown_[core].emptyTasks;
    return cost;
}

Cycle
SimMachine::processTask(unsigned core, const Task &task,
                        std::vector<Task> &children)
{
    const size_t childrenBefore = children.size();
    uint32_t edges = workload_->process(task, children);

    scratchWrites_.clear();
    for (size_t i = childrenBefore; i < children.size(); ++i)
        scratchWrites_.push_back(children[i].node);
    return chargeCompute(core, task.node, edges, scratchWrites_.data(),
                         scratchWrites_.size());
}

void
SimMachine::sendTaskMessage(unsigned src, unsigned dst, const Task &task,
                            uint32_t payloadBits, Cycle extraDelay,
                            uint32_t tag)
{
    Cycle depart = busyUntil_[src] + extraDelay;
    Cycle arrival = noc_.transfer(src, dst, payloadBits, depart);
    mailboxes_[dst].push(
        SimMessage{arrival, dst, task, tag, messageSerial_++});
    ++inFlight_;
}

void
SimMachine::deliveredMessages(unsigned dst,
                              std::vector<DeliveredMessage> &out)
{
    auto &box = mailboxes_[dst];
    while (!box.empty() && box.top().arrival <= busyUntil_[dst]) {
        out.push_back(DeliveredMessage{box.top().task, box.top().tag});
        box.pop();
        --inFlight_;
    }
}

bool
SimMachine::nextArrival(unsigned dst, Cycle &when) const
{
    if (mailboxes_[dst].empty())
        return false;
    when = mailboxes_[dst].top().arrival;
    return true;
}

void
SimMachine::notePopped(unsigned core, Priority priority)
{
    drift_.publish(core, priority);
    if (++popsSinceSample_ >= driftInterval_) {
        popsSinceSample_ = 0;
        driftSeries_.record(drift_.computeDrift());
    }
}

unsigned
SimMachine::pickNextCore() const
{
    unsigned best = 0;
    for (unsigned c = 1; c < config_.numCores; ++c) {
        if (busyUntil_[c] < busyUntil_[best])
            best = c;
    }
    return best;
}

SimResult
SimMachine::run(SimDesign &design, unsigned driftInterval)
{
    hdcps_check(driftInterval >= 1, "drift interval must be >= 1");
    driftInterval_ = driftInterval;

    std::vector<Task> initial = workload_->initialTasks();
    pending_ = static_cast<int64_t>(initial.size());
    design.boot(*this, initial);

    // Main loop: always step the core whose clock is furthest behind;
    // this keeps cross-core interactions (messages, shared structures)
    // causally ordered to within one scheduler operation. Cores that
    // keep coming up empty back off exponentially (capped) so long
    // starvation phases do not dominate host time; the extra wake-up
    // latency lands in the comm component, where idleness belongs.
    std::vector<unsigned> idleStreak(config_.numCores, 0);
    const bool debug = std::getenv("HDCPS_SIM_DEBUG") != nullptr;
    uint64_t steps = 0;
    uint64_t tasksAtLastReport = 0;
    while (pending_ > 0) {
        if (debug && (++steps & ((1u << 22) - 1)) == 0) {
            uint64_t tasks = 0;
            for (const Breakdown &b : breakdown_)
                tasks += b.tasksProcessed;
            std::fprintf(stderr,
                         "[sim] steps=%lluM pending=%lld tasks=%llu "
                         "(+%llu) cycle=%llu\n",
                         (unsigned long long)(steps >> 20),
                         (long long)pending_,
                         (unsigned long long)tasks,
                         (unsigned long long)(tasks - tasksAtLastReport),
                         (unsigned long long)busyUntil_[pickNextCore()]);
            tasksAtLastReport = tasks;
        }
        unsigned core = pickNextCore();
        bool progress = design.step(*this, core);
        if (progress) {
            idleStreak[core] = 0;
            continue;
        }
        Cycle arrival;
        if (nextArrival(core, arrival) && arrival > busyUntil_[core]) {
            // A message is on the way: sleep exactly until it lands.
            stallUntil(core, arrival);
            idleStreak[core] = 0;
        } else {
            unsigned shift = std::min(idleStreak[core], 7u);
            advance(core, Cycle(config_.idlePollCycles) << shift,
                    Component::Comm);
            ++idleStreak[core];
        }
    }
    hdcps_check(inFlight_ == 0,
                "tasks still in flight after termination");

    SimResult result;
    result.completionCycles = lastProductive_;
    result.perCore = breakdown_;
    for (const Breakdown &b : breakdown_)
        result.total += b;
    result.avgDrift = driftSeries_.average();
    result.maxDrift = driftSeries_.maxSample();
    result.noc = noc_.stats();
    result.cache = cache_.stats();
    std::string why;
    result.verified = workload_->verify(&why);
    result.verifyError = why;
    return result;
}

} // namespace hdcps
