/**
 * @file
 * The simulated 64-core tiled multicore.
 *
 * SimMachine owns the per-core clocks, the mesh NoC, the cache model,
 * the task-carrying message queue, breakdown/drift accounting, and the
 * run loop. A *design* (simsched/) implements the scheduler behaviour:
 * the machine repeatedly steps the core whose clock is furthest behind,
 * and the design performs one scheduler-loop iteration on that core,
 * charging cycles through the machine's services. Simulation is
 * single-host-threaded and fully deterministic for a given seed.
 *
 * Task accounting mirrors the threaded runtime: a task is pending from
 * creation until its processing (children included) finishes, so the
 * run loop terminates exactly when no work exists anywhere — queues,
 * in-flight messages, or bags.
 */

#ifndef HDCPS_SIM_MACHINE_H_
#define HDCPS_SIM_MACHINE_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "algos/workload.h"
#include "core/drift.h"
#include "cps/task.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/noc.h"
#include "stats/breakdown.h"
#include "support/rng.h"

namespace hdcps {

class SimMachine;

/** A scheduler design running on the simulated machine. */
class SimDesign
{
  public:
    virtual ~SimDesign() = default;

    /** Design name for tables ("reld", "hdcps-hw", "swarm", ...). */
    virtual const char *name() const = 0;

    /** Distribute the initial task set before the clock starts. */
    virtual void boot(SimMachine &m, const std::vector<Task> &initial) = 0;

    /**
     * One scheduler-loop iteration on `core`: drain queues, dequeue,
     * process, distribute. Charge time via SimMachine::advance().
     * Return false when the core found nothing to do (the machine then
     * charges an idle poll).
     */
    virtual bool step(SimMachine &m, unsigned core) = 0;
};

/** Everything a figure harness reads out of one simulated execution. */
struct SimResult
{
    Cycle completionCycles = 0;
    Breakdown total;
    std::vector<Breakdown> perCore;
    double avgDrift = 0.0;
    double maxDrift = 0.0;
    NocStats noc;
    CacheStats cache;
    bool verified = false;
    std::string verifyError;
};

/** A task in flight on the mesh. */
struct SimMessage
{
    Cycle arrival;
    unsigned dst;
    Task task;
    uint32_t tag; ///< design-defined (e.g. sender id for flow control)
    uint64_t serial; ///< FIFO tie-break for equal arrival cycles

    bool
    operator>(const SimMessage &o) const
    {
        if (arrival != o.arrival)
            return arrival > o.arrival;
        return serial > o.serial;
    }
};

/** A message delivered to its destination tile. */
struct DeliveredMessage
{
    Task task;
    uint32_t tag;
};

/** The simulated multicore. */
class SimMachine
{
  public:
    SimMachine(const SimConfig &config, Workload &workload,
               uint64_t seed = 1);

    const SimConfig &config() const { return config_; }
    Workload &workload() { return *workload_; }
    NocMesh &noc() { return noc_; }
    CacheModel &cache() { return cache_; }
    Rng &rng(unsigned core) { return rngs_[core]; }

    // ---- time -----------------------------------------------------
    Cycle now(unsigned core) const { return busyUntil_[core]; }

    /** Charge `cycles` on `core`'s clock under breakdown `comp`. */
    void advance(unsigned core, Cycle cycles, Component comp);

    /** Mutable per-core breakdown (designs bump their own counters). */
    Breakdown &breakdownOf(unsigned core) { return breakdown_[core]; }

    /** Stall `core` until at least `cycle` (charged as comm/idle). */
    void stallUntil(unsigned core, Cycle cycle);

    // ---- address map ----------------------------------------------
    uint64_t nodeAddr(NodeId n) const { return nodeBase_ + uint64_t(n) * 8; }
    uint64_t edgeAddr(EdgeId e) const { return edgeBase_ + e * 8; }

    /** Per-core private region (scheduler structures, bag payloads). */
    uint64_t
    coreLocalAddr(unsigned core, uint64_t offset) const
    {
        return localBase_ + uint64_t(core) * localRegionBytes_ +
               (offset % localRegionBytes_);
    }

    /** Bump-allocate payload bytes in a core's local region. */
    uint64_t allocLocal(unsigned core, uint64_t bytes);

    // ---- task accounting -------------------------------------------
    void taskCreated(uint64_t n = 1) { pending_ += static_cast<int64_t>(n); }
    void taskRetired() { --pending_; }
    int64_t pending() const { return pending_; }

    /**
     * Run the workload's semantics for one task and charge its compute
     * cost (fixed overhead + edge-array scan + per-edge destination
     * accesses through the cache model). Appends children; returns the
     * compute cycles charged.
     */
    Cycle processTask(unsigned core, const Task &task,
                      std::vector<Task> &children);

    /**
     * Charge only the compute cost of processing `node` (fixed cost,
     * edge scan, destination touches, label writes) without running
     * workload semantics — used by trace-replaying designs (Swarm).
     */
    Cycle chargeCompute(unsigned core, NodeId node, uint32_t edges,
                        const NodeId *writes, size_t numWrites);

    // ---- messaging --------------------------------------------------
    /**
     * Inject a task-carrying message from src (departing at src's
     * current time + `extraDelay`) to dst; payloadBits on the wire.
     * Delivery is asynchronous; poll with deliveredMessages().
     */
    void sendTaskMessage(unsigned src, unsigned dst, const Task &task,
                         uint32_t payloadBits, Cycle extraDelay = 0,
                         uint32_t tag = 0);

    /** Pop all messages for dst that have arrived by dst's clock. */
    void deliveredMessages(unsigned dst,
                           std::vector<DeliveredMessage> &out);

    /** Earliest pending arrival for dst (or 0 if none). */
    bool nextArrival(unsigned dst, Cycle &when) const;

    /** Messages still on the wire (all destinations). */
    size_t messagesInFlight() const { return inFlight_; }

    // ---- drift -------------------------------------------------------
    /** Record the priority a core just processed (machine-level Eq. 1
     *  reporting, independent of any design-internal tracker). */
    void notePopped(unsigned core, Priority priority);

    // ---- run ----------------------------------------------------------
    /**
     * Drive `design` until no pending work remains; verifies the
     * workload and fills the result. driftInterval is in pops.
     */
    SimResult run(SimDesign &design, unsigned driftInterval = 2000);

  private:
    unsigned pickNextCore() const;

    static constexpr uint64_t localRegionBytes_ = 16ull << 20;

    SimConfig config_;
    Workload *workload_;
    NocMesh noc_;
    CacheModel cache_;
    std::vector<Rng> rngs_;
    std::vector<Cycle> busyUntil_;
    std::vector<Breakdown> breakdown_;
    std::vector<uint64_t> localBump_;

    // Per-destination arrival queues.
    std::vector<std::priority_queue<SimMessage, std::vector<SimMessage>,
                                    std::greater<SimMessage>>>
        mailboxes_;
    uint64_t messageSerial_ = 0;
    size_t inFlight_ = 0;

    int64_t pending_ = 0;
    Cycle lastProductive_ = 0;

    DriftTracker drift_;
    DriftSeries driftSeries_;
    uint64_t popsSinceSample_ = 0;
    unsigned driftInterval_ = 2000;

    uint64_t nodeBase_ = 0x10000000ull;
    uint64_t edgeBase_ = 0x40000000ull;
    uint64_t localBase_ = 0x100000000ull;
    std::vector<NodeId> scratchWrites_;
};

} // namespace hdcps

#endif // HDCPS_SIM_MACHINE_H_
