#include "sim/noc.h"

#include <algorithm>

#include "support/fault.h"
#include "support/logging.h"

namespace hdcps {

namespace {

// Direction encoding for the four mesh neighbours.
constexpr unsigned dirEast = 0;
constexpr unsigned dirWest = 1;
constexpr unsigned dirNorth = 2;
constexpr unsigned dirSouth = 3;

} // namespace

NocMesh::NocMesh(const SimConfig &config)
    : width_(config.meshWidth), height_(config.meshHeight()),
      hopLatency_(config.hopLatency), flitBits_(config.flitBits),
      linkFree_(static_cast<size_t>(config.numCores) * 4, 0)
{
    hdcps_check(width_ * height_ == config.numCores,
                "mesh geometry mismatch");
}

unsigned
NocMesh::linkId(unsigned fromTile, unsigned direction) const
{
    return fromTile * 4 + direction;
}

unsigned
NocMesh::hopCount(unsigned src, unsigned dst) const
{
    unsigned dx = tileX(src) > tileX(dst) ? tileX(src) - tileX(dst)
                                          : tileX(dst) - tileX(src);
    unsigned dy = tileY(src) > tileY(dst) ? tileY(src) - tileY(dst)
                                          : tileY(dst) - tileY(src);
    return dx + dy;
}

void
NocMesh::pathLinks(unsigned src, unsigned dst,
                   std::vector<unsigned> &out) const
{
    out.clear();
    unsigned x = tileX(src);
    unsigned y = tileY(src);
    const unsigned tx = tileX(dst);
    const unsigned ty = tileY(dst);
    // X first, then Y (dimension-ordered routing).
    while (x != tx) {
        unsigned tile = y * width_ + x;
        if (x < tx) {
            out.push_back(linkId(tile, dirEast));
            ++x;
        } else {
            out.push_back(linkId(tile, dirWest));
            --x;
        }
    }
    while (y != ty) {
        unsigned tile = y * width_ + x;
        if (y < ty) {
            out.push_back(linkId(tile, dirSouth));
            ++y;
        } else {
            out.push_back(linkId(tile, dirNorth));
            --y;
        }
    }
}

Cycle
NocMesh::uncontendedLatency(unsigned src, unsigned dst,
                            uint32_t payloadBits) const
{
    if (src == dst)
        return 0;
    uint32_t flits = (payloadBits + flitBits_ - 1) / flitBits_;
    if (flits == 0)
        flits = 1;
    return static_cast<Cycle>(hopCount(src, dst)) * hopLatency_ + flits -
           1;
}

Cycle
NocMesh::transfer(unsigned src, unsigned dst, uint32_t payloadBits,
                  Cycle depart)
{
    if (src == dst)
        return depart;

    uint32_t flits = (payloadBits + flitBits_ - 1) / flitBits_;
    if (flits == 0)
        flits = 1;

    pathLinks(src, dst, scratchPath_);
    Cycle headArrival = depart;
    for (unsigned link : scratchPath_) {
        // The head flit waits for the link, then takes one hop; the
        // link stays busy for the message's full flit train. The wait
        // is capped: transfers are issued only approximately in time
        // order (cores can be stalled far apart), so an uncapped
        // reservation would let one far-future caller poison a link
        // for every later, earlier-in-time caller. The cap bounds the
        // modeled queueing delay per link while preserving the
        // contention signal.
        Cycle start = std::max(headArrival, linkFree_[link]);
        if (start > headArrival + maxLinkQueue) {
            start = headArrival + maxLinkQueue;
        }
        stats_.contentionCycles += start - headArrival;
        linkFree_[link] = start + flits;
        headArrival = start + hopLatency_;
    }
    // Tail flit trails the head by (flits - 1) cycles, plus any
    // fault-injected slowdown (models a congested or degraded link).
    Cycle arrival = headArrival + flits - 1 +
                    static_cast<Cycle>(faultAmount(faultsite::SimNocDelay));

    ++stats_.messages;
    stats_.flits += flits;
    stats_.hops += scratchPath_.size();
    return arrival;
}

} // namespace hdcps
