/**
 * @file
 * 2-D mesh on-chip network with XY routing and link contention.
 *
 * Matches Table I: electrical mesh, XY dimension-ordered routing,
 * 2-cycle hop latency (1 router + 1 link), 64-bit flits, contention
 * modeled on links only (infinite input buffers). A message of F flits
 * occupies each link on its path for F cycles; the model tracks each
 * directed link's next-free cycle and serializes messages that share a
 * link, which is how scheduler-induced traffic hot spots slow task
 * transfers down.
 */

#ifndef HDCPS_SIM_NOC_H_
#define HDCPS_SIM_NOC_H_

#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace hdcps {

/** Aggregate NoC statistics for one simulation. */
struct NocStats
{
    uint64_t messages = 0;
    uint64_t flits = 0;
    uint64_t hops = 0;
    uint64_t contentionCycles = 0; ///< cycles spent queued on busy links
};

/** The mesh interconnect model. */
class NocMesh
{
  public:
    explicit NocMesh(const SimConfig &config);

    /**
     * Send payloadBits from tile src to tile dst, departing no earlier
     * than `depart`. Returns the arrival cycle at dst, accounting hop
     * latency, serialization, and per-link contention. src == dst
     * returns `depart` (core-local).
     */
    Cycle transfer(unsigned src, unsigned dst, uint32_t payloadBits,
                   Cycle depart);

    /** Pure latency of a src->dst message with an idle network. */
    Cycle uncontendedLatency(unsigned src, unsigned dst,
                             uint32_t payloadBits) const;

    /** Manhattan hop count between two tiles. */
    unsigned hopCount(unsigned src, unsigned dst) const;

    const NocStats &stats() const { return stats_; }

    void resetStats() { stats_ = NocStats{}; }

    /** Upper bound on modeled queueing delay per link (see transfer). */
    static constexpr Cycle maxLinkQueue = 256;

  private:
    unsigned tileX(unsigned tile) const { return tile % width_; }
    unsigned tileY(unsigned tile) const { return tile / width_; }

    /** Directed link id from a tile toward a neighbour direction. */
    unsigned linkId(unsigned fromTile, unsigned direction) const;

    /** Enumerate the directed links of the XY path src -> dst. */
    void pathLinks(unsigned src, unsigned dst,
                   std::vector<unsigned> &out) const;

    unsigned width_;
    unsigned height_;
    uint32_t hopLatency_;
    uint32_t flitBits_;
    std::vector<Cycle> linkFree_; ///< next free cycle per directed link
    mutable std::vector<unsigned> scratchPath_;
    NocStats stats_;
};

} // namespace hdcps

#endif // HDCPS_SIM_NOC_H_
