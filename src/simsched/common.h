/**
 * @file
 * Shared helpers for scheduler designs on the simulated machine:
 * software-PQ cost model, bag table, and task encodings.
 */

#ifndef HDCPS_SIMSCHED_COMMON_H_
#define HDCPS_SIMSCHED_COMMON_H_

#include <cstdint>
#include <vector>

#include "cps/task.h"
#include "sim/config.h"
#include "support/compiler.h"

namespace hdcps {

/** Initial-task seeding chunk: locality within, interleave across. */
constexpr size_t seedChunk = 16;

/**
 * Cycles one software priority-queue operation costs at a given queue
 * size: a fixed part plus the rebalance walk, one level per doubling.
 */
inline Cycle
swPqOpCost(const SimConfig &config, size_t queueSize)
{
    return config.swPqBaseCost +
           Cycle(config.swPqPerLevelCost) * log2Ceil(queueSize + 2);
}

/** A bag living in simulated memory. */
struct SimBag
{
    Priority priority = 0;
    std::vector<Task> tasks;
    unsigned creator = 0;
    uint64_t payloadAddr = 0; ///< where the payload bytes live
    bool consumed = false;
};

/**
 * Registry of all bags created during one simulation. Bags are referred
 * to by index; the index travels inside a Task's `data` field with
 * `node == bagSentinel` (the 128-bit "bag ID" of the paper).
 */
class SimBagTable
{
  public:
    static constexpr NodeId bagSentinel = invalidNode;

    static bool isBag(const Task &task) { return task.node == bagSentinel; }

    /** Register a bag; returns the metadata task encoding it. */
    Task
    add(Priority priority, std::vector<Task> tasks, unsigned creator,
        uint64_t payloadAddr)
    {
        uint32_t index = static_cast<uint32_t>(bags_.size());
        bags_.push_back(
            SimBag{priority, std::move(tasks), creator, payloadAddr,
                   false});
        return Task{priority, bagSentinel, index};
    }

    SimBag &
    get(const Task &metadata)
    {
        return bags_.at(metadata.data);
    }

    size_t numBags() const { return bags_.size(); }

  private:
    std::vector<SimBag> bags_;
};

/**
 * A serialization point: a shared software structure (a locked PQ, the
 * OBIM global map, one bag) on which operations from any core queue up.
 * An actor performing an operation of `cost` cycles starting no earlier
 * than `earliest` blocks until the resource frees, then holds it.
 * Returns the cycle at which the operation completes.
 *
 * The wait is capped (default ~a few dozen queued ops): acquisitions
 * arrive only approximately in time order, so an uncapped reservation
 * would let one far-in-the-future caller stall every later caller to
 * its horizon, compounding into runaway clocks. The cap keeps hot-lock
 * convoys painful (the behaviour the RELD/OBIM cost models need)
 * without the feedback explosion.
 */
class SerialResource
{
  public:
    static constexpr Cycle maxWait = 4096;

    Cycle
    acquire(Cycle earliest, Cycle cost)
    {
        Cycle start = earliest > nextFree_ ? earliest : nextFree_;
        if (start > earliest + maxWait)
            start = earliest + maxWait;
        nextFree_ = start + cost;
        return start + cost;
    }

    Cycle nextFree() const { return nextFree_; }

  private:
    Cycle nextFree_ = 0;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_COMMON_H_
