#include "simsched/runner.h"

#include "pq/dary_heap.h"
#include "simsched/common.h"
#include "simsched/sim_minnow.h"
#include "simsched/sim_multiqueue.h"
#include "simsched/sim_obim.h"
#include "simsched/sim_reld.h"
#include "simsched/sim_swarm.h"
#include "support/logging.h"

namespace hdcps {

namespace {

/** Single-core strict-priority-order execution (the "optimized
 *  sequential implementation" of the paper's speedup baselines). */
class SimSequential : public SimDesign
{
  public:
    const char *name() const override { return "sequential"; }

    void
    boot(SimMachine &m, const std::vector<Task> &initial) override
    {
        (void)m;
        pq_.clear();
        for (const Task &task : initial)
            pq_.push(task);
    }

    bool
    step(SimMachine &m, unsigned core) override
    {
        if (pq_.empty())
            return false;
        const SimConfig &config = m.config();
        m.advance(core, swPqOpCost(config, pq_.size()),
                  Component::Dequeue);
        Task task = pq_.pop();
        m.notePopped(core, task.priority);
        children_.clear();
        m.processTask(core, task, children_);
        m.taskCreated(children_.size());
        for (const Task &child : children_) {
            m.advance(core, swPqOpCost(config, pq_.size()),
                      Component::Enqueue);
            pq_.push(child);
        }
        m.taskRetired();
        return true;
    }

  private:
    DAryHeap<Task, TaskOrder> pq_;
    std::vector<Task> children_;
};

} // namespace

std::unique_ptr<SimDesign>
makeDesign(const std::string &name)
{
    if (name == "reld")
        return std::make_unique<SimReld>();
    if (name == "multiqueue")
        return std::make_unique<SimMultiQueue>();
    if (name == "obim") {
        return std::make_unique<SimObim>(SimObim::obimConfig(), "obim");
    }
    if (name == "pmod") {
        return std::make_unique<SimObim>(SimObim::pmodConfig(), "pmod");
    }
    if (name == "swminnow") {
        // 64 cores split ~9:1 like the paper's best 36-4 Xeon split.
        return std::make_unique<SimObim>(SimObim::swMinnowConfig(6),
                                         "swminnow");
    }
    if (name == "minnow-hw")
        return std::make_unique<SimMinnowHw>();
    if (name == "swarm")
        return std::make_unique<SimSwarm>();
    if (name == "hdcps-srq") {
        return std::make_unique<SimHdCps>(SimHdCps::configSrq(),
                                          "hdcps-srq");
    }
    if (name == "hdcps-srq-tdf") {
        return std::make_unique<SimHdCps>(SimHdCps::configSrqTdf(),
                                          "hdcps-srq-tdf");
    }
    if (name == "hdcps-srq-tdf-ac") {
        return std::make_unique<SimHdCps>(SimHdCps::configSrqTdfAc(),
                                          "hdcps-srq-tdf-ac");
    }
    if (name == "hdcps-sw") {
        return std::make_unique<SimHdCps>(SimHdCps::configSw(),
                                          "hdcps-sw");
    }
    if (name == "hdcps-hrq") {
        return std::make_unique<SimHdCps>(SimHdCps::configHrqOnly(),
                                          "hdcps-hrq");
    }
    if (name == "hdcps-hpq") {
        return std::make_unique<SimHdCps>(SimHdCps::configHpqOnly(),
                                          "hdcps-hpq");
    }
    if (name == "hdcps-hw") {
        return std::make_unique<SimHdCps>(SimHdCps::configHw(),
                                          "hdcps-hw");
    }
    if (name == "sequential")
        return std::make_unique<SimSequential>();
    hdcps_fatal("unknown design '%s'", name.c_str());
}

std::unique_ptr<SimDesign>
makeHdCpsDesign(const SimHdCpsConfig &config, const std::string &name)
{
    return std::make_unique<SimHdCps>(config, name);
}

const char *const *
designNames(size_t &count)
{
    static const char *const names[] = {
        "reld",      "multiqueue", "obim",      "pmod",
        "swminnow",  "hdcps-sw",   "hdcps-hrq", "hdcps-hw",
        "minnow-hw", "swarm",
    };
    count = sizeof(names) / sizeof(names[0]);
    return names;
}

SimResult
simulate(SimDesign &design, Workload &workload, const SimConfig &config,
         uint64_t seed, unsigned driftInterval)
{
    workload.reset();
    SimMachine machine(config, workload, seed);
    return machine.run(design, driftInterval);
}

SimResult
simulate(const std::string &designName, Workload &workload,
         const SimConfig &config, uint64_t seed, unsigned driftInterval)
{
    auto design = makeDesign(designName);
    return simulate(*design, workload, config, seed, driftInterval);
}

Cycle
simulateSequentialCycles(Workload &workload, const SimConfig &config,
                         uint64_t seed)
{
    SimConfig sequential = config;
    sequential.numCores = 1;
    sequential.meshWidth = 1;
    SimSequential design;
    SimResult result = simulate(design, workload, sequential, seed);
    hdcps_check(result.verified, "sequential baseline failed to verify: %s",
                result.verifyError.c_str());
    return result.completionCycles;
}

} // namespace hdcps
