/**
 * @file
 * Convenience entry points for the figure harnesses: construct any
 * named design, run a workload through the simulated machine, and
 * compute the optimized-sequential baseline the speedup figures
 * normalize against.
 */

#ifndef HDCPS_SIMSCHED_RUNNER_H_
#define HDCPS_SIMSCHED_RUNNER_H_

#include <memory>
#include <string>

#include "algos/workload.h"
#include "sim/machine.h"
#include "simsched/sim_hdcps.h"

namespace hdcps {

/**
 * Build a design by name:
 *  reld | multiqueue | obim | pmod | swminnow | minnow-hw | swarm |
 *  hdcps-srq | hdcps-srq-tdf | hdcps-srq-tdf-ac | hdcps-sw |
 *  hdcps-hrq | hdcps-hpq | hdcps-hw
 */
std::unique_ptr<SimDesign> makeDesign(const std::string &name);

/** Build an HD-CPS design with an explicit config (for sweeps). */
std::unique_ptr<SimDesign> makeHdCpsDesign(const SimHdCpsConfig &config,
                                           const std::string &name);

/** All comparison design names in figure order. */
const char *const *designNames(size_t &count);

/**
 * Run `designName` over `workload` on a machine with `config`.
 * The workload is reset() first so one instance serves many runs.
 */
SimResult simulate(const std::string &designName, Workload &workload,
                   const SimConfig &config, uint64_t seed = 1,
                   unsigned driftInterval = 2000);

/** Run a pre-built design (for swept configs). */
SimResult simulate(SimDesign &design, Workload &workload,
                   const SimConfig &config, uint64_t seed = 1,
                   unsigned driftInterval = 2000);

/**
 * Cycles of the optimized sequential implementation: a single-core
 * machine running tasks in strict priority order with a plain software
 * PQ and no distribution overhead. Denominator of Figures 4 and 8.
 */
Cycle simulateSequentialCycles(Workload &workload,
                               const SimConfig &config,
                               uint64_t seed = 1);

} // namespace hdcps

#endif // HDCPS_SIMSCHED_RUNNER_H_
