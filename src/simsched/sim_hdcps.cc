#include "simsched/sim_hdcps.h"

#include <algorithm>

#include "support/logging.h"

namespace hdcps {

namespace {

/** Simulated-memory address of a core's receive-queue slot. */
uint64_t
rqSlotAddr(const SimMachine &m, unsigned core, uint64_t slot)
{
    return m.coreLocalAddr(core, 0x1000 + (slot % 256) * 16);
}

/** Address of a core's drift mailbox in the master's region. */
uint64_t
mailboxAddr(const SimMachine &m, unsigned core)
{
    return m.coreLocalAddr(0, 0x100 + core * 64);
}

} // namespace

SimHdCps::SimHdCps(const SimHdCpsConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      tdfController_(config.tdf)
{
    hdcps_check(config.sampleInterval >= 1,
                "sample interval must be >= 1");
    hdcps_check(config.fixedTdf <= 100, "fixedTdf is a percentage");
}

SimHdCpsConfig
SimHdCps::configSrq()
{
    SimHdCpsConfig config;
    config.tdfMode = SimHdCpsConfig::TdfMode::Off;
    config.bags.mode = BagMode::None;
    return config;
}

SimHdCpsConfig
SimHdCps::configSrqTdf()
{
    SimHdCpsConfig config;
    config.bags.mode = BagMode::None;
    return config;
}

SimHdCpsConfig
SimHdCps::configSrqTdfAc()
{
    SimHdCpsConfig config;
    config.bags.mode = BagMode::Always;
    return config;
}

SimHdCpsConfig
SimHdCps::configSw()
{
    return SimHdCpsConfig{};
}

SimHdCpsConfig
SimHdCps::configHrqOnly()
{
    SimHdCpsConfig config;
    config.useHrq = true;
    return config;
}

SimHdCpsConfig
SimHdCps::configHpqOnly()
{
    SimHdCpsConfig config;
    config.useHpq = true;
    return config;
}

SimHdCpsConfig
SimHdCps::configHw()
{
    SimHdCpsConfig config;
    config.useHrq = true;
    config.useHpq = true;
    return config;
}

unsigned
SimHdCps::currentTdf() const
{
    switch (config_.tdfMode) {
      case SimHdCpsConfig::TdfMode::Adaptive:
        return tdfController_.current();
      case SimHdCpsConfig::TdfMode::Fixed:
      case SimHdCpsConfig::TdfMode::Off:
        return config_.fixedTdf;
    }
    return config_.fixedTdf;
}

void
SimHdCps::boot(SimMachine &m, const std::vector<Task> &initial)
{
    numCores_ = m.config().numCores;
    cores_.clear();
    cores_.resize(numCores_);
    for (auto &core : cores_) {
        core.hrq = HwRecvQueue(config_.useHrq ? config_.hrqEntries : 0);
        core.hpq =
            HwPriorityQueue(config_.useHpq ? config_.hpqEntries : 0);
    }
    drift_.reset(numCores_);
    tdfController_.reset(config_.tdf);
    msgInFlight_.assign(size_t(numCores_) * numCores_, 0);
    publishesSinceUpdate_ = 0;
    bagsCreated_ = 0;
    hrqSpills_ = 0;
    hpqEvictions_ = 0;
    // Chunked-interleaved seeding (see SimReld::boot).
    for (size_t i = 0; i < initial.size(); ++i)
        cores_[(i / seedChunk) % numCores_].swPq.push(initial[i]);
}

unsigned
SimHdCps::chooseDest(SimMachine &m, unsigned core)
{
    if (numCores_ == 1 || m.rng(core).below(100) >= currentTdf())
        return core;
    unsigned dest =
        static_cast<unsigned>(m.rng(core).below(numCores_ - 1));
    if (dest >= core)
        ++dest;
    if (!config_.useHrq)
        return dest;
    // Hardware flow control: skip destinations whose capacity flag for
    // this sender is raised (Section III-D); bounded retries.
    for (unsigned attempt = 0; attempt < 4; ++attempt) {
        if (!msgInFlight_[size_t(core) * numCores_ + dest])
            return dest;
        dest = static_cast<unsigned>(m.rng(core).below(numCores_ - 1));
        if (dest >= core)
            ++dest;
    }
    return dest;
}

void
SimHdCps::sendEnvelope(SimMachine &m, unsigned core, unsigned dest,
                       const Task &task, uint32_t wireBits)
{
    const SimConfig &config = m.config();
    if (dest == core) {
        pushLocal(m, core, task, Component::Enqueue);
        ++m.breakdownOf(core).localEnqueues;
        return;
    }
    ++m.breakdownOf(core).remoteEnqueues;
    if (config_.useHrq) {
        // Asynchronous hardware message: inject and move on. The
        // pipeline still serializes on feeding the payload flits into
        // the injection port, which is what makes push-mode bag
        // transport non-free.
        Cycle inject = 2 + wireBits / config.flitBits;
        m.advance(core, inject, Component::Enqueue);
        m.sendTaskMessage(core, dest, task, wireBits, 0, core);
        uint8_t &flag = msgInFlight_[size_t(core) * numCores_ + dest];
        if (flag < 255)
            ++flag;
        return;
    }
    // Software sRQ: atomic increment of the destination's write
    // pointer plus a coherent write into the slot. The destination is
    // *not* blocked — that is the decoupling.
    CoreState &remote = cores_[dest];
    Cycle cost = config.atomicRmwCost;
    cost += m.cache().access(core,
                             rqSlotAddr(m, dest, remote.rqWrites++),
                             true, m.now(core));
    m.advance(core, cost, Component::Enqueue);
    remote.swRq.push_back(SrqEntry{task, core});
}

void
SimHdCps::sendSingle(SimMachine &m, unsigned core, const Task &task)
{
    sendEnvelope(m, core, chooseDest(m, core), task,
                 m.config().taskBits);
}

void
SimHdCps::pushLocal(SimMachine &m, unsigned core, const Task &task,
                    Component comp)
{
    const SimConfig &config = m.config();
    CoreState &self = cores_[core];
    if (config_.useHpq) {
        m.advance(core, config.hwQueueLatency, comp);
        std::optional<Task> evicted = self.hpq.pushEvict(task);
        if (evicted) {
            ++hpqEvictions_;
            // Spill to the software PQ in the background: dedicated
            // logic rebalances while the core keeps running.
            self.swPq.push(*evicted);
            Cycle start = std::max(self.swPqReady, m.now(core));
            self.swPqReady =
                start + swPqOpCost(config, self.swPq.size());
        }
        return;
    }
    Cycle cost = swPqOpCost(config, self.swPq.size());
    m.advance(core, cost, comp);
    self.swPq.push(task);
}

void
SimHdCps::drainIncoming(SimMachine &m, unsigned core)
{
    const SimConfig &config = m.config();
    CoreState &self = cores_[core];

    if (config_.useHrq) {
        delivered_.clear();
        m.deliveredMessages(core, delivered_);
        for (const DeliveredMessage &msg : delivered_) {
            // Arrival lowers the sender's capacity flag once the task
            // state machine moves it onward.
            uint8_t &flag =
                msgInFlight_[size_t(msg.tag) * numCores_ + core];
            if (flag > 0)
                --flag;
            if (!self.hrq.tryPush(msg.task)) {
                ++hrqSpills_;
                self.swRq.push_back(SrqEntry{msg.task, msg.tag});
            }
        }
        // ISR/task state machine: move hRQ entries into the PQ at the
        // hardware queue access latency each.
        Task task;
        while (self.hrq.tryPop(task)) {
            m.advance(core, config.hwQueueLatency, Component::Enqueue);
            pushLocal(m, core, task, Component::Enqueue);
        }
    }

    while (!self.swRq.empty()) {
        SrqEntry entry = self.swRq.front();
        self.swRq.pop_front();
        // Reading the slot the sender wrote costs a coherence miss.
        Cycle cost = m.cache().access(
            core, rqSlotAddr(m, core, self.rqReads++), false,
            m.now(core));
        m.advance(core, cost, Component::Enqueue);
        pushLocal(m, core, entry.task, Component::Enqueue);
    }
}

void
SimHdCps::unpackBag(SimMachine &m, unsigned core, const Task &metadata)
{
    const SimConfig &config = m.config();
    CoreState &self = cores_[core];
    SimBag &bag = bagTable_.get(metadata);
    hdcps_check(!bag.consumed, "bag %u consumed twice", metadata.data);
    bag.consumed = true;

    uint64_t payloadBytes = bag.tasks.size() * 16;
    Cycle cost;
    if (config_.bags.transport == BagTransport::Pull) {
        // Coherent loads from the creator's memory: first touch pays
        // the remote fetch, the rest of each line hits locally.
        cost = m.cache().scan(core, bag.payloadAddr, payloadBytes, false,
                              m.now(core));
    } else {
        // Push transport already moved the bytes with the message; the
        // receiver reads them from its own region.
        uint64_t local = m.allocLocal(core, payloadBytes);
        cost = m.cache().scan(core, local, payloadBytes, false,
                              m.now(core));
    }
    cost += Cycle(bag.tasks.size()) * config.aluOpCost;
    m.advance(core, cost, Component::Dequeue);
    self.activeBag = std::move(bag.tasks);
}

bool
SimHdCps::dequeue(SimMachine &m, unsigned core, Task &out)
{
    const SimConfig &config = m.config();
    CoreState &self = cores_[core];

    if (!self.activeBag.empty()) {
        out = self.activeBag.back();
        self.activeBag.pop_back();
        m.advance(core, 2, Component::Dequeue);
        return true;
    }

    if (config_.useHpq) {
        const bool hwHas = !self.hpq.empty();
        const bool swHas = !self.swPq.empty();
        if (!hwHas && !swHas)
            return false;
        // Peek both sides; the software top is readable at constant
        // latency because balancing happens in the background.
        bool takeSw = swHas &&
                      (!hwHas ||
                       TaskOrder{}(self.swPq.top(),
                                   Task{self.hpq.minPriority(), 0, 0}));
        if (takeSw) {
            // If a rebalance is still pending, the core stalls for it.
            if (self.swPqReady > m.now(core))
                m.stallUntil(core, self.swPqReady);
            m.advance(core, config.hwQueueLatency + 4,
                      Component::Dequeue);
            out = self.swPq.pop();
            Cycle start = std::max(self.swPqReady, m.now(core));
            self.swPqReady =
                start + swPqOpCost(config, self.swPq.size() + 1);
        } else {
            m.advance(core, config.hwQueueLatency, Component::Dequeue);
            out = self.hpq.popMin();
        }
        return true;
    }

    if (self.swPq.empty())
        return false;
    Cycle cost = swPqOpCost(config, self.swPq.size());
    m.advance(core, cost, Component::Dequeue);
    out = self.swPq.pop();
    return true;
}

void
SimHdCps::distribute(SimMachine &m, unsigned core,
                     std::vector<Task> &children)
{
    const SimConfig &config = m.config();
    m.taskCreated(children.size());
    if (config_.bags.mode == BagMode::None) {
        for (const Task &child : children)
            sendSingle(m, core, child);
        return;
    }

    BagPlan plan = config_.bags.plan(std::move(children));
    for (const Task &task : plan.singles)
        sendSingle(m, core, task);
    for (Bag &bag : plan.bags) {
        ++bagsCreated_;
        m.breakdownOf(core).bagsCreated++;
        m.breakdownOf(core).tasksInBags += bag.tasks.size();
        uint64_t payloadBytes = bag.tasks.size() * 16;
        // Creating the bag: write the payload into local memory.
        uint64_t payloadAddr = m.allocLocal(core, payloadBytes);
        Cycle cost = Cycle(bag.tasks.size()) * config.aluOpCost;
        cost += m.cache().scan(core, payloadAddr, payloadBytes, true,
                               m.now(core));
        m.advance(core, cost, Component::Enqueue);

        size_t bagSize = bag.tasks.size();
        Task metadata = bagTable_.add(bag.priority, std::move(bag.tasks),
                                      core, payloadAddr);
        uint32_t wireBits = config.taskBits;
        if (config_.bags.transport == BagTransport::Push) {
            // Payload flits travel with the metadata.
            wireBits += static_cast<uint32_t>(bagSize) * config.taskBits;
        }
        sendEnvelope(m, core, chooseDest(m, core), metadata, wireBits);
    }
}

void
SimHdCps::afterPop(SimMachine &m, unsigned core, Priority priority)
{
    m.notePopped(core, priority);
    CoreState &self = cores_[core];
    if (++self.popsSinceSample < config_.sampleInterval)
        return;
    self.popsSinceSample = 0;
    if (config_.tdfMode != SimHdCpsConfig::TdfMode::Adaptive)
        return;

    // Algorithm 3: report the latest priority to the master core.
    drift_.publish(core, priority);
    Cycle cost = m.cache().access(core, mailboxAddr(m, core), true,
                                  m.now(core));
    m.advance(core, cost, Component::Comm);

    // Algorithm 2: "after receiving task priorities from all cores,
    // the dedicated core calculates ... the average priority drift".
    // The update fires once a full round of reports has arrived — not
    // on the master's own processing schedule, which would freeze
    // adaptation whenever the master starves. The dedicated core's
    // reduction happens off the workers' critical path; we charge the
    // reporting core only its mailbox write above.
    if (++publishesSinceUpdate_ >= numCores_) {
        publishesSinceUpdate_ = 0;
        tdfController_.update(drift_.computeDrift());
    }
}

bool
SimHdCps::step(SimMachine &m, unsigned core)
{
    drainIncoming(m, core);
    Task task;
    if (!dequeue(m, core, task))
        return false;
    if (SimBagTable::isBag(task)) {
        unpackBag(m, core, task);
        if (!dequeue(m, core, task))
            return false; // bag was empty (cannot happen; be safe)
    }
    afterPop(m, core, task.priority);
    children_.clear();
    m.processTask(core, task, children_);
    distribute(m, core, children_);
    m.taskRetired();
    return true;
}

size_t
SimHdCps::hrqHighWater() const
{
    size_t best = 0;
    for (const auto &core : cores_)
        best = std::max(best, core.hrq.highWater());
    return best;
}

size_t
SimHdCps::hpqHighWater() const
{
    size_t best = 0;
    for (const auto &core : cores_)
        best = std::max(best, core.hpq.highWater());
    return best;
}

} // namespace hdcps
