/**
 * @file
 * HD-CPS on the simulated machine — both the software design
 * (HD-CPS:SW and its sRQ / sRQ+TDF / sRQ+TDF+AC / sRQ+TDF+SC ablation
 * points) and the hardware-assisted design (hRQ and hRQ+hPQ, i.e.
 * HD-CPS:HW).
 *
 * Software mode models the paper's Xeon runs: remote enqueues deposit
 * into the destination's software receive queue (the sender pays an
 * atomic increment plus a coherent slot write; the owner later pays a
 * coherence miss to read it), the private software PQ charges O(log n)
 * rebalance cycles per operation, and the TDF heuristic/drift sampling
 * run exactly as Algorithms 2-3 describe.
 *
 * Hardware mode adds: asynchronous 128-bit task messages over the mesh
 * into a per-core hRQ (sender unblocks after a 2-cycle injection), an
 * hPQ in front of the software PQ (5-cycle access, evict-lowest to the
 * software queue whose rebalances happen off the critical path), and
 * the single-flag capacity flow control of Section III-D.
 */

#ifndef HDCPS_SIMSCHED_SIM_HDCPS_H_
#define HDCPS_SIMSCHED_SIM_HDCPS_H_

#include <deque>
#include <string>
#include <vector>

#include "core/bag_policy.h"
#include "core/drift.h"
#include "core/tdf.h"
#include "pq/dary_heap.h"
#include "sim/hwqueue.h"
#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** All HD-CPS knobs the figure harnesses sweep. */
struct SimHdCpsConfig
{
    // Receive path.
    bool useHrq = false;
    uint32_t hrqEntries = 32;
    // Priority queue path.
    bool useHpq = false;
    uint32_t hpqEntries = 48;
    // Task distribution factor.
    enum class TdfMode { Off, Adaptive, Fixed };
    TdfMode tdfMode = TdfMode::Adaptive;
    unsigned fixedTdf = 98; ///< percent, for Off/Fixed modes
    TdfController::Config tdf{};
    /**
     * Tasks per drift sample (Algorithm 3). The paper uses 2000 on
     * full-size inputs (~10-100x larger than the generated bench
     * inputs); the default here is scaled down proportionally so the
     * heuristic gets a comparable number of decisions per run.
     * Figure 13:A sweeps this parameter, including the paper's 2000.
     */
    unsigned sampleInterval = 500;
    // Bags.
    BagPolicy bags{BagMode::Selective, BagTransport::Pull, 3, 10};
};

/** HD-CPS design (software or hardware-assisted) on the simulator. */
class SimHdCps : public SimDesign
{
  public:
    SimHdCps(const SimHdCpsConfig &config, std::string name);

    /** Paper configuration points. */
    static SimHdCpsConfig configSrq();
    static SimHdCpsConfig configSrqTdf();
    static SimHdCpsConfig configSrqTdfAc();
    static SimHdCpsConfig configSw();      ///< HD-CPS:SW
    static SimHdCpsConfig configHrqOnly(); ///< HD-CPS:SW + hRQ
    static SimHdCpsConfig configHpqOnly(); ///< HD-CPS:SW + hPQ
    static SimHdCpsConfig configHw();      ///< HD-CPS:HW (hRQ + hPQ)

    const char *name() const override { return name_.c_str(); }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

    unsigned currentTdf() const;
    uint64_t bagsCreated() const { return bagsCreated_; }
    uint64_t hrqSpills() const { return hrqSpills_; }
    /** hPQ inserts that evicted an entry to the software PQ. */
    uint64_t hpqEvictions() const { return hpqEvictions_; }
    size_t hrqHighWater() const;
    size_t hpqHighWater() const;

  private:
    struct SrqEntry
    {
        Task task;
        unsigned src;
    };

    struct CoreState
    {
        std::deque<SrqEntry> swRq;
        HwRecvQueue hrq{0};
        HwPriorityQueue hpq{0};
        DAryHeap<Task, TaskOrder> swPq;
        Cycle swPqReady = 0; ///< background rebalance completes here
        std::vector<Task> activeBag;
        uint64_t rqWrites = 0;
        uint64_t rqReads = 0;
        uint64_t popsSinceSample = 0;
    };

    unsigned chooseDest(SimMachine &m, unsigned core);
    void sendSingle(SimMachine &m, unsigned core, const Task &task);
    void sendEnvelope(SimMachine &m, unsigned core, unsigned dest,
                      const Task &task, uint32_t wireBits);
    void pushLocal(SimMachine &m, unsigned core, const Task &task,
                   Component comp);
    void drainIncoming(SimMachine &m, unsigned core);
    bool dequeue(SimMachine &m, unsigned core, Task &out);
    void unpackBag(SimMachine &m, unsigned core, const Task &metadata);
    void distribute(SimMachine &m, unsigned core,
                    std::vector<Task> &children);
    void afterPop(SimMachine &m, unsigned core, Priority priority);

    SimHdCpsConfig config_;
    std::string name_;
    std::vector<CoreState> cores_;
    SimBagTable bagTable_;
    DriftTracker drift_{1};
    TdfController tdfController_;
    std::vector<uint8_t> msgInFlight_; ///< src*N+dst capacity flags
    unsigned numCores_ = 0;
    unsigned publishesSinceUpdate_ = 0;
    uint64_t bagsCreated_ = 0;
    uint64_t hrqSpills_ = 0;
    uint64_t hpqEvictions_ = 0;
    std::vector<Task> children_;
    std::vector<DeliveredMessage> delivered_;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_HDCPS_H_
