#include "simsched/sim_minnow.h"

#include "support/logging.h"

namespace hdcps {

void
SimMinnowHw::boot(SimMachine &m, const std::vector<Task> &initial)
{
    bags_.clear();
    cores_.assign(m.config().numCores, CoreState{});
    for (const Task &task : initial) {
        Priority base = (task.priority >> config_.delta) << config_.delta;
        bags_[base].push_back(task);
    }
}

void
SimMinnowHw::helperRun(SimMachine &m, unsigned core)
{
    const SimConfig &config = m.config();
    CoreState &self = cores_[core];

    // 1. Flush the worker's outbox into the shared map (helper time).
    for (const Task &child : self.outbox) {
        Priority base =
            (child.priority >> config_.delta) << config_.delta;
        Cycle cost = config.atomicRmwCost + 2;
        auto it = bags_.find(base);
        if (it == bags_.end()) {
            cost += config.mapSearchBaseCost;
            it = bags_.emplace(base, std::vector<Task>{}).first;
        }
        self.helperFree = mapLock_.acquire(self.helperFree, cost);
        it->second.push_back(child);
    }
    self.outbox.clear();

    // 2. Refill the staging buffer while it is below target.
    while (self.staging.size() < config_.stagingTarget) {
        auto it = bags_.begin();
        while (it != bags_.end() && it->second.empty())
            it = bags_.erase(it);
        if (it == bags_.end())
            break;
        size_t take = std::min(config_.chunkSize, it->second.size());
        Cycle cost = config.mapSearchBaseCost +
                     Cycle(config.swPqPerLevelCost) *
                         log2Ceil(bags_.size() + 1) +
                     Cycle(take) * 2 + config.atomicRmwCost;
        self.helperFree = mapLock_.acquire(self.helperFree, cost);
        for (size_t i = 0; i < take; ++i) {
            self.staging.push_back(
                StagedTask{it->second.back(), self.helperFree});
            it->second.pop_back();
        }
        if (it->second.empty())
            bags_.erase(it);
    }
    // The helper never lags behind wall-clock for bookkeeping purposes.
    if (self.helperFree < m.now(core))
        self.helperFree = m.now(core);
}

bool
SimMinnowHw::step(SimMachine &m, unsigned core)
{
    CoreState &self = cores_[core];
    helperRun(m, core);

    if (self.staging.empty())
        return false;
    // If the helper is still fetching, the worker waits for the data —
    // that residual latency is what decoupling cannot hide.
    const StagedTask &head = self.staging.front();
    if (head.availableAt > m.now(core))
        m.stallUntil(core, head.availableAt);
    Task task = head.task;
    self.staging.pop_front();
    m.advance(core, m.config().hwQueueLatency, Component::Dequeue);
    m.notePopped(core, task.priority);

    children_.clear();
    m.processTask(core, task, children_);
    m.taskCreated(children_.size());
    if (!children_.empty()) {
        // Hand the batch to the helper engine; per-batch cost only.
        m.advance(core,
                  config_.handoffCost +
                      Cycle(children_.size()) * m.config().aluOpCost,
                  Component::Enqueue);
        m.breakdownOf(core).remoteEnqueues += children_.size();
        self.outbox.insert(self.outbox.end(), children_.begin(),
                           children_.end());
    }
    m.taskRetired();
    return true;
}

} // namespace hdcps
