/**
 * @file
 * Minnow with dedicated hardware helper engines (Zhang et al.,
 * ASPLOS'18) on the simulated machine.
 *
 * Unlike Software Minnow (SimObim with repurposed cores), real Minnow
 * pairs *every* worker core with its own helper engine, so no compute
 * capacity is lost — that is its hardware cost the paper contrasts
 * with HD-CPS's 1.25 KB of queues. The helper runs on its own timeline:
 * it prefetches chunks from the shared bag map into a staging buffer
 * (hiding the map serialization from the worker) and performs the
 * worker's bag insertions in the background. Workers still pay when
 * the helper falls behind: staged tasks carry their availability cycle.
 */

#ifndef HDCPS_SIMSCHED_SIM_MINNOW_H_
#define HDCPS_SIMSCHED_SIM_MINNOW_H_

#include <deque>
#include <map>
#include <vector>

#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** Minnow with per-worker hardware helper engines. */
class SimMinnowHw : public SimDesign
{
  public:
    struct Config
    {
        unsigned delta = 3;
        size_t chunkSize = 8;
        size_t stagingTarget = 8;
        Cycle handoffCost = 5; ///< worker -> helper per child batch
    };

    SimMinnowHw() : SimMinnowHw(Config{}) {}
    explicit SimMinnowHw(const Config &config) : config_(config) {}

    const char *name() const override { return "minnow-hw"; }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

  private:
    struct StagedTask
    {
        Task task;
        Cycle availableAt;
    };

    struct CoreState
    {
        std::deque<StagedTask> staging;
        std::vector<Task> outbox; ///< children awaiting helper insert
        Cycle helperFree = 0;     ///< the helper engine's clock
    };

    /** Run the helper engine for `core` up to the current time. */
    void helperRun(SimMachine &m, unsigned core);

    Config config_;
    std::map<Priority, std::vector<Task>> bags_;
    SerialResource mapLock_;
    std::vector<CoreState> cores_;
    std::vector<Task> children_;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_MINNOW_H_
