#include "simsched/sim_multiqueue.h"

#include "support/logging.h"

namespace hdcps {

void
SimMultiQueue::boot(SimMachine &m, const std::vector<Task> &initial)
{
    hdcps_check(queuesPerCore_ >= 1, "need at least one queue per core");
    queues_.clear();
    queues_.resize(size_t(m.config().numCores) * queuesPerCore_);
    // Chunked-interleaved seeding (see SimReld::boot).
    for (size_t i = 0; i < initial.size(); ++i)
        queues_[(i / seedChunk) % queues_.size()].pq.push(initial[i]);
}

bool
SimMultiQueue::step(SimMachine &m, unsigned core)
{
    const SimConfig &config = m.config();

    // Pop: peek two random queues (an atomic read each), then take
    // the better top, paying that queue's lock + rebalance.
    size_t pick = queues_.size();
    for (int attempt = 0; attempt < 4 && pick == queues_.size();
         ++attempt) {
        size_t a = m.rng(core).below(queues_.size());
        size_t b = m.rng(core).below(queues_.size());
        m.advance(core, 2 * config.aluOpCost + 8, Component::Dequeue);
        bool hasA = !queues_[a].pq.empty();
        bool hasB = !queues_[b].pq.empty();
        if (hasA && hasB) {
            pick = TaskOrder{}(queues_[a].pq.top(), queues_[b].pq.top())
                       ? a
                       : b;
        } else if (hasA) {
            pick = a;
        } else if (hasB) {
            pick = b;
        }
    }
    if (pick == queues_.size()) {
        // Full scan fallback so no task is stranded.
        for (size_t q = 0; q < queues_.size(); ++q) {
            if (!queues_[q].pq.empty()) {
                pick = q;
                break;
            }
        }
        if (pick == queues_.size())
            return false;
    }

    QueueState &source = queues_[pick];
    {
        Cycle cost =
            config.atomicRmwCost + swPqOpCost(config, source.pq.size());
        Cycle done = source.lock.acquire(m.now(core), cost);
        m.stallUntil(core, done - cost);
        m.advance(core, cost, Component::Dequeue);
    }
    if (source.pq.empty())
        return false; // raced with another core's pop this epoch
    Task task = source.pq.pop();
    m.notePopped(core, task.priority);

    children_.clear();
    m.processTask(core, task, children_);
    m.taskCreated(children_.size());
    for (const Task &child : children_) {
        QueueState &dest =
            queues_[m.rng(core).below(queues_.size())];
        Cycle cost =
            config.atomicRmwCost + swPqOpCost(config, dest.pq.size());
        Cycle done = dest.lock.acquire(m.now(core), cost);
        m.stallUntil(core, done - cost);
        m.advance(core, cost, Component::Enqueue);
        dest.pq.push(child);
        ++m.breakdownOf(core).remoteEnqueues;
    }
    m.taskRetired();
    return true;
}

} // namespace hdcps
