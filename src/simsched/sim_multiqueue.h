/**
 * @file
 * MultiQueue (Rihani et al., SPAA'15) on the simulated machine — the
 * relaxed-PQ baseline for the beyond-the-paper ablation. 2P lock-
 * guarded queues; pushes go to a random queue, pops take the better of
 * two random tops. Every operation pays the atomic + rebalance cost on
 * the chosen queue's serialization point, like RELD, but contention
 * spreads over twice as many queues and pops are drift-blind rather
 * than drift-aware.
 */

#ifndef HDCPS_SIMSCHED_SIM_MULTIQUEUE_H_
#define HDCPS_SIMSCHED_SIM_MULTIQUEUE_H_

#include <vector>

#include "pq/dary_heap.h"
#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** MultiQueue on the simulator. */
class SimMultiQueue : public SimDesign
{
  public:
    explicit SimMultiQueue(unsigned queuesPerCore = 2)
        : queuesPerCore_(queuesPerCore)
    {}

    const char *name() const override { return "multiqueue"; }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

  private:
    struct QueueState
    {
        DAryHeap<Task, TaskOrder> pq;
        SerialResource lock;
    };

    unsigned queuesPerCore_;
    std::vector<QueueState> queues_;
    std::vector<Task> children_;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_MULTIQUEUE_H_
