#include "simsched/sim_obim.h"

#include "support/logging.h"

namespace hdcps {

SimObim::SimObim(const Config &config, const char *name)
    : config_(config), name_(name), delta_(config.delta)
{
    hdcps_check(config.chunkSize >= 1, "chunk size must be >= 1");
}

SimObim::Config
SimObim::obimConfig(unsigned delta)
{
    Config config;
    config.delta = delta;
    return config;
}

SimObim::Config
SimObim::pmodConfig(unsigned startDelta)
{
    Config config;
    config.delta = startDelta;
    config.adaptive = true;
    return config;
}

SimObim::Config
SimObim::swMinnowConfig(unsigned numMinnows, unsigned startDelta)
{
    Config config;
    config.delta = startDelta;
    config.numMinnows = numMinnows;
    return config;
}

void
SimObim::boot(SimMachine &m, const std::vector<Task> &initial)
{
    hdcps_check(config_.numMinnows < m.config().numCores,
                "minnow cores must leave at least one worker");
    numWorkers_ = m.config().numCores - config_.numMinnows;
    delta_ = config_.delta;
    bags_.clear();
    cores_.assign(m.config().numCores, CoreState{});
    retiredBags_ = retiredTasks_ = 0;
    for (const Task &task : initial) {
        Priority base = (task.priority >> delta_) << delta_;
        bags_[base].tasks.push_back(task);
    }
}

size_t
SimObim::claimChunk(SimMachine &m, unsigned actor, Component comp,
                    std::vector<Task> &out)
{
    auto it = bags_.begin();
    while (it != bags_.end() && it->second.tasks.empty())
        it = bags_.erase(it);
    if (it == bags_.end())
        return 0;

    const SimConfig &config = m.config();
    auto &bag = it->second.tasks;
    size_t take = std::min(config_.chunkSize, bag.size());

    // Map search + chunk copy, serialized on the global map lock.
    Cycle cost = config.mapSearchBaseCost +
                 Cycle(config.swPqPerLevelCost) *
                     log2Ceil(bags_.size() + 1) +
                 Cycle(take) * 2 + config.atomicRmwCost;
    Cycle done = mapLock_.acquire(m.now(actor), cost);
    m.stallUntil(actor, done - cost);
    m.advance(actor, cost, comp);

    for (size_t i = 0; i < take; ++i) {
        out.push_back(bag.back());
        bag.pop_back();
    }
    // PMOD bookkeeping: track how much each visited bucket yields.
    CoreState &state = cores_[actor];
    if (state.lastBucket != it->first) {
        if (state.lastBucket != ~Priority(0))
            onBagRetired(state.takenFromLast);
        state.lastBucket = it->first;
        state.takenFromLast = 0;
    }
    state.takenFromLast += take;
    if (bag.empty())
        bags_.erase(it);
    return take;
}

void
SimObim::onBagRetired(size_t taken)
{
    if (!config_.adaptive)
        return;
    retiredTasks_ += taken;
    if (++retiredBags_ % config_.window != 0)
        return;
    // Windowed yield (see PmodScheduler::onBagExhausted).
    uint64_t avgYield = retiredTasks_ / config_.window;
    retiredTasks_ = 0;
    if (avgYield < config_.lowYield && delta_ < config_.maxDelta)
        ++delta_;
    else if (avgYield > config_.highYield && delta_ > config_.minDelta)
        --delta_;
}

void
SimObim::pushChild(SimMachine &m, unsigned core, const Task &child)
{
    const SimConfig &config = m.config();
    Priority base = (child.priority >> delta_) << delta_;
    auto it = bags_.find(base);
    if (it == bags_.end()) {
        // Creating a bag touches the global map.
        Cycle cost = config.mapSearchBaseCost + config.atomicRmwCost;
        Cycle done = mapLock_.acquire(m.now(core), cost);
        m.stallUntil(core, done - cost);
        m.advance(core, cost, Component::Enqueue);
        it = bags_.emplace(base, BagEntry{}).first;
    }
    // Insertion into the bag serializes on that bag only.
    Cycle cost = config.atomicRmwCost + 2;
    Cycle done = it->second.lock.acquire(m.now(core), cost);
    m.stallUntil(core, done - cost);
    m.advance(core, cost, Component::Enqueue);
    it->second.tasks.push_back(child);
    ++m.breakdownOf(core).remoteEnqueues;
}

bool
SimObim::workerStep(SimMachine &m, unsigned core)
{
    CoreState &self = cores_[core];
    Task task;
    bool got = false;

    if (!self.chunk.empty()) {
        task = self.chunk.back();
        self.chunk.pop_back();
        m.advance(core, m.config().aluOpCost, Component::Dequeue);
        got = true;
    }
    if (!got && !self.staging.empty()) {
        // In Minnow mode the worker consumes prefetched work even when
        // the helper has not finished fetching it yet (it waits for
        // the data); that wait is the decoupling's residual cost.
        if (self.staging.front().availableAt > m.now(core))
            m.stallUntil(core, self.staging.front().availableAt);
        task = self.staging.front().task;
        self.staging.pop_front();
        m.advance(core, 4, Component::Dequeue); // local buffer read
        got = true;
    }
    if (!got) {
        // Minnow workers never touch the shared map themselves — that
        // is the whole point of the helper cores; they starve instead.
        if (config_.numMinnows > 0)
            return false;
        if (claimChunk(m, core, Component::Dequeue, self.chunk) == 0)
            return false;
        task = self.chunk.back();
        self.chunk.pop_back();
        got = true;
    }

    m.notePopped(core, task.priority);
    children_.clear();
    m.processTask(core, task, children_);
    m.taskCreated(children_.size());
    for (const Task &child : children_)
        pushChild(m, core, child);
    m.taskRetired();
    return true;
}

bool
SimObim::minnowStep(SimMachine &m, unsigned core)
{
    // Minnow core: round-robin over assigned workers, refilling any
    // staging buffer that has drained below the target.
    const unsigned minnowId = core - numWorkers_;
    bool didWork = false;
    std::vector<Task> chunk;
    for (unsigned w = minnowId; w < numWorkers_;
         w += config_.numMinnows) {
        CoreState &worker = cores_[w];
        if (worker.staging.size() >= config_.stagingTarget)
            continue;
        chunk.clear();
        if (claimChunk(m, core, Component::Dequeue, chunk) == 0)
            continue;
        didWork = true;
        // Stage into the worker's local memory: the minnow pays the
        // transfer, the worker later reads it cheaply.
        Cycle cost = Cycle(chunk.size()) * 2;
        cost += m.cache().access(
            core, m.coreLocalAddr(w, 0x8000 + worker.staging.size() * 16),
            true, m.now(core));
        m.advance(core, cost, Component::Enqueue);
        for (const Task &t : chunk)
            worker.staging.push_back(StagedTask{t, m.now(core)});
    }
    return didWork;
}

bool
SimObim::step(SimMachine &m, unsigned core)
{
    if (config_.numMinnows > 0 && isMinnow(core))
        return minnowStep(m, core);
    return workerStep(m, core);
}

} // namespace hdcps
