/**
 * @file
 * The OBIM family on the simulated machine: OBIM (fixed delta), PMOD
 * (adaptive delta), and Software Minnow (OBIM plus cores repurposed as
 * prefetch helpers).
 *
 * The global bag map is the shared structure all cores synchronize on:
 * bag *claims* (finding and draining the best bag) serialize on a map
 * lock, and pushes serialize per bag. Workers drain claimed chunks
 * locally, which is where OBIM's synchronization savings over RELD come
 * from; the map lock is where its scalability pressure lives.
 *
 * In Software-Minnow mode the last `numMinnows` cores run prefetch
 * loops instead of processing tasks: they claim chunks on behalf of
 * their assigned workers and stage them core-locally, hiding the map
 * serialization from workers at the price of lost compute capacity
 * (paper Section V-C).
 */

#ifndef HDCPS_SIMSCHED_SIM_OBIM_H_
#define HDCPS_SIMSCHED_SIM_OBIM_H_

#include <deque>
#include <map>
#include <vector>

#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** OBIM / PMOD / SW-Minnow on the simulator. */
class SimObim : public SimDesign
{
  public:
    struct Config
    {
        unsigned delta = 3;
        size_t chunkSize = 16;
        bool adaptive = false;   ///< PMOD delta tuning
        unsigned numMinnows = 0; ///< > 0 enables Software-Minnow mode
        size_t prefetchChunk = 8;
        size_t stagingTarget = 8;  ///< refill threshold per worker
        // PMOD thresholds (tasks drained per retired bag, per window).
        size_t window = 32;
        size_t lowYield = 2;
        size_t highYield = 64;
        unsigned minDelta = 0;
        unsigned maxDelta = 8;
    };

    SimObim(const Config &config, const char *name);

    /** Factories for the three named designs. */
    static Config obimConfig(unsigned delta = 3);
    static Config pmodConfig(unsigned startDelta = 3);
    static Config swMinnowConfig(unsigned numMinnows,
                                 unsigned startDelta = 3);

    const char *name() const override { return name_; }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

    unsigned currentDelta() const { return delta_; }

  private:
    struct StagedTask
    {
        Task task;
        Cycle availableAt;
    };

    struct CoreState
    {
        std::vector<Task> chunk;
        std::deque<StagedTask> staging; ///< minnow-filled buffer
        Priority lastBucket = ~Priority(0);
        size_t takenFromLast = 0;
    };

    struct BagEntry
    {
        std::vector<Task> tasks;
        SerialResource lock;
    };

    bool isMinnow(unsigned core) const
    {
        return core >= numWorkers_;
    }

    /** Claim up to chunkSize tasks from the best bag on behalf of
     *  `actor` (charged to its clock, component `comp`). */
    size_t claimChunk(SimMachine &m, unsigned actor, Component comp,
                      std::vector<Task> &out);

    void pushChild(SimMachine &m, unsigned core, const Task &child);
    void onBagRetired(size_t taken);
    bool workerStep(SimMachine &m, unsigned core);
    bool minnowStep(SimMachine &m, unsigned core);

    Config config_;
    const char *name_;
    unsigned numWorkers_ = 0;
    unsigned delta_;
    std::map<Priority, BagEntry> bags_;
    SerialResource mapLock_;
    std::vector<CoreState> cores_;
    std::vector<Task> children_;
    uint64_t retiredBags_ = 0;
    uint64_t retiredTasks_ = 0;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_OBIM_H_
