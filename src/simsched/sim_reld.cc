#include "simsched/sim_reld.h"

namespace hdcps {

void
SimReld::boot(SimMachine &m, const std::vector<Task> &initial)
{
    cores_.clear();
    cores_.resize(m.config().numCores);
    // Chunked-interleaved seeding: consecutive initial tasks touch
    // neighbouring graph data, so 16-task chunks preserve spatial
    // locality, while interleaving chunks across cores avoids piling
    // a skewed graph's hub region onto one core.
    for (size_t i = 0; i < initial.size(); ++i)
        cores_[(i / seedChunk) % cores_.size()].pq.push(initial[i]);
}

bool
SimReld::step(SimMachine &m, unsigned core)
{
    CoreState &self = cores_[core];
    if (self.pq.empty())
        return false;

    const SimConfig &config = m.config();

    // Dequeue: take the lock (serializing against remote enqueues),
    // then pay the heap pop.
    {
        Cycle cost =
            config.atomicRmwCost + swPqOpCost(config, self.pq.size());
        Cycle done = self.pqLock.acquire(m.now(core), cost);
        m.stallUntil(core, done - cost); // lock wait shows up as comm
        m.advance(core, cost, Component::Dequeue);
    }
    Task task = self.pq.pop();
    m.notePopped(core, task.priority);

    children_.clear();
    m.processTask(core, task, children_);

    // Distribute children: every task goes to a uniformly random core's
    // PQ; the *sender* executes the remote enqueue and is blocked for
    // the atomic + rebalance + coherent write into the remote heap.
    m.taskCreated(children_.size());
    for (const Task &child : children_) {
        unsigned dest =
            static_cast<unsigned>(m.rng(core).below(cores_.size()));
        CoreState &remote = cores_[dest];
        Cycle cost =
            config.atomicRmwCost + swPqOpCost(config, remote.pq.size());
        cost += m.cache().access(
            core, m.coreLocalAddr(dest, remote.pq.size() * 16), true,
            m.now(core));
        Cycle done = remote.pqLock.acquire(m.now(core), cost);
        m.stallUntil(core, done - cost);
        m.advance(core, cost, Component::Enqueue);
        remote.pq.push(child);
        ++(dest == core ? m.breakdownOf(core).localEnqueues
                        : m.breakdownOf(core).remoteEnqueues);
    }
    m.taskRetired();
    return true;
}

} // namespace hdcps
