/**
 * @file
 * RELD on the simulated machine (software cost mode).
 *
 * One locked software PQ per core. Every enqueue — local or remote —
 * and every dequeue serializes on the destination core's PQ: the
 * sender pays the atomic round trip plus the rebalance walk while it
 * holds the queue, and the owner's dequeues queue up behind remote
 * enqueues. This is the serialization HD-CPS's receive queue removes,
 * and it is why RELD's comm/enqueue components blow up at high core
 * counts (paper Figure 3/5 baselines).
 */

#ifndef HDCPS_SIMSCHED_SIM_RELD_H_
#define HDCPS_SIMSCHED_SIM_RELD_H_

#include <vector>

#include "pq/dary_heap.h"
#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** Software RELD: per-core locked PQs, full random distribution. */
class SimReld : public SimDesign
{
  public:
    SimReld() = default;

    const char *name() const override { return "reld"; }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

  private:
    struct CoreState
    {
        DAryHeap<Task, TaskOrder> pq;
        SerialResource pqLock;
    };

    std::vector<CoreState> cores_;
    std::vector<Task> children_;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_RELD_H_
