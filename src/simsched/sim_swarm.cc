#include "simsched/sim_swarm.h"

#include <algorithm>

#include "pq/dary_heap.h"
#include "support/logging.h"

namespace hdcps {

void
SimSwarm::buildTrace(SimMachine &m, const std::vector<Task> &initial)
{
    trace_.clear();
    available_.clear();
    uncommitted_.clear();
    lastCommitWrite_.clear();
    lastCommitCycle_ = 0;
    aborts_ = 0;

    // Strict priority-order sequential execution of the workload,
    // recording every task, its children, and its memory footprint.
    struct HeapEntry
    {
        Ts ts;
        uint32_t index;
    };
    struct HeapLess
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            return a.ts < b.ts;
        }
    };
    DAryHeap<HeapEntry, HeapLess> heap;

    auto createNode = [&](const Task &task, Priority parentPri) {
        uint32_t index = static_cast<uint32_t>(trace_.size());
        TraceNode node;
        node.task = task;
        // Swarm rule: a child's timestamp is never below its parent's.
        node.ts = Ts{std::max(task.priority, parentPri), index};
        trace_.push_back(std::move(node));
        heap.push(HeapEntry{trace_.back().ts, index});
        return index;
    };

    for (const Task &task : initial)
        createNode(task, 0);

    std::vector<Task> children;
    Workload &workload = m.workload();
    while (!heap.empty()) {
        uint32_t index = heap.pop().index;
        children.clear();
        // Note: trace_ may reallocate inside createNode, so finish all
        // reads of trace_[index] via a fresh reference each time.
        uint32_t edges = workload.process(trace_[index].task, children);
        trace_[index].edges = edges;
        Priority parentPri = trace_[index].ts.priority;
        // Swarm's kernels are formulated so a task reads and writes
        // only its own node's state; neighbour updates happen in the
        // child tasks themselves. Conflicts are therefore per-node.
        trace_[index].writes.push_back(trace_[index].task.node);
        for (const Task &child : children) {
            uint32_t childIndex = createNode(child, parentPri);
            trace_[index].children.push_back(childIndex);
        }
    }

    liveByNode_.clear();
    // Set up replay state: roots available, everything uncommitted.
    for (uint32_t i = 0; i < trace_.size(); ++i)
        uncommitted_.insert({trace_[i].ts, i});
    for (size_t i = 0; i < initial.size(); ++i) {
        trace_[i].state = State::Available;
        available_.insert({trace_[i].ts, static_cast<uint32_t>(i)});
    }
}

void
SimSwarm::boot(SimMachine &m, const std::vector<Task> &initial)
{
    buildTrace(m, initial);
}

bool
SimSwarm::validate(const TraceNode &node) const
{
    // Read set == write set == the task's own node (see buildTrace):
    // the task conflicts iff a lower-timestamp task committed an
    // update to the same node after this one started executing.
    auto it = lastCommitWrite_.find(node.task.node);
    return it == lastCommitWrite_.end() ||
           it->second.cycle <= node.execStart;
}

void
SimSwarm::advanceCommits(SimMachine &m, unsigned core)
{
    while (!uncommitted_.empty()) {
        auto [ts, index] = *uncommitted_.begin();
        TraceNode &node = trace_[index];
        if (node.state != State::Executed)
            break; // frontier not ready; nothing can commit past it

        if (!validate(node)) {
            // Commit-time validation failed: roll back and re-execute.
            ++aborts_;
            ++m.breakdownOf(core).aborts;
            node.state = State::Available;
            node.availableAt =
                std::max(node.execDone, lastCommitCycle_);
            auto live = liveByNode_.find(node.task.node);
            if (live != liveByNode_.end() && --live->second == 0)
                liveByNode_.erase(live);
            available_.insert({ts, index});
            break;
        }

        Cycle commitCycle = std::max(node.execDone, lastCommitCycle_);
        lastCommitCycle_ = commitCycle;
        for (NodeId w : node.writes)
            lastCommitWrite_[w].cycle = commitCycle;
        node.state = State::Committed;
        auto live = liveByNode_.find(node.task.node);
        if (live != liveByNode_.end() && --live->second == 0)
            liveByNode_.erase(live);
        uncommitted_.erase(uncommitted_.begin());
        m.taskCreated(node.children.size());
        m.taskRetired();
    }
}

bool
SimSwarm::step(SimMachine &m, unsigned core)
{
    graph_ = &m.workload().graph();
    advanceCommits(m, core);
    if (available_.empty())
        return false;

    // Prefer the earliest-timestamp task that is already dispatchable;
    // Swarm's per-core task queues hold plenty of speculative work, so
    // a core need not idle just because the global-min task's parent
    // only finished a moment ago on another core. Tasks whose node
    // already has an executed-uncommitted predecessor are held back:
    // Swarm's spatial hints serialize same-hint tasks rather than let
    // them misspeculate against each other.
    auto it = available_.end();
    auto fallback = available_.end();
    unsigned scanned = 0;
    for (auto i = available_.begin();
         i != available_.end() && scanned < config_.dispatchWindow;
         ++i, ++scanned) {
        // The commit frontier must always be dispatchable, or a
        // hint-serialized frontier would deadlock the commit stream.
        bool isFrontier = !uncommitted_.empty() &&
                          uncommitted_.begin()->second == i->second;
        if (!isFrontier &&
            liveByNode_.count(trace_[i->second].task.node)) {
            continue;
        }
        if (fallback == available_.end())
            fallback = i;
        if (trace_[i->second].availableAt <= m.now(core)) {
            it = i;
            break;
        }
    }
    if (it == available_.end())
        it = fallback;
    if (it == available_.end())
        return false; // everything nearby is hint-serialized
    TraceNode &node = trace_[it->second];
    if (node.availableAt > m.now(core))
        m.stallUntil(core, node.availableAt);
    available_.erase(it);

    // Hardware task unit dispatch.
    m.advance(core, config_.dispatchCost, Component::Dequeue);
    m.notePopped(core, node.ts.priority);

    if (node.execCount > 0) {
        // Rollback penalty for the prior misspeculation, charged to
        // compute as the paper does.
        m.advance(core,
                  config_.abortBaseCost +
                      config_.abortPerWrite * node.writes.size(),
                  Component::Compute);
    }
    node.execStart = m.now(core);
    m.chargeCompute(core, node.task.node, node.edges,
                    node.writes.data(), node.writes.size());
    node.execDone = m.now(core);
    node.state = State::Executed;
    ++node.execCount;
    ++liveByNode_[node.task.node];

    // Speculative children dispatch right away.
    m.advance(core,
              config_.commitCost +
                  Cycle(node.children.size()) * m.config().aluOpCost,
              Component::Enqueue);
    for (uint32_t childIndex : node.children) {
        TraceNode &child = trace_[childIndex];
        if (child.state == State::Waiting) {
            child.state = State::Available;
            child.availableAt = node.execDone;
            available_.insert({child.ts, childIndex});
        }
    }

    advanceCommits(m, core);
    return true;
}

} // namespace hdcps
