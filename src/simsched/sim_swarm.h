/**
 * @file
 * Swarm (Jeffrey et al., MICRO'15) modeled at task granularity.
 *
 * Swarm executes tasks speculatively out of order but commits them in
 * timestamp order, with hardware conflict detection and cascading
 * aborts. We model it by first recording the *ordered* execution trace
 * (strict priority-order sequential run of the workload — exactly the
 * work a correct ordered execution performs, which is why Swarm's work
 * efficiency is the best of all designs), then replaying that trace on
 * 64 cores:
 *
 *  - a task becomes available when its parent first *executes*
 *    (speculative children, which is where Swarm's deep speculation
 *    parallelism on high-diameter graphs comes from);
 *  - cores always grab the lowest-timestamp available task;
 *  - commits advance in timestamp order; at its commit point a task is
 *    validated — if a lower-timestamp task committed a write into its
 *    read set after it started executing, it aborts, pays the rollback
 *    penalty, and re-executes (cascades are caught by the same
 *    validation when descendants reach the frontier);
 *  - child timestamps are clamped to be >= the parent's, matching
 *    Swarm's program-order timestamp rule.
 *
 * Rollback cycles are charged to the compute component, as in the
 * paper's breakdown (Section IV-C).
 */

#ifndef HDCPS_SIMSCHED_SIM_SWARM_H_
#define HDCPS_SIMSCHED_SIM_SWARM_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "sim/machine.h"
#include "simsched/common.h"

namespace hdcps {

/** Swarm speculative ordered execution. */
class SimSwarm : public SimDesign
{
  public:
    struct Config
    {
        Cycle dispatchCost = 5;   ///< hardware task-unit dequeue
        Cycle commitCost = 5;     ///< per-child enqueue at commit
        Cycle abortBaseCost = 30; ///< rollback fixed penalty
        Cycle abortPerWrite = 10; ///< per rolled-back memory write
        /** How far past the global-min timestamp a core may dispatch.
         *  Small windows keep speculation near the commit frontier
         *  (fewer aborts); large ones expose more parallelism. */
        unsigned dispatchWindow = 8;
    };

    SimSwarm() : SimSwarm(Config{}) {}
    explicit SimSwarm(const Config &config) : config_(config) {}

    const char *name() const override { return "swarm"; }
    void boot(SimMachine &m, const std::vector<Task> &initial) override;
    bool step(SimMachine &m, unsigned core) override;

    uint64_t totalAborts() const { return aborts_; }
    size_t traceSize() const { return trace_.size(); }

  private:
    enum class State : uint8_t { Waiting, Available, Executed, Committed };

    /** Timestamp: priority order, creation order as tie-break. */
    struct Ts
    {
        Priority priority;
        uint32_t index;

        bool
        operator<(const Ts &o) const
        {
            if (priority != o.priority)
                return priority < o.priority;
            return index < o.index;
        }
    };

    struct TraceNode
    {
        Task task;
        Ts ts;
        uint32_t edges = 0;
        std::vector<uint32_t> children;
        std::vector<NodeId> writes;
        State state = State::Waiting;
        Cycle availableAt = 0;
        Cycle execStart = 0;
        Cycle execDone = 0;
        uint32_t execCount = 0;
    };

    struct LastWrite
    {
        Cycle cycle = 0;
    };

    void buildTrace(SimMachine &m, const std::vector<Task> &initial);
    void advanceCommits(SimMachine &m, unsigned core);
    bool validate(const TraceNode &node) const;

    Config config_;
    const Graph *graph_ = nullptr;
    std::vector<TraceNode> trace_;
    std::set<std::pair<Ts, uint32_t>> available_;  ///< ready to execute
    std::set<std::pair<Ts, uint32_t>> uncommitted_;
    std::unordered_map<NodeId, LastWrite> lastCommitWrite_;
    /** Executed-but-uncommitted task count per node; Swarm's spatial
     *  hints serialize same-node tasks instead of misspeculating. */
    std::unordered_map<NodeId, uint32_t> liveByNode_;
    Cycle lastCommitCycle_ = 0;
    uint64_t aborts_ = 0;
};

} // namespace hdcps

#endif // HDCPS_SIMSCHED_SIM_SWARM_H_
