#include "stats/breakdown.h"

#include <cstdio>

namespace hdcps {

const char *
componentName(Component c)
{
    switch (c) {
      case Component::Enqueue:
        return "enqueue";
      case Component::Dequeue:
        return "dequeue";
      case Component::Compute:
        return "compute";
      case Component::Comm:
        return "comm";
    }
    return "?";
}

std::string
Breakdown::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "enq=%llu deq=%llu cmp=%llu comm=%llu tasks=%llu",
                  static_cast<unsigned long long>(time[0]),
                  static_cast<unsigned long long>(time[1]),
                  static_cast<unsigned long long>(time[2]),
                  static_cast<unsigned long long>(time[3]),
                  static_cast<unsigned long long>(tasksProcessed));
    return buf;
}

} // namespace hdcps
