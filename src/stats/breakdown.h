/**
 * @file
 * Completion-time breakdown accounting.
 *
 * The paper (Section IV-C) decomposes completion time into four
 * components: enqueue (inserting tasks/bags, including bag creation),
 * dequeue (removing tasks/bags, including unpacking), compute (processing
 * a task's semantic work; Swarm rollback is charged here too), and comm
 * (transferring tasks plus idle time waiting for work). Both the threaded
 * runtime (nanoseconds) and the simulator (cycles) accumulate into this
 * structure; all figure harnesses consume it.
 */

#ifndef HDCPS_STATS_BREAKDOWN_H_
#define HDCPS_STATS_BREAKDOWN_H_

#include <array>
#include <cstdint>
#include <string>

namespace hdcps {

/** The four completion-time components from the paper's methodology. */
enum class Component : unsigned {
    Enqueue = 0,
    Dequeue = 1,
    Compute = 2,
    Comm = 3,
};

constexpr unsigned numComponents = 4;

/** Printable name for a breakdown component. */
const char *componentName(Component c);

/**
 * Per-worker accumulator of time (ns or cycles) per component, plus the
 * task-level counters used to compute work efficiency.
 */
struct Breakdown
{
    std::array<uint64_t, numComponents> time{};

    /** Tasks whose processing completed (including wasted re-executions). */
    uint64_t tasksProcessed = 0;
    /** Tasks pushed to a remote worker. */
    uint64_t remoteEnqueues = 0;
    /** Tasks pushed to the local queue. */
    uint64_t localEnqueues = 0;
    /** Tasks whose processing found no work to do (empty relaxations). */
    uint64_t emptyTasks = 0;
    /** Bags created (Algorithm 1 line 7). */
    uint64_t bagsCreated = 0;
    /** Tasks shipped inside bags. */
    uint64_t tasksInBags = 0;
    /** Speculative aborts (Swarm only). */
    uint64_t aborts = 0;

    uint64_t &operator[](Component c) { return time[unsigned(c)]; }
    uint64_t operator[](Component c) const { return time[unsigned(c)]; }

    /** Sum of all four components. */
    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t t : time)
            sum += t;
        return sum;
    }

    /** Element-wise accumulate (merging per-worker breakdowns). */
    Breakdown &
    operator+=(const Breakdown &other)
    {
        for (unsigned i = 0; i < numComponents; ++i)
            time[i] += other.time[i];
        tasksProcessed += other.tasksProcessed;
        remoteEnqueues += other.remoteEnqueues;
        localEnqueues += other.localEnqueues;
        emptyTasks += other.emptyTasks;
        bagsCreated += other.bagsCreated;
        tasksInBags += other.tasksInBags;
        aborts += other.aborts;
        return *this;
    }

    /** Fraction of total time spent in a component (0 when total is 0). */
    double
    fraction(Component c) const
    {
        uint64_t sum = total();
        return sum == 0 ? 0.0
                        : static_cast<double>(time[unsigned(c)]) / sum;
    }

    /** One-line human-readable rendering, e.g. for log output. */
    std::string toString() const;
};

} // namespace hdcps

#endif // HDCPS_STATS_BREAKDOWN_H_
