/**
 * @file
 * Small statistical summaries used by the figure harnesses: geometric
 * mean, arithmetic mean, and a fixed-width histogram for distributions
 * such as receive-queue occupancy.
 */

#ifndef HDCPS_STATS_SUMMARY_H_
#define HDCPS_STATS_SUMMARY_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace hdcps {

/** Geometric mean of strictly positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        hdcps_check(v > 0.0, "geomean requires positive values (got %f)", v);
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Arithmetic mean; 0 for an empty set. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/**
 * Fixed-bucket histogram of unsigned samples; the last bucket absorbs
 * overflow. Used for queue-occupancy distributions (Fig. 7 analysis).
 */
class Histogram
{
  public:
    explicit Histogram(size_t buckets, uint64_t bucketWidth = 1)
        : counts_(buckets, 0), width_(bucketWidth)
    {
        hdcps_check(buckets > 0 && bucketWidth > 0,
                    "histogram needs buckets > 0 and width > 0");
    }

    void
    record(uint64_t sample)
    {
        size_t idx = static_cast<size_t>(sample / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
        ++total_;
        sum_ += sample;
        if (sample > max_)
            max_ = sample;
    }

    uint64_t count(size_t bucket) const { return counts_.at(bucket); }
    uint64_t totalSamples() const { return total_; }
    uint64_t maxSample() const { return max_; }

    double
    meanSample() const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(sum_) / static_cast<double>(total_);
    }

    /** Smallest sample value v such that >= frac of samples are <= v. */
    uint64_t
    percentile(double frac) const
    {
        if (total_ == 0)
            return 0;
        uint64_t threshold =
            static_cast<uint64_t>(std::ceil(frac * double(total_)));
        uint64_t running = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            running += counts_[i];
            if (running >= threshold)
                return static_cast<uint64_t>(i) * width_;
        }
        return static_cast<uint64_t>(counts_.size() - 1) * width_;
    }

  private:
    std::vector<uint64_t> counts_;
    uint64_t width_;
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

} // namespace hdcps

#endif // HDCPS_STATS_SUMMARY_H_
