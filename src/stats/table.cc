#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "support/logging.h"

namespace hdcps {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    hdcps_check(!header_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(std::string text)
{
    hdcps_check(!rows_.empty(), "cell() before row()");
    hdcps_check(rows_.back().size() < header_.size(),
                "row has more cells (%zu) than header columns (%zu)",
                rows_.back().size() + 1, header_.size());
    rows_.back().push_back(std::move(text));
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int64_t value)
{
    return cell(std::to_string(value));
}

const std::string &
Table::at(size_t row, size_t col) const
{
    if (row >= rows_.size() || col >= rows_[row].size())
        throw std::out_of_range("Table::at");
    return rows_[row][col];
}

void
Table::printText(std::ostream &os, const std::string &title) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    if (!title.empty())
        os << "== " << title << " ==\n";

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < header_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << text;
            if (c + 1 < header_.size())
                os << std::string(widths[c] - text.size() + 2, ' ');
        }
        os << "\n";
    };

    emitRow(header_);
    size_t ruleLen = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        ruleLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(ruleLen, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emitCell = [&](const std::string &text) {
        if (text.find_first_of(",\"\n") == std::string::npos) {
            os << text;
            return;
        }
        os << '"';
        for (char ch : text) {
            if (ch == '"')
                os << '"';
            os << ch;
        }
        os << '"';
    };
    auto emitRow = [&](const std::vector<std::string> &cells, size_t n) {
        for (size_t c = 0; c < n; ++c) {
            if (c)
                os << ',';
            if (c < cells.size())
                emitCell(cells[c]);
        }
        os << "\n";
    };
    emitRow(header_, header_.size());
    for (const auto &row : rows_)
        emitRow(row, header_.size());
}

} // namespace hdcps
