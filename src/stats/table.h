/**
 * @file
 * Aligned text tables and CSV output for the benchmark harnesses.
 *
 * Every figure/table reproduction prints a stable, machine-greppable
 * table: a header row followed by data rows. Cells are strings; numeric
 * helpers format with fixed precision so diffs between runs are readable.
 */

#ifndef HDCPS_STATS_TABLE_H_
#define HDCPS_STATS_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hdcps {

/** A column-aligned table that can render as text or CSV. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Start a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a pre-formatted cell to the current row. */
    Table &cell(std::string text);

    /** Append a floating-point cell with the given precision. */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(uint64_t value);
    Table &cell(int64_t value);
    Table &cell(int value) { return cell(static_cast<int64_t>(value)); }
    Table &cell(unsigned value) { return cell(static_cast<uint64_t>(value)); }

    size_t numRows() const { return rows_.size(); }
    size_t numCols() const { return header_.size(); }

    /** Cell accessor (row-major); throws on out-of-range. */
    const std::string &at(size_t row, size_t col) const;

    /** Render with space-padded, column-aligned formatting. */
    void printText(std::ostream &os, const std::string &title = "") const;

    /** Render as RFC-4180-ish CSV (cells containing commas get quoted). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hdcps

#endif // HDCPS_STATS_TABLE_H_
