/**
 * @file
 * Compiler and hardware-layout helpers shared across modules.
 */

#ifndef HDCPS_SUPPORT_COMPILER_H_
#define HDCPS_SUPPORT_COMPILER_H_

#include <cstddef>
#include <cstdint>

namespace hdcps {

/**
 * Cache line size assumed for padding. std::hardware_destructive_
 * interference_size is not reliably available across toolchains, so the
 * ubiquitous 64-byte value is used explicitly.
 */
constexpr size_t cacheLineBytes = 64;

/** Round v up to the next multiple of align (align must be a power of 2). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True iff v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 for power-of-two inputs. */
constexpr unsigned
log2Exact(uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Integer ceil(log2(v)); log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(uint64_t v)
{
    unsigned r = 0;
    uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++r;
    }
    return r;
}

/**
 * A value padded out to its own cache line, preventing false sharing when
 * placed in per-thread arrays.
 */
template <typename T>
struct alignas(cacheLineBytes) Padded
{
    T value{};
    char pad[cacheLineBytes > sizeof(T) ? cacheLineBytes - sizeof(T) : 1];
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_COMPILER_H_
