#include "support/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "support/logging.h"
#include "support/rng.h"

namespace hdcps {

std::atomic<FaultRegistry *> FaultRegistry::active_{nullptr};

namespace {

const FaultSiteInfo siteCatalog[] = {
    {faultsite::SrqPushFull,
     "sRQ tryPush reports full: forces the overflow spill path"},
    {faultsite::SrqPopFail,
     "sRQ tryPop spurious failure: owner sees an empty queue"},
    {faultsite::HdcpsOverflowSpill,
     "HD-CPS remote deliver skips the sRQ and spills to overflow"},
    {faultsite::DriftPublishDelay,
     "delay (ns) before a drift mailbox publish lands"},
    {faultsite::ExecPopFail,
     "executor-level spurious tryPop failure: worker idles one round"},
    {faultsite::ExecProcessThrow,
     "ProcessFn throws FaultInjectedError: drives run-failure handling"},
    {faultsite::SimHrqFull,
     "simulated hRQ reports full: arrival spills to the software sRQ"},
    {faultsite::SimHpqEvict,
     "simulated hPQ insert evicts to the software PQ as if full"},
    {faultsite::SimNocDelay,
     "extra cycles added to every simulated NoC transfer"},
    {faultsite::SvcAdmitFull,
     "service admission pretends the queue is full: forces rejection"},
    {faultsite::SvcJobFail,
     "service task processing throws: drives retry/backoff then "
     "per-job failure"},
    {faultsite::SvcCancelRace,
     "delay (ns) inside JobHandle::cancel between the drain latch "
     "and its publication: widens the cancel/complete race"},
    {faultsite::SvcWorkerWedge,
     "delay (ns) a service worker stalls mid-loop without heartbeats: "
     "drives Suspect/Wedged detection and quarantine"},
    {faultsite::SvcWorkerDie,
     "service worker exits its loop as if crashed: drives the exit "
     "latch, queue reclamation, and replacement spawn"},
    {faultsite::SvcTaskPoison,
     "service task processing throws on every attempt: drives the "
     "dead-letter (poison quarantine) path"},
};

/** Per-invocation uniform double in [0, 1), deterministic in
 *  (seed, site, invocation index). */
double
hashUniform(uint64_t seed, uint64_t siteHash, uint64_t invocation)
{
    uint64_t h = mix64(seed ^ siteHash ^ mix64(invocation + 0x51ed));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

const FaultSiteInfo *
faultSiteCatalog(size_t &count)
{
    count = sizeof(siteCatalog) / sizeof(siteCatalog[0]);
    return siteCatalog;
}

bool
faultSiteKnown(const std::string &name)
{
    for (const FaultSiteInfo &info : siteCatalog) {
        if (name == info.name)
            return true;
    }
    return false;
}

void
FaultRegistry::arm(const std::string &site, FaultMode mode, double arg)
{
    hdcps_check(!site.empty(), "fault site name must not be empty");
    std::unique_ptr<Site> fresh;
    Site *entry = nullptr;
    for (auto &s : sites_) {
        if (s->name == site)
            entry = s.get();
    }
    if (!entry) {
        fresh = std::make_unique<Site>();
        fresh->name = site;
        entry = fresh.get();
    }
    entry->mode = mode;
    entry->hash = mix64(std::hash<std::string>{}(site));
    entry->n = 1;
    entry->probability = 0.0;
    entry->delay = 0;
    switch (mode) {
      case FaultMode::EveryNth:
      case FaultMode::OneShot:
        hdcps_check(arg >= 1.0, "fault '%s': N must be >= 1",
                    site.c_str());
        entry->n = static_cast<uint64_t>(arg);
        break;
      case FaultMode::Probability:
        hdcps_check(arg >= 0.0 && arg <= 1.0,
                    "fault '%s': probability must be in [0, 1]",
                    site.c_str());
        entry->probability = arg;
        break;
      case FaultMode::Delay:
        hdcps_check(arg >= 0.0, "fault '%s': delay must be >= 0",
                    site.c_str());
        entry->delay = static_cast<uint64_t>(arg);
        break;
    }
    entry->invocations.store(0, std::memory_order_relaxed);
    entry->fired.store(0, std::memory_order_relaxed);
    if (fresh)
        sites_.push_back(std::move(fresh));
}

bool
FaultRegistry::parseSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::vector<std::string> seen;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        size_t firstColon = entry.find(':');
        if (firstColon == std::string::npos || firstColon == 0)
            return fail("'" + entry + "': want site:mode[:arg]");
        std::string site = entry.substr(0, firstColon);
        // Duplicate sites within one spec are almost always a typo'd
        // edit of the wrong entry; silently letting the last one win
        // (arm() re-arm semantics) hid that, so name the offender.
        if (std::find(seen.begin(), seen.end(), site) != seen.end()) {
            return fail("'" + entry + "': duplicate site '" + site +
                        "' (each site may appear once per spec)");
        }
        seen.push_back(site);
        size_t secondColon = entry.find(':', firstColon + 1);
        std::string mode = entry.substr(
            firstColon + 1, secondColon == std::string::npos
                                ? std::string::npos
                                : secondColon - firstColon - 1);
        std::string arg = secondColon == std::string::npos
                              ? std::string()
                              : entry.substr(secondColon + 1);

        double value = 0.0;
        bool haveValue = false;
        if (!arg.empty()) {
            char *argEnd = nullptr;
            value = std::strtod(arg.c_str(), &argEnd);
            if (argEnd == arg.c_str() || *argEnd != '\0')
                return fail("'" + entry + "': bad numeric arg '" + arg +
                            "'");
            haveValue = true;
        }

        if (mode == "nth") {
            if (!haveValue || value < 1.0)
                return fail("'" + entry + "': nth needs N >= 1");
            arm(site, FaultMode::EveryNth, value);
        } else if (mode == "prob") {
            if (!haveValue || value < 0.0 || value > 1.0)
                return fail("'" + entry + "': prob needs P in [0, 1]");
            arm(site, FaultMode::Probability, value);
        } else if (mode == "once") {
            if (haveValue && value < 1.0)
                return fail("'" + entry + "': once needs N >= 1");
            arm(site, FaultMode::OneShot, haveValue ? value : 1.0);
        } else if (mode == "delay") {
            if (!haveValue || value < 0.0)
                return fail("'" + entry + "': delay needs AMOUNT >= 0");
            arm(site, FaultMode::Delay, value);
        } else {
            return fail("'" + entry + "': unknown mode '" + mode +
                        "' (want nth|prob|once|delay)");
        }
    }
    return true;
}

std::vector<std::string>
FaultRegistry::armedSites() const
{
    std::vector<std::string> names;
    names.reserve(sites_.size());
    for (const auto &s : sites_)
        names.push_back(s->name);
    return names;
}

FaultRegistry::Site *
FaultRegistry::find(const char *site)
{
    for (auto &s : sites_) {
        if (std::strcmp(s->name.c_str(), site) == 0)
            return s.get();
    }
    return nullptr;
}

const FaultRegistry::Site *
FaultRegistry::find(const char *site) const
{
    for (const auto &s : sites_) {
        if (std::strcmp(s->name.c_str(), site) == 0)
            return s.get();
    }
    return nullptr;
}

bool
FaultRegistry::fire(const char *site)
{
    Site *entry = find(site);
    if (!entry)
        return false;
    // 1-based invocation index; fetch_add assigns each concurrent
    // caller a distinct index, so triggers stay exactly-N under races.
    uint64_t index =
        entry->invocations.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fires = false;
    switch (entry->mode) {
      case FaultMode::EveryNth:
        fires = index % entry->n == 0;
        break;
      case FaultMode::Probability:
        fires = hashUniform(seed_, entry->hash, index) <
                entry->probability;
        break;
      case FaultMode::OneShot:
        fires = index == entry->n;
        break;
      case FaultMode::Delay:
        fires = true;
        break;
    }
    if (fires)
        entry->fired.fetch_add(1, std::memory_order_relaxed);
    return fires;
}

uint64_t
FaultRegistry::amount(const char *site)
{
    Site *entry = find(site);
    if (!entry)
        return 0;
    return fire(site) ? entry->delay : 0;
}

uint64_t
FaultRegistry::invocations(const char *site) const
{
    const Site *entry = find(site);
    return entry ? entry->invocations.load(std::memory_order_relaxed)
                 : 0;
}

uint64_t
FaultRegistry::fireCount(const char *site) const
{
    const Site *entry = find(site);
    return entry ? entry->fired.load(std::memory_order_relaxed) : 0;
}

void
FaultRegistry::install(FaultRegistry *registry)
{
    active_.store(registry, std::memory_order_release);
}

namespace detail {

void
faultSleepSlow(const char *site)
{
    uint64_t ns = faultAmount(site);
    if (ns > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

} // namespace detail

} // namespace hdcps
