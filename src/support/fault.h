/**
 * @file
 * Deterministic fault injection for the scheduler stack.
 *
 * The paper's value proposition rests on slow-path behavior — sRQ
 * overflow spill, hRQ/hPQ spill-to-software, NoC contention — yet none
 * of those paths occur on demand: they need full queues, rare
 * interleavings, or adversarial inputs. Following the adversarial
 * stress-harness methodology of the Engineering MultiQueues line of
 * work, this registry names each such slow path as a *fault site* and
 * lets tests, benches, and the CLI force it deterministically:
 *
 *  - every-Nth invocation (`nth:N`),
 *  - seeded probability per invocation (`prob:P`),
 *  - one-shot on the Nth invocation (`once[:N]`),
 *  - injected delay on every invocation (`delay:AMOUNT`, nanoseconds
 *    for threaded sites, cycles for simulator sites).
 *
 * Cost model: with no registry installed (the default), every
 * instrumented site compiles to one relaxed atomic load of a global
 * pointer plus a predicted-not-taken branch — cheap enough to leave in
 * the production hot paths. With a registry installed, a site pays a
 * short linear scan over the armed entries (sites are armed in tests
 * and fault drills, never on the normal path).
 *
 * Thread safety: arm()/parseSpec() must happen before the registry is
 * installed or while no worker is running; fire()/amount() are safe
 * from any thread. Triggers are deterministic per site-invocation
 * index; under concurrency the *assignment* of indices to threads
 * follows the interleaving, which is the best any cross-thread
 * injection can promise.
 */

#ifndef HDCPS_SUPPORT_FAULT_H_
#define HDCPS_SUPPORT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace hdcps {

/** Thrown by the `exec.process.throw` site (and usable by tests) to
 *  model a failing task-processing function. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** How an armed fault site decides whether an invocation fires. */
enum class FaultMode : unsigned {
    EveryNth,    ///< fires on invocations N, 2N, 3N, ... (nth:1 = always)
    Probability, ///< fires with seeded probability P per invocation
    OneShot,     ///< fires exactly once, on the Nth invocation
    Delay,       ///< fires every invocation; amount() returns the arg
};

/** Canonical fault-site names (the catalog lives in fault.cc and is
 *  documented in DESIGN.md "Failure semantics & fault injection"). */
namespace faultsite {
inline constexpr char SrqPushFull[] = "srq.push.full";
inline constexpr char SrqPopFail[] = "srq.pop.fail";
inline constexpr char HdcpsOverflowSpill[] = "hdcps.overflow.spill";
inline constexpr char DriftPublishDelay[] = "drift.publish.delay";
inline constexpr char ExecPopFail[] = "exec.pop.fail";
inline constexpr char ExecProcessThrow[] = "exec.process.throw";
inline constexpr char SimHrqFull[] = "sim.hrq.full";
inline constexpr char SimHpqEvict[] = "sim.hpq.evict";
inline constexpr char SimNocDelay[] = "sim.noc.delay";
inline constexpr char SvcAdmitFull[] = "svc.admit.full";
inline constexpr char SvcJobFail[] = "svc.job.fail";
inline constexpr char SvcCancelRace[] = "svc.cancel.race";
inline constexpr char SvcWorkerWedge[] = "svc.worker.wedge";
inline constexpr char SvcWorkerDie[] = "svc.worker.die";
inline constexpr char SvcTaskPoison[] = "svc.task.poison";
} // namespace faultsite

/** One entry of the documented site catalog. */
struct FaultSiteInfo
{
    const char *name;
    const char *description;
};

/** The catalog of instrumented sites; `count` receives its length. */
const FaultSiteInfo *faultSiteCatalog(size_t &count);

/** True iff `name` is in the catalog (CLI typo guard). */
bool faultSiteKnown(const std::string &name);

/**
 * A set of armed fault sites with deterministic, seedable triggers.
 * Install at most one at a time via install(); instrumented code
 * consults the installed registry through the faultFires()/
 * faultAmount()/faultSleep() helpers below.
 */
class FaultRegistry
{
  public:
    explicit FaultRegistry(uint64_t seed = 1) : seed_(seed) {}

    FaultRegistry(const FaultRegistry &) = delete;
    FaultRegistry &operator=(const FaultRegistry &) = delete;

    /**
     * Arm one site. `arg` is per mode: N for EveryNth/OneShot (>= 1),
     * probability in [0, 1] for Probability, the delay amount for
     * Delay. Re-arming a site replaces its trigger and resets its
     * counters. Must not race with fire().
     */
    void arm(const std::string &site, FaultMode mode, double arg);

    /**
     * Arm sites from a `site:mode:arg[,site:mode:arg...]` string, e.g.
     * "srq.push.full:nth:1,sim.noc.delay:delay:300". Modes: nth, prob,
     * once (arg optional, default 1), delay. A site may appear at most
     * once per spec — duplicates are rejected with the offending token
     * named, since silently keeping the last entry hid typos. Returns
     * false and fills *error on malformed input (already-parsed entries
     * stay armed).
     */
    bool parseSpec(const std::string &spec, std::string *error = nullptr);

    /** Number of armed sites. */
    size_t armedCount() const { return sites_.size(); }

    /** Names of the armed sites, in arm order. */
    std::vector<std::string> armedSites() const;

    /** Trigger query: did this invocation of `site` fire? Unarmed
     *  sites never fire. Safe from any thread. */
    bool fire(const char *site);

    /** Delay query: the armed Delay amount when this invocation fires,
     *  else 0. Safe from any thread. */
    uint64_t amount(const char *site);

    /** Times `site` was consulted / actually fired (test assertions). */
    uint64_t invocations(const char *site) const;
    uint64_t fireCount(const char *site) const;

    /**
     * Make `registry` the process-wide active registry (nullptr
     * deactivates). The caller keeps ownership and must keep the
     * registry alive — and its configuration frozen — while installed.
     */
    static void install(FaultRegistry *registry);

    /** The active registry, or nullptr when fault injection is off. */
    static FaultRegistry *
    active()
    {
        return active_.load(std::memory_order_relaxed);
    }

  private:
    struct Site
    {
        std::string name;
        FaultMode mode = FaultMode::EveryNth;
        uint64_t n = 1;          ///< EveryNth period / OneShot index
        double probability = 0.0;
        uint64_t delay = 0;      ///< Delay amount (site-defined units)
        uint64_t hash = 0;       ///< per-site probability stream salt
        std::atomic<uint64_t> invocations{0};
        std::atomic<uint64_t> fired{0};
    };

    Site *find(const char *site);
    const Site *find(const char *site) const;

    uint64_t seed_;
    /** unique_ptr elements: Site holds atomics (not movable) and armed
     *  sites must stay address-stable while workers consult them. */
    std::vector<std::unique_ptr<Site>> sites_;

    static std::atomic<FaultRegistry *> active_;
};

/** Did the armed fault at `site` fire for this invocation? One relaxed
 *  load + predicted branch when fault injection is disabled. */
inline bool
faultFires(const char *site)
{
    FaultRegistry *registry = FaultRegistry::active();
    if (__builtin_expect(registry == nullptr, 1))
        return false;
    return registry->fire(site);
}

/** Armed delay amount for this invocation (0 when off / not firing). */
inline uint64_t
faultAmount(const char *site)
{
    FaultRegistry *registry = FaultRegistry::active();
    if (__builtin_expect(registry == nullptr, 1))
        return 0;
    return registry->amount(site);
}

namespace detail {
void faultSleepSlow(const char *site);
} // namespace detail

/** Sleep for the armed delay amount (nanoseconds) at `site`; no-op
 *  when fault injection is off. For threaded (host-time) sites. */
inline void
faultSleep(const char *site)
{
    if (__builtin_expect(FaultRegistry::active() != nullptr, 0))
        detail::faultSleepSlow(site);
}

/**
 * RAII installer for tests: constructs a registry, installs it, and
 * deactivates it on scope exit so faults never leak across tests.
 */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(uint64_t seed = 1) : registry_(seed)
    {
        FaultRegistry::install(&registry_);
    }

    ~ScopedFaultInjection() { FaultRegistry::install(nullptr); }

    ScopedFaultInjection(const ScopedFaultInjection &) = delete;
    ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;

    FaultRegistry *operator->() { return &registry_; }
    FaultRegistry &registry() { return registry_; }

  private:
    FaultRegistry registry_;
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_FAULT_H_
