#include "support/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hdcps {

namespace {

std::atomic<bool> quietFlag{false};

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list ap)
{
    std::fflush(stdout);
    if (file) {
        std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    } else {
        std::fprintf(stderr, "%s: ", tag);
    }
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (logQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (logQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace detail

} // namespace hdcps
