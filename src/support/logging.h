/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (a bug in this library), fatal() for unrecoverable user errors (bad
 * configuration, malformed input files), warn()/inform() for status
 * messages that never stop execution.
 */

#ifndef HDCPS_SUPPORT_LOGGING_H_
#define HDCPS_SUPPORT_LOGGING_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hdcps {

/** Severity levels used by the message sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Quiet mode suppresses inform()/warn() output (used by tests). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace hdcps

/** Abort with a message: an internal invariant was violated (library bug). */
#define hdcps_panic(...) \
    ::hdcps::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit with a message: the user supplied an unusable config or input. */
#define hdcps_fatal(...) \
    ::hdcps::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Non-fatal warning to stderr. */
#define hdcps_warn(...) ::hdcps::detail::warnImpl(__VA_ARGS__)

/** Informational message to stderr. */
#define hdcps_inform(...) ::hdcps::detail::informImpl(__VA_ARGS__)

/**
 * Always-on assertion used for cheap invariants on hot paths is left to
 * assert(); this macro is for conditions that must hold in release builds.
 */
#define hdcps_check(cond, ...)                  \
    do {                                        \
        if (__builtin_expect(!(cond), 0)) {     \
            hdcps_panic(__VA_ARGS__);           \
        }                                       \
    } while (0)

#endif // HDCPS_SUPPORT_LOGGING_H_
