/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized components of the library (graph generators, RELD-style
 * random victim selection, workload shuffling) draw from these generators
 * so that every experiment is reproducible from a seed. The generator is
 * xoshiro256**, seeded through SplitMix64, which is both fast and has
 * far better statistical quality than std::minstd_rand while avoiding the
 * large state of std::mt19937_64.
 */

#ifndef HDCPS_SUPPORT_RNG_H_
#define HDCPS_SUPPORT_RNG_H_

#include <cstdint>

namespace hdcps {

/** SplitMix64 step; used for seeding and cheap hash mixing. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless mix of a 64-bit value; useful for hashing ids. */
inline uint64_t
mix64(uint64_t x)
{
    uint64_t s = x;
    return splitMix64(s);
}

/**
 * xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can
 * be used with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x8d7c3a2b1f0e5d4cULL) { reseed(seed); }

    /** Re-initialize the full state from a single 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    uint64_t operator()() { return next(); }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ULL; }

    /** Uniform integer in [0, bound) without modulo bias (Lemire). */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_RNG_H_
