/**
 * @file
 * Bounded single-producer/single-consumer ring buffer.
 *
 * Used for the Software-Minnow prefetch buffers: one minnow helper
 * thread produces chunks of tasks into each worker's ring, the worker
 * alone consumes them. Lock-free with acquire/release on the two
 * cursors only.
 */

#ifndef HDCPS_SUPPORT_SPSC_RING_H_
#define HDCPS_SUPPORT_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/compiler.h"
#include "support/logging.h"

namespace hdcps {

/** Bounded SPSC queue; capacity must be a power of two. */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(size_t capacity) : buffer_(capacity), mask_(capacity - 1)
    {
        hdcps_check(isPowerOf2(capacity),
                    "SPSC ring capacity must be a power of two");
    }

    /** Producer side; false when full. */
    bool
    tryPush(const T &value)
    {
        size_t head = head_.load(std::memory_order_relaxed);
        size_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail >= buffer_.size())
            return false;
        buffer_[head & mask_] = value;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side; false when empty. */
    bool
    tryPop(T &out)
    {
        size_t tail = tail_.load(std::memory_order_relaxed);
        size_t head = head_.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        out = buffer_[tail & mask_];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Approximate occupancy (exact from either endpoint's own side). */
    size_t
    sizeApprox() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    size_t capacity() const { return buffer_.size(); }

  private:
    std::vector<T> buffer_;
    size_t mask_;
    alignas(cacheLineBytes) std::atomic<size_t> head_{0};
    alignas(cacheLineBytes) std::atomic<size_t> tail_{0};
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_SPSC_RING_H_
