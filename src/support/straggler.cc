#include "support/straggler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/compiler.h"
#include "support/logging.h"
#include "support/rng.h"

namespace hdcps {

std::atomic<StragglerInjector *> StragglerInjector::active_{nullptr};

/** Per-worker state; padded so hot counters never share a line. The
 *  events/rng are touched only by the owning worker once installed;
 *  the check counter is atomic so tests may read it live. */
struct alignas(cacheLineBytes) StragglerInjector::WorkerSlot
{
    std::atomic<uint64_t> checks{0};
    Rng rng;
    std::vector<PauseEvent> events; ///< sorted by atCheck
    size_t nextEvent = 0;
};

StragglerInjector::StragglerInjector(unsigned numWorkers, uint64_t seed)
    : seed_(seed)
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    slots_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i) {
        auto slot = std::make_unique<WorkerSlot>();
        slot->rng.reseed(mix64(seed + 0x57a6) + i);
        slots_.push_back(std::move(slot));
    }
}

StragglerInjector::~StragglerInjector() = default;

unsigned
StragglerInjector::numWorkers() const
{
    return static_cast<unsigned>(slots_.size());
}

void
StragglerInjector::add(const PauseEvent &event)
{
    hdcps_check(event.worker < slots_.size(),
                "straggler worker %u out of range (have %zu workers)",
                event.worker, slots_.size());
    hdcps_check(event.atCheck >= 1, "straggler atCheck is 1-based");
    auto &events = slots_[event.worker]->events;
    events.push_back(event);
    std::sort(events.begin(), events.end(),
              [](const PauseEvent &a, const PauseEvent &b) {
                  return a.atCheck < b.atCheck;
              });
}

void
StragglerInjector::randomPauses(double probability, uint64_t maxPauseMs)
{
    hdcps_check(probability >= 0.0 && probability <= 1.0,
                "straggler probability must be in [0, 1]");
    hdcps_check(maxPauseMs >= 1, "straggler max pause must be >= 1 ms");
    probability_ = probability;
    maxPauseMs_ = maxPauseMs;
}

bool
StragglerInjector::parseSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    auto field = [](const std::string &entry, size_t &pos,
                    std::string &out) {
        size_t colon = entry.find(':', pos);
        out = entry.substr(pos, colon == std::string::npos
                                    ? std::string::npos
                                    : colon - pos);
        pos = colon == std::string::npos ? entry.size() : colon + 1;
        return !out.empty();
    };
    auto number = [](const std::string &text, double &out) {
        char *end = nullptr;
        out = std::strtod(text.c_str(), &end);
        return end != text.c_str() && *end == '\0';
    };

    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        size_t at = 0;
        std::string a, b, c;
        if (!field(entry, at, a) || !field(entry, at, b) ||
            !field(entry, at, c) || at < entry.size()) {
            return fail("'" + entry +
                        "': want worker:atCheck:pauseMs or rand:P:MAXMS");
        }
        double vb = 0.0, vc = 0.0;
        if (!number(b, vb) || !number(c, vc))
            return fail("'" + entry + "': bad numeric field");

        if (a == "rand") {
            if (vb < 0.0 || vb > 1.0)
                return fail("'" + entry + "': rand needs P in [0, 1]");
            if (vc < 1.0)
                return fail("'" + entry + "': rand needs MAXMS >= 1");
            randomPauses(vb, static_cast<uint64_t>(vc));
            continue;
        }
        double va = 0.0;
        if (!number(a, va) || va < 0.0 ||
            va >= static_cast<double>(slots_.size())) {
            return fail("'" + entry + "': worker id out of range (have " +
                        std::to_string(slots_.size()) + " workers)");
        }
        if (vb < 1.0)
            return fail("'" + entry + "': atCheck is 1-based");
        if (vc < 1.0)
            return fail("'" + entry + "': pauseMs must be >= 1");
        add(PauseEvent{static_cast<unsigned>(va),
                       static_cast<uint64_t>(vb),
                       static_cast<uint64_t>(vc)});
    }
    return true;
}

void
StragglerInjector::sleepMs(uint64_t ms)
{
    pauses_.fetch_add(1, std::memory_order_relaxed);
    pausedMs_.fetch_add(ms, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void
StragglerInjector::pausePoint(unsigned tid)
{
    WorkerSlot &slot = *slots_[tid];
    uint64_t check =
        slot.checks.fetch_add(1, std::memory_order_relaxed) + 1;
    while (slot.nextEvent < slot.events.size() &&
           slot.events[slot.nextEvent].atCheck <= check) {
        sleepMs(slot.events[slot.nextEvent].pauseMs);
        ++slot.nextEvent;
    }
    if (probability_ > 0.0) {
        double draw = static_cast<double>(slot.rng.next() >> 11) *
                      0x1.0p-53;
        if (draw < probability_)
            sleepMs(1 + slot.rng.below(maxPauseMs_));
    }
}

uint64_t
StragglerInjector::checks(unsigned tid) const
{
    return slots_[tid]->checks.load(std::memory_order_relaxed);
}

void
StragglerInjector::install(StragglerInjector *injector)
{
    active_.store(injector, std::memory_order_release);
}

} // namespace hdcps
