/**
 * @file
 * Deterministic straggler injection for the threaded runtime.
 *
 * A straggler is a worker thread that stops making progress for a
 * while — descheduled by the OS, stalled on a page fault, or paused by
 * a debugger. HD-CPS routes remote enqueues into the victim's private
 * receive queue (sRQ), so a straggler strands every task parked there;
 * the sRQ reclamation protocol (core/hdcps.h) exists to survive exactly
 * this. To *test* that protocol the runtime needs stragglers on demand,
 * which this injector provides as SIGSTOP-style but cooperative pauses:
 * the executor's worker loop consults pausePoint() once per iteration
 * (a point where the worker holds no task and no scheduler lock), and
 * the injector puts the thread to sleep when a scheduled or randomly
 * drawn pause is due.
 *
 * Determinism: each worker has its own check counter and its own seeded
 * RNG stream, so a given (spec, seed) produces the same pauses at the
 * same per-worker loop iterations on every run — no cross-thread index
 * assignment is involved, unlike the fault registry's shared counters.
 *
 * Cost model mirrors support/fault.h: with no injector installed the
 * pause point is one relaxed atomic load plus a predicted-not-taken
 * branch, cheap enough for the worker loop's hot path.
 */

#ifndef HDCPS_SUPPORT_STRAGGLER_H_
#define HDCPS_SUPPORT_STRAGGLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hdcps {

/**
 * Schedules cooperative pauses for worker threads. Configure (add/
 * randomPauses/parseSpec) before install(); pausePoint() is then safe
 * from any worker whose tid is below numWorkers.
 */
class StragglerInjector
{
  public:
    /** One scheduled pause: worker `worker` sleeps `pauseMs` when its
     *  own pause-point counter reaches `atCheck` (1-based). */
    struct PauseEvent
    {
        unsigned worker = 0;
        uint64_t atCheck = 1;
        uint64_t pauseMs = 0;
    };

    explicit StragglerInjector(unsigned numWorkers, uint64_t seed = 1);
    ~StragglerInjector();

    StragglerInjector(const StragglerInjector &) = delete;
    StragglerInjector &operator=(const StragglerInjector &) = delete;

    unsigned numWorkers() const;

    /** Schedule one pause. Events may stack on one worker. */
    void add(const PauseEvent &event);

    /**
     * Arm seeded random pauses: at every pause point, each worker
     * independently draws with `probability`; a hit sleeps a duration
     * uniform in [1, maxPauseMs] milliseconds from the worker's own
     * RNG stream.
     */
    void randomPauses(double probability, uint64_t maxPauseMs);

    /**
     * Configure from `worker:atCheck:pauseMs[,...]` entries, e.g.
     * "2:100:250" (worker 2 sleeps 250 ms at its 100th loop
     * iteration). The entry "rand:P:MAXMS" arms randomPauses(P, MAXMS)
     * instead. Returns false and fills *error on malformed input.
     */
    bool parseSpec(const std::string &spec, std::string *error = nullptr);

    /**
     * The executor's hook: count one loop iteration for `tid` and
     * sleep if a pause is due. Called by the owning worker only.
     */
    void pausePoint(unsigned tid);

    /** Pauses actually slept so far (all workers). */
    uint64_t pausesInjected() const
    {
        return pauses_.load(std::memory_order_relaxed);
    }

    /** Total milliseconds slept so far (all workers). */
    uint64_t pausedMsTotal() const
    {
        return pausedMs_.load(std::memory_order_relaxed);
    }

    /** Pause-point consultations by `tid` (test assertions). */
    uint64_t checks(unsigned tid) const;

    /**
     * Make `injector` the process-wide active injector (nullptr
     * deactivates). The caller keeps ownership, keeps it alive while
     * installed, and freezes its configuration first.
     */
    static void install(StragglerInjector *injector);

    static StragglerInjector *
    active()
    {
        return active_.load(std::memory_order_relaxed);
    }

  private:
    struct WorkerSlot;

    void sleepMs(uint64_t ms);

    uint64_t seed_;
    double probability_ = 0.0;
    uint64_t maxPauseMs_ = 0;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::atomic<uint64_t> pauses_{0};
    std::atomic<uint64_t> pausedMs_{0};

    static std::atomic<StragglerInjector *> active_;
};

/** Worker-loop hook: one relaxed load + branch when no injector is
 *  installed. tids beyond the injector's worker count are ignored. */
inline void
stragglerPausePoint(unsigned tid)
{
    StragglerInjector *injector = StragglerInjector::active();
    if (__builtin_expect(injector == nullptr, 1))
        return;
    if (tid < injector->numWorkers())
        injector->pausePoint(tid);
}

/** RAII installer for tests: installs on construction, deactivates on
 *  scope exit so stragglers never leak across tests. */
class ScopedStragglerInjection
{
  public:
    explicit ScopedStragglerInjection(unsigned numWorkers,
                                      uint64_t seed = 1)
        : injector_(numWorkers, seed)
    {
        StragglerInjector::install(&injector_);
    }

    ~ScopedStragglerInjection() { StragglerInjector::install(nullptr); }

    ScopedStragglerInjection(const ScopedStragglerInjection &) = delete;
    ScopedStragglerInjection &
    operator=(const ScopedStragglerInjection &) = delete;

    StragglerInjector *operator->() { return &injector_; }
    StragglerInjector &injector() { return injector_; }

  private:
    StragglerInjector injector_;
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_STRAGGLER_H_
