/**
 * @file
 * Wall-clock timing helpers for the threaded runtime.
 *
 * The simulator keeps its own cycle clock; these timers only serve the
 * host-machine (threaded) execution paths and the breakdown accounting.
 */

#ifndef HDCPS_SUPPORT_TIMER_H_
#define HDCPS_SUPPORT_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hdcps {

/** Monotonic nanosecond timestamp. */
inline uint64_t
nowNs()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(
        duration_cast<nanoseconds>(
            steady_clock::now().time_since_epoch()).count());
}

/** Simple start/stop stopwatch accumulating nanoseconds. */
class Stopwatch
{
  public:
    void start() { startNs_ = nowNs(); }

    /** Stop and add the elapsed interval to the running total. */
    void
    stop()
    {
        totalNs_ += nowNs() - startNs_;
    }

    /** Accumulated time in nanoseconds across all start/stop pairs. */
    uint64_t elapsedNs() const { return totalNs_; }

    double elapsedSec() const { return static_cast<double>(totalNs_) * 1e-9; }

    void reset() { totalNs_ = 0; }

  private:
    uint64_t startNs_ = 0;
    uint64_t totalNs_ = 0;
};

/** RAII guard accumulating the guarded scope's duration into a counter. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(uint64_t &sink) : sink_(sink), start_(nowNs()) {}

    ~ScopedTimer() { sink_ += nowNs() - start_; }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    uint64_t &sink_;
    uint64_t start_;
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_TIMER_H_
