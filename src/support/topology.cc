#include "support/topology.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "support/logging.h"

namespace hdcps {

namespace {

/**
 * Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. Returns false on
 * anything unexpected — detection treats that as "no topology" rather
 * than guessing.
 */
bool
parseCpuList(const std::string &text, std::vector<unsigned> *out)
{
    out->clear();
    size_t i = 0;
    const size_t n = text.size();
    auto parseNum = [&](unsigned *value) {
        if (i >= n || !std::isdigit(static_cast<unsigned char>(text[i])))
            return false;
        unsigned long parsed = 0;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
            parsed = parsed * 10 + unsigned(text[i] - '0');
            if (parsed > 1u << 20)
                return false; // not a plausible CPU id
            ++i;
        }
        *value = static_cast<unsigned>(parsed);
        return true;
    };
    while (i < n && (text[i] == '\n' || text[i] == ' '))
        ++i;
    if (i >= n)
        return true; // empty list (memory-only node)
    for (;;) {
        unsigned first = 0;
        if (!parseNum(&first))
            return false;
        unsigned last = first;
        if (i < n && text[i] == '-') {
            ++i;
            if (!parseNum(&last) || last < first)
                return false;
        }
        for (unsigned cpu = first; cpu <= last; ++cpu)
            out->push_back(cpu);
        while (i < n && (text[i] == '\n' || text[i] == ' '))
            ++i;
        if (i >= n)
            return true;
        if (text[i] != ',')
            return false;
        ++i;
    }
}

} // namespace

Topology::Topology()
{
    nodes_.resize(1);
}

Topology
Topology::synthetic(unsigned nodes, unsigned coresPerNode)
{
    hdcps_check(nodes >= 1, "synthetic topology needs >= 1 node");
    hdcps_check(coresPerNode >= 1,
                "synthetic topology needs >= 1 core per node");
    Topology t;
    t.nodes_.assign(nodes, Node{});
    for (Node &node : t.nodes_)
        node.cores = coresPerNode;
    t.synthetic_ = true;
    return t;
}

Topology
Topology::detect()
{
    Topology t;
    std::vector<Node> found;
    // Node ids are dense in practice but not guaranteed; probe a
    // generous range and stop at the first long run of gaps.
    unsigned misses = 0;
    for (unsigned id = 0; id < 4096 && misses < 64; ++id) {
        std::ifstream in("/sys/devices/system/node/node" +
                         std::to_string(id) + "/cpulist");
        if (!in) {
            ++misses;
            continue;
        }
        misses = 0;
        std::stringstream buffer;
        buffer << in.rdbuf();
        Node node;
        if (!parseCpuList(buffer.str(), &node.cpus))
            return Topology(); // malformed sysfs: no topology claimed
        if (node.cpus.empty())
            continue; // memory-only node: no worker can live there
        node.cores = static_cast<unsigned>(node.cpus.size());
        found.push_back(std::move(node));
    }
    if (found.empty())
        return Topology();
    t.nodes_ = std::move(found);
    t.pinnable_ = true;
    return t;
}

bool
Topology::parseSpec(const std::string &spec, Topology *out,
                    std::string *error)
{
    auto fail = [&](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };
    // Trim surrounding whitespace — "  2x4\n" arrives from config
    // files and shell pipelines. *Inner* whitespace ("2 x 4") stays
    // malformed: the digit scan below rejects it.
    size_t begin = spec.find_first_not_of(" \t\r\n");
    std::string s =
        begin == std::string::npos
            ? std::string()
            : spec.substr(begin,
                          spec.find_last_not_of(" \t\r\n") - begin + 1);
    if (s.empty() || s == "flat") {
        *out = Topology();
        return true;
    }
    if (s == "auto") {
        *out = detect();
        return true;
    }
    size_t x = s.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= s.size())
        return fail("want 'flat', 'auto', or NxM (e.g. 2x4), got '" +
                    s + "'");
    for (size_t i = 0; i < s.size(); ++i) {
        if (i != x && !std::isdigit(static_cast<unsigned char>(s[i])))
            return fail("want 'flat', 'auto', or NxM (e.g. 2x4), got '" +
                        s + "'");
    }
    unsigned long nodes = std::strtoul(s.c_str(), nullptr, 10);
    unsigned long cores = std::strtoul(s.c_str() + x + 1, nullptr, 10);
    if (nodes == 0 || cores == 0)
        return fail("topology '" + s +
                    "' needs at least 1 node and 1 core per node");
    // Bound each factor before multiplying: strtoul saturates overlong
    // digit strings at ULONG_MAX, and the product of two in-range
    // unsigned longs can wrap right back under the limit.
    if (nodes > 4096 || cores > 4096 || nodes * cores > 4096)
        return fail("topology '" + s +
                    "' out of range (1 <= NxM <= 4096)");
    *out = synthetic(static_cast<unsigned>(nodes),
                     static_cast<unsigned>(cores));
    return true;
}

const std::vector<unsigned> &
Topology::cpusOfNode(unsigned node) const
{
    hdcps_check(node < nodes_.size(), "node %u out of range", node);
    return nodes_[node].cpus;
}

unsigned
Topology::coresOfNode(unsigned node) const
{
    hdcps_check(node < nodes_.size(), "node %u out of range", node);
    return nodes_[node].cores;
}

unsigned
Topology::nodeOfWorker(unsigned tid, unsigned numWorkers) const
{
    hdcps_check(numWorkers >= 1, "need at least one worker");
    hdcps_check(tid < numWorkers, "worker %u out of range (%u workers)",
                tid, numWorkers);
    // Contiguous even blocks: floor(tid * nodes / workers) assigns the
    // first ceil-sized blocks to the low nodes without ever leaving a
    // node empty while workers remain (for numWorkers >= numNodes).
    return static_cast<unsigned>(uint64_t(tid) * nodes_.size() /
                                 numWorkers);
}

bool
Topology::pinThreadToNode(unsigned node) const
{
    hdcps_check(node < nodes_.size(), "node %u out of range", node);
    const std::vector<unsigned> &cpus = nodes_[node].cpus;
    if (cpus.empty())
        return false; // synthetic/flat: routing only, no affinity
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    bool any = false;
    for (unsigned cpu : cpus) {
        if (cpu < CPU_SETSIZE) {
            CPU_SET(cpu, &set);
            any = true;
        }
    }
    if (!any)
        return false;
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    return false;
#endif
}

std::string
Topology::describe() const
{
    if (synthetic_) {
        return std::to_string(nodes_.size()) + "x" +
               std::to_string(nodes_[0].cores) + " (synthetic)";
    }
    if (!pinnable_)
        return "flat";
    unsigned cpus = 0;
    for (const Node &node : nodes_)
        cpus += node.cores;
    return std::to_string(nodes_.size()) + " nodes, " +
           std::to_string(cpus) + " cpus (detected)";
}

} // namespace hdcps
