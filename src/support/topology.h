/**
 * @file
 * Machine topology: NUMA nodes and their CPUs, for worker placement.
 *
 * HD-CPS's chooseDest treats every remote core as equidistant, but on
 * multi-socket hosts a cross-node sRQ push costs several times a
 * same-node one — the software analogue of the hop-distance cost the
 * paper's hardware NoC model charges. This class gives the runtime the
 * three facts it needs to exploit that gap:
 *
 *  - how many NUMA nodes the machine has and which CPUs belong to each
 *    (`detect()`, read from sysfs);
 *  - a deterministic worker→node assignment (`nodeOfWorker`): workers
 *    are split into contiguous blocks, one block per node, so worker
 *    groups match how the runtime numbers threads;
 *  - an affinity primitive (`pinThreadToNode`) so a worker thread — and
 *    the construction-time placement threads that first-touch its
 *    buffers — runs on the node its queues live on.
 *
 * **Synthetic topologies.** `synthetic(nodes, coresPerNode)` (CLI spec
 * "NxM") describes a machine that need not exist: it partitions workers
 * into node groups and drives the hierarchical routing exactly like a
 * detected topology, but carries no CPU lists, so `pinThreadToNode` is
 * a no-op. Every topology test runs on a synthetic spec — deterministic
 * on single-node CI machines, no real NUMA hardware required.
 *
 * Detection uses sysfs + pthread affinity only (no libnuma), so the
 * fallback path — no /sys/devices/system/node, containers, non-Linux —
 * degrades to a single pinless node, which disables the hierarchical
 * paths and leaves the flat design untouched.
 */

#ifndef HDCPS_SUPPORT_TOPOLOGY_H_
#define HDCPS_SUPPORT_TOPOLOGY_H_

#include <string>
#include <vector>

namespace hdcps {

/** NUMA node/CPU layout (value type; default = one pinless node). */
class Topology
{
  public:
    /** Flat topology: a single node, unknown CPUs, no pinning. */
    Topology();

    /**
     * A made-up `nodes` x `coresPerNode` machine for tests and CLI
     * overrides: real node groups and routing behavior, but no CPU
     * lists, so pinning is a no-op and results are host-independent.
     */
    static Topology synthetic(unsigned nodes, unsigned coresPerNode);

    /**
     * The host's layout from /sys/devices/system/node/node<k>/cpulist.
     * Nodes without CPUs (CXL/HBM memory-only nodes) are skipped. Any
     * failure — no sysfs, unparsable files — returns the flat default.
     */
    static Topology detect();

    /**
     * Parse a CLI topology spec: "flat" (or "") = single node,
     * "auto" = detect(), "NxM" = synthetic(N, M). Returns false and
     * sets *error (if non-null) on a malformed spec; *out is written
     * only on success.
     */
    static bool parseSpec(const std::string &spec, Topology *out,
                          std::string *error);

    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }

    /** CPUs of `node` (empty for synthetic/flat topologies). */
    const std::vector<unsigned> &cpusOfNode(unsigned node) const;

    /** Logical cores on `node` (CPU-list size, or the synthetic
     *  per-node core count). Advisory — worker counts may exceed it. */
    unsigned coresOfNode(unsigned node) const;

    /** True when at least one node carries a real CPU list (detected
     *  topologies), i.e. pinThreadToNode can take effect. */
    bool canPin() const { return pinnable_; }

    /**
     * Deterministic worker→node assignment: `numWorkers` workers are
     * split into contiguous blocks, one per node, sized as evenly as
     * possible (e.g. 8 workers on 2 nodes: tids 0-3 → node 0, 4-7 →
     * node 1; 3 workers on 2 nodes: 0,1 → node 0, 2 → node 1).
     * Requires tid < numWorkers and numWorkers >= 1.
     */
    unsigned nodeOfWorker(unsigned tid, unsigned numWorkers) const;

    /**
     * Restrict the *calling* thread to `node`'s CPUs. Returns true on
     * success; false — with no side effect — when the node carries no
     * CPU list (synthetic/flat) or the affinity syscall fails.
     */
    bool pinThreadToNode(unsigned node) const;

    /** Human-readable summary, e.g. "2x4 (synthetic)" or
     *  "2 nodes, 64 cpus (detected)" or "flat". */
    std::string describe() const;

  private:
    struct Node
    {
        std::vector<unsigned> cpus; ///< empty for synthetic nodes
        unsigned cores = 0;         ///< |cpus|, or the synthetic count
    };

    std::vector<Node> nodes_;
    bool pinnable_ = false;
    bool synthetic_ = false;
};

} // namespace hdcps

#endif // HDCPS_SUPPORT_TOPOLOGY_H_
