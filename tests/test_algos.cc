/**
 * @file
 * Correctness tests for the sequential references and the task-parallel
 * workloads, including the full workload x scheduler integration matrix
 * run through the threaded executor.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "algos/color.h"
#include "algos/mst.h"
#include "algos/pagerank.h"
#include "algos/relaxation.h"
#include "algos/sequential.h"
#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace hdcps {
namespace {

Graph
smallWeighted()
{
    //      0 --2--> 1 --2--> 3
    //       \--5------------/^
    //        \--1--> 2 --1--/
    GraphBuilder b(4);
    b.addEdge(0, 1, 2);
    b.addEdge(1, 3, 2);
    b.addEdge(0, 3, 5);
    b.addEdge(0, 2, 1);
    b.addEdge(2, 3, 1);
    return b.build();
}

// ----------------------------------------------------- sequential refs

TEST(Sequential, DijkstraOnHandGraph)
{
    SeqPathResult r = dijkstra(smallWeighted(), 0);
    EXPECT_EQ(r.dist[0], 0u);
    EXPECT_EQ(r.dist[1], 2u);
    EXPECT_EQ(r.dist[2], 1u);
    EXPECT_EQ(r.dist[3], 2u); // via node 2
}

TEST(Sequential, DijkstraUnreachable)
{
    GraphBuilder b(3);
    b.addEdge(0, 1, 1);
    SeqPathResult r = dijkstra(b.build(), 0);
    EXPECT_EQ(r.dist[2], unreachableDist);
}

TEST(Sequential, BfsMatchesDijkstraOnUnitWeights)
{
    GraphBuilder b(50, true);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        b.addEdge(NodeId(rng.below(50)), NodeId(rng.below(50)), 1);
    }
    Graph g = b.build();
    SeqPathResult bfs = bfsLevels(g, 0);
    SeqPathResult dj = dijkstra(g, 0);
    EXPECT_EQ(bfs.dist, dj.dist);
}

TEST(Sequential, DialMatchesDijkstraOnRandomGraphs)
{
    // Dial's algorithm over the BucketQueue is the cross-check oracle
    // for the bucketed PQ: distances must be bit-identical to the
    // heap-based reference on arbitrary inputs.
    for (uint64_t seed : {5u, 19u, 77u}) {
        Graph g = makeRoadGrid(16, 16, {.seed = seed});
        SeqPathResult dial = dijkstraDial(g, 0);
        SeqPathResult dj = dijkstra(g, 0);
        EXPECT_EQ(dial.dist, dj.dist) << "seed " << seed;
    }
    Graph rmat = makeRmat(9, 6u << 9, 0.57, 0.19, 0.19, {.seed = 11});
    EXPECT_EQ(dijkstraDial(rmat, 0).dist, dijkstra(rmat, 0).dist);
}

// Regression: BucketQueue used to materialize a dense bucket for every
// priority up to the largest pushed, so any distance above its span
// (let alone 2^32) either exhausted memory or silently truncated. A
// chain of near-2^32 weights drives the accumulated 64-bit distances
// well past 2^32 and through the queue's overflow tier; the oracle
// must still agree with the heap-based Dijkstra exactly.
TEST(Sequential, DialHandles64BitDistances)
{
    constexpr Weight big = ~Weight(0) - 3; // 2^32 - 4 per hop
    constexpr NodeId chainLen = 6;
    GraphBuilder b(chainLen + 2);
    for (NodeId i = 0; i < chainLen; ++i)
        b.addEdge(i, i + 1, big);
    // A decoy detour with small weights that rejoins the chain: keeps
    // both queue tiers active in the same run.
    b.addEdge(0, chainLen + 1, 7);
    b.addEdge(chainLen + 1, 1, 5);
    Graph g = b.build();

    SeqPathResult dial = dijkstraDial(g, 0);
    SeqPathResult dj = dijkstra(g, 0);
    ASSERT_EQ(dial.dist, dj.dist);
    // The far end of the chain is genuinely beyond 32 bits: the decoy
    // shortcut (12) plus chainLen-1 big hops.
    uint64_t expectedEnd = 12 + uint64_t(chainLen - 1) * big;
    EXPECT_EQ(dial.dist[chainLen], expectedEnd);
    EXPECT_GT(dial.dist[chainLen], uint64_t(1) << 33);
}

TEST(Sequential, AstarMatchesDijkstraAtTarget)
{
    Graph g = makeRoadGrid(16, 16, {.seed = 5});
    NodeId target = g.numNodes() - 1;
    SeqPathResult a = astar(g, 0, target);
    SeqPathResult dj = dijkstra(g, 0);
    EXPECT_EQ(a.dist[target], dj.dist[target]);
    // The heuristic must prune work relative to plain Dijkstra.
    EXPECT_LE(a.tasksProcessed, dj.tasksProcessed);
}

TEST(Sequential, AstarHeuristicAdmissibleOnRoadGrid)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 7});
    SeqPathResult dj = dijkstra(g, 0);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (dj.dist[n] == unreachableDist)
            continue;
        // h(0 -> n) must never exceed the true distance.
        EXPECT_LE(astarHeuristic(g, 0, n), dj.dist[n]) << "node " << n;
    }
}

TEST(Sequential, KruskalOnHandGraph)
{
    // Undirected view of smallWeighted: MST edges 0-2(1), 2-3(1),
    // 0-1(2) => weight 4, 3 edges.
    SeqMstResult r = kruskal(smallWeighted());
    EXPECT_EQ(r.totalWeight, 4u);
    EXPECT_EQ(r.edgesInForest, 3u);
}

TEST(Sequential, KruskalForestOnDisconnected)
{
    GraphBuilder b(4);
    b.addEdge(0, 1, 3);
    b.addEdge(2, 3, 4);
    SeqMstResult r = kruskal(b.build());
    EXPECT_EQ(r.totalWeight, 7u);
    EXPECT_EQ(r.edgesInForest, 2u);
}

TEST(Sequential, GreedyColoringIsProper)
{
    Graph g = makeUniformRandom(200, 1500, {.seed = 9});
    SeqColorResult r = greedyColor(g);
    EXPECT_TRUE(isProperColoring(g, r.colors));
    EXPECT_GT(r.numColors, 0);
}

TEST(Sequential, ColoringValidatorCatchesViolations)
{
    Graph g = smallWeighted();
    std::vector<int32_t> bad(4, 0); // everything color 0
    EXPECT_FALSE(isProperColoring(g, bad));
    std::vector<int32_t> uncolored = {0, 1, 2, -1};
    EXPECT_FALSE(isProperColoring(g, uncolored));
}

TEST(Sequential, PagerankMassConserved)
{
    Graph g = makeRmat(9, 6u << 9, 0.57, 0.19, 0.19, {.seed = 11});
    SeqPagerankResult r = pagerankSeq(g, 0.85, 1e-5);
    double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
    // Total rank mass converges to n (dangling nodes keep their share
    // here because the push formulation never leaks mass).
    EXPECT_NEAR(sum, double(g.numNodes()), double(g.numNodes()) * 0.05);
}

// --------------------------------------------------- workload factory

TEST(WorkloadFactory, KnowsAllKernels)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 2});
    size_t count = 0;
    const char *const *names = workloadNames(count);
    EXPECT_EQ(count, 6u);
    for (size_t i = 0; i < count; ++i) {
        auto w = makeWorkload(names[i], g, 0);
        EXPECT_STREQ(w->name(), names[i]);
        EXPECT_FALSE(w->initialTasks().empty());
    }
}

TEST(WorkloadFactory, RejectsUnknownKernel)
{
    Graph g = smallWeighted();
    EXPECT_EXIT(makeWorkload("nope", g, 0), testing::ExitedWithCode(1),
                "unknown kernel");
}

// A workload driven sequentially by hand must verify, and again after
// a reset.
class WorkloadSequentialDrive : public testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadSequentialDrive, VerifiesAndResets)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 13});
    auto w = makeWorkload(GetParam(), g, 0);
    for (int round = 0; round < 2; ++round) {
        w->reset();
        std::vector<Task> stack = w->initialTasks();
        std::vector<Task> children;
        uint64_t processed = 0;
        while (!stack.empty()) {
            Task t = stack.back();
            stack.pop_back();
            children.clear();
            w->process(t, children);
            ++processed;
            stack.insert(stack.end(), children.begin(), children.end());
            ASSERT_LT(processed, 10'000'000u) << "runaway workload";
        }
        std::string why;
        EXPECT_TRUE(w->verify(&why)) << "round " << round << ": " << why;
        EXPECT_GT(w->sequentialTasks(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, WorkloadSequentialDrive,
                         testing::Values("sssp", "bfs", "astar", "mst",
                                         "color", "pagerank"));

// --------------------------------------- executor integration matrix

struct MatrixParam
{
    const char *kernel;
    const char *scheduler;
    const char *input;
};

std::unique_ptr<Scheduler>
makeThreadedScheduler(const std::string &name, unsigned workers)
{
    if (name == "reld")
        return std::make_unique<ReldScheduler>(workers, 7);
    if (name == "obim")
        return std::make_unique<ObimScheduler>(workers);
    if (name == "pmod")
        return std::make_unique<PmodScheduler>(workers);
    if (name == "swminnow") {
        SwMinnowScheduler::MinnowConfig config;
        config.numMinnows = 1;
        return std::make_unique<SwMinnowScheduler>(workers, config);
    }
    if (name == "hdcps-sw") {
        return std::make_unique<HdCpsScheduler>(
            workers, HdCpsScheduler::configSw());
    }
    hdcps_fatal("unknown scheduler %s", name.c_str());
}

class KernelSchedulerMatrix : public testing::TestWithParam<MatrixParam>
{
};

TEST_P(KernelSchedulerMatrix, ParallelResultMatchesReference)
{
    const MatrixParam &param = GetParam();
    Graph g = std::string(param.input) == "road"
                  ? makeRoadGrid(14, 14, {.seed = 23})
                  : makeRmat(9, 5u << 9, 0.5, 0.22, 0.22, {.seed = 23});
    auto workload = makeWorkload(param.kernel, g, 0);
    constexpr unsigned threads = 4;
    auto sched = makeThreadedScheduler(param.scheduler, threads);
    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(*sched, workload->initialTasks(),
                           workloadProcessFn(*workload), options);
    std::string why;
    EXPECT_TRUE(workload->verify(&why))
        << param.kernel << "/" << param.scheduler << ": " << why;
    EXPECT_GT(result.total.tasksProcessed, 0u);
}

std::vector<MatrixParam>
matrixParams()
{
    std::vector<MatrixParam> params;
    for (const char *kernel :
         {"sssp", "bfs", "astar", "mst", "color", "pagerank"}) {
        for (const char *sched :
             {"reld", "obim", "pmod", "swminnow", "hdcps-sw"}) {
            for (const char *input : {"road", "rmat"}) {
                params.push_back({kernel, sched, input});
            }
        }
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Full, KernelSchedulerMatrix, testing::ValuesIn(matrixParams()),
    [](const testing::TestParamInfo<MatrixParam> &info) {
        std::string name = std::string(info.param.kernel) + "_" +
                           info.param.scheduler + "_" + info.param.input;
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// -------------------------------------------------- workload specifics

TEST(Workloads, SsspWorkEfficiencyReported)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 31});
    SsspWorkload w(g, 0);
    EXPECT_EQ(w.sequentialTasks(), dijkstra(g, 0).tasksProcessed);
}

TEST(Workloads, SsspStaleTaskIsEmpty)
{
    Graph g = smallWeighted();
    SsspWorkload w(g, 0);
    std::vector<Task> children;
    w.process(Task{0, 0, 0}, children); // settles neighbours
    children.clear();
    // A worse (stale) task for node 1 must do nothing.
    uint32_t edges = w.process(Task{100, 1, 0}, children);
    EXPECT_EQ(edges, 0u);
    EXPECT_TRUE(children.empty());
}

TEST(Workloads, AstarPicksFarTarget)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 37});
    AstarWorkload w(g, 0);
    EXPECT_NE(w.target(), 0u);
    SeqPathResult levels = bfsLevels(g, 0);
    EXPECT_NE(levels.dist[w.target()], unreachableDist);
}

TEST(Workloads, MstMatchesKruskalAfterSequentialDrive)
{
    Graph g = makeUniformRandom(120, 700, {.seed = 41});
    MstWorkload w(g);
    std::vector<Task> stack = w.initialTasks();
    std::vector<Task> children;
    while (!stack.empty()) {
        Task t = stack.back();
        stack.pop_back();
        children.clear();
        w.process(t, children);
        stack.insert(stack.end(), children.begin(), children.end());
    }
    SeqMstResult ref = kruskal(g);
    EXPECT_EQ(w.forestWeight(), ref.totalWeight);
    EXPECT_EQ(w.forestEdges(), ref.edgesInForest);
}

TEST(Workloads, ColorUsesReasonableColorCount)
{
    Graph g = makeBanded(400, 6, 15, {.seed = 43});
    ColorWorkload w(g);
    std::vector<Task> stack = w.initialTasks();
    std::vector<Task> children;
    while (!stack.empty()) {
        Task t = stack.back();
        stack.pop_back();
        children.clear();
        w.process(t, children);
        stack.insert(stack.end(), children.begin(), children.end());
    }
    ASSERT_TRUE(w.verify(nullptr));
    // Degree+1 bound on greedy coloring.
    GraphStats stats = computeStats(symmetrize(g));
    EXPECT_LE(w.numColorsUsed(), int32_t(stats.maxDegree + 1));
}

TEST(Workloads, PagerankPriorityMonotone)
{
    // Larger residual must map to a smaller (sooner) priority value.
    EXPECT_LT(PagerankWorkload::priorityFor(0.5),
              PagerankWorkload::priorityFor(0.01));
    EXPECT_LT(PagerankWorkload::priorityFor(0.01),
              PagerankWorkload::priorityFor(0.0001));
}

} // namespace
} // namespace hdcps
