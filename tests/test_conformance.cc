/**
 * @file
 * Cross-scheduler conformance battery.
 *
 * Every Scheduler implementation — the baselines (reld, obim, pmod,
 * multiqueue, swminnow) as much as HD-CPS itself — must honor the same
 * contract, and chaos must not weaken it. One table-driven matrix runs
 * each design through fault-drill × straggler × kernel scenarios and
 * checks, on every run:
 *
 *  1. exact task conservation (VerifyingScheduler: no loss, no
 *     duplication, no invention), including under reclamation and
 *     graceful failure;
 *  2. the MetricsRegistry single-writer contract (instrumented debug
 *     registry, Config::checkSingleWriter) — no scheduler or helper
 *     thread may write another worker's metric slot mid-write;
 *  3. per-backend sampled rank-error bounds on a quiescent wide
 *     (>2^32) priority domain — exact backends must stay exact, the
 *     relaxed ones inside their documented slack, and any internal
 *     32-bit priority truncation shows up as a near-domain-width error;
 *  4. leak-free teardown with fault sites armed while tasks are still
 *     queued (the asan stage's LSan closes the loop).
 *
 * The matrix is the test-suite twin of tools/soak.cc: soak explores
 * randomized scenarios over minutes, this battery pins the named
 * corners deterministically on every ctest run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "cps/verifying_scheduler.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"
#include "support/topology.h"

namespace hdcps {
namespace {

constexpr unsigned kThreads = 3;
constexpr uint64_t kReclaimAfterMs = 25;
constexpr uint64_t kWatchdogMs = 5000;

/** Wide-domain priority step: one rank on the >2^32 test domain. */
constexpr uint64_t kWideStep = uint64_t(1) << 33;

struct DesignCase
{
    const char *name;
    std::function<std::unique_ptr<Scheduler>(unsigned threads,
                                             uint64_t seed)>
        make;
    /**
     * Quiescent single-worker rank-error bound, in kWideStep ranks.
     * Exact backends owe 0. The slack for the relaxed backends is a
     * measured envelope with margin, not a derived law: multiqueue's
     * best-of-2 sampling plus its insertion/deletion buffering misses
     * the global min by a handful of ranks (measured ≤ 24 across the
     * test seeds, deterministic per seed), and hdcps-mq's relaxed
     * local backend by ≤ 20 — both far below the near-domain-width
     * (~511 ranks here) signature of a 32-bit priority truncation,
     * which is what the bound must catch.
     * swminnow's helper races the push phase and stages whatever was
     * best *at claim time*, but the worker re-checks the staged bag
     * against the map's best at serve time and repushes stale stages,
     * so the only work that can still be served out of rank order is
     * work the map cannot see: the staging ring (64 slots at the
     * default bufferCapacity) plus one helper chunk in flight between
     * claim and stage (prefetchChunk = 16). 64 + 16 + margin = 96 —
     * a structural capacity bound, not a timing envelope, and far
     * below the ~511-rank truncation signature.
     */
    uint64_t rankBoundSteps;
};

std::vector<DesignCase>
conformanceDesigns()
{
    return {
        {"reld",
         [](unsigned n, uint64_t seed) {
             return std::make_unique<ReldScheduler>(n, seed);
         },
         0},
        {"obim",
         [](unsigned n, uint64_t) {
             return std::make_unique<ObimScheduler>(n);
         },
         0},
        {"pmod",
         [](unsigned n, uint64_t) {
             return std::make_unique<PmodScheduler>(n);
         },
         0},
        {"multiqueue",
         [](unsigned n, uint64_t seed) {
             return std::make_unique<MultiQueueScheduler>(n, 2, seed);
         },
         72},
        {"swminnow",
         [](unsigned n, uint64_t) {
             return std::make_unique<SwMinnowScheduler>(n);
         },
         96},
        {"hdcps-srq",
         [](unsigned n, uint64_t seed) {
             HdCpsConfig config = HdCpsScheduler::configSrq();
             config.seed = seed;
             return std::make_unique<HdCpsScheduler>(n, config);
         },
         0},
        {"hdcps-sw",
         [](unsigned n, uint64_t seed) {
             HdCpsConfig config = HdCpsScheduler::configSw();
             config.seed = seed;
             return std::make_unique<HdCpsScheduler>(n, config);
         },
         0},
        {"hdcps-mq",
         [](unsigned n, uint64_t seed) {
             HdCpsConfig config = HdCpsMqScheduler::configSw();
             config.seed = seed;
             return std::make_unique<HdCpsMqScheduler>(n, config);
         },
         64},
        // Same software design under a synthetic 2-node topology:
        // hierarchical routing, per-node peer groups, and node-aware
        // reclamation must uphold the identical contract (and the same
        // exact rank bound — locality changes *where* a task lands,
        // never its priority).
        {"hdcps-numa",
         [](unsigned n, uint64_t seed) {
             HdCpsConfig config = HdCpsScheduler::configSw();
             config.seed = seed;
             config.topology = Topology::synthetic(2, 2);
             return std::make_unique<HdCpsScheduler>(n, config);
         },
         0},
    };
}

/** One chaos corner of the scenario matrix. */
struct ChaosCase
{
    const char *label;
    const char *faultSpec;     ///< "" = none
    const char *stragglerSpec; ///< "" = none
    bool expectFailure;        ///< arms exec.process.throw
};

const ChaosCase kChaosCases[] = {
    {"clean", "", "", false},
    {"faults", "exec.pop.fail:prob:0.01,hdcps.overflow.spill:prob:0.02",
     "", false},
    {"straggler", "", "1:40:60", false},
    {"faults+stragglers", "exec.pop.fail:prob:0.005", "1:30:60,2:200:50",
     false},
    // nth must stay below the smallest kernel's pop count (sssp on the
    // 12x12 grid settles 144 nodes) so the throw fires for every
    // design, including those that process near-zero wasted work.
    {"graceful-failure", "exec.process.throw:nth:50", "", true},
};

/** Task-tree kernel: fanout^0 + ... + fanout^depth tasks, priorities
 *  ascending by `step` per level (step = kWideStep spans >2^32). */
ProcessFn
treeKernel(unsigned fanout, unsigned depth, uint64_t step)
{
    return [fanout, depth, step](unsigned, const Task &task,
                                 std::vector<Task> &children) {
        unsigned level = task.data;
        if (level >= depth)
            return;
        for (unsigned i = 0; i < fanout; ++i) {
            children.push_back(Task{task.priority + step,
                                    task.node * fanout + i, level + 1});
        }
    };
}

constexpr uint64_t
treeTaskCount(uint64_t fanout, unsigned depth)
{
    uint64_t total = 0;
    uint64_t level = 1;
    for (unsigned d = 0; d <= depth; ++d) {
        total += level;
        level *= fanout;
    }
    return total;
}

class ConformanceMatrix : public testing::TestWithParam<size_t>
{
  protected:
    DesignCase design() const
    {
        return conformanceDesigns()[GetParam()];
    }
};

/** Shared per-run plumbing: scheduler + verifier + armed debug registry
 *  + chaos, through the threaded executor. Asserts the invariants that
 *  must hold on *every* run, completed or failed. */
void
runConformanceScenario(const DesignCase &design, const ChaosCase &chaos,
                       const std::string &kernelLabel,
                       const std::vector<Task> &seeds,
                       const ProcessFn &process,
                       uint64_t expectTasks, // 0 = don't check
                       Workload *oracle)
{
    SCOPED_TRACE(std::string(design.name) + "/" + chaos.label + "/" +
                 kernelLabel);
    const uint64_t seed = 1234;

    ScopedFaultInjection faults(seed);
    if (chaos.faultSpec[0] != '\0') {
        std::string error;
        ASSERT_TRUE(faults->parseSpec(chaos.faultSpec, &error)) << error;
    }
    ScopedStragglerInjection stragglers(kThreads, seed);
    if (chaos.stragglerSpec[0] != '\0') {
        std::string error;
        ASSERT_TRUE(stragglers.injector().parseSpec(chaos.stragglerSpec,
                                                    &error))
            << error;
    }

    auto inner = design.make(kThreads, seed);
    VerifyingScheduler verified(*inner);
    MetricsRegistry::Config mconfig;
    mconfig.checkSingleWriter = true;
    MetricsRegistry metrics(kThreads, mconfig);

    RunOptions options;
    options.numThreads = kThreads;
    options.watchdogMs = kWatchdogMs;
    options.reclaimAfterMs = kReclaimAfterMs;
    options.metrics = &metrics;
    options.recordBreakdown = false;

    RunResult r = run(verified, seeds, process, options);

    // Conservation holds unconditionally (a failed run may strand
    // tasks, never lose or duplicate delivered ones).
    std::string why;
    EXPECT_TRUE(verified.checkComplete(r.failed, &why)) << why;

    // Single-writer contract: no cross-thread slot write anywhere in
    // the scheduler, its helper threads, or the runtime.
    EXPECT_EQ(metrics.writerViolations(), 0u)
        << (metrics.writerViolationSamples().empty()
                ? std::string("(no sample retained)")
                : metrics.writerViolationSamples()[0]);

    if (chaos.expectFailure) {
        EXPECT_TRUE(r.failed)
            << "injected ProcessFn throw must fail the run";
        EXPECT_NE(r.error.find("injected"), std::string::npos)
            << r.error;
        return;
    }
    EXPECT_FALSE(r.failed) << r.error;
    if (expectTasks > 0)
        EXPECT_EQ(r.total.tasksProcessed, expectTasks);
    if (oracle != nullptr)
        EXPECT_TRUE(oracle->verify(&why)) << why;
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnTaskTree)
{
    // Narrow-domain tree: priorities 0..depth.
    constexpr unsigned fanout = 3;
    constexpr unsigned depth = 7;
    constexpr uint64_t expect = treeTaskCount(fanout, depth);
    for (const ChaosCase &chaos : kChaosCases) {
        runConformanceScenario(design(), chaos, "tree",
                               {Task{0, 0, 0}},
                               treeKernel(fanout, depth, 1), expect,
                               nullptr);
    }
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnWidePriorityTree)
{
    // Same tree over a >2^32 priority domain: every backend must carry
    // full 64-bit priorities through its bags/buckets/heaps while the
    // chaos drills run. A truncating backend reorders, loses bag
    // lookups, or trips conservation here.
    constexpr unsigned fanout = 3;
    constexpr unsigned depth = 7;
    constexpr uint64_t expect = treeTaskCount(fanout, depth);
    for (const ChaosCase &chaos : kChaosCases) {
        runConformanceScenario(design(), chaos, "wide-tree",
                               {Task{0, 0, 0}},
                               treeKernel(fanout, depth, kWideStep),
                               expect, nullptr);
    }
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnDuplicatePriorityMultiSource)
{
    // Multi-source duplicate-priority workload: four sources seed
    // overlapping priority ranges (only 8 distinct priorities across
    // 128 seeds), every seed is pushed twice (exact-duplicate tasks —
    // multiset multiplicity, not distinct keys), and each task spawns
    // two *identical* children at its own priority. Ties dominate
    // every scheduling decision, so this corner stresses FIFO
    // tie-breaking structures (bag maps, bucket FIFOs, heap
    // tie-break comparators) and the verifier's exact multiset: every
    // duplicate must come back exactly as many times as it went in.
    constexpr unsigned sources = 4;
    constexpr unsigned perSource = 16;
    constexpr unsigned generations = 2;
    std::vector<Task> seeds;
    for (unsigned s = 0; s < sources; ++s) {
        for (unsigned i = 0; i < perSource; ++i) {
            Task t{/*priority=*/i % 8, s * perSource + i, generations};
            seeds.push_back(t);
            seeds.push_back(t); // exact duplicate of the same task
        }
    }
    // Each seed expands to 2^0 + 2^1 + ... + 2^generations tasks.
    constexpr uint64_t expect = uint64_t(sources) * perSource * 2 *
                                ((1u << (generations + 1)) - 1);
    ProcessFn kernel = [](unsigned, const Task &task,
                          std::vector<Task> &children) {
        if (task.data == 0)
            return;
        Task child{task.priority, task.node, task.data - 1};
        children.push_back(child);
        children.push_back(child); // identical twins, same priority
    };
    for (const ChaosCase &chaos : kChaosCases) {
        runConformanceScenario(design(), chaos, "dup-priority", seeds,
                               kernel, expect, nullptr);
    }
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnSsspOracle)
{
    // Real kernel with a sequential oracle: beyond conservation, the
    // computed distances must be exactly Dijkstra's.
    Graph g = makeRoadGrid(12, 12, {.seed = 29});
    for (const ChaosCase &chaos : kChaosCases) {
        auto workload = makeWorkload("sssp", g, /*source=*/0);
        runConformanceScenario(design(), chaos, "sssp",
                               workload->initialTasks(),
                               workloadProcessFn(*workload), 0,
                               chaos.expectFailure ? nullptr
                                                   : workload.get());
    }
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnBfsOracle)
{
    // BFS's unit-weight relaxation is a different stressor from SSSP:
    // level-synchronous frontiers produce long runs of equal-priority
    // tasks (one bag/bucket per level), so tie-dominated scheduling
    // meets a real kernel with a sequential oracle — every node's
    // level must match bfsLevels() exactly.
    Graph g = makeRoadGrid(12, 12, {.seed = 29});
    for (const ChaosCase &chaos : kChaosCases) {
        auto workload = makeWorkload("bfs", g, /*source=*/0);
        runConformanceScenario(design(), chaos, "bfs",
                               workload->initialTasks(),
                               workloadProcessFn(*workload), 0,
                               chaos.expectFailure ? nullptr
                                                   : workload.get());
    }
}

TEST_P(ConformanceMatrix, ChaosInvariantsOnAStarOracle)
{
    // A* adds a heuristic offset to every priority, so unlike SSSP the
    // pushed rank is not the settled distance: goal-directed pruning
    // makes the processed set depend on pop order, which stresses
    // relaxed backends differently (wasted work instead of wrong
    // answers). The oracle checks the goal cost against sequential A*
    // exactly, so any heuristic/priority mix-up in a backend shows up
    // as a wrong shortest path, not just extra work.
    Graph g = makeRoadGrid(12, 12, {.seed = 29});
    for (const ChaosCase &chaos : kChaosCases) {
        auto workload = makeWorkload("astar", g, /*source=*/0);
        runConformanceScenario(design(), chaos, "astar",
                               workload->initialTasks(),
                               workloadProcessFn(*workload), 0,
                               chaos.expectFailure ? nullptr
                                                   : workload.get());
    }
}

TEST_P(ConformanceMatrix, QuiescentRankErrorWithinBackendBound)
{
    // A quiescent single worker pushes a shuffled permutation of K
    // priorities spaced kWideStep apart (so the domain spans far past
    // 2^32), then drains. The verifier samples every pop; each backend
    // owes the bound documented in its table entry.
    constexpr unsigned K = 512;
    const DesignCase d = design();
    for (uint64_t seed : {1ull, 7ull, 19ull}) {
        auto inner = d.make(1, seed);
        VerifyingScheduler::Config vconfig;
        vconfig.sampleInterval = 1;
        VerifyingScheduler verified(*inner, vconfig);

        std::vector<uint32_t> perm(K);
        std::iota(perm.begin(), perm.end(), 0u);
        Rng rng(seed);
        for (unsigned i = K; i > 1; --i)
            std::swap(perm[i - 1], perm[rng.below(i)]);
        for (unsigned i = 0; i < K; ++i)
            verified.push(0, Task{uint64_t(perm[i]) * kWideStep + i, i,
                                  0});
        // One empty tryPop is not quiescence: swminnow's helper can
        // transiently hold claimed tasks in its staging ring (the
        // executor's idle-backoff loop retries for the same reason),
        // so drain with retries until all K tasks surface.
        Task t;
        unsigned popped = 0;
        const uint64_t deadline = nowNs() + uint64_t(10e9);
        while (popped < K && nowNs() < deadline) {
            if (verified.tryPop(0, t))
                ++popped;
            else
                std::this_thread::yield();
        }
        EXPECT_EQ(popped, K) << d.name;

        VerifyingScheduler::Report report = verified.report();
        EXPECT_EQ(report.violations, 0u) << d.name;
        EXPECT_EQ(report.outstanding, 0u) << d.name;
        EXPECT_GT(report.rankSamples, 0u) << d.name;
        EXPECT_LE(report.maxRankError,
                  double(d.rankBoundSteps) * double(kWideStep))
            << d.name << " seed " << seed
            << ": rank error " << report.maxRankError << " ("
            << report.maxRankError / double(kWideStep)
            << " ranks) exceeds the backend's documented bound";
    }
}

TEST_P(ConformanceMatrix, TeardownWithArmedFaultsAndQueuedTasks)
{
    // Destruction while fault sites are hot and tasks are still queued
    // across every internal tier (local heaps, sRQs, spill paths, bag
    // maps, staging rings). The assertion that matters most runs after
    // main(): the asan stage's LeakSanitizer flags anything a design
    // dropped on the floor instead of freeing.
    const DesignCase d = design();
    for (uint64_t seed : {3ull, 11ull}) {
        ScopedFaultInjection faults(seed);
        std::string error;
        ASSERT_TRUE(faults->parseSpec(
                        "srq.push.full:prob:0.3,"
                        "srq.pop.fail:prob:0.1,"
                        "hdcps.overflow.spill:prob:0.3",
                        &error))
            << error;

        auto sched = d.make(2, seed);
        Rng rng(seed);
        for (uint32_t i = 0; i < 2000; ++i) {
            sched->push(i % 2,
                        Task{rng.below(64) * kWideStep + i, i, 0});
        }
        Task t;
        unsigned popped = 0;
        for (int i = 0; i < 100; ++i) {
            if (sched->tryPop(0, t))
                ++popped;
        }
        EXPECT_GT(popped, 0u) << d.name;
        // Destructor runs with ~1900 tasks still queued.
    }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, ConformanceMatrix,
                         testing::Range<size_t>(0, 9),
                         [](const testing::TestParamInfo<size_t> &info) {
                             std::string name =
                                 conformanceDesigns()[info.param].name;
                             for (char &ch : name) {
                                 if (ch == '-')
                                     ch = '_';
                             }
                             return name;
                         });

} // namespace
} // namespace hdcps
