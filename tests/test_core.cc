/**
 * @file
 * Unit tests for the paper's core mechanisms: the TDF controller
 * (Algorithm 2), the drift tracker (Equation 1 / Algorithm 3), the
 * selective bagging policy (Algorithm 1), and the HD-CPS:SW scheduler's
 * own invariants.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/bag_policy.h"
#include "core/bag_pool.h"
#include "core/drift.h"
#include "core/hdcps.h"
#include "core/recv_queue.h"
#include "core/tdf.h"
#include "obs/metrics.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/topology.h"

namespace hdcps {
namespace {

// ----------------------------------------------------------------- TDF

TdfController::Config
tdfConfig(unsigned initial = 50, unsigned step = 10)
{
    TdfController::Config config;
    config.initial = initial;
    config.step = step;
    return config;
}

TEST(Tdf, StartsAtInitial)
{
    TdfController tdf(tdfConfig(70));
    EXPECT_EQ(tdf.current(), 70u);
}

TEST(Tdf, FirstIntervalMakesNoChange)
{
    TdfController tdf(tdfConfig());
    EXPECT_EQ(tdf.update(5.0), 50u); // records baseline only
}

TEST(Tdf, ImprovementContinuesLastDirection)
{
    // Drift improving: keep moving the same way (the controller
    // starts with "increase" as its notional last move).
    TdfController tdf(tdfConfig());
    tdf.update(10.0);
    EXPECT_EQ(tdf.update(5.0), 60u);
    EXPECT_TRUE(tdf.lastWasIncrease());
    EXPECT_EQ(tdf.update(3.0), 70u); // still improving: keep going up
}

TEST(Tdf, WorseAfterIncreaseDecreases)
{
    // Algorithm 2 line 5-7: communication increase didn't help.
    TdfController tdf(tdfConfig());
    tdf.update(10.0);
    tdf.update(5.0);                  // improved -> increase (60)
    EXPECT_EQ(tdf.update(12.0), 50u); // worsened after increase -> down
    EXPECT_FALSE(tdf.lastWasIncrease());
}

TEST(Tdf, WorseAfterDecreaseIncreases)
{
    // Algorithm 2 line 8-10: backing off starved the task flow.
    TdfController tdf(tdfConfig());
    tdf.update(10.0);
    tdf.update(5.0);  // improved -> increase (60)
    tdf.update(12.0); // worse -> decrease (50)
    EXPECT_EQ(tdf.update(14.0), 60u); // worse after decrease -> up
    EXPECT_TRUE(tdf.lastWasIncrease());
}

TEST(Tdf, ClampsAtBounds)
{
    TdfController::Config config = tdfConfig(80, 10);
    config.minTdf = 10;
    config.maxTdf = 100;
    TdfController tdf(config);
    tdf.update(10.0);
    // Repeated improvement walks up to the ceiling and stays there.
    for (double d = 9.0; d > 0.5; d -= 1.0)
        tdf.update(d);
    EXPECT_EQ(tdf.current(), 100u);
}

TEST(Tdf, StepSizeRespected)
{
    TdfController tdf(tdfConfig(50, 30));
    tdf.update(10.0);
    EXPECT_EQ(tdf.update(5.0), 80u);
}

TEST(Tdf, DecisionsCounted)
{
    TdfController tdf(tdfConfig());
    tdf.update(1.0);
    tdf.update(2.0);
    tdf.update(3.0);
    EXPECT_EQ(tdf.decisions(), 2u); // first interval is baseline-only
}

TEST(Tdf, ResetRestoresState)
{
    TdfController tdf(tdfConfig());
    tdf.update(1.0);
    tdf.update(0.5);
    tdf.reset(tdfConfig(80));
    EXPECT_EQ(tdf.current(), 80u);
    EXPECT_EQ(tdf.decisions(), 0u);
}

// --------------------------------------------------------------- drift

TEST(Drift, Equation1AgainstHandComputation)
{
    DriftTracker drift(4);
    drift.publish(0, 10);
    drift.publish(1, 14);
    drift.publish(2, 22);
    drift.publish(3, 10);
    // P0 = 10; |10-10| + |14-10| + |22-10| + |10-10| = 16; / 4 = 4.
    EXPECT_DOUBLE_EQ(drift.computeDrift(), 4.0);
}

TEST(Drift, IgnoresUnpublishedCores)
{
    DriftTracker drift(4);
    drift.publish(0, 100);
    EXPECT_DOUBLE_EQ(drift.computeDrift(), 0.0); // < 2 cores published
    drift.publish(2, 110);
    EXPECT_DOUBLE_EQ(drift.computeDrift(), 5.0); // (0 + 10) / 2
}

TEST(Drift, ZeroWhenAllEqual)
{
    DriftTracker drift(3);
    for (unsigned c = 0; c < 3; ++c)
        drift.publish(c, 42);
    EXPECT_DOUBLE_EQ(drift.computeDrift(), 0.0);
}

TEST(Drift, LatestPublishWins)
{
    DriftTracker drift(2);
    drift.publish(0, 10);
    drift.publish(1, 10);
    drift.publish(1, 30);
    EXPECT_DOUBLE_EQ(drift.computeDrift(), 10.0);
    EXPECT_EQ(drift.published(1), 30u);
}

TEST(Drift, SeriesAveragesAndMax)
{
    DriftSeries series;
    series.record(2.0);
    series.record(4.0);
    series.record(6.0);
    EXPECT_DOUBLE_EQ(series.average(), 4.0);
    EXPECT_DOUBLE_EQ(series.maxSample(), 6.0);
    EXPECT_EQ(series.samples(), 3u);
}

TEST(Drift, ResetClearsMailboxes)
{
    DriftTracker drift(2);
    drift.publish(0, 5);
    drift.reset(3);
    EXPECT_EQ(drift.numCores(), 3u);
    EXPECT_EQ(drift.published(0), DriftTracker::unpublished);
}

// ----------------------------------------------------------------- bags

std::vector<Task>
tasksWithPriorities(const std::vector<Priority> &priorities)
{
    std::vector<Task> tasks;
    for (size_t i = 0; i < priorities.size(); ++i)
        tasks.push_back(Task{priorities[i], uint32_t(i), 0});
    return tasks;
}

TEST(BagPolicy, NoneModePassesThrough)
{
    BagPolicy policy;
    policy.mode = BagMode::None;
    BagPlan plan = policy.plan(tasksWithPriorities({1, 1, 1, 1, 1}));
    EXPECT_TRUE(plan.bags.empty());
    EXPECT_EQ(plan.singles.size(), 5u);
}

TEST(BagPolicy, SelectiveBagsInsideWindow)
{
    BagPolicy policy; // min 3, max 10
    BagPlan plan = policy.plan(tasksWithPriorities({7, 7, 7, 9}));
    ASSERT_EQ(plan.bags.size(), 1u);
    EXPECT_EQ(plan.bags[0].priority, 7u);
    EXPECT_EQ(plan.bags[0].tasks.size(), 3u);
    EXPECT_EQ(plan.singles.size(), 1u); // the lone 9
}

TEST(BagPolicy, SelectiveRejectsBelowMin)
{
    BagPolicy policy;
    BagPlan plan = policy.plan(tasksWithPriorities({5, 5}));
    EXPECT_TRUE(plan.bags.empty());
    EXPECT_EQ(plan.singles.size(), 2u);
}

TEST(BagPolicy, SelectiveRejectsAtOrAboveMax)
{
    BagPolicy policy; // window [3, 10)
    std::vector<Priority> priorities(10, 4);
    BagPlan plan = policy.plan(tasksWithPriorities(priorities));
    EXPECT_TRUE(plan.bags.empty());
    EXPECT_EQ(plan.singles.size(), 10u);
}

TEST(BagPolicy, AlwaysModeBagsPairs)
{
    BagPolicy policy;
    policy.mode = BagMode::Always;
    BagPlan plan = policy.plan(tasksWithPriorities({3, 3}));
    ASSERT_EQ(plan.bags.size(), 1u);
    EXPECT_EQ(plan.bags[0].tasks.size(), 2u);
}

TEST(BagPolicy, AlwaysModeSplitsOversizedGroups)
{
    BagPolicy policy;
    policy.mode = BagMode::Always;
    std::vector<Priority> priorities(25, 6);
    BagPlan plan = policy.plan(tasksWithPriorities(priorities));
    size_t inBags = 0;
    for (const Bag &bag : plan.bags) {
        EXPECT_LT(bag.tasks.size(), policy.maxBagSize);
        EXPECT_GE(bag.tasks.size(), 2u);
        inBags += bag.tasks.size();
    }
    EXPECT_EQ(inBags + plan.singles.size(), 25u);
}

TEST(BagPolicy, MixedPrioritiesGroupedExactly)
{
    BagPolicy policy;
    BagPlan plan =
        policy.plan(tasksWithPriorities({1, 2, 2, 2, 3, 3, 4, 4, 4, 4}));
    // Group sizes: 1 (single), 3 (bag), 2 (singles), 4 (bag).
    ASSERT_EQ(plan.bags.size(), 2u);
    EXPECT_EQ(plan.singles.size(), 3u);
}

class BagConservation : public testing::TestWithParam<unsigned>
{
};

TEST_P(BagConservation, EveryChildEndsUpSomewhere)
{
    BagPolicy policy;
    policy.mode = GetParam() == 0 ? BagMode::Selective : BagMode::Always;
    Rng rng(GetParam() + 99);
    for (int round = 0; round < 200; ++round) {
        size_t n = 1 + rng.below(40);
        std::multiset<Priority> input;
        std::vector<Task> tasks;
        for (size_t i = 0; i < n; ++i) {
            Priority p = rng.below(8);
            input.insert(p);
            tasks.push_back(Task{p, uint32_t(i), 0});
        }
        BagPlan plan = policy.plan(std::move(tasks));
        std::multiset<Priority> output;
        for (const Task &t : plan.singles)
            output.insert(t.priority);
        for (const Bag &bag : plan.bags) {
            EXPECT_GE(bag.tasks.size(), 2u);
            EXPECT_LT(bag.tasks.size(), policy.maxBagSize);
            for (const Task &t : bag.tasks) {
                EXPECT_EQ(t.priority, bag.priority);
                output.insert(t.priority);
            }
        }
        ASSERT_EQ(input, output);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, BagConservation, testing::Values(0, 1));

// -------------------------------------------------- HD-CPS:SW scheduler

TEST(HdCpsScheduler, NamesFollowConfiguration)
{
    EXPECT_STREQ(HdCpsScheduler(2, HdCpsScheduler::configSrq()).name(),
                 "hdcps-srq");
    EXPECT_STREQ(HdCpsScheduler(2, HdCpsScheduler::configSrqTdf()).name(),
                 "hdcps-srq-tdf");
    EXPECT_STREQ(
        HdCpsScheduler(2, HdCpsScheduler::configSrqTdfAc()).name(),
        "hdcps-srq-tdf-ac");
    EXPECT_STREQ(HdCpsScheduler(2, HdCpsScheduler::configSw()).name(),
                 "hdcps-srq-tdf-sc");
}

TEST(HdCpsScheduler, SingleThreadPushPop)
{
    HdCpsScheduler sched(1, HdCpsScheduler::configSrq());
    sched.push(0, Task{30, 3, 0});
    sched.push(0, Task{10, 1, 0});
    sched.push(0, Task{20, 2, 0});
    Task t;
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, 10u);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, 20u);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_FALSE(sched.tryPop(0, t));
}

TEST(HdCpsScheduler, OrdersPrioritiesThatDifferOnlyAbove32Bits)
{
    // Regression: the packed heap key must keep the full 64-bit
    // priority (SSSP/A* tentative distances exceed 32 bits on
    // large-weight graphs). A 64-bit (priority << 32) | node pack
    // truncated to the low 32 bits, so 2^32 packed to key 0 and popped
    // ahead of priority 1.
    HdCpsScheduler sched(1, HdCpsScheduler::configSrq());
    const uint64_t big = uint64_t(1) << 32;
    sched.push(0, Task{big, 9, 0});
    sched.push(0, Task{big, 4, 0}); // node tie-break above bit 31 too
    sched.push(0, Task{1, 2, 0});
    sched.push(0, Task{big + 1, 3, 0});
    sched.push(0, Task{uint64_t(3) << 32, 5, 0});
    Task t;
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, 1u);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, big);
    EXPECT_EQ(t.node, 4u);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, big);
    EXPECT_EQ(t.node, 9u);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, big + 1);
    ASSERT_TRUE(sched.tryPop(0, t));
    EXPECT_EQ(t.priority, uint64_t(3) << 32);
    EXPECT_FALSE(sched.tryPop(0, t));
}

TEST(HdCpsScheduler, BatchWithBagsConservesTasks)
{
    HdCpsConfig config = HdCpsScheduler::configSw();
    config.seed = 5;
    HdCpsScheduler sched(1, config);
    std::vector<Task> children;
    for (int i = 0; i < 5; ++i)
        children.push_back(Task{7, uint32_t(i), 0}); // bagged (5 in [3,10))
    children.push_back(Task{9, 99, 0});
    sched.pushBatch(0, children.data(), children.size());
    EXPECT_EQ(sched.bagsCreated(), 1u);
    EXPECT_EQ(sched.tasksInBags(), 5u);
    int popped = 0;
    Task t;
    while (sched.tryPop(0, t))
        ++popped;
    EXPECT_EQ(popped, 6);
}

TEST(HdCpsScheduler, OverflowPathStillDelivers)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.rqCapacity = 2; // force overflow quickly
    config.fixedTdf = 100; // all remote
    config.seed = 11;
    HdCpsScheduler sched(2, config);
    for (int i = 0; i < 100; ++i)
        sched.push(0, Task{uint64_t(i), uint32_t(i), 0});
    EXPECT_GT(sched.overflowPushes(), 0u);
    int total = 0;
    Task t;
    while (sched.tryPop(1, t))
        ++total;
    while (sched.tryPop(0, t))
        ++total;
    EXPECT_EQ(total, 100);
}

TEST(HdCpsScheduler, FixedTdfControlsDistribution)
{
    HdCpsConfig local = HdCpsScheduler::configSrq();
    local.fixedTdf = 0; // keep everything local
    HdCpsScheduler sched(4, local);
    for (int i = 0; i < 50; ++i)
        sched.push(2, Task{uint64_t(i), 0, 0});
    EXPECT_EQ(sched.remoteEnqueues(), 0u);
    EXPECT_EQ(sched.localEnqueues(), 50u);
    Task t;
    int popped = 0;
    while (sched.tryPop(2, t))
        ++popped;
    EXPECT_EQ(popped, 50);
}

TEST(HdCpsScheduler, CurrentTdfWithinBounds)
{
    HdCpsConfig config = HdCpsScheduler::configSw();
    HdCpsScheduler sched(2, config);
    unsigned tdf = sched.currentTdf();
    EXPECT_GE(tdf, config.tdf.minTdf);
    EXPECT_LE(tdf, config.tdf.maxTdf);
}

// -------------------------------------------------- TDF deadband path

TEST(TdfDeadband, HoldsWithinNoiseFloor)
{
    TdfController::Config config = tdfConfig(50, 10);
    config.deadband = 0.2;
    TdfController tdf(config);
    tdf.update(100.0); // first interval: record only
    // 10% relative change is under the 20% deadband: hold, and the
    // held interval must not count as a decision.
    EXPECT_EQ(tdf.update(110.0), 50u);
    EXPECT_EQ(tdf.current(), 50u);
    EXPECT_EQ(tdf.decisions(), 0u);
}

TEST(TdfDeadband, ReactsBeyondNoiseFloor)
{
    TdfController::Config config = tdfConfig(50, 10);
    config.deadband = 0.2;
    TdfController tdf(config);
    tdf.update(100.0);
    tdf.update(110.0); // held — but the comparison base advances
    // (200 - 110) / 110 clears the deadband; drift worsened after the
    // (initial) Increase direction, so the controller must decrease.
    EXPECT_EQ(tdf.update(200.0), 40u);
    EXPECT_EQ(tdf.decisions(), 1u);
    EXPECT_FALSE(tdf.lastWasIncrease());
}

TEST(TdfDeadband, ZeroPreviousDriftDoesNotDivideByZero)
{
    TdfController::Config config = tdfConfig(50, 10);
    config.deadband = 0.1;
    TdfController tdf(config);
    tdf.update(0.0);
    // prev = 0: any nonzero drift is an infinite relative change and
    // must escape the deadband, not crash or hold forever.
    EXPECT_EQ(tdf.update(5.0), 40u);
    // And flat-at-zero stays inside it.
    TdfController flat(config);
    flat.update(0.0);
    EXPECT_EQ(flat.update(0.0), 50u);
    EXPECT_EQ(flat.decisions(), 0u);
}

TEST(TdfDeadband, DisabledByDefault)
{
    TdfController tdf(tdfConfig(50, 10));
    tdf.update(100.0);
    // Without a deadband even a tiny worsening triggers a reversal.
    EXPECT_EQ(tdf.update(100.5), 40u);
    EXPECT_EQ(tdf.decisions(), 1u);
}

// -------------------------------------- drift concurrency regression

/**
 * Regression for the computeDrift() double-load bug: the old code
 * scanned the mailboxes once for the best priority and then re-loaded
 * them for the sum; a core publishing a new minimum between the two
 * passes made the unsigned `p - best` wrap to ~2^64. With every
 * publish confined to [lo, hi], Eq. 1 can never exceed (hi - lo), so
 * any larger result is the wraparound.
 */
TEST(DriftConcurrency, ResultStaysWithinPublishedSpan)
{
    constexpr unsigned cores = 8;
    constexpr Priority lo = 1000;
    constexpr Priority hi = 2000;
    DriftTracker tracker(cores);
    for (unsigned c = 0; c < cores; ++c)
        tracker.publish(c, lo + c);

    std::atomic<bool> stop{false};
    std::vector<std::thread> publishers;
    constexpr unsigned numPublishers = 4;
    for (unsigned p = 0; p < numPublishers; ++p) {
        publishers.emplace_back([&tracker, &stop, p] {
            Rng rng(0xd1f7 + p);
            while (!stop.load(std::memory_order_relaxed)) {
                unsigned core =
                    p * (cores / numPublishers) +
                    static_cast<unsigned>(
                        rng.below(cores / numPublishers));
                tracker.publish(core,
                                lo + Priority(rng.below(hi - lo + 1)));
            }
        });
    }

    // Time-bound rather than iteration-bound: the race needs the
    // reducer to lose the CPU mid-reduction to a publisher, so the
    // loop must span many OS timeslices even on a single-core host.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    double bad = -1.0;
    while (std::chrono::steady_clock::now() < deadline) {
        double drift = tracker.computeDrift();
        if (drift < 0.0 || drift > double(hi - lo)) {
            bad = drift;
            break;
        }
    }
    stop.store(true);
    for (auto &t : publishers)
        t.join();
    EXPECT_EQ(bad, -1.0)
        << "wrapped subtraction leaked into Eq. 1: drift = " << bad;
}

TEST(DriftConcurrency, ManyCoreReductionCrossesChunkBoundary)
{
    // More cores than computeDrift's stack chunk (64), with the global
    // minimum in the *last* chunk so the cross-chunk fixup path (best
    // drops after earlier chunks were summed) is exercised.
    constexpr unsigned cores = 150;
    DriftTracker tracker(cores);
    for (unsigned c = 0; c + 1 < cores; ++c)
        tracker.publish(c, 1000 + c);
    tracker.publish(cores - 1, 0);

    double expected = 0.0;
    for (unsigned c = 0; c + 1 < cores; ++c)
        expected += double(1000 + c);
    expected /= double(cores);
    EXPECT_DOUBLE_EQ(tracker.computeDrift(), expected);
}

// ------------------------------------- sRQ occupancy from any thread

TEST(ReceiveQueueSize, ExactWhenQuiescent)
{
    ReceiveQueue<int> queue(8);
    EXPECT_EQ(queue.sizeApprox(), 0u);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    EXPECT_EQ(queue.sizeApprox(), 5u);
    int v;
    EXPECT_TRUE(queue.tryPop(v));
    EXPECT_EQ(queue.sizeApprox(), 4u);
}

TEST(ReceiveQueueSize, ReadableFromNonOwnerThread)
{
    // The observability layer samples sizeApprox() from monitoring
    // contexts; pre-fix the plain readPtr_ read was a data race (UB
    // under TSan). Now it must be readable concurrently with the
    // owner's pops and always land in [0, capacity].
    ReceiveQueue<int> queue(16);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> popped{0};

    std::thread owner([&] { // consumer: owns tryPop
        int v;
        while (!stop.load(std::memory_order_relaxed)) {
            if (queue.tryPop(v))
                popped.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::thread producer([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed))
            queue.tryPush(i++);
    });

    for (int iter = 0; iter < 20000; ++iter) {
        size_t n = queue.sizeApprox();
        ASSERT_LE(n, queue.capacity());
    }
    stop.store(true);
    owner.join();
    producer.join();
    EXPECT_LE(queue.sizeApprox(), queue.capacity());
}

// ------------------------------------------- fault-injection drills

TEST(FaultDrill, SrqForcedFullReportsFalseWithoutConsumingSlots)
{
    ReceiveQueue<int> queue(8);
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 1);
    EXPECT_FALSE(queue.tryPush(1));
    EXPECT_FALSE(queue.tryPush(2));
    EXPECT_EQ(queue.sizeApprox(), 0u); // the ring was never touched
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 2);
    EXPECT_TRUE(queue.tryPush(3)); // 1st of nth:2 passes
    EXPECT_FALSE(queue.tryPush(4));
    EXPECT_EQ(queue.sizeApprox(), 1u);
}

TEST(FaultDrill, SrqSpuriousPopFailureLosesNothing)
{
    ReceiveQueue<int> queue(8);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPopFail, FaultMode::EveryNth, 2);
    int got = 0;
    int v;
    for (int attempt = 0; attempt < 16 && got < 4; ++attempt) {
        if (queue.tryPop(v)) {
            EXPECT_EQ(v, got); // FIFO order survives the misfires
            ++got;
        }
    }
    EXPECT_EQ(got, 4);
    EXPECT_GT(faults->fireCount(faultsite::SrqPopFail), 0u);
}

TEST(FaultDrill, DrainPopBypassesThePopFailDrill)
{
    ReceiveQueue<int> queue(8);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPopFail, FaultMode::EveryNth, 1);
    int v;
    EXPECT_FALSE(queue.tryPop(v)); // the drill starves tryPop forever
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(queue.drainPop(v)); // teardown path sees the truth
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(queue.drainPop(v)); // genuinely empty now
}

TEST(FaultDrill, TeardownReleasesInFlightBagsDespitePopFaults)
{
    // Regression: the destructor drain must not trust tryPop while the
    // srq.pop.fail drill is armed — it used to stop on the injected
    // "empty" and strand the pooled bag parked in worker 1's sRQ,
    // leaking its node past ~BagPool (caught by the asan preset).
    ScopedFaultInjection faults;
    {
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.bags.mode = BagMode::Always;
        config.fixedTdf = 100; // ship everything to worker 1's sRQ
        config.seed = 13;
        HdCpsScheduler sched(2, config);
        std::vector<Task> children;
        for (uint32_t i = 0; i < 4; ++i)
            children.push_back(Task{5, i, 0});
        sched.pushBatch(0, children.data(), children.size());
        ASSERT_EQ(sched.bagsCreated(), 1u);
        ASSERT_EQ(sched.remoteEnqueues(), 1u);
        faults->arm(faultsite::SrqPopFail, FaultMode::EveryNth, 1);
    } // ~HdCpsScheduler drains the sRQ and releases the bag
}

TEST(FaultDrill, HdCpsExactlyOnceWhenEveryRemotePushSpills)
{
    // Acceptance drill: with the sRQ reporting full on *every* remote
    // push, all transfer detours through the locked overflow queue —
    // and still every task arrives exactly once.
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.rqCapacity = 256; // plenty of room — the fault starves it
    config.fixedTdf = 100;   // all pushes remote
    config.seed = 11;
    HdCpsScheduler sched(2, config);
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 1);
    constexpr int tasks = 200;
    for (int i = 0; i < tasks; ++i)
        sched.push(0, Task{uint64_t(i), uint32_t(i), 0});
    EXPECT_EQ(sched.overflowPushes(), uint64_t(tasks));
    std::set<uint32_t> seen;
    Task t;
    while (sched.tryPop(1, t))
        EXPECT_TRUE(seen.insert(t.node).second) << "duplicate task";
    while (sched.tryPop(0, t))
        EXPECT_TRUE(seen.insert(t.node).second) << "duplicate task";
    EXPECT_EQ(seen.size(), size_t(tasks));
}

TEST(FaultDrill, HdCpsOverflowSiteForcesSpillPastTheSrq)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.seed = 3;
    HdCpsScheduler sched(2, config);
    ScopedFaultInjection faults;
    faults->arm(faultsite::HdcpsOverflowSpill, FaultMode::OneShot, 1);
    sched.push(0, Task{1, 1, 0});
    sched.push(0, Task{2, 2, 0});
    EXPECT_EQ(sched.overflowPushes(), 1u); // only the one-shot spilled
    int total = 0;
    Task t;
    while (sched.tryPop(1, t))
        ++total;
    EXPECT_EQ(total, 2);
}

TEST(HdCpsScheduler, SizeApproxCountsTransferBuffers)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.seed = 7;
    HdCpsScheduler sched(2, config);
    EXPECT_EQ(sched.sizeApprox(), 0u);
    for (int i = 0; i < 10; ++i)
        sched.push(0, Task{uint64_t(i), uint32_t(i), 0});
    // All ten sit in worker 1's sRQ (or overflow) until it pops.
    EXPECT_EQ(sched.sizeApprox(), 10u);
    Task t;
    ASSERT_TRUE(sched.tryPop(1, t));
    // The drain moved the rest into the private PQ, which the owner
    // advertises through its published localBuffered estimate.
    EXPECT_EQ(sched.sizeApprox(), 9u);
}

// --------------------------------------------------- sRQ reclamation

TEST(Reclaim, OffByDefaultStrandsAStragglersTasks)
{
    // The control case: without the knob, tasks parked at a worker
    // that never pops are unreachable from its peers.
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100; // every push goes to the other worker
    HdCpsScheduler sched(2, config);
    for (uint32_t i = 0; i < 10; ++i)
        sched.push(0, Task{i, i, 0});
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    Task t;
    EXPECT_FALSE(sched.tryPop(0, t));
    EXPECT_EQ(sched.reclaimedTasks(), 0u);
    EXPECT_EQ(sched.sizeApprox(), 10u); // stranded in worker 1's sRQ
}

TEST(Reclaim, IdleWorkerDrainsAStaleStragglersSrq)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    HdCpsScheduler sched(2, config);
    sched.setReclaimAfterMs(20);
    for (uint32_t i = 0; i < 10; ++i)
        sched.push(0, Task{i, i, 0});

    // Worker 1's heartbeat is still fresh (setReclaimAfterMs refreshed
    // it): reclamation must not fire early.
    Task t;
    EXPECT_FALSE(sched.tryPop(0, t));
    EXPECT_EQ(sched.reclaimedTasks(), 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    unsigned popped = 0;
    Priority last = 0;
    while (sched.tryPop(0, t)) {
        EXPECT_GE(t.priority, last); // reclaimed work keeps PQ order
        last = t.priority;
        ++popped;
    }
    EXPECT_EQ(popped, 10u); // every stranded task, exactly once
    EXPECT_EQ(sched.reclaimedTasks(), 10u);
    EXPECT_EQ(sched.heartbeatPops(0), 10u);
    EXPECT_EQ(sched.sizeApprox(), 0u);
}

TEST(Reclaim, DrainsOverflowAndPrivatePqToo)
{
    // A straggler's buffered work can sit in three more places than
    // the sRQ: the locked overflow spill, its active bag, and its
    // private PQ (filled by its own earlier drains). Reclamation must
    // take all of them, or a paused worker's locally-buffered children
    // stay stranded.
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.rqCapacity = 2; // force the overflow path
    HdCpsScheduler sched(2, config);
    sched.setReclaimAfterMs(20);
    for (uint32_t i = 0; i < 10; ++i)
        sched.push(0, Task{i, i, 0});

    // Worker 1 pops once: the drain moves everything into its private
    // PQ, then it "stalls" with 9 tasks buffered locally.
    Task t;
    ASSERT_TRUE(sched.tryPop(1, t));
    EXPECT_EQ(sched.sizeApprox(), 9u);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    unsigned popped = 0;
    while (sched.tryPop(0, t))
        ++popped;
    EXPECT_EQ(popped, 9u);
    EXPECT_EQ(sched.reclaimedTasks(), 9u);
}

TEST(Reclaim, DrainsAStragglersActiveBag)
{
    HdCpsConfig config = HdCpsScheduler::configSrqTdfAc();
    config.useTdf = false;
    config.fixedTdf = 100;
    HdCpsScheduler sched(2, config);
    sched.setReclaimAfterMs(20);
    // Four equal-priority children form one bag shipped to worker 1.
    std::vector<Task> batch;
    for (uint32_t i = 0; i < 4; ++i)
        batch.push_back(Task{7, i, 0});
    sched.pushBatch(0, batch.data(), batch.size());
    ASSERT_EQ(sched.bagsCreated(), 1u);

    // Worker 1 starts the bag (binding it to the core) then stalls.
    Task t;
    ASSERT_TRUE(sched.tryPop(1, t));

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    unsigned popped = 0;
    while (sched.tryPop(0, t))
        ++popped;
    EXPECT_EQ(popped, 3u); // the bag's unserved remainder
    EXPECT_EQ(sched.reclaimedTasks(), 3u);
}

TEST(Reclaim, PrefersSameNodeVictimsOnHierarchicalTopologies)
{
    // Two stale stragglers, one per node of a synthetic 2x2 box:
    // worker 0 (node 0, same node as the reclaimer) and worker 2
    // (node 1). Reclaimed tasks land in the reclaimer's private PQ, so
    // the scan must drain the same-node straggler and stop there — the
    // old flat modular scan from tid 1 visited worker 2 first and
    // pulled node 1's stranded work across the socket while node 0's
    // sat one hop away.
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.useTdf = false;
    config.fixedTdf = 100;   // every push leaves the pusher...
    config.crossNodePct = 0; // ...toward its only same-node peer
    config.topology = Topology::synthetic(2, 2);
    config.seed = 43;
    HdCpsScheduler sched(4, config);
    sched.setReclaimAfterMs(20);
    for (uint32_t i = 0; i < 5; ++i)
        sched.push(1, Task{uint64_t(i), i, 0}); // lands at worker 0
    for (uint32_t i = 0; i < 5; ++i)
        sched.push(3, Task{uint64_t(100 + i), 100 + i, 0}); // worker 2
    ASSERT_EQ(sched.sizeApprox(), 10u);

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    // Exactly five pops: the first triggers one reclaim pass (which
    // must take worker 0's five tasks and leave worker 2 alone), the
    // rest drain the reclaimer's PQ without a further pass.
    Task t;
    for (unsigned i = 0; i < 5; ++i) {
        ASSERT_TRUE(sched.tryPop(1, t)) << i;
        EXPECT_LT(t.priority, 100u)
            << "drained a cross-node victim while a same-node "
               "straggler still had work";
    }
    EXPECT_EQ(sched.reclaimedTasks(), 5u);
    EXPECT_EQ(sched.sizeApprox(), 5u); // node 1's work left in place
}

TEST(HdCpsScheduler, PushBatchLeavesNothingStaged)
{
    // Flush-at-batch-end contract: once pushBatch returns, no task may
    // remain parked in a combining buffer — sizeApprox sees all of
    // them and any worker can immediately pop the full batch (here via
    // reclamation, since worker 0 owns all the transferred work).
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.seed = 21;
    HdCpsScheduler sched(2, config);
    sched.setReclaimAfterMs(20);
    std::vector<Task> batch;
    for (uint32_t i = 0; i < 40; ++i)
        batch.push_back(Task{uint64_t(i % 3), i, 0});
    sched.pushBatch(0, batch.data(), batch.size());
    EXPECT_EQ(sched.sizeApprox(), 40u);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    Task t;
    unsigned popped = 0;
    while (sched.tryPop(0, t))
        ++popped;
    EXPECT_EQ(popped, 40u) << "reclaim must find every transferred task";
}

// ------------------------------------------- batched transfer + pool

TEST(BagPool, PlaceSlotPrewarmsFreeListWithoutCountingAllocations)
{
    BagPool pool(2);
    pool.placeSlot(0, 1);
    EXPECT_EQ(pool.prewarmed(), 1u);
    EXPECT_EQ(pool.allocations(), 0u); // placement != demand miss
    bool recycled = false;
    Bag *bag = pool.acquire(0, &recycled);
    EXPECT_TRUE(recycled) << "acquire must serve the placed envelope";
    EXPECT_EQ(pool.allocations(), 0u);
    // The cross-thread Treiber return path covers placed nodes too:
    // return from worker 1's context, reacquire at the home slot.
    pool.release(1, bag);
    Bag *again = pool.acquire(0, &recycled);
    EXPECT_TRUE(recycled);
    EXPECT_EQ(again, bag);
    pool.release(0, again);
}

TEST(BagPool, RecyclesAndKeepsCapacitySingleThread)
{
    BagPool pool(1);
    bool recycled = true;
    Bag *bag = pool.acquire(0, &recycled);
    EXPECT_FALSE(recycled);
    bag->tasks.assign(50, Task{1, 2, 0});
    pool.release(0, bag);
    Bag *again = pool.acquire(0, &recycled);
    EXPECT_TRUE(recycled);
    EXPECT_EQ(again, bag) << "free list should hand back the same node";
    EXPECT_TRUE(again->tasks.empty());
    EXPECT_GE(again->tasks.capacity(), 50u) << "capacity must survive";
    pool.release(0, again);
    EXPECT_EQ(pool.allocations(), 1u);
    EXPECT_EQ(pool.recycled(), 1u);
}

TEST(BagPool, RecycleUnderContention)
{
    // All threads concurrently CAS-return home-0 bags onto one return
    // stack while every worker churns acquire/release on its own free
    // list. Steady-state churn must be allocation-free.
    constexpr unsigned kThreads = 4;
    constexpr int kIters = 20000;
    BagPool pool(kThreads);
    std::vector<std::vector<Bag *>> handoff(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        for (int i = 0; i < 8; ++i)
            handoff[t].push_back(pool.acquire(0));
    }
    const uint64_t preAllocs = pool.allocations();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&pool, &handoff, t] {
            for (Bag *bag : handoff[t])
                pool.release(t, bag); // cross-thread return path
            for (int i = 0; i < kIters; ++i) {
                Bag *bag = pool.acquire(t);
                bag->priority = t;
                bag->tasks.push_back(Task{t, uint32_t(i), 0});
                pool.release(t, bag);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_LE(pool.allocations(), preAllocs + kThreads)
        << "steady-state churn must not hit the allocator";
    EXPECT_GE(pool.recycled(), uint64_t(kThreads) * (kIters - 1));
}

TEST(HdCpsScheduler, BatchedTransferFlushesAndConserves)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.useTdf = false;
    config.fixedTdf = 100; // every task crosses a combining buffer
    config.bags.mode = BagMode::Selective;
    config.seed = 13;
    HdCpsScheduler sched(4, config);
    std::vector<Task> batch;
    for (uint32_t i = 0; i < 64; ++i)
        batch.push_back(Task{uint64_t(i % 5), i, 0});
    sched.pushBatch(0, batch.data(), batch.size());
    EXPECT_GT(sched.srqBatchFlushes(), 0u);
    // Flush-at-batch-end contract: nothing may stay staged once
    // pushBatch returns — every task is immediately poppable.
    std::set<uint32_t> seen;
    Task t;
    for (unsigned tid = 0; tid < 4; ++tid) {
        while (sched.tryPop(tid, t))
            EXPECT_TRUE(seen.insert(t.node).second) << "duplicate task";
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(HdCpsScheduler, BatchedTransferSpillsWhenDestinationIsFull)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.rqCapacity = 8; // multi-slot claims go partial, then spill
    config.fixedTdf = 100;
    config.seed = 17;
    HdCpsScheduler sched(2, config);
    std::vector<Task> batch;
    for (uint32_t i = 0; i < 100; ++i)
        batch.push_back(Task{uint64_t(i), i, 0});
    sched.pushBatch(0, batch.data(), batch.size());
    EXPECT_GT(sched.overflowPushes(), 0u);
    std::set<uint32_t> seen;
    Task t;
    while (sched.tryPop(1, t))
        EXPECT_TRUE(seen.insert(t.node).second) << "duplicate task";
    while (sched.tryPop(0, t))
        EXPECT_TRUE(seen.insert(t.node).second) << "duplicate task";
    EXPECT_EQ(seen.size(), 100u);
}

TEST(HdCpsScheduler, BagPoolRecyclesEnvelopesAcrossRounds)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 0; // local: the same worker pushes and pops
    config.bags.mode = BagMode::Selective;
    HdCpsScheduler sched(1, config);
    std::vector<Task> batch;
    for (uint32_t i = 0; i < 5; ++i)
        batch.push_back(Task{3, i, 0}); // one bag per round (5 in [3,10))
    Task t;
    for (int round = 0; round < 10; ++round) {
        sched.pushBatch(0, batch.data(), batch.size());
        int popped = 0;
        while (sched.tryPop(0, t))
            ++popped;
        ASSERT_EQ(popped, 5);
    }
    EXPECT_EQ(sched.bagsCreated(), 10u);
    EXPECT_LE(sched.poolAllocations(), 1u)
        << "after warmup every bag envelope must come from the pool";
    EXPECT_GE(sched.poolRecycled(), 9u);
}

// ------------------------------------------- hierarchical routing

TEST(HierarchicalRouting, NodeAssignmentMatchesTopologyBlocks)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.topology = Topology::synthetic(2, 4);
    HdCpsScheduler sched(8, config);
    for (unsigned tid = 0; tid < 8; ++tid) {
        EXPECT_EQ(sched.nodeOfWorker(tid),
                  config.topology.nodeOfWorker(tid, 8));
        EXPECT_EQ(sched.nodeOfWorker(tid), tid < 4 ? 0u : 1u);
    }
}

TEST(HierarchicalRouting, FlatTopologyNeverCountsNodeTraffic)
{
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.useTdf = false;
    config.fixedTdf = 100; // every push is remote
    config.seed = 31;
    HdCpsScheduler sched(8, config); // default topology: flat
    for (uint32_t i = 0; i < 2000; ++i)
        sched.push(0, Task{uint64_t(i), i, 0});
    EXPECT_EQ(sched.crossNodeEnqueues() + sched.sameNodeEnqueues(), 0u)
        << "node-locality counters are a hierarchical-mode concept";
    for (unsigned tid = 0; tid < 8; ++tid)
        EXPECT_EQ(sched.nodeOfWorker(tid), 0u);
}

TEST(HierarchicalRouting, ChooseDestLocalityTracksCrossNodePct)
{
    // With fixedTdf = 100 every push leaves the pusher, so the
    // same/cross-node counters record exactly one pick per push and
    // their split must track the configured crossNodePct: 0 and 100
    // are exact (the cross-node roll is a strict comparison), 25 is
    // statistical (20000 draws, so +-0.02 is ~6 standard deviations).
    const struct {
        unsigned crossPct;
        double lo, hi;
    } kCases[] = {{0, 0.0, 0.0}, {25, 0.23, 0.27}, {100, 1.0, 1.0}};
    for (const auto &c : kCases) {
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.useTdf = false;
        config.fixedTdf = 100;
        config.topology = Topology::synthetic(2, 4);
        config.crossNodePct = c.crossPct;
        config.seed = 37;
        HdCpsScheduler sched(8, config);
        constexpr uint32_t kPushes = 20000;
        for (uint32_t i = 0; i < kPushes; ++i)
            sched.push(0, Task{uint64_t(i), i, 0});
        const uint64_t cross = sched.crossNodeEnqueues();
        const uint64_t same = sched.sameNodeEnqueues();
        ASSERT_EQ(cross + same, uint64_t(kPushes))
            << "crossNodePct=" << c.crossPct;
        const double frac = double(cross) / double(kPushes);
        EXPECT_GE(frac, c.lo) << "crossNodePct=" << c.crossPct;
        EXPECT_LE(frac, c.hi) << "crossNodePct=" << c.crossPct;
    }
}

TEST(HierarchicalRouting, FollowTdfSentinelTiesCrossTrafficToDrift)
{
    // Default crossNodePct (kCrossNodeFollowTdf) reuses the live TDF
    // as the cross-node percentage: at a pinned TDF of 60, 60% of the
    // 20000 pushes go remote and 60% of those cross nodes.
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.useTdf = false;
    config.fixedTdf = 60;
    config.topology = Topology::synthetic(2, 4);
    config.seed = 41;
    ASSERT_EQ(config.crossNodePct, kCrossNodeFollowTdf);
    HdCpsScheduler sched(8, config);
    constexpr uint32_t kPushes = 20000;
    for (uint32_t i = 0; i < kPushes; ++i)
        sched.push(0, Task{uint64_t(i), i, 0});
    const uint64_t cross = sched.crossNodeEnqueues();
    const uint64_t same = sched.sameNodeEnqueues();
    const double remoteFrac = double(cross + same) / double(kPushes);
    EXPECT_NEAR(remoteFrac, 0.60, 0.02);
    const double crossFrac = double(cross) / double(cross + same);
    EXPECT_NEAR(crossFrac, 0.60, 0.02);
}

// -------------------------------------------- metrics attribution

const MetricsSnapshot::Counter *
counterByName(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &c : snap.counters) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

TEST(MetricsAttribution, OverflowSpillCountsOnActingWorker)
{
    // The overflow spill happens on the *sender's* thread; the
    // registry's per-worker numbers must say "who spilled", not "who
    // was spilled onto" (and single-writer state must stay with the
    // acting thread).
    MetricsRegistry metrics(2);
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.seed = 11;
    HdCpsScheduler sched(2, config);
    sched.attachMetrics(&metrics);
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 1);
    for (uint32_t i = 0; i < 50; ++i)
        sched.push(1, Task{uint64_t(i), i, 0}); // worker 1 is acting
    MetricsSnapshot snap = metrics.snapshot();
    const auto *overflow = counterByName(snap, "overflow_pushes");
    ASSERT_NE(overflow, nullptr);
    EXPECT_EQ(overflow->perWorker[1], 50u);
    EXPECT_EQ(overflow->perWorker[0], 0u)
        << "spills must not be attributed to the destination";
    const auto *remote = counterByName(snap, "remote_enqueues");
    ASSERT_NE(remote, nullptr);
    EXPECT_EQ(remote->perWorker[1], 50u);
}

TEST(MetricsAttribution, CrossThreadTrafficKeepsRegistryRaceFree)
{
    // TSan regression guard: one thread drives worker 0 (pushing
    // remote-only traffic that frequently spills) while another drives
    // worker 1 (popping, which samples the per-worker series). Every
    // scheduler metrics call must act on the calling worker's slot —
    // any call-site that touches another worker's single-writer state
    // (time series, tick pacer) from this cross-traffic is a data race
    // the sanitizer build reports.
    MetricsRegistry::Config mconfig;
    mconfig.seriesCapacity = 64;
    mconfig.sampleInterval = 4;
    MetricsRegistry metrics(2, mconfig);
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    config.rqCapacity = 16; // frequent spills under load
    config.sampleInterval = 8;
    config.seed = 19;
    HdCpsScheduler sched(2, config);
    sched.attachMetrics(&metrics);
    constexpr uint32_t kTasks = 20000;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> popped{0};
    std::thread popper([&] {
        Task t;
        while (!stop.load(std::memory_order_relaxed)) {
            if (sched.tryPop(1, t))
                popped.fetch_add(1, std::memory_order_relaxed);
        }
        while (sched.tryPop(1, t))
            popped.fetch_add(1, std::memory_order_relaxed);
    });
    for (uint32_t i = 0; i < kTasks; ++i)
        sched.push(0, Task{uint64_t(i % 7), i, 0});
    stop.store(true, std::memory_order_relaxed);
    popper.join();
    EXPECT_EQ(popped.load(), kTasks);
    MetricsSnapshot snap = metrics.snapshot();
    const auto *overflow = counterByName(snap, "overflow_pushes");
    ASSERT_NE(overflow, nullptr);
    EXPECT_EQ(overflow->perWorker[1], 0u)
        << "only worker 0 pushed, so only worker 0 may spill";
}

} // namespace
} // namespace hdcps
