/**
 * @file
 * Unit tests for the graph substrate: CSR representation, builder,
 * generators (including the Table II shape properties of the paper
 * inputs), and the file loaders/writers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"

namespace hdcps {
namespace {

Graph
triangle()
{
    GraphBuilder b(3);
    b.addEdge(0, 1, 5);
    b.addEdge(1, 2, 7);
    b.addEdge(2, 0, 9);
    return b.build();
}

TEST(GraphBuilder, BasicCsrLayout)
{
    Graph g = triangle();
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.edgeDest(g.edgeBegin(0)), 1u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(0)), 5u);
}

TEST(GraphBuilder, DropsSelfLoops)
{
    GraphBuilder b(2);
    b.addEdge(0, 0, 1);
    b.addEdge(0, 1, 2);
    Graph g = b.build();
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphBuilder, DedupKeepsMinimumWeight)
{
    GraphBuilder b(2);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 1, 3);
    b.addEdge(0, 1, 6);
    Graph g = b.build(true);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edgeWeight(0), 3u);
}

TEST(GraphBuilder, NoDedupKeepsParallelEdges)
{
    GraphBuilder b(2);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 1, 3);
    Graph g = b.build(false);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(GraphBuilder, UndirectedAddsBoth)
{
    GraphBuilder b(2);
    b.addUndirectedEdge(0, 1, 4);
    Graph g = b.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(1)), 4u);
}

TEST(Graph, EdgeRangeIteration)
{
    GraphBuilder b(3);
    b.addEdge(0, 1, 1);
    b.addEdge(0, 2, 2);
    Graph g = b.build();
    uint32_t count = 0;
    Weight total = 0;
    for (Edge e : g.outEdges(0)) {
        ++count;
        total += e.weight;
    }
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(g.outEdges(0).size(), 2u);
    EXPECT_EQ(g.outEdges(1).size(), 0u);
}

TEST(Graph, TransposeReversesEdges)
{
    Graph g = triangle();
    Graph t = g.transpose();
    EXPECT_EQ(t.numEdges(), 3u);
    EXPECT_EQ(t.edgeDest(t.edgeBegin(1)), 0u);
    EXPECT_EQ(t.edgeWeight(t.edgeBegin(1)), 5u);
}

TEST(Graph, TransposeTwiceIsIdentity)
{
    Graph g = makeUniformRandom(50, 300, {.seed = 3});
    Graph tt = g.transpose().transpose();
    EXPECT_EQ(tt.rawOffsets(), g.rawOffsets());
    EXPECT_EQ(tt.rawDests(), g.rawDests());
    EXPECT_EQ(tt.rawWeights(), g.rawWeights());
}

TEST(Graph, ReachableFromCountsComponent)
{
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    // node 3 disconnected
    Graph g = b.build();
    EXPECT_EQ(g.reachableFrom(0), 3u);
    EXPECT_EQ(g.reachableFrom(3), 1u);
}

TEST(Graph, MaxWeight)
{
    Graph g = triangle();
    EXPECT_EQ(g.maxWeight(), 9u);
}

TEST(Graph, StatsMatchStructure)
{
    Graph g = triangle();
    GraphStats s = computeStats(g);
    EXPECT_EQ(s.nodes, 3u);
    EXPECT_EQ(s.edges, 3u);
    EXPECT_DOUBLE_EQ(s.avgDegree, 1.0);
    EXPECT_EQ(s.maxDegree, 1u);
}

TEST(Graph, CoordinatesRoundTrip)
{
    Graph g = triangle();
    g.setCoordinates({{0, 0}, {3, 4}, {-1, 2}});
    ASSERT_TRUE(g.hasCoordinates());
    EXPECT_EQ(g.coordX(1), 3);
    EXPECT_EQ(g.coordY(2), 2);
}

// ------------------------------------------------------------ generators

TEST(Generators, RoadGridIsDeterministic)
{
    Graph a = makeRoadGrid(16, 16, {.seed = 5});
    Graph b = makeRoadGrid(16, 16, {.seed = 5});
    EXPECT_EQ(a.rawDests(), b.rawDests());
    EXPECT_EQ(a.rawWeights(), b.rawWeights());
}

TEST(Generators, RoadGridHasCoordinates)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 1});
    ASSERT_TRUE(g.hasCoordinates());
    EXPECT_EQ(g.numNodes(), 64u);
    EXPECT_EQ(g.coordX(9), 1);
    EXPECT_EQ(g.coordY(9), 1);
}

TEST(Generators, RoadGridIsSparse)
{
    Graph g = makeRoadGrid(32, 32, {.seed = 2});
    GraphStats s = computeStats(g);
    EXPECT_LT(s.avgDegree, 5.0); // road networks are sparse
    EXPECT_GT(s.avgDegree, 1.0);
}

TEST(Generators, BandedHasBoundedMaxDegreeShape)
{
    Graph g = makeBanded(2000, 17, 40, {.seed = 3});
    GraphStats s = computeStats(g);
    EXPECT_GT(s.avgDegree, 8.0);  // quasi-regular, dense-ish
    EXPECT_LT(s.maxDegree, 60u);  // bounded by the band
}

TEST(Generators, RmatIsSkewed)
{
    Graph g = makeRmat(12, 6u << 12, 0.57, 0.19, 0.19, {.seed = 4});
    GraphStats s = computeStats(g);
    // Power-law: max degree far above average (Web-Google shape).
    EXPECT_GT(double(s.maxDegree), 10.0 * s.avgDegree);
}

TEST(Generators, UniformRandomEdgeCount)
{
    Graph g = makeUniformRandom(100, 500, {.seed = 6});
    // Some edges dedup/self-loop away, the chain adds n-1.
    EXPECT_GT(g.numEdges(), 400u);
    EXPECT_LT(g.numEdges(), 650u);
}

TEST(Generators, WeightsRespectMaxWeight)
{
    GenParams params;
    params.seed = 8;
    params.maxWeight = 10;
    Graph g = makeBanded(500, 5, 20, params);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_GE(g.edgeWeight(e), 1u);
        EXPECT_LE(g.edgeWeight(e), 10u);
    }
}

TEST(Generators, PaperInputNamesEnumerate)
{
    size_t count = 0;
    const char *const *names = paperInputNames(count);
    EXPECT_EQ(count, 4u);
    for (size_t i = 0; i < count; ++i) {
        Graph g = makePaperInput(names[i], 1, 3);
        EXPECT_GT(g.numNodes(), 100u) << names[i];
        EXPECT_GT(g.numEdges(), 100u) << names[i];
    }
}

TEST(Generators, PaperInputShapesMatchTable2)
{
    GraphStats usa = computeStats(makePaperInput("usa", 1, 1));
    GraphStats cage = computeStats(makePaperInput("cage", 1, 1));
    GraphStats wg = computeStats(makePaperInput("wg", 1, 1));
    GraphStats lj = computeStats(makePaperInput("lj", 1, 1));
    // Relative density ordering from Table II: usa sparse, cage/lj
    // dense, wg skewed.
    EXPECT_LT(usa.avgDegree, 5.0);
    EXPECT_GT(cage.avgDegree, 10.0);
    EXPECT_GT(double(wg.maxDegree), 8.0 * wg.avgDegree);
    EXPECT_GT(lj.avgDegree, wg.avgDegree * 0.9);
}

TEST(Generators, RoadGridMostlyConnected)
{
    Graph g = makeRoadGrid(24, 24, {.seed = 9});
    // Random 12% edge removal can isolate a few pockets, but the bulk
    // of the grid must stay mutually reachable.
    EXPECT_GT(g.reachableFrom(0), g.numNodes() * 8 / 10);
}

// --------------------------------------------------------------- loaders

/** Expect fn() to throw GraphIoError with `sub` in the message. */
template <typename Fn>
void
expectIoError(Fn &&fn, const std::string &sub)
{
    try {
        fn();
        FAIL() << "expected GraphIoError containing '" << sub << "'";
    } catch (const GraphIoError &e) {
        EXPECT_NE(std::string(e.what()).find(sub), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(GraphIo, DimacsParsesHeaderAndArcs)
{
    std::istringstream in(
        "c comment line\n"
        "p sp 3 2\n"
        "a 1 2 10\n"
        "a 2 3 20\n");
    Graph g = loadDimacs(in, "test.gr");
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeDest(g.edgeBegin(0)), 1u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(1)), 20u);
}

TEST(GraphIo, DimacsRejectsGarbage)
{
    std::istringstream in("p sp 2 1\nz 1 2 3\n");
    expectIoError([&] { loadDimacs(in, "bad.gr"); }, "unknown record");
}

TEST(GraphIo, DimacsRejectsMissingHeader)
{
    std::istringstream in("a 1 2 3\n");
    expectIoError([&] { loadDimacs(in, "bad.gr"); }, "arc before");
}

TEST(GraphIo, DimacsRejectsOutOfRangeArc)
{
    std::istringstream in("p sp 2 1\na 1 5 3\n");
    expectIoError([&] { loadDimacs(in, "bad.gr"); }, "out of range");
}

TEST(GraphIo, MatrixMarketGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 3 2\n"
        "1 2 0.5\n"
        "3 1 1.0\n");
    Graph g = loadMatrixMarket(in, "test.mtx");
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(0)), 50u); // 0.5 * 100
}

TEST(GraphIo, MatrixMarketSymmetricPattern)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 2\n");
    Graph g = loadMatrixMarket(in, "test.mtx");
    EXPECT_EQ(g.numEdges(), 4u); // each entry mirrored
}

TEST(GraphIo, MatrixMarketSkipsDiagonal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "1 2\n");
    Graph g = loadMatrixMarket(in, "test.mtx");
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphIo, MatrixMarketRejectsBadBanner)
{
    std::istringstream in("%%NotMatrixMarket nope\n");
    expectIoError([&] { loadMatrixMarket(in, "bad.mtx"); }, "banner");
}

TEST(GraphIo, EdgeListWithCommentsAndWeights)
{
    std::istringstream in(
        "# SNAP-ish comment\n"
        "0 1 7\n"
        "1 2\n");
    Graph g = loadEdgeList(in, "test.el");
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(0)), 7u);
    EXPECT_EQ(g.edgeWeight(g.edgeBegin(1)), 1u); // default weight
}

TEST(GraphIo, EdgeListRejectsEmpty)
{
    std::istringstream in("# nothing\n");
    expectIoError([&] { loadEdgeList(in, "bad.el"); }, "no edges");
}

TEST(GraphIo, BinaryRoundTripPreservesEverything)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 17});
    std::stringstream buffer;
    saveBinary(g, buffer);
    Graph back = loadBinary(buffer, "mem.bin");
    EXPECT_EQ(back.rawOffsets(), g.rawOffsets());
    EXPECT_EQ(back.rawDests(), g.rawDests());
    EXPECT_EQ(back.rawWeights(), g.rawWeights());
    ASSERT_TRUE(back.hasCoordinates());
    EXPECT_EQ(back.coordX(9), g.coordX(9));
}

TEST(GraphIo, BinaryRejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "this is not a graph file at all, sorry";
    expectIoError([&] { loadBinary(buffer, "bad.bin"); },
                  "not an HD-CPS");
}

TEST(GraphIo, MissingFileThrows)
{
    expectIoError([] { loadAnyFile("/nonexistent/nope.gr"); },
                  "cannot open");
}

TEST(GraphIo, DimacsWriteReadRoundTrip)
{
    Graph g = makeBanded(80, 5, 12, {.seed = 33});
    std::stringstream buffer;
    saveDimacs(g, buffer);
    Graph back = loadDimacs(buffer, "mem.gr");
    EXPECT_EQ(back.rawOffsets(), g.rawOffsets());
    EXPECT_EQ(back.rawDests(), g.rawDests());
    EXPECT_EQ(back.rawWeights(), g.rawWeights());
}

TEST(GraphIo, EdgeListWriteReadRoundTrip)
{
    Graph g = makeUniformRandom(60, 240, {.seed = 35});
    std::stringstream buffer;
    saveEdgeList(g, buffer);
    Graph back = loadEdgeList(buffer, "mem.el");
    EXPECT_EQ(back.rawOffsets(), g.rawOffsets());
    EXPECT_EQ(back.rawDests(), g.rawDests());
    EXPECT_EQ(back.rawWeights(), g.rawWeights());
}

TEST(GraphIo, DimacsFileWriter)
{
    Graph g = makeBanded(40, 3, 8, {.seed = 37});
    std::string path = testing::TempDir() + "/hdcps_io_test.gr";
    saveDimacsFile(g, path);
    Graph back = loadAnyFile(path); // dispatches on .gr
    EXPECT_EQ(back.numEdges(), g.numEdges());
    std::remove(path.c_str());
}

TEST(GraphIo, BinaryFileRoundTrip)
{
    Graph g = makeBanded(100, 4, 10, {.seed = 21});
    std::string path = testing::TempDir() + "/hdcps_io_test.bin";
    saveBinaryFile(g, path);
    Graph back = loadAnyFile(path);
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_EQ(back.numEdges(), g.numEdges());
    std::remove(path.c_str());
}

} // namespace
} // namespace hdcps
