/**
 * @file
 * Tests for the observability subsystem: the time-series ring, the
 * registry's counters/gauges/series/tick pacing, snapshot merging, the
 * JSON/CSV exporters (validated with a minimal JSON parser), and an
 * end-to-end threaded run that must produce the acceptance-critical
 * drift / TDF / sRQ-occupancy series.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hdcps.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/executor.h"

namespace hdcps {
namespace {

// ---------------------------------------------------------------------
// MetricTimeSeries

TEST(MetricTimeSeries, RecordsInOrderBelowCapacity)
{
    MetricTimeSeries series(8);
    for (uint64_t i = 0; i < 5; ++i)
        series.record(i * 10, double(i));
    EXPECT_EQ(series.totalRecorded(), 5u);
    std::vector<MetricSample> samples = series.snapshot();
    ASSERT_EQ(samples.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(samples[i].t, i * 10);
        EXPECT_DOUBLE_EQ(samples[i].value, double(i));
    }
}

TEST(MetricTimeSeries, RingKeepsNewestWhenFull)
{
    MetricTimeSeries series(4);
    for (uint64_t i = 0; i < 10; ++i)
        series.record(i, double(i));
    EXPECT_EQ(series.totalRecorded(), 10u);
    std::vector<MetricSample> samples = series.snapshot();
    ASSERT_EQ(samples.size(), 4u);
    // Oldest-first: 6, 7, 8, 9 survive.
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(samples[i].t, 6 + i);
        EXPECT_DOUBLE_EQ(samples[i].value, double(6 + i));
    }
}

TEST(MetricTimeSeries, SnapshotSafeDuringConcurrentWrites)
{
    MetricTimeSeries series(64);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            series.record(i, double(i));
            ++i;
        }
    });
    // Values equal their timestamps except for benign wraparound
    // tearing, which can only pair fields from two *valid* samples —
    // so every observed field must still be one the writer produced,
    // and the retained window can never exceed capacity.
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<MetricSample> samples = series.snapshot();
        EXPECT_LE(samples.size(), series.capacity());
        uint64_t total = series.totalRecorded();
        for (const MetricSample &s : samples) {
            EXPECT_LE(s.t, total + 1);
            EXPECT_GE(s.value, 0.0);
        }
    }
    stop.store(true);
    writer.join();
}

// ---------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersAggregateAcrossWorkers)
{
    MetricsRegistry registry(3);
    registry.add(0, WorkerCounter::TasksProcessed, 5);
    registry.add(1, WorkerCounter::TasksProcessed, 7);
    registry.add(2, WorkerCounter::TasksProcessed);
    registry.add(1, WorkerCounter::BagsCreated, 2);

    MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.numWorkers, 3u);
    bool sawTasks = false;
    bool sawBags = false;
    for (const auto &c : snap.counters) {
        if (c.name == "tasks_processed") {
            sawTasks = true;
            EXPECT_EQ(c.total, 13u);
            ASSERT_EQ(c.perWorker.size(), 3u);
            EXPECT_EQ(c.perWorker[0], 5u);
            EXPECT_EQ(c.perWorker[1], 7u);
            EXPECT_EQ(c.perWorker[2], 1u);
        }
        if (c.name == "bags_created") {
            sawBags = true;
            EXPECT_EQ(c.total, 2u);
        }
    }
    EXPECT_TRUE(sawTasks);
    EXPECT_TRUE(sawBags);
}

TEST(MetricsRegistry, GaugesKeepLastValue)
{
    MetricsRegistry registry(2);
    registry.set(0, WorkerGauge::QueueDepth, 10.0);
    registry.set(0, WorkerGauge::QueueDepth, 4.0);
    MetricsSnapshot snap = registry.snapshot();
    bool saw = false;
    for (const auto &g : snap.gauges) {
        if (g.name != "queue_depth")
            continue;
        saw = true;
        ASSERT_EQ(g.perWorker.size(), 2u);
        EXPECT_DOUBLE_EQ(g.perWorker[0], 4.0);
        EXPECT_DOUBLE_EQ(g.perWorker[1], 0.0);
    }
    EXPECT_TRUE(saw);
}

TEST(MetricsRegistry, SnapshotSkipsNeverWrittenSeries)
{
    MetricsRegistry registry(2);
    registry.record(1, WorkerSeries::SrqOccupancy, 3.0);
    registry.recordGlobal(GlobalSeries::Drift, 1.5);
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 2u);
    std::set<std::string> names;
    for (const auto &s : snap.series)
        names.insert(s.name);
    EXPECT_TRUE(names.count("srq_occupancy"));
    EXPECT_TRUE(names.count("drift"));
    for (const auto &s : snap.series) {
        if (s.name == "srq_occupancy") {
            EXPECT_EQ(s.worker, 1);
        } else if (s.name == "drift") {
            EXPECT_EQ(s.worker, -1);
        }
    }
}

TEST(MetricsRegistry, TickFiresEverySampleInterval)
{
    MetricsRegistry::Config config;
    config.sampleInterval = 4;
    MetricsRegistry registry(1, config);
    unsigned fired = 0;
    for (int i = 0; i < 20; ++i) {
        if (registry.tick(0))
            ++fired;
    }
    EXPECT_EQ(fired, 5u);
}

TEST(MetricsRegistry, SeriesTimestampsAreMonotoneFromEpoch)
{
    MetricsRegistry registry(1);
    for (int i = 0; i < 10; ++i)
        registry.recordGlobal(GlobalSeries::Drift, double(i));
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    const auto &samples = snap.series[0].samples;
    ASSERT_EQ(samples.size(), 10u);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].t, samples[i - 1].t);
    EXPECT_GE(snap.takenNs, samples.back().t);
}

// ---------------------------------------------------------------------
// Always-on sampling mode (Config::sampleShift): keep 1 in 2^shift
// offered samples per series — the first of each stride — and drop the
// rest before touching the ring or the clock.

TEST(MetricsSampling, ShiftKeepsFirstOfEachStride)
{
    MetricsRegistry::Config config;
    config.seriesCapacity = 64;
    config.sampleShift = 3; // keep 1 in 8
    MetricsRegistry registry(1, config);
    for (int i = 0; i < 64; ++i)
        registry.record(0, WorkerSeries::SrqOccupancy, double(i));
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    const auto &samples = snap.series[0].samples;
    ASSERT_EQ(samples.size(), 8u);
    for (size_t i = 0; i < samples.size(); ++i)
        EXPECT_EQ(samples[i].value, double(i * 8))
            << "kept sample must be the first of its stride";
}

TEST(MetricsSampling, ZeroShiftRecordsEveryOffer)
{
    MetricsRegistry::Config config;
    config.seriesCapacity = 64;
    MetricsRegistry registry(1, config); // default sampleShift = 0
    for (int i = 0; i < 64; ++i)
        registry.record(0, WorkerSeries::SrqOccupancy, double(i));
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    EXPECT_EQ(snap.series[0].samples.size(), 64u);
}

TEST(MetricsSampling, GlobalSeriesSampledWithTheSameShift)
{
    MetricsRegistry::Config config;
    config.seriesCapacity = 64;
    config.sampleShift = 2; // keep 1 in 4
    MetricsRegistry registry(1, config);
    for (int i = 0; i < 16; ++i)
        registry.recordGlobal(GlobalSeries::Drift, double(i));
    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    const auto &samples = snap.series[0].samples;
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].value, 0.0);
    EXPECT_EQ(samples[3].value, 12.0);
}

TEST(MetricsSampling, SampledWritesStaySingleWriterClean)
{
    // The sampling gate adds a second per-series counter to the write
    // path; with the debug checker armed, a legal one-writer-per-slot
    // workload must still report zero violations.
    MetricsRegistry::Config config;
    config.checkSingleWriter = true;
    config.sampleShift = 4;
    MetricsRegistry registry(2, config);
    std::thread a([&] {
        for (int i = 0; i < 50000; ++i)
            registry.record(0, WorkerSeries::SrqOccupancy, double(i));
    });
    std::thread b([&] {
        for (int i = 0; i < 50000; ++i)
            registry.record(1, WorkerSeries::SrqOccupancy, double(i));
    });
    a.join();
    b.join();
    EXPECT_EQ(registry.writerViolations(), 0u);
}

// ---------------------------------------------------------------------
// Single-writer debug checker. The registry's contract is that series,
// gauge, and tick writes for worker slot w come from one thread at a
// time (the acting thread owning w); the checker detects two threads
// inside a write to the same slot simultaneously.

TEST(MetricsSingleWriter, CheckerOffByDefault)
{
    MetricsRegistry registry(1);
    std::atomic<bool> start{false};
    auto hammer = [&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 50000; ++i)
            registry.record(0, WorkerSeries::SrqOccupancy, double(i));
    };
    std::thread a(hammer);
    std::thread b(hammer);
    start.store(true, std::memory_order_release);
    a.join();
    b.join();
    EXPECT_EQ(registry.writerViolations(), 0u);
    EXPECT_TRUE(registry.writerViolationSamples().empty());
}

TEST(MetricsSingleWriter, DetectsConcurrentWritesToOneSlot)
{
    MetricsRegistry::Config config;
    config.checkSingleWriter = true;
    MetricsRegistry registry(2, config);
    // Two threads spinning on the same slot overlap with near-certainty
    // within a round; retry a few rounds so the test cannot flake on a
    // pathological schedule.
    for (int round = 0; round < 20 && registry.writerViolations() == 0;
         ++round) {
        std::atomic<bool> start{false};
        auto hammer = [&] {
            while (!start.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 100000; ++i)
                registry.record(0, WorkerSeries::SrqOccupancy, double(i));
        };
        std::thread a(hammer);
        std::thread b(hammer);
        start.store(true, std::memory_order_release);
        a.join();
        b.join();
    }
    EXPECT_GT(registry.writerViolations(), 0u);
    std::vector<std::string> samples = registry.writerViolationSamples();
    ASSERT_FALSE(samples.empty());
    EXPECT_NE(samples[0].find("worker slot 0"), std::string::npos)
        << samples[0];
}

TEST(MetricsSingleWriter, DetectsConcurrentGlobalSeriesWrites)
{
    MetricsRegistry::Config config;
    config.checkSingleWriter = true;
    MetricsRegistry registry(1, config);
    for (int round = 0; round < 20 && registry.writerViolations() == 0;
         ++round) {
        std::atomic<bool> start{false};
        auto hammer = [&] {
            while (!start.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 100000; ++i)
                registry.recordGlobal(GlobalSeries::Drift, double(i));
        };
        std::thread a(hammer);
        std::thread b(hammer);
        start.store(true, std::memory_order_release);
        a.join();
        b.join();
    }
    EXPECT_GT(registry.writerViolations(), 0u);
    std::vector<std::string> samples = registry.writerViolationSamples();
    ASSERT_FALSE(samples.empty());
    EXPECT_NE(samples[0].find("global series 'drift'"), std::string::npos)
        << samples[0];
}

TEST(MetricsSingleWriter, SequentialHandoffIsClean)
{
    // The executor legitimately seeds every worker's slot from the main
    // thread before the workers start: ownership handoff is legal, only
    // *overlap* is a violation.
    MetricsRegistry::Config config;
    config.checkSingleWriter = true;
    MetricsRegistry registry(2, config);
    for (unsigned tid = 0; tid < 2; ++tid) {
        registry.add(tid, WorkerCounter::TasksProcessed);
        registry.record(tid, WorkerSeries::SrqOccupancy, 1.0);
        registry.tick(tid);
    }
    std::thread worker([&] {
        for (int i = 0; i < 10000; ++i) {
            registry.record(0, WorkerSeries::SrqOccupancy, double(i));
            registry.set(0, WorkerGauge::QueueDepth, double(i));
            registry.tick(0);
        }
    });
    worker.join();
    registry.record(0, WorkerSeries::SrqOccupancy, 2.0);
    EXPECT_EQ(registry.writerViolations(), 0u);
}

TEST(MetricsSingleWriter, DistinctSlotsWriteConcurrentlyClean)
{
    MetricsRegistry::Config config;
    config.checkSingleWriter = true;
    MetricsRegistry registry(4, config);
    std::atomic<bool> start{false};
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < 4; ++tid) {
        threads.emplace_back([&, tid] {
            while (!start.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 50000; ++i) {
                registry.add(tid, WorkerCounter::TasksProcessed);
                registry.record(tid, WorkerSeries::SrqOccupancy,
                                double(i));
                registry.tick(tid);
            }
        });
    }
    start.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(registry.writerViolations(), 0u);
}

TEST(MetricsSnapshot, MergeAddsCountersAndAppendsSeries)
{
    MetricsRegistry a(2);
    MetricsRegistry b(2);
    a.add(0, WorkerCounter::TasksProcessed, 3);
    b.add(1, WorkerCounter::TasksProcessed, 4);
    a.recordGlobal(GlobalSeries::Drift, 1.0);
    b.recordGlobal(GlobalSeries::Tdf, 50.0);
    b.set(0, WorkerGauge::QueueDepth, 9.0);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());

    for (const auto &c : merged.counters) {
        if (c.name == "tasks_processed") {
            EXPECT_EQ(c.total, 7u);
            EXPECT_EQ(c.perWorker[0], 3u);
            EXPECT_EQ(c.perWorker[1], 4u);
        }
    }
    std::set<std::string> names;
    for (const auto &s : merged.series)
        names.insert(s.name);
    EXPECT_TRUE(names.count("drift"));
    EXPECT_TRUE(names.count("tdf"));
}

// ---------------------------------------------------------------------
// Exporters. The JSON checker below is a minimal recursive-descent
// well-formedness parser — enough to catch missing commas, bad
// escaping, or non-finite number leakage without an external library.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

TEST(MetricsExport, JsonIsWellFormedAndSelfDescribing)
{
    MetricsRegistry registry(2);
    registry.add(0, WorkerCounter::TasksProcessed, 42);
    registry.set(1, WorkerGauge::QueueDepth, 7.0);
    registry.record(0, WorkerSeries::SrqOccupancy, 3.0);
    registry.recordGlobal(GlobalSeries::Drift, 12.5);
    registry.recordGlobal(GlobalSeries::Tdf, 60.0);

    std::string json = metricsToJson(registry.snapshot());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"hdcps-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"tasks_processed\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"srq_occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"drift\""), std::string::npos);
    EXPECT_NE(json.find("\"tdf\""), std::string::npos);
}

TEST(MetricsExport, JsonHandlesNonFiniteValues)
{
    MetricsRegistry registry(1);
    registry.recordGlobal(GlobalSeries::Drift,
                          std::numeric_limits<double>::infinity());
    registry.recordGlobal(GlobalSeries::Drift,
                          std::numeric_limits<double>::quiet_NaN());
    std::string json = metricsToJson(registry.snapshot());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // Non-finite doubles must not leak as bare inf/nan tokens.
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(MetricsExport, CsvHasHeaderAndRows)
{
    MetricsRegistry registry(1);
    registry.add(0, WorkerCounter::TasksProcessed, 9);
    registry.recordGlobal(GlobalSeries::Drift, 2.0);
    std::ostringstream out;
    writeMetricsCsv(out, registry.snapshot());
    std::string csv = out.str();
    EXPECT_EQ(csv.rfind("kind,name,worker,t_ns,value", 0), 0u);
    EXPECT_NE(csv.find("counter,tasks_processed"), std::string::npos);
    EXPECT_NE(csv.find("series,drift"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a threaded HD-CPS run with a registry attached must emit
// the acceptance-critical drift / TDF / sRQ-occupancy series, and the
// exported document for that run must be valid JSON.

ProcessFn
obsTreeWorkload(unsigned fanout, unsigned depth)
{
    return [fanout, depth](unsigned, const Task &task,
                           std::vector<Task> &children) {
        unsigned level = task.data;
        if (level >= depth)
            return;
        for (unsigned i = 0; i < fanout; ++i) {
            children.push_back(Task{task.priority + 1,
                                    task.node * fanout + i, level + 1});
        }
    };
}

TEST(MetricsEndToEnd, HdCpsRunProducesDriftTdfAndSrqSeries)
{
    constexpr unsigned threads = 4;
    HdCpsConfig config = HdCpsScheduler::configSw();
    config.sampleInterval = 25; // publish/TDF-decide often
    HdCpsScheduler sched(threads, config);

    MetricsRegistry::Config metricsConfig;
    metricsConfig.sampleInterval = 25;
    MetricsRegistry registry(threads, metricsConfig);

    RunOptions options;
    options.numThreads = threads;
    options.driftSampleInterval = 25;
    options.metrics = &registry;
    RunResult result = run(sched, {Task{0, 0, 0}},
                           obsTreeWorkload(3, 9), options);
    ASSERT_GT(result.total.tasksProcessed, 0u);

    MetricsSnapshot snap = registry.snapshot();
    std::set<std::string> names;
    for (const auto &s : snap.series) {
        names.insert(s.name);
        EXPECT_FALSE(s.samples.empty()) << s.name;
    }
    EXPECT_TRUE(names.count("drift"));
    EXPECT_TRUE(names.count("tdf_drift"));
    EXPECT_TRUE(names.count("tdf"));
    EXPECT_TRUE(names.count("srq_occupancy"));

    // Counters: the executor reports totals at loop exit, and every
    // HD-CPS delivery is classified local or remote. An enqueue moves
    // one envelope; a bag envelope carries tasks_in_bags tasks, so the
    // per-task count is (enqueues - bags) singles + tasks in bags, and
    // no-loss/no-dup makes that equal the processed total (the seed
    // push included).
    uint64_t tasks = 0;
    uint64_t enqueues = 0;
    uint64_t bags = 0;
    uint64_t inBags = 0;
    for (const auto &c : snap.counters) {
        if (c.name == "tasks_processed")
            tasks = c.total;
        if (c.name == "local_enqueues" || c.name == "remote_enqueues")
            enqueues += c.total;
        if (c.name == "bags_created")
            bags = c.total;
        if (c.name == "tasks_in_bags")
            inBags = c.total;
    }
    EXPECT_EQ(tasks, result.total.tasksProcessed);
    EXPECT_EQ(enqueues - bags + inBags, result.total.tasksProcessed);

    std::string json = metricsToJson(snap);
    EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(MetricsEndToEnd, RegistryRejectsTooFewWorkers)
{
    HdCpsScheduler sched(2, HdCpsScheduler::configSw());
    MetricsRegistry registry(1);
    RunOptions options;
    options.numThreads = 2;
    options.metrics = &registry;
    EXPECT_DEATH(run(sched, {Task{0, 0, 0}}, obsTreeWorkload(2, 2),
                     options),
                 "metrics registry");
}

} // namespace
} // namespace hdcps
