/**
 * @file
 * Unit and property tests for the queue substrate: d-ary heap, bucket
 * queue, locked PQ, the HD-CPS software receive queue, and the
 * simulated hardware queues.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/local_pq.h"
#include "core/recv_queue.h"
#include "cps/task.h"
#include "pq/bucket_queue.h"
#include "pq/dary_heap.h"
#include "pq/locked_pq.h"
#include "sim/hwqueue.h"
#include "support/rng.h"

namespace hdcps {
namespace {

TEST(DAryHeap, PopsInSortedOrder)
{
    DAryHeap<int> heap;
    Rng rng(1);
    std::vector<int> values;
    for (int i = 0; i < 500; ++i) {
        int v = static_cast<int>(rng.below(1000));
        values.push_back(v);
        heap.push(v);
        ASSERT_TRUE(heap.isValidHeap());
    }
    std::sort(values.begin(), values.end());
    for (int expected : values) {
        ASSERT_FALSE(heap.empty());
        EXPECT_EQ(heap.pop(), expected);
    }
    EXPECT_TRUE(heap.empty());
}

TEST(DAryHeap, TopDoesNotRemove)
{
    DAryHeap<int> heap;
    heap.push(5);
    heap.push(3);
    EXPECT_EQ(heap.top(), 3);
    EXPECT_EQ(heap.size(), 2u);
}

TEST(DAryHeap, MoveCounterGrows)
{
    DAryHeap<int> heap;
    for (int i = 100; i > 0; --i)
        heap.push(i);
    EXPECT_GT(heap.movesPerformed(), 100u);
    heap.resetMoveCounter();
    EXPECT_EQ(heap.movesPerformed(), 0u);
}

TEST(DAryHeap, InterleavedPushPopProperty)
{
    DAryHeap<uint64_t> heap;
    Rng rng(7);
    uint64_t lastPopped = 0;
    bool monotoneSinceEmpty = true;
    for (int round = 0; round < 5000; ++round) {
        if (heap.empty() || rng.chance(0.6)) {
            heap.push(rng.below(1 << 20));
            // Pushing below the last popped value may legitimately
            // break pop monotonicity; reset the tracker.
            monotoneSinceEmpty = false;
        } else {
            uint64_t v = heap.pop();
            if (monotoneSinceEmpty) {
                ASSERT_GE(v, lastPopped);
            }
            lastPopped = v;
            monotoneSinceEmpty = true;
        }
        ASSERT_TRUE(heap.isValidHeap());
    }
}

TEST(DAryHeap, BinaryArityAlsoWorks)
{
    DAryHeap<int, std::less<int>, 2> heap;
    for (int v : {9, 1, 8, 2, 7, 3})
        heap.push(v);
    EXPECT_EQ(heap.pop(), 1);
    EXPECT_EQ(heap.pop(), 2);
    EXPECT_TRUE(heap.isValidHeap());
}

TEST(DAryHeap, PushBulkMatchesSortedOrder)
{
    // Both pushBulk paths: a bulk into an empty heap (Floyd heapify)
    // and a small bulk into a large heap (per-element sift-up).
    Rng rng(17);
    for (size_t preload : {size_t(0), size_t(500)}) {
        for (size_t bulk : {size_t(1), size_t(3), size_t(400)}) {
            DAryHeap<int> heap;
            std::vector<int> values;
            for (size_t i = 0; i < preload; ++i) {
                int v = static_cast<int>(rng.below(1000));
                values.push_back(v);
                heap.push(v);
            }
            std::vector<int> add;
            for (size_t i = 0; i < bulk; ++i) {
                int v = static_cast<int>(rng.below(1000));
                values.push_back(v);
                add.push_back(v);
            }
            heap.pushBulk(add.begin(), add.end());
            ASSERT_TRUE(heap.isValidHeap())
                << "preload=" << preload << " bulk=" << bulk;
            ASSERT_EQ(heap.size(), values.size());
            std::sort(values.begin(), values.end());
            for (int expected : values)
                ASSERT_EQ(heap.pop(), expected);
        }
    }
}

TEST(DAryHeap, PushBulkEmptyRangeIsNoOp)
{
    DAryHeap<int> heap;
    heap.push(7);
    std::vector<int> none;
    heap.pushBulk(none.begin(), none.end());
    EXPECT_EQ(heap.size(), 1u);
    EXPECT_EQ(heap.pop(), 7);
}

TEST(BucketQueue, LowestBucketFirst)
{
    BucketQueue<int> q;
    q.push(5, 50);
    q.push(1, 10);
    q.push(3, 30);
    EXPECT_EQ(q.topPriority(), 1u);
    EXPECT_EQ(q.pop(), 10);
    EXPECT_EQ(q.pop(), 30);
    EXPECT_EQ(q.pop(), 50);
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, RewindsForLowerPush)
{
    BucketQueue<int> q;
    q.push(10, 1);
    EXPECT_EQ(q.pop(), 1);
    q.push(2, 2); // below the cursor
    EXPECT_EQ(q.topPriority(), 2u);
    EXPECT_EQ(q.pop(), 2);
}

TEST(BucketQueue, SizeTracksContents)
{
    BucketQueue<int> q;
    EXPECT_TRUE(q.empty());
    q.push(0, 1);
    q.push(0, 2);
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_EQ(q.size(), 1u);
}

// Regression: the header always promised FIFO within a bucket, but
// pop() used to take items.back() (LIFO). Equal-priority elements must
// come out in insertion order.
TEST(BucketQueue, FifoWithinBucket)
{
    BucketQueue<int> q;
    for (int i = 0; i < 6; ++i)
        q.push(7, i);
    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(q.topPriority(), 7u);
        EXPECT_EQ(q.pop(), i);
    }
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, FifoSurvivesInterleavedBuckets)
{
    // Interleave pushes across two buckets and re-fill a drained bucket:
    // order within each priority must still be insertion order.
    BucketQueue<int> q;
    q.push(2, 20);
    q.push(1, 10);
    q.push(2, 21);
    q.push(1, 11);
    EXPECT_EQ(q.pop(), 10);
    EXPECT_EQ(q.pop(), 11);
    q.push(1, 12); // rewind into a drained bucket
    EXPECT_EQ(q.pop(), 12);
    EXPECT_EQ(q.pop(), 20);
    EXPECT_EQ(q.pop(), 21);
}

// Regression: push(p) used to resize the bucket directory to p+1
// entries, so a single 2^40 priority (a legitimate 64-bit SSSP
// distance) allocated the address space away. Wide priorities must
// spill to the overflow heap instead of growing the directory.
TEST(BucketQueue, WidePrioritiesUseOverflowTier)
{
    BucketQueue<int> q;
    const uint64_t wide = uint64_t(1) << 40;
    q.push(wide, 1);
    q.push(wide + 5, 2);
    q.push(3, 3); // dense tier still wins while occupied
    EXPECT_EQ(q.overflowSize(), 2u);
    EXPECT_EQ(q.topPriority(), 3u);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.topPriority(), wide);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.topPriority(), wide + 5);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, OverflowKeepsFifoWithinPriority)
{
    BucketQueue<int> q(4); // tiny span: priority >= 4 overflows
    for (int i = 0; i < 5; ++i)
        q.push(100, i);
    q.push(4, 99); // also overflow, lower priority
    EXPECT_EQ(q.pop(), 99);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.pop(), i);
}

TEST(BucketQueue, SpanBoundaryRoutesToTiers)
{
    BucketQueue<int> q(8);
    q.push(7, 70); // last dense priority
    q.push(8, 80); // first overflow priority
    EXPECT_EQ(q.overflowSize(), 1u);
    EXPECT_EQ(q.pop(), 70);
    EXPECT_EQ(q.pop(), 80);
    // Rewind below the cursor still works with the overflow occupied.
    q.push(9, 90);
    q.push(0, 1);
    EXPECT_EQ(q.topPriority(), 0u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 90);
}

TEST(BucketQueue, MixedTierRandomizedMatchesStableSort)
{
    // Property: pop order equals a stable sort by priority of the push
    // sequence, regardless of which tier served each element — the
    // strongest statement of FIFO-within-priority across both tiers.
    BucketQueue<size_t> q(64);
    Rng rng(42);
    std::vector<uint64_t> priorities;
    for (size_t i = 0; i < 2000; ++i) {
        uint64_t p = rng.chance(0.3) ? (uint64_t(1) << 35) + rng.below(16)
                                     : rng.below(128);
        priorities.push_back(p);
        q.push(p, i);
    }
    std::vector<size_t> expected(priorities.size());
    std::iota(expected.begin(), expected.end(), size_t(0));
    std::stable_sort(expected.begin(), expected.end(),
                     [&](size_t a, size_t b) {
                         return priorities[a] < priorities[b];
                     });
    for (size_t idx : expected) {
        ASSERT_FALSE(q.empty());
        ASSERT_EQ(q.topPriority(), priorities[idx]);
        ASSERT_EQ(q.pop(), idx);
    }
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, SparseCursorJumpCrossesBitmapWords)
{
    // A cursor stranded at 0 with the only live bucket ~70000 slots
    // away must land on it directly (the occupancy bitmap strides in
    // 64-bucket words), and keep working across repeated long jumps.
    BucketQueue<int> q;
    q.push(0, 1);
    q.push(70001, 2);
    EXPECT_EQ(q.topPriority(), 0u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.topPriority(), 70001u);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.empty());
    // Refill after full drain: bits for consumed buckets must be clear
    // or the rebase would stop at a stale bucket and trip the FIFO.
    q.push(70001, 3);
    q.push(131, 4); // different word than both 0 and 70001
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, RewindAfterBulkRebasePreservesFifo)
{
    // Label-correcting pattern: after the cursor has jumped far ahead,
    // a lower push rewinds it; the next rebase must re-find the low
    // bucket and still drain each bucket in insertion order.
    BucketQueue<int> q;
    q.push(65 * 64 + 3, 100); // word 65
    q.push(65 * 64 + 3, 101);
    EXPECT_EQ(q.pop(), 100); // cursor now parked in word 65
    q.push(5, 1); // rewind to word 0
    q.push(5, 2);
    EXPECT_EQ(q.topPriority(), 5u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 101);
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, SparseSweepAcrossManyWords)
{
    // One element every 97 buckets over a ~50k-priority range: every
    // advance() is a multi-word stride. Pop order must be exactly
    // ascending priority.
    BucketQueue<uint64_t> q;
    std::vector<uint64_t> prios;
    for (uint64_t p = 0; p < 50000; p += 97)
        prios.push_back(p);
    // Push in a shuffled-ish order (stride permutation) to exercise
    // rewinds as well as forward jumps.
    for (size_t i = 0; i < prios.size(); ++i)
        q.push(prios[(i * 7) % prios.size()], prios[(i * 7) % prios.size()]);
    for (uint64_t p : prios) {
        ASSERT_EQ(q.topPriority(), p);
        ASSERT_EQ(q.pop(), p);
    }
    EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, BulkRebaseHandsOffToOverflowTier)
{
    // Dense tier drains via a long bitmap jump, then the best element
    // is in the overflow heap; a fresh dense push below the span must
    // win again. Exercises advance() hitting end-of-bitmap (cursor_ =
    // buckets_.size()) and the tier comparison after a rebase.
    const uint64_t span = 256;
    BucketQueue<int> q(span);
    q.push(3, 30);
    q.push(span - 1, 31); // last dense bucket, word 3
    q.push(span + 10, 40); // overflow
    EXPECT_EQ(q.pop(), 30);
    EXPECT_EQ(q.pop(), 31);
    EXPECT_EQ(q.topPriority(), span + 10);
    EXPECT_EQ(q.pop(), 40);
    q.push(span + 11, 41);
    q.push(7, 50); // dense beats overflow again
    EXPECT_EQ(q.pop(), 50);
    EXPECT_EQ(q.pop(), 41);
    EXPECT_TRUE(q.empty());
}

TEST(LockedTaskPq, OrderedPops)
{
    LockedTaskPq pq;
    pq.push(Task{30, 3, 0});
    pq.push(Task{10, 1, 0});
    pq.push(Task{20, 2, 0});
    Task t;
    ASSERT_TRUE(pq.tryPop(t));
    EXPECT_EQ(t.priority, 10u);
    Priority p;
    ASSERT_TRUE(pq.peekPriority(p));
    EXPECT_EQ(p, 20u);
}

TEST(LockedTaskPq, EmptyBehaviour)
{
    LockedTaskPq pq;
    Task t;
    Priority p;
    EXPECT_FALSE(pq.tryPop(t));
    EXPECT_FALSE(pq.peekPriority(p));
    EXPECT_TRUE(pq.empty());
}

TEST(LockedTaskPq, ConcurrentPushPopConservesTasks)
{
    LockedTaskPq pq;
    constexpr int perThread = 5000;
    constexpr int producers = 3;
    std::atomic<long long> popped{0};
    std::atomic<int> done{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < perThread; ++i)
                pq.push(Task{uint64_t(i), uint32_t(p), 0});
            ++done;
        });
    }
    std::thread consumer([&] {
        Task t;
        while (done.load() < producers || !pq.empty()) {
            if (pq.tryPop(t))
                ++popped;
        }
    });
    for (auto &t : threads)
        t.join();
    consumer.join();
    Task t;
    while (pq.tryPop(t))
        ++popped;
    EXPECT_EQ(popped.load(), static_cast<long long>(perThread) * producers);
}

TEST(LockedTaskPq, ProbeVsPushAgainstTerminationScan)
{
    // Regression (run under TSan in CI): tryPop's lock-free count_
    // probe may report empty while a racing push still holds the
    // mutex. That transient is linearizable — the push has not
    // completed — but the executor's two-pass quiescence scan must
    // never be misled about a push that has *returned*: the executor
    // bumps created before pushing, so created == completed implies
    // every counted push published its count_ store, and an empty
    // probe at that point is truthful. This test drives the exact
    // pattern: producers count-then-push, a consumer pops, and a
    // scanner repeatedly takes the termination decision and verifies
    // that a declared-quiescent empty probe never coexists with a
    // still-poppable task.
    LockedTaskPq pq;
    constexpr int producers = 2;
    constexpr uint64_t perThread = 40000;
    constexpr uint64_t total = producers * perThread;
    std::atomic<uint64_t> created{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> falseQuiescence{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (uint64_t i = 0; i < perThread; ++i) {
                created.fetch_add(1, std::memory_order_release);
                pq.push(Task{i % 61, uint32_t(p), 0});
            }
        });
    }
    threads.emplace_back([&] {
        Task t;
        while (completed.load(std::memory_order_acquire) < total) {
            if (pq.tryPop(t))
                completed.fetch_add(1, std::memory_order_release);
        }
    });
    std::thread scanner([&] {
        while (!stop.load(std::memory_order_acquire)) {
            // Completed-first, like the executor's quiescentOnce.
            uint64_t c1 = completed.load(std::memory_order_acquire);
            uint64_t n1 = created.load(std::memory_order_acquire);
            if (n1 != c1 || pq.sizeApprox() != 0)
                continue;
            // Termination would be declared here. If both counters are
            // still at the observed values (no new push started, and a
            // task cannot complete before its push returns), the queue
            // must be genuinely empty — a nonzero re-probe means the
            // probe lied about a completed push.
            uint64_t n2 = created.load(std::memory_order_acquire);
            uint64_t c2 = completed.load(std::memory_order_acquire);
            if (n2 == n1 && c2 == c1 && pq.sizeApprox() != 0)
                falseQuiescence.fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (auto &t : threads)
        t.join();
    stop.store(true, std::memory_order_release);
    scanner.join();

    EXPECT_EQ(completed.load(), total);
    EXPECT_EQ(falseQuiescence.load(), 0u)
        << "termination scan observed a stale empty probe for a "
           "completed push";
    EXPECT_TRUE(pq.empty());
}

// --------------------------------------------- local-PQ backends

TEST(DAryLocalPq, PopsInExactSortedOrder)
{
    // The exact backend must behave byte-for-byte like the heap it
    // wraps: strict sorted pops (this is what keeps hdcps-srq's
    // conformance rank bound at 0).
    DAryLocalPq<int, std::less<int>> pq;
    pq.configure(8, 123); // no-op by contract
    Rng rng(5);
    std::vector<int> values;
    for (int i = 0; i < 300; ++i) {
        int v = int(rng.below(1000));
        values.push_back(v);
        pq.push(v);
    }
    std::sort(values.begin(), values.end());
    for (int expected : values) {
        ASSERT_FALSE(pq.empty());
        EXPECT_EQ(pq.pop(), expected);
    }
    EXPECT_TRUE(pq.empty());
}

TEST(RelaxedMqLocalPq, ConservesEverythingAcrossWays)
{
    RelaxedMqLocalPq<int, std::less<int>> pq;
    pq.configure(4, 42);
    std::multiset<int> expected;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        int v = int(rng.below(500));
        expected.insert(v);
        pq.push(v);
    }
    EXPECT_EQ(pq.size(), 1000u);
    std::multiset<int> got;
    while (!pq.empty())
        got.insert(pq.pop());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(pq.size(), 0u);
}

TEST(RelaxedMqLocalPq, PushBulkConservesLikeIndividualPushes)
{
    RelaxedMqLocalPq<int, std::less<int>> pq;
    pq.configure(4, 9);
    std::vector<int> values(400);
    std::iota(values.begin(), values.end(), 0);
    pq.pushBulk(values.begin(), values.end());
    EXPECT_EQ(pq.size(), values.size());
    std::set<int> got;
    while (!pq.empty())
        got.insert(pq.pop());
    EXPECT_EQ(got.size(), values.size());
}

TEST(RelaxedMqLocalPq, QuiescentPopsAreRankBounded)
{
    // The relaxation must stay in the best-of-2-of-k regime: popping a
    // shuffled permutation one by one, the popped value's rank among
    // the still-outstanding values stays far below the near-full-range
    // signature of a broken comparator or a dropped way. (Deterministic
    // per seed; measured max ≈ 20 for 4 ways over 512 values.)
    RelaxedMqLocalPq<int, std::less<int>> pq;
    constexpr int N = 512;
    for (uint64_t seed : {1ull, 7ull, 19ull}) {
        pq.configure(4, seed);
        std::vector<int> perm(N);
        std::iota(perm.begin(), perm.end(), 0);
        Rng rng(seed);
        for (int i = N; i > 1; --i)
            std::swap(perm[i - 1], perm[rng.below(unsigned(i))]);
        std::multiset<int> outstanding(perm.begin(), perm.end());
        for (int v : perm)
            pq.push(v);
        int maxRank = 0;
        while (!pq.empty()) {
            int v = pq.pop();
            auto it = outstanding.find(v);
            ASSERT_NE(it, outstanding.end());
            int rank = int(std::distance(outstanding.begin(), it));
            maxRank = std::max(maxRank, rank);
            outstanding.erase(it);
        }
        EXPECT_TRUE(outstanding.empty());
        EXPECT_LE(maxRank, 64) << "seed " << seed;
    }
}

// ------------------------------------------------------ receive queue

TEST(ReceiveQueue, FifoSingleThread)
{
    ReceiveQueue<int> rq(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(rq.tryPush(i));
    EXPECT_FALSE(rq.tryPush(99)); // full
    int out;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(rq.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(rq.tryPop(out));
}

TEST(ReceiveQueue, WrapsAround)
{
    ReceiveQueue<int> rq(4);
    int out;
    for (int round = 0; round < 20; ++round) {
        EXPECT_TRUE(rq.tryPush(round));
        ASSERT_TRUE(rq.tryPop(out));
        EXPECT_EQ(out, round);
    }
}

TEST(ReceiveQueue, SizeApprox)
{
    ReceiveQueue<int> rq(16);
    EXPECT_EQ(rq.sizeApprox(), 0u);
    rq.tryPush(1);
    rq.tryPush(2);
    EXPECT_EQ(rq.sizeApprox(), 2u);
    EXPECT_EQ(rq.capacity(), 16u);
}

TEST(ReceiveQueue, MultiProducerExactlyOnce)
{
    ReceiveQueue<uint64_t> rq(64);
    constexpr int producers = 4;
    constexpr uint64_t perProducer = 5000;
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (uint64_t i = 0; i < perProducer;) {
                if (rq.tryPush(uint64_t(p) * perProducer + i))
                    ++i;
            }
            ++done;
        });
    }
    std::vector<uint8_t> seen(producers * perProducer, 0);
    uint64_t received = 0;
    uint64_t value;
    while (received < producers * perProducer) {
        if (rq.tryPop(value)) {
            ASSERT_LT(value, seen.size());
            ASSERT_EQ(seen[value], 0) << "duplicate delivery";
            seen[value] = 1;
            ++received;
        }
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(done.load(), producers);
}

TEST(ReceiveQueue, TryPushNClaimsContiguousRuns)
{
    ReceiveQueue<uint64_t> rq(8);
    std::vector<uint64_t> batch{1, 2, 3, 4, 5};
    ASSERT_EQ(rq.tryPushN(batch.data(), batch.size()), 5u);
    EXPECT_EQ(rq.sizeApprox(), 5u);
    // Only 3 slots left: a 5-element claim comes back partial.
    EXPECT_EQ(rq.tryPushN(batch.data(), batch.size()), 3u);
    EXPECT_EQ(rq.tryPushN(batch.data(), batch.size()), 0u) << "full";
    // FIFO across both claims.
    uint64_t v;
    for (uint64_t expected : {1, 2, 3, 4, 5, 1, 2, 3}) {
        ASSERT_TRUE(rq.tryPop(v));
        EXPECT_EQ(v, expected);
    }
    EXPECT_FALSE(rq.tryPop(v));
    // Wrapped: the queue is reusable after a full drain.
    EXPECT_EQ(rq.tryPushN(batch.data(), 2), 2u);
    ASSERT_TRUE(rq.tryPop(v));
    EXPECT_EQ(v, 1u);
}

TEST(ReceiveQueue, TryPopNDrainsRunsAndFreesSlots)
{
    ReceiveQueue<uint64_t> rq(8);
    std::vector<uint64_t> batch{1, 2, 3, 4, 5, 6};
    ASSERT_EQ(rq.tryPushN(batch.data(), batch.size()), 6u);
    uint64_t out[8];
    // A run stops at the first unpublished slot, not the count.
    ASSERT_EQ(rq.tryPopN(out, 4), 4u);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], i + 1);
    EXPECT_EQ(rq.tryPopN(out, 8), 2u);
    EXPECT_EQ(out[0], 5u);
    EXPECT_EQ(out[1], 6u);
    EXPECT_EQ(rq.tryPopN(out, 8), 0u) << "empty";
    EXPECT_EQ(rq.tryPopN(out, 0), 0u);
    // The bulk pop freed every slot: a full-capacity claim succeeds
    // and wraps correctly.
    std::vector<uint64_t> refill{7, 8, 9, 10, 11, 12, 13, 14};
    ASSERT_EQ(rq.tryPushN(refill.data(), refill.size()), 8u);
    ASSERT_EQ(rq.tryPopN(out, 8), 8u);
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i + 7);
}

TEST(ReceiveQueue, TryPushNZeroAndOversizedCounts)
{
    ReceiveQueue<uint64_t> rq(4);
    uint64_t value = 9;
    EXPECT_EQ(rq.tryPushN(&value, 0), 0u);
    // A batch larger than capacity claims at most capacity slots.
    std::vector<uint64_t> batch{1, 2, 3, 4, 5, 6};
    EXPECT_EQ(rq.tryPushN(batch.data(), batch.size()), 4u);
}

TEST(ReceiveQueue, MultiProducerBatchAndSingleExactlyOnce)
{
    // Interleaved multi-slot claims (tryPushN) and single-slot claims
    // (tryPush) from racing producers against the single consumer:
    // every value must arrive exactly once, including values re-offered
    // after partial batch claims on a full queue.
    ReceiveQueue<uint64_t> rq(64);
    constexpr int producers = 4;
    constexpr uint64_t perProducer = 6000;
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            Rng rng(100 + p);
            uint64_t next = uint64_t(p) * perProducer;
            const uint64_t stop = next + perProducer;
            std::vector<uint64_t> batch;
            while (next < stop) {
                if (rng.chance(0.5)) {
                    if (rq.tryPush(next))
                        ++next;
                    continue;
                }
                const uint64_t want =
                    std::min<uint64_t>(1 + rng.below(12), stop - next);
                batch.clear();
                for (uint64_t i = 0; i < want; ++i)
                    batch.push_back(next + i);
                // Partial claims: advance by what was accepted and
                // re-offer the rest — the exactly-once check below
                // would catch both losses and duplicates.
                next += rq.tryPushN(batch.data(), batch.size());
            }
            ++done;
        });
    }
    std::vector<uint8_t> seen(producers * perProducer, 0);
    uint64_t received = 0;
    uint64_t value;
    while (received < producers * perProducer) {
        if (rq.tryPop(value)) {
            ASSERT_LT(value, seen.size());
            ASSERT_EQ(seen[value], 0) << "duplicate delivery";
            seen[value] = 1;
            ++received;
        }
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(done.load(), producers);
    EXPECT_FALSE(rq.tryPop(value)) << "stray value left behind";
}

// ------------------------------------------------------ hardware queues

TEST(HwRecvQueue, FifoAndFull)
{
    HwRecvQueue q(2);
    EXPECT_TRUE(q.tryPush(Task{1, 1, 0}));
    EXPECT_TRUE(q.tryPush(Task{2, 2, 0}));
    EXPECT_FALSE(q.tryPush(Task{3, 3, 0}));
    EXPECT_TRUE(q.full());
    Task t;
    ASSERT_TRUE(q.tryPop(t));
    EXPECT_EQ(t.node, 1u);
    EXPECT_EQ(q.highWater(), 2u);
}

TEST(HwRecvQueue, ZeroCapacityAlwaysFull)
{
    HwRecvQueue q(0);
    EXPECT_FALSE(q.tryPush(Task{1, 1, 0}));
}

TEST(HwPriorityQueue, PopsMinimum)
{
    HwPriorityQueue q(8);
    EXPECT_FALSE(q.pushEvict(Task{30, 3, 0}).has_value());
    EXPECT_FALSE(q.pushEvict(Task{10, 1, 0}).has_value());
    EXPECT_FALSE(q.pushEvict(Task{20, 2, 0}).has_value());
    EXPECT_EQ(q.minPriority(), 10u);
    EXPECT_EQ(q.popMin().priority, 10u);
    EXPECT_EQ(q.popMin().priority, 20u);
}

TEST(HwPriorityQueue, EvictsWorstWhenFull)
{
    HwPriorityQueue q(2);
    q.pushEvict(Task{10, 1, 0});
    q.pushEvict(Task{20, 2, 0});
    // Better task displaces the stored worst (20).
    auto evicted = q.pushEvict(Task{5, 5, 0});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->priority, 20u);
    EXPECT_EQ(q.minPriority(), 5u);
}

TEST(HwPriorityQueue, SpillsIncomingWhenItIsWorst)
{
    HwPriorityQueue q(2);
    q.pushEvict(Task{10, 1, 0});
    q.pushEvict(Task{20, 2, 0});
    auto evicted = q.pushEvict(Task{99, 9, 0});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->priority, 99u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(HwPriorityQueue, ZeroCapacityBouncesEverything)
{
    HwPriorityQueue q(0);
    auto evicted = q.pushEvict(Task{10, 1, 0});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->priority, 10u);
    EXPECT_TRUE(q.empty());
}

TEST(HwPriorityQueue, HighWaterTracksPeak)
{
    HwPriorityQueue q(4);
    for (Priority p = 0; p < 4; ++p)
        q.pushEvict(Task{p, uint32_t(p), 0});
    q.popMin();
    q.popMin();
    EXPECT_EQ(q.highWater(), 4u);
}

// Property sweep: the hPQ behaves exactly like a capacity-filtered
// min-heap — everything that comes out (pops + evictions) equals
// everything that went in.
class HwPqProperty : public testing::TestWithParam<size_t>
{
};

TEST_P(HwPqProperty, ConservesTasksAtAnyCapacity)
{
    const size_t capacity = GetParam();
    HwPriorityQueue q(capacity);
    Rng rng(capacity + 1);
    std::multiset<uint64_t> inFlight;
    std::multiset<uint64_t> external;
    for (int i = 0; i < 2000; ++i) {
        uint64_t pri = rng.below(1000);
        inFlight.insert(pri);
        auto evicted = q.pushEvict(Task{pri, uint32_t(i), 0});
        if (evicted)
            external.insert(evicted->priority);
    }
    while (!q.empty())
        external.insert(q.popMin().priority);
    EXPECT_EQ(external, inFlight);
    EXPECT_LE(q.highWater(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, HwPqProperty,
                         testing::Values(0, 1, 2, 8, 48, 128));

} // namespace
} // namespace hdcps
