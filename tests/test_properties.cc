/**
 * @file
 * Randomized property tests: heavier fuzz-style sweeps over the
 * library's algebraic invariants — CSR structure from arbitrary edge
 * sets, drift computation against a naive reference, bag planning
 * against a brute-force partition checker, heap behaviour against
 * std::sort, and label-correcting schedule independence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "algos/sequential.h"
#include "algos/workload.h"
#include "core/bag_policy.h"
#include "core/drift.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "support/rng.h"

namespace hdcps {
namespace {

class FuzzSeed : public testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSeed, CsrPreservesEdgeMultiset)
{
    Rng rng(GetParam());
    NodeId n = 2 + NodeId(rng.below(60));
    GraphBuilder builder(n);
    std::map<std::pair<NodeId, NodeId>, Weight> expected;
    size_t edges = rng.below(300);
    for (size_t i = 0; i < edges; ++i) {
        NodeId src = NodeId(rng.below(n));
        NodeId dst = NodeId(rng.below(n));
        Weight w = Weight(rng.range(1, 50));
        builder.addEdge(src, dst, w);
        if (src == dst)
            continue; // dropped by build()
        auto key = std::make_pair(src, dst);
        auto it = expected.find(key);
        if (it == expected.end())
            expected[key] = w;
        else
            it->second = std::min(it->second, w);
    }
    Graph g = builder.build(true);
    ASSERT_EQ(g.numEdges(), expected.size());
    for (NodeId src = 0; src < n; ++src) {
        for (EdgeId e = g.edgeBegin(src); e < g.edgeEnd(src); ++e) {
            auto it = expected.find({src, g.edgeDest(e)});
            ASSERT_NE(it, expected.end());
            ASSERT_EQ(g.edgeWeight(e), it->second);
        }
    }
}

TEST_P(FuzzSeed, TransposePreservesEdgeMultiset)
{
    Graph g = makeUniformRandom(40, 200, {.seed = GetParam()});
    Graph t = g.transpose();
    ASSERT_EQ(t.numEdges(), g.numEdges());
    std::multiset<std::tuple<NodeId, NodeId, Weight>> forward;
    std::multiset<std::tuple<NodeId, NodeId, Weight>> backward;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            forward.insert({v, g.edgeDest(e), g.edgeWeight(e)});
        for (EdgeId e = t.edgeBegin(v); e < t.edgeEnd(v); ++e)
            backward.insert({t.edgeDest(e), v, t.edgeWeight(e)});
    }
    EXPECT_EQ(forward, backward);
}

TEST_P(FuzzSeed, DriftMatchesNaiveReference)
{
    Rng rng(GetParam() * 3 + 1);
    unsigned cores = 2 + unsigned(rng.below(30));
    DriftTracker tracker(cores);
    std::vector<Priority> published(cores, DriftTracker::unpublished);
    for (int round = 0; round < 50; ++round) {
        unsigned core = unsigned(rng.below(cores));
        Priority p = rng.below(10000);
        tracker.publish(core, p);
        published[core] = p;

        // Naive Eq. 1.
        Priority best = DriftTracker::unpublished;
        unsigned count = 0;
        for (Priority value : published) {
            if (value == DriftTracker::unpublished)
                continue;
            ++count;
            best = std::min(best, value);
        }
        double expected = 0.0;
        if (count >= 2) {
            for (Priority value : published) {
                if (value != DriftTracker::unpublished)
                    expected += double(value - best);
            }
            expected /= count;
        }
        ASSERT_DOUBLE_EQ(tracker.computeDrift(), expected);
    }
}

TEST_P(FuzzSeed, BagPlanIsAPartitionRespectingTheWindow)
{
    Rng rng(GetParam() * 7 + 3);
    BagPolicy policy;
    policy.minBagSize = 2 + size_t(rng.below(3));
    policy.maxBagSize = policy.minBagSize + 2 + size_t(rng.below(8));
    policy.mode = rng.chance(0.5) ? BagMode::Selective : BagMode::Always;

    std::vector<Task> children;
    std::map<Priority, size_t> groupSizes;
    size_t n = rng.below(60);
    for (size_t i = 0; i < n; ++i) {
        Priority p = rng.below(6);
        children.push_back(Task{p, uint32_t(i), 0});
        ++groupSizes[p];
    }
    BagPlan plan = policy.plan(children);

    std::map<Priority, size_t> seen;
    for (const Task &t : plan.singles)
        ++seen[t.priority];
    for (const Bag &bag : plan.bags) {
        ASSERT_GE(bag.tasks.size(), 2u);
        ASSERT_LT(bag.tasks.size(), policy.maxBagSize);
        for (const Task &t : bag.tasks) {
            ASSERT_EQ(t.priority, bag.priority);
            ++seen[t.priority];
        }
        if (policy.mode == BagMode::Selective) {
            // Selective only bags groups inside the window.
            ASSERT_GE(groupSizes[bag.priority], policy.minBagSize);
            ASSERT_LT(groupSizes[bag.priority], policy.maxBagSize);
        }
    }
    ASSERT_EQ(seen, groupSizes);
}

TEST_P(FuzzSeed, HeapDrainEqualsSort)
{
    Rng rng(GetParam() * 11 + 5);
    DAryHeap<uint64_t> heap;
    std::vector<uint64_t> values;
    size_t n = 1 + rng.below(500);
    for (size_t i = 0; i < n; ++i) {
        uint64_t v = rng.below(1 << 16);
        values.push_back(v);
        heap.push(v);
    }
    std::sort(values.begin(), values.end());
    for (uint64_t expected : values)
        ASSERT_EQ(heap.pop(), expected);
}

TEST_P(FuzzSeed, SsspScheduleIndependence)
{
    // Label correcting: ANY processing order yields the Dijkstra
    // labels. Drive the workload with a randomly shuffled stack.
    Graph g = makeUniformRandom(60, 300, {.seed = GetParam() + 17});
    SeqPathResult ref = dijkstra(g, 0);
    auto w = makeWorkload("sssp", g, 0);
    Rng rng(GetParam() + 99);
    std::vector<Task> pool = w->initialTasks();
    std::vector<Task> children;
    uint64_t processed = 0;
    while (!pool.empty()) {
        size_t pick = rng.below(pool.size());
        Task t = pool[pick];
        pool[pick] = pool.back();
        pool.pop_back();
        children.clear();
        w->process(t, children);
        pool.insert(pool.end(), children.begin(), children.end());
        ASSERT_LT(++processed, 1000000u);
    }
    ASSERT_TRUE(w->verify(nullptr));
}

TEST_P(FuzzSeed, RoadGridWeightsRespectEuclideanBound)
{
    // The A* admissibility precondition: every edge's weight is at
    // least twice the Euclidean distance between its endpoints.
    Graph g = makeRoadGrid(12, 12, {.seed = GetParam() + 31});
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            NodeId u = g.edgeDest(e);
            double dx = double(g.coordX(v)) - g.coordX(u);
            double dy = double(g.coordY(v)) - g.coordY(u);
            double dist = std::sqrt(dx * dx + dy * dy);
            ASSERT_GE(double(g.edgeWeight(e)) + 1e-9, 2.0 * dist)
                << "edge " << v << "->" << u;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSeed,
                         testing::Range<uint64_t>(1, 13));

} // namespace
} // namespace hdcps
