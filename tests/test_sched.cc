/**
 * @file
 * Concurrency tests for every threaded CPS design plus the executor.
 *
 * The load-bearing invariant for a scheduler is *no task loss and no
 * duplication*: every pushed task comes back from tryPop exactly once,
 * under concurrent pushers and poppers. The executor tests check
 * termination detection and the breakdown/drift bookkeeping on
 * synthetic task trees with known sizes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "cps/verifying_scheduler.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "support/rng.h"
#include "support/timer.h"

namespace hdcps {
namespace {

using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(unsigned workers)>;

struct SchedulerCase
{
    const char *label;
    SchedulerFactory make;
};

std::vector<SchedulerCase>
allSchedulers()
{
    return {
        {"reld",
         [](unsigned n) { return std::make_unique<ReldScheduler>(n, 3); }},
        {"obim",
         [](unsigned n) { return std::make_unique<ObimScheduler>(n); }},
        {"pmod",
         [](unsigned n) { return std::make_unique<PmodScheduler>(n); }},
        {"swminnow",
         [](unsigned n) {
             SwMinnowScheduler::MinnowConfig config;
             config.numMinnows = 1;
             return std::make_unique<SwMinnowScheduler>(n, config);
         }},
        {"hdcps-srq",
         [](unsigned n) {
             return std::make_unique<HdCpsScheduler>(
                 n, HdCpsScheduler::configSrq());
         }},
        {"hdcps-sw",
         [](unsigned n) {
             return std::make_unique<HdCpsScheduler>(
                 n, HdCpsScheduler::configSw());
         }},
        {"multiqueue",
         [](unsigned n) {
             return std::make_unique<MultiQueueScheduler>(n, 2, 5);
         }},
        {"multiqueue-s1",
         [](unsigned n) {
             // Stickiness 1 with single-op buffers: the classic
             // fully-random MultiQueue degenerate configuration.
             MultiQueueConfig config;
             config.stickiness = 1;
             config.insertionBufferCap = 1;
             config.deletionBufferCap = 1;
             config.seed = 5;
             return std::make_unique<MultiQueueScheduler>(n, config);
         }},
        {"hdcps-mq",
         [](unsigned n) {
             return std::make_unique<HdCpsMqScheduler>(
                 n, HdCpsMqScheduler::configSw());
         }},
    };
}

class SchedulerMatrix : public testing::TestWithParam<size_t>
{
  protected:
    SchedulerCase scase() const { return allSchedulers()[GetParam()]; }
};

TEST_P(SchedulerMatrix, SingleThreadConservation)
{
    auto sched = scase().make(1);
    Rng rng(4);
    constexpr int count = 2000;
    long long pushedSum = 0;
    for (int i = 0; i < count; ++i) {
        uint64_t pri = rng.below(100);
        pushedSum += static_cast<long long>(pri);
        sched->push(0, Task{pri, uint32_t(i), 0});
    }
    long long poppedSum = 0;
    int popped = 0;
    Task t;
    while (sched->tryPop(0, t)) {
        poppedSum += static_cast<long long>(t.priority);
        ++popped;
    }
    EXPECT_EQ(popped, count) << scase().label;
    EXPECT_EQ(poppedSum, pushedSum) << scase().label;
}

TEST_P(SchedulerMatrix, ConcurrentExactlyOnce)
{
    constexpr unsigned workers = 4;
    constexpr uint32_t perWorker = 4000;
    auto sched = scase().make(workers);

    std::vector<std::atomic<uint32_t>> seen(workers * perWorker);
    for (auto &s : seen)
        s.store(0);
    std::atomic<uint64_t> totalPopped{0};
    std::atomic<bool> stopPopping{false};

    auto body = [&](unsigned tid) {
        // Each worker pushes its share, then keeps popping.
        for (uint32_t i = 0; i < perWorker; ++i) {
            uint32_t id = tid * perWorker + i;
            sched->push(tid, Task{uint64_t(id % 97), id, 0});
        }
        Task t;
        while (!stopPopping.load(std::memory_order_acquire)) {
            if (sched->tryPop(tid, t)) {
                ASSERT_LT(t.node, seen.size());
                uint32_t prev = seen[t.node].fetch_add(1);
                ASSERT_EQ(prev, 0u)
                    << scase().label << ": duplicate pop of " << t.node;
                totalPopped.fetch_add(1);
            } else if (totalPopped.load() >= workers * perWorker) {
                break;
            }
        }
    };

    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < workers; ++tid)
        threads.emplace_back(body, tid);
    for (auto &t : threads)
        t.join();
    stopPopping.store(true);

    EXPECT_EQ(totalPopped.load(), uint64_t(workers) * perWorker)
        << scase().label;
    for (size_t i = 0; i < seen.size(); ++i)
        ASSERT_EQ(seen[i].load(), 1u) << scase().label << " task " << i;
}

TEST_P(SchedulerMatrix, RoughPriorityOrderWhenQuiescent)
{
    // Relaxed schedulers make no strict promise, but a fully quiescent
    // single worker must still see a strong bias toward high-priority
    // (low-value) tasks soon after pushing everything. "Soon" rather
    // than "first": swminnow's helper thread stages up to a ring's
    // worth of tasks *while* the pushes are still arriving, so its
    // first pops can predate the best pushes (timing-dependent — the
    // sanitizer builds shift it). The best priority seen in the first
    // 100 pops must still come from the best bucket region.
    auto sched = scase().make(1);
    for (uint32_t i = 0; i < 1000; ++i)
        sched->push(0, Task{uint64_t(1000 - i), i, 0});
    Priority bestSeen = ~Priority(0);
    Task t;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(sched->tryPop(0, t)) << scase().label;
        if (t.priority < bestSeen)
            bestSeen = t.priority;
    }
    EXPECT_LT(bestSeen, 200u) << scase().label;
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SchedulerMatrix,
                         testing::Range<size_t>(0, 9),
                         [](const testing::TestParamInfo<size_t> &info) {
                             std::string name =
                                 allSchedulers()[info.param].label;
                             for (char &ch : name) {
                                 if (ch == '-')
                                     ch = '_';
                             }
                             return name;
                         });

// -------------------------------- swminnow helper-thread attribution

const MetricsSnapshot::Counter *
schedCounterByName(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &c : snap.counters) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

TEST(SwMinnow, SpillsDoNotDoubleCountEnqueues)
{
    // Regression: the minnow helper used to return ring-overflow tasks
    // to the bag map via push(w, ...), which re-counted each spilled
    // task as a fresh RemoteEnqueue (and possibly a fresh BagsCreated)
    // on the serviced worker's slot. After pushing exactly N tasks, the
    // enqueue counter must read exactly N no matter how many times the
    // helper claimed and spilled them.
    SwMinnowScheduler::MinnowConfig config;
    config.numMinnows = 1;
    config.bufferCapacity = 2; // force spills: chunk >> ring
    config.prefetchChunk = 16;
    SwMinnowScheduler sched(1, config);
    MetricsRegistry metrics(1);
    sched.attachMetrics(&metrics);

    constexpr uint32_t kTasks = 64;
    for (uint32_t i = 0; i < kTasks; ++i)
        sched.push(0, Task{uint64_t(i % 8), i, 0});

    // The helper needs one claim/spill cycle: a 16-task chunk against a
    // 2-slot ring spills at least 14 tasks.
    const uint64_t deadline = nowNs() + uint64_t(10e9);
    while (sched.spilledTasks() == 0 && nowNs() < deadline)
        std::this_thread::yield();
    ASSERT_GT(sched.spilledTasks(), 0u)
        << "helper never spilled; spill path not exercised";

    MetricsSnapshot snap = metrics.snapshot();
    const auto *remote = schedCounterByName(snap, "remote_enqueues");
    ASSERT_NE(remote, nullptr);
    EXPECT_EQ(remote->total, kTasks)
        << "spill re-pushes must not be counted as new enqueues";
}

TEST(SwMinnow, HelperSpillRespectsSingleWriterContract)
{
    // Regression: push(w, ...) from the helper also *wrote worker w's
    // registry slot from the minnow thread*, racing the worker's own
    // series/tick writes. With the single-writer checker armed and both
    // workers busy popping while the helper spills against tiny rings,
    // a cross-thread write shows up as a violation.
    // The overlap the checker hunts is a timing window: a worker
    // preempted mid-write while the helper spill-bursts into its slot.
    // A sustained backlog keeps the helper claiming/spilling for the
    // whole drain, which makes the buggy interleaving near-certain per
    // round even on a single hardware thread.
    for (int round = 0; round < 2; ++round) {
        SwMinnowScheduler::MinnowConfig config;
        config.numMinnows = 1;
        config.bufferCapacity = 2;
        config.prefetchChunk = 32;
        SwMinnowScheduler sched(2, config);
        MetricsRegistry::Config mconfig;
        mconfig.checkSingleWriter = true;
        mconfig.sampleInterval = 1; // slot-write on every pop
        MetricsRegistry metrics(2, mconfig);
        sched.attachMetrics(&metrics);

        constexpr uint64_t kTasks = 300000;
        std::atomic<uint64_t> popped{0};
        auto body = [&](unsigned tid) {
            if (tid == 0) {
                for (uint32_t i = 0; i < kTasks; ++i)
                    sched.push(0, Task{uint64_t(i % 64), i, 0});
            }
            Task t;
            const uint64_t deadline = nowNs() + uint64_t(20e9);
            while (popped.load(std::memory_order_acquire) < kTasks &&
                   nowNs() < deadline) {
                if (sched.tryPop(tid, t))
                    popped.fetch_add(1, std::memory_order_acq_rel);
            }
        };
        std::thread w0(body, 0);
        std::thread w1(body, 1);
        w0.join();
        w1.join();

        EXPECT_EQ(popped.load(), kTasks)
            << "task loss or stranded staging";
        ASSERT_EQ(metrics.writerViolations(), 0u)
            << "round " << round << ": "
            << (metrics.writerViolationSamples().empty()
                    ? std::string()
                    : metrics.writerViolationSamples()[0]);
    }
}

// ------------------------------------------- multiqueue regressions

TEST(MultiQueue, WorkerRngStreamsAreIndependent)
{
    // Regression: worker RNGs were seeded mix64(seed + c) + i, handing
    // adjacent workers xoshiro states that differ by 1 in one word —
    // correlated queue choices defeat the power-of-two-choices load
    // balance. The fix mixes the worker index into the seed word, so
    // every stream must be disjoint from every other from the start.
    constexpr unsigned kWorkers = 16;
    constexpr unsigned kDraws = 64;
    std::set<uint64_t> outputs;
    for (unsigned w = 0; w < kWorkers; ++w) {
        uint64_t streamSeed = MultiQueueScheduler::workerStreamSeed(1, w);
        Rng rng(streamSeed);
        for (unsigned d = 0; d < kDraws; ++d)
            outputs.insert(rng.next());
    }
    // Any overlap between two 64-draw prefixes of 64-bit streams is a
    // correlation signature, not a coincidence.
    EXPECT_EQ(outputs.size(), size_t(kWorkers) * kDraws);

    // The seed words themselves must also be pairwise distinct.
    std::set<uint64_t> seeds;
    for (unsigned w = 0; w < kWorkers; ++w)
        seeds.insert(MultiQueueScheduler::workerStreamSeed(7, w));
    EXPECT_EQ(seeds.size(), size_t(kWorkers));
}

TEST(MultiQueue, ExternalTidPushesAndPopsAreBoundChecked)
{
    // Regression: push() indexed workers_[tid] unchecked, so a seeding
    // or driver thread using tid >= numWorkers read out of bounds. Such
    // pushes now take the external path; the tasks must still be
    // conserved and poppable by real workers (and by external tids).
    MultiQueueScheduler sched(2, 2, 9);
    constexpr uint32_t kTasks = 500;
    for (uint32_t i = 0; i < kTasks; ++i)
        sched.push(/*tid=*/7, Task{uint64_t(i % 31), i, 0});
    EXPECT_EQ(sched.sizeApprox(), size_t(kTasks));

    Task t;
    uint32_t popped = 0;
    ASSERT_TRUE(sched.tryPop(/*tid=*/9, t)); // external pop path
    ++popped;
    while (sched.tryPop(0, t) || sched.tryPop(1, t))
        ++popped;
    EXPECT_EQ(popped, kTasks);
    EXPECT_EQ(sched.sizeApprox(), 0u);
}

TEST(MultiQueue, AttributionMatchesQueueOwnership)
{
    // Regression: local/remote attribution assumed a worker-blocked
    // queue layout the constructor never established. Now the layout is
    // explicit (queue q belongs to worker q / c), so: every push is
    // counted exactly once, a single-worker scheduler owns all queues
    // (all enqueues local), and with several workers a worker's sticky
    // draws must hit both own and foreign queues.
    {
        MultiQueueScheduler sched(1, 2, 3);
        MetricsRegistry metrics(1);
        sched.attachMetrics(&metrics);
        constexpr uint32_t kTasks = 200;
        for (uint32_t i = 0; i < kTasks; ++i)
            sched.push(0, Task{uint64_t(i), i, 0});
        MetricsSnapshot snap = metrics.snapshot();
        const auto *local = schedCounterByName(snap, "local_enqueues");
        const auto *remote = schedCounterByName(snap, "remote_enqueues");
        ASSERT_NE(local, nullptr);
        EXPECT_EQ(local->total, kTasks)
            << "sole worker owns every queue; nothing can be remote";
        EXPECT_EQ(remote == nullptr ? 0 : remote->total, 0u);
    }
    {
        constexpr unsigned kWorkers = 4;
        MultiQueueScheduler sched(kWorkers, 2, 3);
        MetricsRegistry metrics(kWorkers);
        sched.attachMetrics(&metrics);
        constexpr uint32_t kTasks = 2000;
        for (uint32_t i = 0; i < kTasks; ++i)
            sched.push(i % kWorkers, Task{uint64_t(i), i, 0});
        MetricsSnapshot snap = metrics.snapshot();
        const auto *local = schedCounterByName(snap, "local_enqueues");
        const auto *remote = schedCounterByName(snap, "remote_enqueues");
        ASSERT_NE(local, nullptr);
        ASSERT_NE(remote, nullptr);
        EXPECT_EQ(local->total + remote->total, kTasks)
            << "every push attributed exactly once";
        // 2000 sticky draws over 1/4 own vs 3/4 foreign queues: both
        // sides must be populated for the split to mean anything.
        EXPECT_GT(local->total, 0u);
        EXPECT_GT(remote->total, 0u);
    }
}

TEST(MultiQueue, QuiescentDrainServesBufferedTasks)
{
    // Worker-private insertion/deletion buffers must never strand
    // tasks: after any push sequence, the pushing worker can always
    // drain everything it staged, including the tail that never
    // reached a shared queue.
    MultiQueueConfig config;
    config.stickiness = 8;
    config.insertionBufferCap = 16;
    config.seed = 11;
    MultiQueueScheduler sched(1, config);
    // 21 pushes: the last 5 stay staged in the insertion buffer.
    for (uint32_t i = 0; i < 21; ++i)
        sched.push(0, Task{uint64_t(100 - i), i, 0});
    Task t;
    uint32_t popped = 0;
    while (sched.tryPop(0, t))
        ++popped;
    EXPECT_EQ(popped, 21u);
}

// ------------------------------------------------------------- executor

/** Synthetic workload: a complete task tree of known size. */
ProcessFn
treeWorkload(unsigned fanout, unsigned depth)
{
    return [fanout, depth](unsigned, const Task &task,
                           std::vector<Task> &children) {
        unsigned level = task.data;
        if (level >= depth)
            return;
        for (unsigned i = 0; i < fanout; ++i) {
            children.push_back(Task{task.priority + 1,
                                    task.node * fanout + i, level + 1});
        }
    };
}

uint64_t
treeSize(unsigned fanout, unsigned depth)
{
    uint64_t total = 0;
    uint64_t level = 1;
    for (unsigned d = 0; d <= depth; ++d) {
        total += level;
        level *= fanout;
    }
    return total;
}

TEST(Executor, ProcessesWholeTreeSingleThread)
{
    ReldScheduler sched(1, 1);
    RunOptions options;
    options.numThreads = 1;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(3, 6),
                           options);
    EXPECT_EQ(result.total.tasksProcessed, treeSize(3, 6));
    EXPECT_GT(result.wallNs, 0u);
}

TEST(Executor, ProcessesWholeTreeMultiThread)
{
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(3, 7),
                           options);
    EXPECT_EQ(result.total.tasksProcessed, treeSize(3, 7));
    EXPECT_EQ(result.perWorker.size(), threads);
}

TEST(Executor, MultipleInitialTasks)
{
    ObimScheduler sched(2);
    RunOptions options;
    options.numThreads = 2;
    std::vector<Task> initial;
    for (uint32_t i = 0; i < 64; ++i)
        initial.push_back(Task{i, i, 0});
    RunResult result = run(sched, initial, treeWorkload(2, 3), options);
    EXPECT_EQ(result.total.tasksProcessed, 64 * treeSize(2, 3));
}

TEST(Executor, EmptyInitialTerminatesImmediately)
{
    ReldScheduler sched(2, 1);
    RunOptions options;
    options.numThreads = 2;
    RunResult result = run(sched, {}, treeWorkload(2, 2), options);
    EXPECT_EQ(result.total.tasksProcessed, 0u);
}

TEST(Executor, BreakdownComponentsPopulated)
{
    PmodScheduler sched(2);
    RunOptions options;
    options.numThreads = 2;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(4, 6),
                           options);
    EXPECT_GT(result.total[Component::Dequeue], 0u);
    EXPECT_GT(result.total[Component::Compute], 0u);
    EXPECT_GT(result.total[Component::Enqueue], 0u);
}

TEST(Executor, BreakdownCanBeDisabled)
{
    ReldScheduler sched(1, 1);
    RunOptions options;
    options.numThreads = 1;
    options.recordBreakdown = false;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(2, 4),
                           options);
    EXPECT_EQ(result.total.total(), 0u);
    EXPECT_EQ(result.total.tasksProcessed, treeSize(2, 4));
}

TEST(Executor, DriftSamplesCollectedOnLongRuns)
{
    ReldScheduler sched(2, 1);
    RunOptions options;
    options.numThreads = 2;
    options.driftSampleInterval = 50;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(3, 8),
                           options);
    EXPECT_GT(result.driftSamples, 0u);
    EXPECT_GE(result.maxDrift, result.avgDrift);
}

TEST(Executor, EmptyTasksCounted)
{
    ReldScheduler sched(1, 1);
    RunOptions options;
    options.numThreads = 1;
    // Leaves produce no children, so the leaf count must show up.
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(2, 3),
                           options);
    EXPECT_EQ(result.total.emptyTasks, 8u); // 2^3 leaves
}

TEST(Executor, HdCpsTdfEngagesOnLargeRuns)
{
    constexpr unsigned threads = 3;
    HdCpsConfig config = HdCpsScheduler::configSw();
    config.sampleInterval = 100; // sample often enough for the test
    HdCpsScheduler sched(threads, config);
    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(3, 9),
                           options);
    EXPECT_EQ(result.total.tasksProcessed, treeSize(3, 9));
    // The controller must have made decisions and stayed in bounds.
    EXPECT_GE(sched.currentTdf(), config.tdf.minTdf);
    EXPECT_LE(sched.currentTdf(), config.tdf.maxTdf);
}

// ------------------------------------------- the verifying wrapper

TEST(VerifyingWrapper, CleanConcurrentRunPassesAllChecks)
{
    constexpr unsigned threads = 4;
    HdCpsScheduler inner(threads, HdCpsScheduler::configSw());
    VerifyingScheduler sched(inner);
    EXPECT_STREQ(sched.name(), "verifying(hdcps-srq-tdf-sc)");

    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(sched, {Task{0, 0, 0}}, treeWorkload(3, 7),
                           options);
    ASSERT_TRUE(result.ok()) << result.error;

    VerifyingScheduler::Report report = sched.report();
    EXPECT_EQ(report.pushes, treeSize(3, 7));
    EXPECT_EQ(report.pops, report.pushes);
    EXPECT_EQ(report.violations, 0u);
    EXPECT_EQ(report.outstanding, 0u);
    std::string why;
    EXPECT_TRUE(sched.checkComplete(false, &why)) << why;
}

TEST(VerifyingWrapper, FlagsLossOnSuccessfulRunsOnly)
{
    // Pop fewer tasks than were pushed: loss on a "successful" run,
    // tolerated drain-out residue on a failed one.
    ReldScheduler inner(1, 1);
    VerifyingScheduler sched(inner);
    for (uint32_t i = 0; i < 5; ++i)
        sched.push(0, Task{i, i, 0});
    Task out;
    ASSERT_TRUE(sched.tryPop(0, out));
    ASSERT_TRUE(sched.tryPop(0, out));

    std::string why;
    EXPECT_FALSE(sched.checkComplete(false, &why));
    EXPECT_NE(why.find("never popped"), std::string::npos) << why;
    EXPECT_EQ(sched.report().outstanding, 3u);
    EXPECT_TRUE(sched.checkComplete(true)); // failed runs may strand
}

/** Returns every buffered task twice — the duplication bug on demand. */
class DuplicatingScheduler : public Scheduler
{
  public:
    explicit DuplicatingScheduler(unsigned n) : Scheduler(n) {}

    void push(unsigned, const Task &task) override
    {
        tasks_.push_back(task);
    }

    bool
    tryPop(unsigned, Task &out) override
    {
        if (next_ >= tasks_.size())
            return false;
        out = tasks_[next_];
        if (servedOnce_)
            ++next_;
        servedOnce_ = !servedOnce_;
        return true;
    }

    const char *name() const override { return "duplicating"; }

  private:
    std::vector<Task> tasks_;
    size_t next_ = 0;
    bool servedOnce_ = false;
};

TEST(VerifyingWrapper, FlagsDuplicatedPops)
{
    DuplicatingScheduler inner(1);
    VerifyingScheduler sched(inner);
    for (uint32_t i = 0; i < 3; ++i)
        sched.push(0, Task{i, i, 0});
    Task out;
    while (sched.tryPop(0, out)) {
    }
    VerifyingScheduler::Report report = sched.report();
    EXPECT_EQ(report.violations, 3u); // each task served twice
    EXPECT_FALSE(report.violationSamples.empty());
    std::string why;
    EXPECT_FALSE(sched.checkComplete(false, &why));
    EXPECT_NE(why.find("conservation violation"), std::string::npos)
        << why;
    // Duplication is a violation even on failed runs.
    EXPECT_FALSE(sched.checkComplete(true));
}

/** LIFO scheduler: pops the *newest* task — maximal priority inversion
 *  when pushes arrive best-first. */
class StackScheduler : public Scheduler
{
  public:
    explicit StackScheduler(unsigned n) : Scheduler(n) {}

    void push(unsigned, const Task &task) override
    {
        tasks_.push_back(task);
    }

    bool
    tryPop(unsigned, Task &out) override
    {
        if (tasks_.empty())
            return false;
        out = tasks_.back();
        tasks_.pop_back();
        return true;
    }

    const char *name() const override { return "stack"; }

  private:
    std::vector<Task> tasks_;
};

TEST(VerifyingWrapper, SamplesRankErrorOnInvertedOrder)
{
    StackScheduler inner(1);
    VerifyingScheduler::Config config;
    config.sampleInterval = 1; // sample every pop
    VerifyingScheduler sched(inner, config);
    for (uint32_t i = 0; i < 50; ++i)
        sched.push(0, Task{i, i, 0});
    Task out;
    ASSERT_TRUE(sched.tryPop(0, out));
    EXPECT_EQ(out.priority, 49u); // LIFO pops the worst task first

    VerifyingScheduler::Report report = sched.report();
    EXPECT_GE(report.rankSamples, 1u);
    // Priority 49 popped while 0 was pending: the gap must register.
    EXPECT_DOUBLE_EQ(report.maxRankError, 49.0);
    // Inversions are allowed by the contract — not violations.
    EXPECT_EQ(report.violations, 0u);
}

TEST(VerifyingWrapper, ForwardsReclaimKnobToInner)
{
    // The wrapper must pass setReclaimAfterMs through, or chaos runs
    // would silently test the wrong configuration.
    constexpr unsigned threads = 2;
    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100; // all pushes go remote
    HdCpsScheduler inner(threads, config);
    VerifyingScheduler sched(inner);
    sched.setReclaimAfterMs(25);
    // Worker 0 pushes remotely toward worker 1, which never pops; once
    // the heartbeat goes stale, worker 0 reclaims through the wrapper.
    for (uint32_t i = 0; i < 10; ++i)
        sched.push(0, Task{i, i, 0});
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    Task out;
    unsigned popped = 0;
    while (sched.tryPop(0, out))
        ++popped;
    EXPECT_EQ(popped, 10u);
    EXPECT_GT(inner.reclaimedTasks(), 0u);
    EXPECT_TRUE(sched.checkComplete(false));
}

} // namespace
} // namespace hdcps
